"""Unit tests for shared utilities."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils import derive_seed, format_bytes, format_time, parse_bytes, spawn_rng


class TestParseBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, 0),
            (1024, 1024),
            ("2", 2),
            ("8B", 8),
            ("1KiB", 1024),
            ("32kib", 32 * 1024),
            ("1MiB", 1024 * 1024),
            ("1m", 1024 * 1024),
            ("2GiB", 2 * 1024**3),
            ("0.5KiB", 512),
        ],
    )
    def test_accepted(self, value, expected):
        assert parse_bytes(value) == expected

    @pytest.mark.parametrize("value", ["-1", "1XB", "abc", -5, 3.5, "0.3B", True])
    def test_rejected(self, value):
        with pytest.raises(ConfigurationError):
            parse_bytes(value)


class TestFormatBytes:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [(2, "2B"), (1024, "1KiB"), (32768, "32KiB"), (1024**2, "1MiB"), (1500, "1500B")],
    )
    def test_format(self, nbytes, expected):
        assert format_bytes(nbytes) == expected

    @given(st.integers(min_value=0, max_value=2**40))
    def test_roundtrip(self, nbytes):
        assert parse_bytes(format_bytes(nbytes)) == nbytes


class TestFormatTime:
    def test_unit_selection(self):
        assert format_time(1.5).endswith("s")
        assert format_time(2e-3).endswith("ms")
        assert format_time(3e-6).endswith("us")
        assert format_time(5e-9).endswith("ns")


class TestSeeding:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "noise", 3) == derive_seed(1, "noise", 3)

    def test_derive_seed_sensitive_to_components(self):
        seeds = {
            derive_seed(1, "noise", 3),
            derive_seed(1, "noise", 4),
            derive_seed(1, "clock", 3),
            derive_seed(2, "noise", 3),
        }
        assert len(seeds) == 4

    def test_spawn_rng_independent_streams(self):
        a = spawn_rng(0, "x").random(5).tolist()
        b = spawn_rng(0, "y").random(5).tolist()
        assert a != b

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_derive_seed_in_uint32_range(self, base, name):
        seed = derive_seed(base, name)
        assert 0 <= seed < 2**32
