"""Tests for the workload zoo, replay frontend, and contention runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs, workloads
from repro.errors import ConfigurationError
from repro.bench import MicroBenchmark
from repro.bench.executor import CellExecutor, PatternSpec
from repro.collectives import run_collective, CollArgs, make_input
from repro.obs.analysis import TraceAnalysis
from repro.patterns import generate_pattern
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform, get_machine
from repro.workloads import (
    CollectivePhase,
    GroupContext,
    WorkloadSpec,
    build_workload,
    list_workloads,
    register_workload,
    run_contended,
    run_workload,
    workload_from_trace,
)


@pytest.fixture(scope="module")
def bench():
    return MicroBenchmark.from_machine(
        get_machine("simcluster"), nodes=4, cores_per_node=2, nrep=2
    )


class TestCollectivePhase:
    def test_key_format(self):
        assert CollectivePhase("alltoall", 32768.0).key == "alltoall@32768B"

    def test_vector_needs_counts(self):
        with pytest.raises(ConfigurationError):
            CollectivePhase("alltoallv")

    def test_counts_on_regular_collective_rejected(self):
        with pytest.raises(ConfigurationError):
            CollectivePhase("allreduce", counts=(1, 2, 3))

    def test_vector_key_uses_mean_block_size(self):
        ph = CollectivePhase("allgatherv", counts=(8, 16, 24, 32),
                             item_bytes=8.0)
        assert ph.effective_msg_bytes == pytest.approx(20 * 8.0)
        assert ph.key == "allgatherv@160B"

    def test_round_trip(self):
        for ph in (
            CollectivePhase("allreduce", 4096.0, count=8, op="max"),
            CollectivePhase("alltoallv",
                            counts=((0, 3), (5, 0)), item_bytes=16.0),
            CollectivePhase("allgatherv", counts=(4, 8), algorithm="ring"),
        ):
            assert CollectivePhase.from_dict(ph.to_dict()) == ph


class TestWorkloadSpec:
    def _spec(self):
        return WorkloadSpec(
            name="rt",
            phases=(CollectivePhase("allreduce", 512.0),
                    CollectivePhase("alltoallv",
                                    counts=((0, 2), (3, 0)))),
            iterations=3,
            warmup=1,
            compute=1e-4,
            overlap="split",
            pattern=PatternSpec(name="p", skews=(0.0, 1e-5)),
            description="round-trip fixture",
        )

    def test_round_trip_exact(self):
        spec = self._spec()
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="empty", phases=())
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="bad",
                         phases=(CollectivePhase("allreduce", 8.0),),
                         overlap="pipelined")

    def test_collectives_property(self):
        assert self._spec().collectives == ("allreduce", "alltoallv")


class TestZoo:
    def test_at_least_four_builtins(self):
        assert len(list_workloads()) >= 4

    def test_every_builtin_builds_and_round_trips(self):
        for info in list_workloads():
            spec = build_workload(info.name, 8, fast=True, seed=3)
            assert spec.name == info.name
            assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_builders_deterministic_in_seed(self):
        a = build_workload("dlrm_embedding", 8, seed=7)
        b = build_workload("dlrm_embedding", 8, seed=7)
        assert a == b

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_workload("param_sweep")(lambda p, fast=False, seed=0: None)

    def test_unknown_workload_names_the_registry(self):
        with pytest.raises(ConfigurationError, match="param_sweep"):
            build_workload("nope", 8)


class TestRunner:
    def test_run_produces_cells_and_phase_times(self, bench):
        spec = build_workload("dlrm_embedding", bench.num_ranks, fast=True)
        result = run_workload(spec, bench)
        assert result.runtime > 0
        assert set(result.resolved) == {ph.key for ph in spec.phases}
        assert set(result.phase_mpi_time) == set(result.resolved)
        assert all(t > 0 for t in result.phase_mpi_time.values())
        assert len(result.cell_results) == len(spec.phases)
        # Vector cells report the mean-block-size coordinate.
        assert result.cell_specs[0].counts is not None
        assert result.dominant_phase in result.resolved

    def test_cells_false_skips_executor(self, bench):
        spec = build_workload("param_sweep", bench.num_ranks, fast=True)
        result = run_workload(spec, bench, cells=False)
        assert result.cell_results == []
        assert result.runtime > 0

    def test_store_ingest(self, bench, tmp_path):
        from repro.store import TuningStore

        spec = build_workload("allgatherv_ragged", bench.num_ranks, fast=True)
        db = tmp_path / "wl.db"
        executor = CellExecutor.from_env(store=str(db))
        try:
            run_workload(spec, bench, executor=executor)
        finally:
            executor.close()
        with TuningStore(db) as store:
            payloads = [p for _h, p, _ph in store.iter_cell_rows()]
        assert any(p["collective"] == "allgatherv" for p in payloads)

    def test_pattern_rank_mismatch_rejected(self, bench):
        spec = build_workload("param_sweep", bench.num_ranks, fast=True)
        with pytest.raises(ConfigurationError):
            run_workload(spec, bench, cells=False,
                         pattern=generate_pattern("bell", 3, 1e-4))

    def test_interleaved_overlaps_compute_with_comm(self, bench):
        phases = (CollectivePhase("allreduce", 16384.0, count=16),)
        base = dict(phases=phases, iterations=3, warmup=0, compute=2e-3)
        seq = run_workload(WorkloadSpec(name="s", overlap="sequential", **base),
                           bench, cells=False)
        inter = run_workload(WorkloadSpec(name="i", overlap="interleaved", **base),
                             bench, cells=False)
        split = run_workload(WorkloadSpec(name="p", overlap="split", **base),
                             bench, cells=False)
        assert inter.runtime < seq.runtime
        # With a single phase, split degenerates to sequential.
        assert split.runtime == pytest.approx(seq.runtime, rel=1e-9)

    def test_runs_counter_increments(self, bench):
        spec = build_workload("halo_mix", bench.num_ranks, fast=True)
        with obs.session(meta={"test": "wl"}) as octx:
            run_workload(spec, bench, cells=False)
            snap = octx.metrics.snapshot()
        assert snap['workload.runs{workload="halo_mix"}']["value"] == 1


class TestReplay:
    def _record(self, bench, spec, pattern=None):
        with obs.session(meta={"test": "replay"}, record_spans=True) as octx:
            run_workload(spec, bench, cells=False, pattern=pattern)
            return TraceAnalysis.from_context(octx)

    def test_trace_round_trip_is_deterministic(self, bench):
        """Pinned: trace -> spec reconstruction and its re-run are stable."""
        spec = build_workload("halo_mix", bench.num_ranks, fast=True)
        ana = self._record(bench, spec)
        rebuilt = workload_from_trace(ana, name="halo_replay")
        again = workload_from_trace(ana, name="halo_replay")
        assert rebuilt == again
        # Warmup iterations are recorded calls too, so they replay as
        # measured iterations of the same cycle.
        assert rebuilt.iterations == spec.warmup + spec.iterations
        assert [ph.collective for ph in rebuilt.phases] == [
            ph.collective for ph in spec.phases]
        assert [ph.algorithm for ph in rebuilt.phases] == [
            "pairwise", "recursive_doubling", "binomial"]
        a = run_workload(rebuilt, bench, cells=False)
        b = run_workload(rebuilt, bench, cells=False)
        assert a.runtime == b.runtime
        assert a.phase_mpi_time == b.phase_mpi_time

    def test_recorded_pattern_is_reconstructed(self, bench):
        """Pinned: the replayed spec carries the recorded arrival pattern."""
        pattern = generate_pattern("ascending", bench.num_ranks, 2e-4, seed=5)
        # One measured call: later iterations would re-converge behind the
        # collective's implicit sync and dilute the recorded mean skew.
        spec = WorkloadSpec(
            name="patterned",
            phases=(CollectivePhase("alltoall", 4096.0, count=8),),
            iterations=1, warmup=0,
        )
        ana = self._record(bench, spec, pattern=pattern)
        rebuilt = workload_from_trace(ana)
        assert rebuilt.pattern is not None
        skews = np.asarray(rebuilt.pattern.skews)
        assert skews.max() == pytest.approx(2e-4, abs=5e-6)
        assert np.allclose(np.sort(skews), np.sort(pattern.skews), atol=5e-6)

    def test_vector_phases_replay_with_counts(self, bench):
        spec = build_workload("allgatherv_ragged", bench.num_ranks, fast=True)
        ana = self._record(bench, spec)
        rebuilt = workload_from_trace(ana)
        ph = rebuilt.phases[0]
        assert ph.collective == "allgatherv"
        assert ph.counts is not None
        # Mean block size survives the uniform-counts degeneracy.
        assert ph.effective_msg_bytes == pytest.approx(
            spec.phases[0].effective_msg_bytes, rel=0.1)
        run_workload(rebuilt, bench, cells=False)  # and it executes

    def test_empty_trace_rejected(self):
        from repro.errors import TraceFormatError

        with pytest.raises(TraceFormatError):
            workload_from_trace(TraceAnalysis([], run_id="x"))


class TestGroupContext:
    def test_collective_on_subgroups_is_correct(self, small_platform):
        """Two disjoint groups allreduce concurrently; both sum correctly."""
        p = small_platform.num_ranks
        groups = (tuple(range(0, p, 2)), tuple(range(1, p, 2)))

        def prog(ctx):
            ranks = groups[ctx.rank % 2]
            g = GroupContext(ctx, ranks)
            assert g.size == p // 2 and g.rank == ranks.index(ctx.rank)
            args = CollArgs(count=4, msg_bytes=64.0)
            data = make_input("allreduce", g.rank, g.size, args.count)
            result = yield from run_collective(
                g, "allreduce", "recursive_doubling", args, data)
            return result

        run = run_processes(small_platform, prog)
        expected = sum(make_input("allreduce", r, p // 2, 4)
                       for r in range(p // 2))
        for r, result in enumerate(run.rank_results):
            assert np.array_equal(result, expected), f"rank {r}"

    def test_peer_out_of_group_rejected(self, small_platform):
        from repro.errors import ProtocolError

        def prog(ctx):
            if ctx.rank == 0:
                g = GroupContext(ctx, (0, 1))
                with pytest.raises(ProtocolError):
                    g.isend(5, 8)
            yield ctx.sleep(0.0)

        run_processes(small_platform, prog)


class TestContention:
    def test_two_jobs_attribute_link_wait(self, bench):
        """Acceptance: contended link wait is charged to BOTH job labels."""
        specs = [build_workload("halo_mix", bench.num_ranks // 2, fast=True),
                 build_workload("dlrm_embedding", bench.num_ranks // 2,
                                fast=True)]
        with obs.session(meta={"test": "contend"}, record_links=True):
            result = run_contended(specs, bench)
        assert len(result.jobs) == 2
        assert all(j.runtime > 0 for j in result.jobs)
        assert result.final_time >= max(j.runtime for j in result.jobs)
        activities = result.activities()
        assert any(a.startswith("job0-halo_mix:") for a in activities)
        assert any(a.startswith("job1-dlrm_embedding:") for a in activities)
        waits = result.wait_by_job()
        assert waits.get("job0-halo_mix", 0.0) > 0
        assert waits.get("job1-dlrm_embedding", 0.0) > 0

    def test_jobs_resolve_and_account_per_phase(self, bench):
        specs = [build_workload("param_sweep", bench.num_ranks // 2, fast=True),
                 build_workload("ddp_buckets", bench.num_ranks // 2, fast=True)]
        result = run_contended(specs, bench, labels=("a", "b"))
        for job, spec in zip(result.jobs, specs):
            assert set(job.resolved) == {ph.key for ph in spec.phases}
            assert all(t > 0 for t in job.phase_mpi_time.values())

    def test_validation(self, bench):
        spec = build_workload("param_sweep", 4, fast=True)
        with pytest.raises(ConfigurationError):
            run_contended([spec], bench)
        with pytest.raises(ConfigurationError):
            run_contended([spec, spec], bench, labels=("x", "x"))


class TestDeprecationShim:
    def test_apps_phase_is_collective_phase(self):
        from repro.apps.mixed import Phase

        assert Phase is CollectivePhase

    def test_mixed_app_routes_through_overlap_modes(self):
        from repro.apps.mixed import MixedProxyApp

        plat = Platform("t", nodes=2, cores_per_node=2)
        phases = (CollectivePhase("allreduce", 8192.0, count=8),)
        seq = MixedProxyApp(platform=plat, phases=phases, iterations=3,
                            compute_per_iteration=1e-3).run()
        inter = MixedProxyApp(platform=plat, phases=phases, iterations=3,
                              compute_per_iteration=1e-3,
                              overlap="interleaved").run()
        assert inter.runtime < seq.runtime

    def test_to_workload_round_trips_the_loop(self):
        from repro.apps.mixed import MixedProxyApp

        plat = Platform("t", nodes=2, cores_per_node=2)
        app = MixedProxyApp(
            platform=plat,
            phases=(CollectivePhase("alltoall", 1024.0, count=8),),
            iterations=2,
        )
        spec = app.to_workload()
        assert spec.iterations == 2 and spec.warmup == 0
        assert spec.phases == app.phases
