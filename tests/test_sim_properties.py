"""Property-based tests of the simulation core (hypothesis-driven traffic)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.platform import Platform

_slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _platform(p: int) -> Platform:
    return Platform("prop", nodes=max(1, (p + 3) // 4), cores_per_node=4)


@st.composite
def traffic_schedules(draw):
    """A random but *matched* set of point-to-point messages.

    Each message is (src, dst, nbytes, tag, send_order_delay).  Receivers
    post receives in per-(src, tag) send order, which is exactly the
    discipline the collectives follow, so every schedule must complete.
    """
    p = draw(st.integers(min_value=2, max_value=8))
    n_msgs = draw(st.integers(min_value=1, max_value=25))
    msgs = []
    for i in range(n_msgs):
        src = draw(st.integers(min_value=0, max_value=p - 1))
        dst = draw(st.integers(min_value=0, max_value=p - 1).filter(lambda d: d != src))
        nbytes = draw(st.sampled_from([1, 64, 4096, 5000, 100_000]))
        tag = draw(st.integers(min_value=0, max_value=2))
        delay = draw(st.floats(min_value=0, max_value=1e-3))
        msgs.append((src, dst, nbytes, tag, delay, i))
    return p, msgs


@_slow
@given(traffic_schedules())
def test_matched_traffic_always_completes_and_conserves_payloads(schedule):
    p, msgs = schedule

    def prog(ctx):
        me = ctx.rank
        my_sends = [m for m in msgs if m[0] == me]
        my_recvs = [m for m in msgs if m[1] == me]
        reqs = []
        recv_reqs = []
        for src, dst, nbytes, tag, delay, uid in my_sends:
            reqs.append(ctx.isend(dst, nbytes, tag=tag + 10,
                                  payload=np.array([float(uid)])))
        for src, dst, nbytes, tag, delay, uid in my_recvs:
            recv_reqs.append((uid, ctx.irecv(src, tag=tag + 10)))
        if reqs or recv_reqs:
            yield ctx.waitall(reqs + [r for _, r in recv_reqs])
        # Each received uid must be one of the uids sent to me with that tag,
        # and per (src, tag) the arrival order matches the send order.
        by_pair: dict[tuple[int, int], list[int]] = {}
        for src, dst, nbytes, tag, delay, uid in msgs:
            if dst == me:
                by_pair.setdefault((src, tag), []).append(uid)
        got: dict[tuple[int, int], list[float]] = {}
        for (uid, req) in recv_reqs:
            src, dst, nbytes, tag, delay, _ = msgs[uid]
            got.setdefault((src, tag), []).append(float(req.payload[0]))
        for key, uids in by_pair.items():
            assert sorted(got[key]) == sorted(float(u) for u in uids)
        return len(recv_reqs)

    run = run_processes(_platform(p), prog, num_ranks=p)
    assert sum(run.rank_results) == len(msgs)


@_slow
@given(
    p=st.integers(min_value=2, max_value=8),
    nbytes=st.sampled_from([1, 512, 4096, 4097, 65536]),
    seed=st.integers(min_value=0, max_value=100),
)
def test_random_pairwise_exchange_times_are_causal(p, nbytes, seed):
    """Exit time >= entry time; receives never complete before the send posts."""
    rng = np.random.default_rng(seed)
    delays = rng.uniform(0, 1e-3, size=p)

    def prog(ctx):
        me = ctx.rank
        partner = me ^ 1
        if partner >= p:
            return (ctx.time(), ctx.time(), 0.0)
        yield ctx.sleep(float(delays[me]))
        entry = ctx.time()
        req = yield from ctx.sendrecv(partner, partner, nbytes)
        return entry, ctx.time(), float(delays[partner])

    run = run_processes(_platform(p), prog, num_ranks=p)
    for me, (entry, exit_t, partner_delay) in enumerate(run.rank_results):
        assert exit_t >= entry
        partner = me ^ 1
        if partner < p:
            # The exchange cannot finish before the later partner started.
            assert exit_t >= max(entry, partner_delay) - 1e-12


@_slow
@given(
    p=st.integers(min_value=2, max_value=10),
    shared=st.booleans(),
    rx=st.booleans(),
)
def test_engine_deterministic_under_any_port_config(p, shared, rx):
    params = NetworkParams(shared_node_nic=shared, rx_serialization=rx)

    def prog(ctx):
        partner = (ctx.rank + 1) % p
        source = (ctx.rank - 1) % p
        for _ in range(3):
            yield from ctx.sendrecv(partner, source, 8192)
        return ctx.time()

    a = run_processes(_platform(p), prog, params=params, num_ranks=p)
    b = run_processes(_platform(p), prog, params=params, num_ranks=p)
    assert a.rank_results == b.rank_results


@_slow
@given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=50))
def test_total_delay_dominates_last_delay_in_simulation(p, seed):
    """Run a real collective under a random pattern; d* >= d^ must hold."""
    from repro.bench import MicroBenchmark
    from repro.patterns import generate_pattern
    from repro.sim.platform import get_machine

    bench = MicroBenchmark.from_machine(
        get_machine("hydra"),
        nodes=max(1, (p + 3) // 4), cores_per_node=4, nrep=1,
    )
    pattern = generate_pattern("random", bench.num_ranks, 1e-4, seed=seed)
    result = bench.run("allreduce", "recursive_doubling", 1024, pattern=pattern)
    assert result.total_delay >= result.last_delay - 1e-12
