"""Tests for the collective tracer, analysis, and trace files."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceFormatError
from repro.apps import FTProxy
from repro.collectives import CollArgs, make_input
from repro.patterns import generate_pattern
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform, get_machine
from repro.tracing import (
    CollectiveTracer,
    average_delay_per_rank,
    max_observed_skew,
    pattern_from_trace,
    read_trace,
    write_trace,
)
from repro.tracing.tracer import TraceEvent


def _run_traced(pattern_skews, ncalls=3, tracer=None):
    """Run ``ncalls`` alltoalls with a fixed imposed arrival pattern."""
    p = len(pattern_skews)
    platform = Platform("t", nodes=max(1, (p + 3) // 4), cores_per_node=4)
    tracer = tracer or CollectiveTracer()
    args = CollArgs(count=8, msg_bytes=64.0)
    inputs = [make_input("alltoall", r, p, 8) for r in range(p)]

    def prog(ctx):
        for call in range(ncalls):
            yield from ctx.barrier()
            base = ctx.time()
            yield ctx.wait_until(base + pattern_skews[ctx.rank])
            yield from tracer.traced(ctx, "alltoall", "bruck", args, inputs[ctx.rank])
        return None

    run_processes(platform, prog, num_ranks=p)
    return tracer


class TestTracer:
    def test_records_all_calls_and_ranks(self):
        tracer = _run_traced([0.0] * 8, ncalls=3)
        assert tracer.num_calls("alltoall") == 3
        for seq, events in tracer.calls("alltoall").items():
            assert len(events) == 8

    def test_call_sampling(self):
        tracer = CollectiveTracer(call_sampling=2)
        tracer = _run_traced([0.0] * 4, ncalls=5, tracer=tracer)
        assert tracer.num_calls("alltoall") == 3  # calls 0, 2, 4

    def test_rank_sampling(self):
        tracer = CollectiveTracer(ranks=[0, 2])
        tracer = _run_traced([0.0] * 4, ncalls=2, tracer=tracer)
        assert {ev.rank for ev in tracer.events} == {0, 2}

    def test_invalid_sampling_rejected(self):
        with pytest.raises(ConfigurationError):
            CollectiveTracer(call_sampling=0)

    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            TraceEvent("alltoall", 0, 0, arrival=2.0, exit=1.0)


class TestAnalysis:
    def test_average_delay_recovers_imposed_pattern(self):
        skews = [0.0, 1e-4, 2e-4, 5e-5, 0.0, 3e-4, 1e-5, 0.0]
        tracer = _run_traced(skews, ncalls=4)
        avg = average_delay_per_rank(tracer, "alltoall", 8)
        # The dissemination barrier releases ranks within a few microseconds,
        # so recovery is accurate to that scale.
        assert np.allclose(avg, skews, atol=5e-6)

    def test_max_observed_skew(self):
        skews = [0.0, 0.0, 4e-4, 0.0]
        tracer = _run_traced(skews, ncalls=2)
        assert max_observed_skew(tracer, "alltoall", 4) == pytest.approx(4e-4, abs=5e-6)

    def test_pattern_from_trace_is_replayable(self):
        skews = [0.0, 2e-4, 1e-4, 0.0]
        tracer = _run_traced(skews, ncalls=2)
        pattern = pattern_from_trace(tracer, "alltoall", 4, name="scenario")
        assert pattern.name == "scenario"
        assert pattern.num_ranks == 4
        assert np.allclose(pattern.skews, skews, atol=5e-6)

    def test_missing_collective_rejected(self):
        tracer = _run_traced([0.0] * 4, ncalls=1)
        with pytest.raises(TraceFormatError):
            average_delay_per_rank(tracer, "bcast", 4)

    def test_rank_sampled_trace_with_no_complete_call_rejected(self):
        tracer = CollectiveTracer(ranks=[0])
        tracer = _run_traced([0.0] * 4, ncalls=2, tracer=tracer)
        with pytest.raises(TraceFormatError):
            average_delay_per_rank(tracer, "alltoall", 4)


class TestTraceFiles:
    def test_roundtrip(self, tmp_path):
        tracer = _run_traced([0.0, 1e-4, 0.0, 5e-5], ncalls=2)
        path = tmp_path / "run.trace"
        write_trace(path, tracer, metadata={"app": "test"})
        back, meta = read_trace(path)
        assert meta["app"] == "test"
        assert len(back.events) == len(tracer.events)
        assert np.allclose(
            average_delay_per_rank(back, "alltoall", 4),
            average_delay_per_rank(tracer, "alltoall", 4),
        )

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "x.trace"
        path.write_text('{"magic": "nope", "version": 1}\n')
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_corrupt_event_rejected(self, tmp_path):
        path = tmp_path / "x.trace"
        path.write_text('{"magic": "repro-trace", "version": 1}\n{"c": "alltoall"}\n')
        with pytest.raises(TraceFormatError):
            read_trace(path)


class TestFTEndToEnd:
    def test_ft_trace_produces_structured_pattern(self):
        """Fig. 1's phenomenon: the FT proxy yields a non-uniform, stable pattern."""
        spec = get_machine("galileo100")
        ft = FTProxy.class_d_scaled(spec, nodes=4, cores_per_node=4, seed=7)
        tracer = CollectiveTracer()
        result = ft.run(tracer)
        assert result.runtime > 0
        assert tracer.num_calls("alltoall") == result.collective_calls
        avg = average_delay_per_rank(tracer, "alltoall", 16)
        # Delays differ meaningfully across ranks (the paper's observation).
        assert avg.max() > 0
        assert np.std(avg) > 0.05 * avg.max()

    def test_ft_is_alltoall_dominant(self):
        spec = get_machine("hydra")
        ft = FTProxy.class_d_scaled(spec, nodes=4, cores_per_node=4, seed=1)
        result = ft.run()
        assert 0.05 < result.mpi_fraction < 0.95
        assert result.collective_calls == ft.iterations * ft.calls_per_iteration
