"""Unit tests for platform topology and machine presets."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.platform import MACHINES, MachineSpec, Platform, get_machine


class TestPlatform:
    def test_rank_to_node_block_mapping(self):
        plat = Platform("p", nodes=4, cores_per_node=8)
        assert plat.num_ranks == 32
        assert plat.node_of_rank(0) == 0
        assert plat.node_of_rank(7) == 0
        assert plat.node_of_rank(8) == 1
        assert plat.node_of_rank(31) == 3

    def test_node_table_matches_scalar_lookup(self):
        plat = Platform("p", nodes=3, cores_per_node=5)
        table = plat.node_of_rank_table()
        assert table == [plat.node_of_rank(r) for r in range(plat.num_ranks)]

    def test_ranks_of_node_roundtrip(self):
        plat = Platform("p", nodes=3, cores_per_node=4)
        for node in range(3):
            for rank in plat.ranks_of_node(node):
                assert plat.node_of_rank(rank) == node

    def test_out_of_range_rank_rejected(self):
        plat = Platform("p", nodes=2, cores_per_node=2)
        with pytest.raises(ConfigurationError):
            plat.node_of_rank(4)
        with pytest.raises(ConfigurationError):
            plat.ranks_of_node(2)

    @pytest.mark.parametrize("nodes,cores", [(0, 4), (4, 0), (-1, 1)])
    def test_invalid_shape_rejected(self, nodes, cores):
        with pytest.raises(ConfigurationError):
            Platform("bad", nodes=nodes, cores_per_node=cores)

    def test_scaled_copy(self):
        plat = Platform("p", nodes=32, cores_per_node=32)
        small = plat.scaled(nodes=8, cores_per_node=4)
        assert small.num_ranks == 32
        assert plat.num_ranks == 1024  # original untouched


class TestMachinePresets:
    def test_all_paper_machines_present(self):
        for name in ("simcluster", "hydra", "galileo100", "discoverer"):
            spec = get_machine(name)
            assert isinstance(spec, MachineSpec)
            assert spec.platform.num_ranks > 0

    def test_lookup_case_insensitive(self):
        assert get_machine("Hydra") is MACHINES["hydra"]

    def test_unknown_machine_rejected(self):
        with pytest.raises(ConfigurationError):
            get_machine("frontier")

    def test_simcluster_matches_paper_section_3a(self):
        spec = get_machine("simcluster")
        assert spec.platform.nodes == 32
        assert spec.platform.cores_per_node == 32
        assert spec.network["intra_latency"] == pytest.approx(1e-6)
        assert spec.network["inter_latency"] == pytest.approx(2e-6)
        # 10 Gbps in bytes/s
        assert spec.network["inter_bandwidth"] == pytest.approx(10e9 / 8)

    def test_machines_have_distinct_networks(self):
        nets = [tuple(sorted(get_machine(m).network.items())) for m in MACHINES]
        assert len(set(nets)) == len(nets)
