"""Tests for the SVG renderers, HTML report, and report/diff-metrics CLI."""

from __future__ import annotations

import json

import pytest

from repro import cli, obs
from repro.bench.executor import CellExecutor, CellSpec
from repro.bench.micro import MicroBenchmark
from repro.errors import ConfigurationError, TraceFormatError
from repro.obs.analysis import TraceAnalysis
from repro.obs.export import export_jsonl, export_metrics, export_perfetto
from repro.obs.report import render_report, write_report
from repro.patterns.generator import generate_pattern
from repro.reporting.svg import svg_heatmap, svg_timeline
from repro.sim.platform import Platform


@pytest.fixture(scope="module")
def traced_ctx():
    """One instrumented two-cell campaign with message spans."""
    bench = MicroBenchmark(
        platform=Platform(name="report", nodes=2, cores_per_node=2), nrep=2,
        seed=7,
    )
    pattern = generate_pattern("ascending", 4, 1e-5, seed=3)
    specs = [
        CellSpec.from_bench(bench, "alltoall", "pairwise", 1024, pattern),
        CellSpec.from_bench(bench, "allreduce", "ring", 4096, None),
    ]
    with obs.session(run_id="report-test", record_spans=True,
                     record_messages=True) as ctx:
        CellExecutor(jobs=1).run_cells(specs)
    return ctx


class TestSvgTimeline:
    def test_renders_tracks_and_legend(self):
        svg = svg_timeline([
            ("rank 0", [(0.0, 1.0, "a/b"), (1.0, 2.0, "c/d")]),
            ("rank 1", [(0.5, 1.5, "a/b")]),
        ])
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "rank 0" in svg and "rank 1" in svg
        assert svg.count("a/b") == 3  # two tooltips + one legend entry

    def test_escapes_labels(self):
        svg = svg_timeline([("<evil>", [(0.0, 1.0, "a&b")])])
        assert "<evil>" not in svg and "&lt;evil&gt;" in svg
        assert "a&amp;b" in svg

    def test_rejects_narrow_width(self):
        with pytest.raises(ConfigurationError):
            svg_timeline([], width=100)

    def test_empty_tracks_still_valid(self):
        svg = svg_timeline([])
        assert svg.startswith("<svg") and svg.endswith("</svg>")


class TestSvgHeatmap:
    def test_scales_to_max(self):
        svg = svg_heatmap([[0.0, 2.0], [1.0, 0.0]], ["0", "1"], ["0", "1"])
        assert 'fill="rgb(255,255,255)"' in svg      # zero cell
        assert 'fill="rgb(32,74,135)"' in svg        # max cell
        assert "0 -&gt; 1: 2" in svg                 # tooltip

    def test_label_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            svg_heatmap([[1.0]], ["a", "b"], ["a"])
        with pytest.raises(ConfigurationError):
            svg_heatmap([[1.0, 2.0]], ["a"], ["a"])

    def test_all_zero_matrix(self):
        svg = svg_heatmap([[0.0]], ["r"], ["c"])
        assert 'fill="rgb(255,255,255)"' in svg


class TestRenderReport:
    def test_standalone_html_with_all_sections(self, traced_ctx):
        html = render_report(TraceAnalysis.from_context(traced_ctx))
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        assert "http" not in html.replace("http://www.w3.org", "")
        for section in ("Collective calls", "Timeline",
                        "Communication volume", "Critical path",
                        "Phase breakdown", "Metrics"):
            assert f"<h2>{section}</h2>" in html
        assert "<svg" in html
        assert "alltoall/pairwise" in html and "allreduce/ring" in html
        assert "d̂ (last delay)" in html
        assert "report-test" in html
        assert "class='warn'" not in html

    def test_dropped_spans_banner(self):
        analysis = TraceAnalysis([], run_id="x", dropped=7)
        html = render_report(analysis)
        assert "class='warn'" in html and "7 span(s)" in html

    def test_empty_trace_renders(self):
        html = render_report(TraceAnalysis([], run_id="empty"))
        assert "No collective calls" in html
        assert html.rstrip().endswith("</html>")

    def test_title_escaped(self):
        html = render_report(TraceAnalysis([]), title="<b>hi</b>")
        assert "<b>hi</b>" not in html and "&lt;b&gt;hi&lt;/b&gt;" in html


class TestWriteReport:
    def test_from_context_and_from_files(self, traced_ctx, tmp_path):
        from_ctx = write_report(tmp_path / "ctx.html", traced_ctx)
        jsonl = tmp_path / "trace.jsonl"
        export_jsonl(jsonl, traced_ctx)
        from_jsonl = write_report(tmp_path / "jsonl.html", jsonl)
        perfetto = tmp_path / "trace.json"
        export_perfetto(perfetto, traced_ctx)
        from_perfetto = write_report(tmp_path / "perfetto.html", perfetto)
        for path in (from_ctx, from_jsonl, from_perfetto):
            text = path.read_text()
            assert text.startswith("<!DOCTYPE html>")
            assert "alltoall/pairwise" in text

    def test_bad_source_raises(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot analyze"):
            write_report(tmp_path / "x.html", 42)
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not a trace")
        with pytest.raises(TraceFormatError):
            write_report(tmp_path / "x.html", garbage)


class TestCliReport:
    def test_report_command(self, traced_ctx, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        export_perfetto(trace, traced_ctx)
        out = tmp_path / "report.html"
        assert cli.main(["report", str(trace), "-o", str(out),
                         "--title", "smoke"]) == 0
        assert "wrote report" in capsys.readouterr().out
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>") and "smoke" in text


class TestCliDiffMetrics:
    def _snapshot(self, traced_ctx, tmp_path, name):
        path = tmp_path / name
        export_metrics(path, traced_ctx)
        return path

    def test_agreement_exits_zero(self, traced_ctx, tmp_path, capsys):
        base = self._snapshot(traced_ctx, tmp_path, "base.json")
        assert cli.main(["diff-metrics", str(base), str(base)]) == 0
        assert "agree" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, traced_ctx, tmp_path,
                                               capsys):
        base = self._snapshot(traced_ctx, tmp_path, "base.json")
        payload = json.loads(base.read_text())
        payload["metrics"]["executor.cells"]["value"] *= 100
        cand = tmp_path / "cand.json"
        cand.write_text(json.dumps(payload))
        assert cli.main(["diff-metrics", str(base), str(cand)]) == 1
        out = capsys.readouterr().out
        assert "drifted" in out and "executor.cells" in out

    def test_threshold_flag(self, traced_ctx, tmp_path):
        base = self._snapshot(traced_ctx, tmp_path, "base.json")
        payload = json.loads(base.read_text())
        payload["metrics"]["executor.cells"]["value"] *= 1.5
        cand = tmp_path / "cand.json"
        cand.write_text(json.dumps(payload))
        assert cli.main(["diff-metrics", str(base), str(cand),
                         "--threshold", "0.6"]) == 0
        assert cli.main(["diff-metrics", str(base), str(cand),
                         "--threshold", "0.4"]) == 1
