"""Tests for the concurrent selection service: offline parity, caching,
fallback, the NDJSON protocol, TCP concurrency, and hot reload."""

from __future__ import annotations

import json
import os
import signal
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.bench.metrics import CollectiveTiming
from repro.bench.results import BenchResult, SweepResult
from repro.selection import RobustAverageSelector
from repro.selection.table import SelectionTable
from repro.service import (
    SOURCE_FALLBACK,
    SOURCE_PATTERN,
    SOURCE_STORE,
    InProcessClient,
    SelectionClient,
    SelectionServer,
    SelectionService,
    handle_request,
    install_sighup_reload,
)
from repro.service.server import encode_reply
from repro.store import TuningStore


def _sweep(collective="alltoall", msg_bytes=1024.0, num_ranks=4) -> SweepResult:
    sweep = SweepResult(collective, msg_bytes, num_ranks, machine="testbox")
    grid = {
        "no_delay": {"bruck": 1.0, "pairwise": 2.0},
        "ascending": {"bruck": 5.0, "pairwise": 2.5},
    }
    for pattern, row in grid.items():
        sweep.skew_by_pattern[pattern] = 0.0 if pattern == "no_delay" else 1e-3
        for algo, delay in row.items():
            timing = CollectiveTiming(np.zeros(2), np.full(2, delay))
            sweep.add(BenchResult(collective, algo, msg_bytes, num_ranks,
                                  pattern, 0.0, [timing]))
    return sweep


@pytest.fixture
def seeded_store(tmp_path):
    """A store holding a small campaign's sweeps, rules, and pattern picks."""
    from repro.bench.campaign import CampaignResult

    table = SelectionTable(strategy_name="robust_average")
    sweeps, winners = {}, {}
    for coll in ("alltoall", "allreduce"):
        for size in (1024.0, 65536.0):
            sweep = _sweep(coll, size)
            winners[(coll, size)] = table.add_sweep(sweep,
                                                    RobustAverageSelector())
            sweeps[(coll, size)] = sweep
    path = tmp_path / "tuning.db"
    with TuningStore(path) as store:
        store.ingest_campaign(
            CampaignResult(table=table, sweeps=sweeps, winners=winners),
            run_id="seed",
        )
    return path


class TestServiceQueries:
    def test_offline_parity(self, seeded_store):
        """Service answers == direct SelectionTable.lookup (acceptance)."""
        offline = SelectionTable.from_store(seeded_store)
        with SelectionService(seeded_store) as service:
            for coll in ("alltoall", "allreduce"):
                for size in (8, 1024, 4096, 65536, 1 << 20):
                    reply = service.query(coll, 4, size)
                    assert reply["algorithm"] == offline.lookup(coll, 4, size)
                    assert reply["source"] == SOURCE_STORE
                    assert reply["strategy"] == "robust_average"

    def test_pattern_conditioned_answers_use_pattern_table(self, seeded_store):
        with SelectionService(seeded_store) as service:
            agnostic = service.query("alltoall", 4, 1024)
            patterned = service.query("alltoall", 4, 1024, "ascending")
        # robust_average picks bruck overall, but under ascending skew the
        # per-pattern oracle row favors pairwise (2.5 vs 5.0).
        assert agnostic["algorithm"] == "bruck"
        assert patterned["algorithm"] == "pairwise"
        assert patterned["source"] == SOURCE_PATTERN

    def test_unknown_pattern_falls_through_to_strategy_table(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = service.query("alltoall", 4, 1024, "zigzag")
        assert reply["source"] == SOURCE_STORE

    def test_fallback_for_uncovered_collective(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = service.query("bcast", 16, 1024)
            assert reply["source"] == SOURCE_FALLBACK
            assert reply["algorithm"]
            assert service.stats.fallbacks == 1

    def test_fallback_disabled_raises(self, seeded_store):
        with SelectionService(seeded_store, fallback=False) as service:
            with pytest.raises(ConfigurationError, match="no rule covers"):
                service.query("bcast", 16, 1024)
            assert service.stats.errors == 1

    def test_unknown_collective_raises_even_with_fallback(self, seeded_store):
        with SelectionService(seeded_store) as service:
            with pytest.raises(ConfigurationError):
                service.query("no_such_collective", 4, 8)

    @pytest.mark.parametrize("bad", [
        {"collective": "", "comm_size": 4, "msg_bytes": 8},
        {"collective": "alltoall", "comm_size": 0, "msg_bytes": 8},
        {"collective": "alltoall", "comm_size": True, "msg_bytes": 8},
        {"collective": "alltoall", "comm_size": 4, "msg_bytes": -1},
        {"collective": "alltoall", "comm_size": 4, "msg_bytes": "big"},
        {"collective": "alltoall", "comm_size": 4, "msg_bytes": 8,
         "pattern": 7},
    ])
    def test_invalid_coordinates_rejected(self, seeded_store, bad):
        with SelectionService(seeded_store) as service:
            with pytest.raises(ConfigurationError):
                service.query(bad.get("collective"), bad.get("comm_size"),
                              bad.get("msg_bytes"), bad.get("pattern"))

    def test_table_only_service_without_store(self):
        table = SelectionTable(strategy_name="manual")
        table.add_rule("alltoall", 8, 0.0, "bruck")
        with SelectionService(table=table) as service:
            assert service.query("alltoall", 8, 64)["algorithm"] == "bruck"

    def test_service_needs_store_or_table(self):
        with pytest.raises(ConfigurationError):
            SelectionService()

    def test_empty_store_serves_fallback_only(self, tmp_path):
        path = tmp_path / "empty.db"
        TuningStore(path).close()
        with SelectionService(path) as service:
            reply = service.query("alltoall", 8, 64)
        assert reply["source"] == SOURCE_FALLBACK
        assert reply["strategy"] == ""


class TestCaching:
    def test_repeat_queries_hit_the_cache(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            first = service.query("alltoall", 4, 1024)
            second = service.query("alltoall", 4, 1024)
        assert first == second
        assert service.stats.queries == 2
        assert service.stats.cache_hits == 1

    def test_lru_evicts_oldest_entry(self, seeded_store):
        with SelectionService(seeded_store, cache_size=2,
                              watch_store=False) as service:
            service.query("alltoall", 4, 8)       # A
            service.query("alltoall", 4, 1024)    # B
            service.query("alltoall", 4, 8)       # A again: hit, A now MRU
            service.query("allreduce", 4, 8)      # C evicts B
            assert service.cache_len() == 2
            service.query("alltoall", 4, 1024)    # B again: miss
        assert service.stats.cache_hits == 1

    def test_query_batch_matches_single_queries(self, seeded_store):
        queries = [
            {"collective": "alltoall", "comm_size": 4, "msg_bytes": 1024},
            {"collective": "allreduce", "comm_size": 4, "msg_bytes": 8,
             "pattern": "ascending"},
            {"collective": "alltoall", "comm_size": 4, "msg_bytes": 1024},
        ]
        with SelectionService(seeded_store, watch_store=False) as service:
            singles = [service.query(q["collective"], q["comm_size"],
                                     q["msg_bytes"], q.get("pattern"))
                       for q in queries]
        with SelectionService(seeded_store, watch_store=False) as service:
            batched = service.query_batch(queries)
        assert batched == singles


class TestProtocol:
    def test_query_reply_shape(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = handle_request(service, {
                "op": "query", "collective": "alltoall",
                "comm_size": 4, "msg_bytes": 1024,
            })
        assert reply["ok"] is True
        assert set(reply) == {"ok", "collective", "comm_size", "msg_bytes",
                              "pattern", "algorithm", "source", "strategy"}

    def test_missing_fields_is_protocol_error(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = handle_request(service, {"op": "query"})
        assert reply["ok"] is False
        assert reply["error"] == "ProtocolError"
        assert "collective" in reply["detail"]

    def test_domain_error_is_structured(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = handle_request(service, {
                "collective": "alltoall", "comm_size": -1, "msg_bytes": 8,
            })
        assert reply["ok"] is False
        assert reply["error"] == "ConfigurationError"
        assert "comm_size" in reply["detail"]

    def test_unknown_op_rejected(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = handle_request(service, {"op": "frobnicate"})
        assert reply == {"ok": False, "error": "ProtocolError",
                         "detail": "unknown op 'frobnicate'"}

    def test_batch_degrades_per_item(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = handle_request(service, {"op": "batch", "queries": [
                {"collective": "alltoall", "comm_size": 4, "msg_bytes": 8},
                {"collective": "alltoall"},
                "not an object",
            ]})
        assert reply["ok"] is True
        oks = [r["ok"] for r in reply["replies"]]
        assert oks == [True, False, False]

    def test_in_process_client_checks_errors(self, seeded_store):
        with SelectionService(seeded_store) as service:
            client = InProcessClient(service)
            assert client.ping()["version"] >= 1
            with pytest.raises(ServiceError) as excinfo:
                client.query("alltoall", -1, 8)
            assert excinfo.value.reply["error"] == "ConfigurationError"
            raw = client.query("alltoall", -1, 8, check=False)
            assert raw["ok"] is False


class TestTCPServer:
    def test_concurrent_tcp_clients_match_offline(self, seeded_store):
        """8 threads x concurrent queries; replies byte-identical to the
        in-process client (and therefore to SelectionTable.lookup)."""
        offline = SelectionTable.from_store(seeded_store)
        coords = [("alltoall", 4, size) for size in (8, 1024, 4096, 65536)] \
            + [("allreduce", 4, size) for size in (8, 1024, 65536, 1 << 20)]
        service = SelectionService(seeded_store, watch_store=False)
        failures: list[str] = []
        with SelectionServer(service) as server:
            host, port = server.address

            def worker() -> None:
                try:
                    with SelectionClient(host, port) as client:
                        for coll, ranks, size in coords * 3:
                            reply = client.query(coll, ranks, size)
                            expected = offline.lookup(coll, ranks, size)
                            if reply["algorithm"] != expected:
                                failures.append(f"{coll}/{size}: "
                                                f"{reply['algorithm']}")
                except Exception as exc:  # noqa: BLE001 - collected below
                    failures.append(repr(exc))

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        service.close()
        assert not failures
        assert service.stats.queries == 8 * len(coords) * 3
        assert service.stats.errors == 0

    def test_wire_bytes_match_in_process_encoding(self, seeded_store):
        """The TCP reply line is byte-identical to encode_reply(handle_request)."""
        import socket

        service = SelectionService(seeded_store, watch_store=False)
        request = {"collective": "alltoall", "comm_size": 4, "msg_bytes": 1024}
        with SelectionServer(service) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                f = sock.makefile("rwb")
                f.write(json.dumps(request).encode() + b"\n")
                f.flush()
                wire_line = f.readline()
        expected = encode_reply(handle_request(service, dict(request)))
        service.close()
        assert wire_line == expected

    def test_malformed_json_gets_error_line_and_connection_survives(
            self, seeded_store):
        import socket

        service = SelectionService(seeded_store, watch_store=False)
        with SelectionServer(service) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                f = sock.makefile("rwb")
                f.write(b"{broken\n")
                f.flush()
                error = json.loads(f.readline())
                f.write(b'{"op": "ping"}\n')
                f.flush()
                pong = json.loads(f.readline())
        service.close()
        assert error["ok"] is False and error["error"] == "ProtocolError"
        assert pong["ok"] is True


class TestHotReload:
    def _add_rule(self, path, algorithm):
        with TuningStore(path) as store:
            store.add_rule("robust_average", "scatter", 4, 0.0, algorithm)

    def test_store_change_triggers_reload(self, seeded_store):
        with SelectionService(seeded_store, reload_interval=0.0) as service:
            assert service.query("scatter", 4, 8)["source"] == SOURCE_FALLBACK
            self._add_rule(seeded_store, "binomial")
            reply = service.query("scatter", 4, 8)
        assert reply["source"] == SOURCE_STORE
        assert reply["algorithm"] == "binomial"
        assert service.stats.reloads >= 1

    def test_manual_reload_drops_cache(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            service.query("alltoall", 4, 1024)
            assert service.cache_len() == 1
            service.reload()
            assert service.cache_len() == 0
            assert service.stats.reloads == 1

    @pytest.mark.skipif(not hasattr(signal, "SIGHUP"),
                        reason="SIGHUP is POSIX-only")
    def test_sighup_reloads(self, seeded_store):
        service = SelectionService(seeded_store, watch_store=False)
        previous = install_sighup_reload(service)
        assert previous is not None or \
            threading.current_thread() is not threading.main_thread()
        if previous is None:  # pragma: no cover - non-main-thread runner
            pytest.skip("not on the main thread")
        try:
            self._add_rule(seeded_store, "binomial")
            os.kill(os.getpid(), signal.SIGHUP)
            reply = service.query("scatter", 4, 8)
            assert reply["algorithm"] == "binomial"
            assert service.stats.reloads == 1
        finally:
            signal.signal(signal.SIGHUP, previous)
            service.close()
