"""Tests for the concurrent selection service: offline parity, caching,
fallback, the NDJSON protocol, TCP concurrency, and hot reload."""

from __future__ import annotations

import json
import os
import signal
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.bench.metrics import CollectiveTiming
from repro.bench.results import BenchResult, SweepResult
from repro.selection import RobustAverageSelector
from repro.selection.table import SelectionTable
from repro.service import (
    SOURCE_FALLBACK,
    SOURCE_PATTERN,
    SOURCE_STORE,
    InProcessClient,
    SelectionClient,
    SelectionServer,
    SelectionService,
    handle_request,
    install_sighup_reload,
)
from repro.service.server import encode_reply
from repro.store import TuningStore


def _sweep(collective="alltoall", msg_bytes=1024.0, num_ranks=4) -> SweepResult:
    sweep = SweepResult(collective, msg_bytes, num_ranks, machine="testbox")
    grid = {
        "no_delay": {"bruck": 1.0, "pairwise": 2.0},
        "ascending": {"bruck": 5.0, "pairwise": 2.5},
    }
    for pattern, row in grid.items():
        sweep.skew_by_pattern[pattern] = 0.0 if pattern == "no_delay" else 1e-3
        for algo, delay in row.items():
            timing = CollectiveTiming(np.zeros(2), np.full(2, delay))
            sweep.add(BenchResult(collective, algo, msg_bytes, num_ranks,
                                  pattern, 0.0, [timing]))
    return sweep


@pytest.fixture
def seeded_store(tmp_path):
    """A store holding a small campaign's sweeps, rules, and pattern picks."""
    from repro.bench.campaign import CampaignResult

    table = SelectionTable(strategy_name="robust_average")
    sweeps, winners = {}, {}
    for coll in ("alltoall", "allreduce"):
        for size in (1024.0, 65536.0):
            sweep = _sweep(coll, size)
            winners[(coll, size)] = table.add_sweep(sweep,
                                                    RobustAverageSelector())
            sweeps[(coll, size)] = sweep
    path = tmp_path / "tuning.db"
    with TuningStore(path) as store:
        store.ingest_campaign(
            CampaignResult(table=table, sweeps=sweeps, winners=winners),
            run_id="seed",
        )
    return path


class TestServiceQueries:
    def test_offline_parity(self, seeded_store):
        """Service answers == direct SelectionTable.lookup (acceptance)."""
        offline = SelectionTable.from_store(seeded_store)
        with SelectionService(seeded_store) as service:
            for coll in ("alltoall", "allreduce"):
                for size in (8, 1024, 4096, 65536, 1 << 20):
                    reply = service.query(coll, 4, size)
                    assert reply["algorithm"] == offline.lookup(coll, 4, size)
                    assert reply["source"] == SOURCE_STORE
                    assert reply["strategy"] == "robust_average"

    def test_pattern_conditioned_answers_use_pattern_table(self, seeded_store):
        with SelectionService(seeded_store) as service:
            agnostic = service.query("alltoall", 4, 1024)
            patterned = service.query("alltoall", 4, 1024, "ascending")
        # robust_average picks bruck overall, but under ascending skew the
        # per-pattern oracle row favors pairwise (2.5 vs 5.0).
        assert agnostic["algorithm"] == "bruck"
        assert patterned["algorithm"] == "pairwise"
        assert patterned["source"] == SOURCE_PATTERN

    def test_unknown_pattern_falls_through_to_strategy_table(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = service.query("alltoall", 4, 1024, "zigzag")
        assert reply["source"] == SOURCE_STORE

    def test_fallback_for_uncovered_collective(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = service.query("bcast", 16, 1024)
            assert reply["source"] == SOURCE_FALLBACK
            assert reply["algorithm"]
            assert service.stats.fallbacks == 1

    def test_fallback_disabled_raises(self, seeded_store):
        with SelectionService(seeded_store, fallback=False) as service:
            with pytest.raises(ConfigurationError, match="no rule covers"):
                service.query("bcast", 16, 1024)
            assert service.stats.errors == 1

    def test_unknown_collective_raises_even_with_fallback(self, seeded_store):
        with SelectionService(seeded_store) as service:
            with pytest.raises(ConfigurationError):
                service.query("no_such_collective", 4, 8)

    @pytest.mark.parametrize("bad", [
        {"collective": "", "comm_size": 4, "msg_bytes": 8},
        {"collective": "alltoall", "comm_size": 0, "msg_bytes": 8},
        {"collective": "alltoall", "comm_size": True, "msg_bytes": 8},
        {"collective": "alltoall", "comm_size": 4, "msg_bytes": -1},
        {"collective": "alltoall", "comm_size": 4, "msg_bytes": "big"},
        {"collective": "alltoall", "comm_size": 4, "msg_bytes": 8,
         "pattern": 7},
    ])
    def test_invalid_coordinates_rejected(self, seeded_store, bad):
        with SelectionService(seeded_store) as service:
            with pytest.raises(ConfigurationError):
                service.query(bad.get("collective"), bad.get("comm_size"),
                              bad.get("msg_bytes"), bad.get("pattern"))

    def test_table_only_service_without_store(self):
        table = SelectionTable(strategy_name="manual")
        table.add_rule("alltoall", 8, 0.0, "bruck")
        with SelectionService(table=table) as service:
            assert service.query("alltoall", 8, 64)["algorithm"] == "bruck"

    def test_service_needs_store_or_table(self):
        with pytest.raises(ConfigurationError):
            SelectionService()

    def test_empty_store_serves_fallback_only(self, tmp_path):
        path = tmp_path / "empty.db"
        TuningStore(path).close()
        with SelectionService(path) as service:
            reply = service.query("alltoall", 8, 64)
        assert reply["source"] == SOURCE_FALLBACK
        assert reply["strategy"] == ""


class TestCaching:
    def test_repeat_queries_hit_the_cache(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            first = service.query("alltoall", 4, 1024)
            second = service.query("alltoall", 4, 1024)
        assert first == second
        assert service.stats.queries == 2
        assert service.stats.cache_hits == 1

    def test_lru_evicts_oldest_entry(self, seeded_store):
        with SelectionService(seeded_store, cache_size=2,
                              watch_store=False) as service:
            service.query("alltoall", 4, 8)       # A
            service.query("alltoall", 4, 1024)    # B
            service.query("alltoall", 4, 8)       # A again: hit, A now MRU
            service.query("allreduce", 4, 8)      # C evicts B
            assert service.cache_len() == 2
            service.query("alltoall", 4, 1024)    # B again: miss
        assert service.stats.cache_hits == 1

    def test_query_batch_matches_single_queries(self, seeded_store):
        queries = [
            {"collective": "alltoall", "comm_size": 4, "msg_bytes": 1024},
            {"collective": "allreduce", "comm_size": 4, "msg_bytes": 8,
             "pattern": "ascending"},
            {"collective": "alltoall", "comm_size": 4, "msg_bytes": 1024},
        ]
        with SelectionService(seeded_store, watch_store=False) as service:
            singles = [service.query(q["collective"], q["comm_size"],
                                     q["msg_bytes"], q.get("pattern"))
                       for q in queries]
        with SelectionService(seeded_store, watch_store=False) as service:
            batched = service.query_batch(queries)
        assert batched == singles


class TestProtocol:
    def test_query_reply_shape(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = handle_request(service, {
                "op": "query", "collective": "alltoall",
                "comm_size": 4, "msg_bytes": 1024,
            })
        assert reply["ok"] is True
        assert set(reply) == {"ok", "collective", "comm_size", "msg_bytes",
                              "pattern", "algorithm", "source", "strategy"}

    def test_missing_fields_is_protocol_error(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = handle_request(service, {"op": "query"})
        assert reply["ok"] is False
        assert reply["error"] == "ProtocolError"
        assert "collective" in reply["detail"]

    def test_domain_error_is_structured(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = handle_request(service, {
                "collective": "alltoall", "comm_size": -1, "msg_bytes": 8,
            })
        assert reply["ok"] is False
        assert reply["error"] == "ConfigurationError"
        assert "comm_size" in reply["detail"]

    def test_unknown_op_rejected(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = handle_request(service, {"op": "frobnicate"})
        assert reply == {"ok": False, "error": "ProtocolError",
                         "detail": "unknown op 'frobnicate'"}

    def test_batch_degrades_per_item(self, seeded_store):
        with SelectionService(seeded_store) as service:
            reply = handle_request(service, {"op": "batch", "queries": [
                {"collective": "alltoall", "comm_size": 4, "msg_bytes": 8},
                {"collective": "alltoall"},
                "not an object",
            ]})
        assert reply["ok"] is True
        oks = [r["ok"] for r in reply["replies"]]
        assert oks == [True, False, False]

    def test_in_process_client_checks_errors(self, seeded_store):
        with SelectionService(seeded_store) as service:
            client = InProcessClient(service)
            assert client.ping()["version"] >= 1
            with pytest.raises(ServiceError) as excinfo:
                client.query("alltoall", -1, 8)
            assert excinfo.value.reply["error"] == "ConfigurationError"
            raw = client.query("alltoall", -1, 8, check=False)
            assert raw["ok"] is False


class TestTCPServer:
    def test_concurrent_tcp_clients_match_offline(self, seeded_store):
        """8 threads x concurrent queries; replies byte-identical to the
        in-process client (and therefore to SelectionTable.lookup)."""
        offline = SelectionTable.from_store(seeded_store)
        coords = [("alltoall", 4, size) for size in (8, 1024, 4096, 65536)] \
            + [("allreduce", 4, size) for size in (8, 1024, 65536, 1 << 20)]
        service = SelectionService(seeded_store, watch_store=False)
        failures: list[str] = []
        with SelectionServer(service) as server:
            host, port = server.address

            def worker() -> None:
                try:
                    with SelectionClient(host, port) as client:
                        for coll, ranks, size in coords * 3:
                            reply = client.query(coll, ranks, size)
                            expected = offline.lookup(coll, ranks, size)
                            if reply["algorithm"] != expected:
                                failures.append(f"{coll}/{size}: "
                                                f"{reply['algorithm']}")
                except Exception as exc:  # noqa: BLE001 - collected below
                    failures.append(repr(exc))

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        service.close()
        assert not failures
        assert service.stats.queries == 8 * len(coords) * 3
        assert service.stats.errors == 0

    def test_wire_bytes_match_in_process_encoding(self, seeded_store):
        """The TCP reply line is byte-identical to encode_reply(handle_request)."""
        import socket

        service = SelectionService(seeded_store, watch_store=False)
        request = {"collective": "alltoall", "comm_size": 4, "msg_bytes": 1024}
        with SelectionServer(service) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                f = sock.makefile("rwb")
                f.write(json.dumps(request).encode() + b"\n")
                f.flush()
                wire_line = f.readline()
        expected = encode_reply(handle_request(service, dict(request)))
        service.close()
        assert wire_line == expected

    def test_malformed_json_gets_error_line_and_connection_survives(
            self, seeded_store):
        import socket

        service = SelectionService(seeded_store, watch_store=False)
        with SelectionServer(service) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                f = sock.makefile("rwb")
                f.write(b"{broken\n")
                f.flush()
                error = json.loads(f.readline())
                f.write(b'{"op": "ping"}\n')
                f.flush()
                pong = json.loads(f.readline())
        service.close()
        assert error["ok"] is False and error["error"] == "ProtocolError"
        assert pong["ok"] is True


class TestHotReload:
    def _add_rule(self, path, algorithm):
        with TuningStore(path) as store:
            store.add_rule("robust_average", "scatter", 4, 0.0, algorithm)

    def test_store_change_triggers_reload(self, seeded_store):
        with SelectionService(seeded_store, reload_interval=0.0) as service:
            assert service.query("scatter", 4, 8)["source"] == SOURCE_FALLBACK
            self._add_rule(seeded_store, "binomial")
            reply = service.query("scatter", 4, 8)
        assert reply["source"] == SOURCE_STORE
        assert reply["algorithm"] == "binomial"
        assert service.stats.reloads >= 1

    def test_manual_reload_drops_cache(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            service.query("alltoall", 4, 1024)
            assert service.cache_len() == 1
            service.reload()
            assert service.cache_len() == 0
            assert service.stats.reloads == 1

    @pytest.mark.skipif(not hasattr(signal, "SIGHUP"),
                        reason="SIGHUP is POSIX-only")
    def test_sighup_reloads(self, seeded_store):
        service = SelectionService(seeded_store, watch_store=False)
        previous = install_sighup_reload(service)
        assert previous is not None or \
            threading.current_thread() is not threading.main_thread()
        if previous is None:  # pragma: no cover - non-main-thread runner
            pytest.skip("not on the main thread")
        try:
            self._add_rule(seeded_store, "binomial")
            os.kill(os.getpid(), signal.SIGHUP)
            reply = service.query("scatter", 4, 8)
            assert reply["algorithm"] == "binomial"
            assert service.stats.reloads == 1
        finally:
            signal.signal(signal.SIGHUP, previous)
            service.close()


class TestServiceTelemetry:
    """The always-on service registry: labels, latency, flight recording."""

    def test_query_total_labeled_by_collective_and_source(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            service.query("alltoall", 4, 1024)
            service.query("alltoall", 4, 1024)        # cache hit, same labels
            service.query("scatter", 4, 8)            # fallback
            snap = service.metrics.snapshot()
        key = 'service.query_total{collective="alltoall",source="store"}'
        assert snap[key]["value"] == 2
        fb = 'service.query_total{collective="scatter",source="fallback"}'
        assert snap[fb]["value"] == 1
        assert snap["service.cache_hit_total"]["value"] == 1
        assert snap["service.fallback_total"]["value"] == 1

    def test_error_queries_labeled_and_counted(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            with pytest.raises(ConfigurationError):
                service.query("alltoall", -1, 8)
            with pytest.raises(ConfigurationError):
                service.query(12345, 4, 8)            # non-str collective
            snap = service.metrics.snapshot()
        assert snap["service.error_total"]["value"] == 2
        # A valid-shaped collective keeps its label on the error path; a
        # garbage one collapses into "<invalid>" (cardinality guard).
        assert snap['service.query_total'
                    '{collective="alltoall",source="error"}']["value"] == 1
        assert snap['service.query_total'
                    '{collective="<invalid>",source="error"}']["value"] == 1

    def test_label_cardinality_is_capped(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            cap = service._LABEL_CAP
            for i in range(cap + 20):                 # unique garbage names
                with pytest.raises(ConfigurationError):
                    service.query(f"no-such-collective-{i}", 4, 8)
            labeled = [k for k in service.metrics
                       if k.startswith("service.query_total{")]
            assert len(labeled) <= cap + 1            # + the "<other>" bucket
            other = service.metrics.get(
                "service.query_total",
                {"collective": "<other>", "source": "error"})
            assert other is not None and other.value >= 20

    def test_query_seconds_strictly_per_query(self, seeded_store):
        # Satellite fix: batch latency must not skew the per-query
        # histogram — each batch item observes individually and the whole
        # batch lands in service.batch_seconds.
        with SelectionService(seeded_store, watch_store=False) as service:
            service.query("alltoall", 4, 1024)
            service.query_batch([
                {"collective": "alltoall", "comm_size": 4, "msg_bytes": 1024},
                {"collective": "allreduce", "comm_size": 4, "msg_bytes": 1024},
                {"collective": "alltoall", "comm_size": 4,
                 "msg_bytes": 65536},
            ])
            h_query = service.metrics.histogram("service.query_seconds")
            h_batch = service.metrics.histogram("service.batch_seconds")
        assert h_query.count == 4                     # 1 single + 3 items
        assert h_batch.count == 1
        assert h_batch.total > 0.0
        assert h_query.quantile(0.99) is not None
        # Batch items are tagged distinctly in the flight recorder.
        ops = {e["op"] for e in service.flight.dump()["slowest"]}
        assert ops <= {"query", "batch-item"} and "batch-item" in ops

    def test_cache_entries_gauge_tracks_lru(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False,
                              cache_size=2) as service:
            service.query("alltoall", 4, 1024)
            service.query("allreduce", 4, 1024)
            service.query("alltoall", 4, 65536)       # evicts the oldest
            gauge = service.metrics.gauge("service.cache_entries")
        assert gauge.value == 2
        assert gauge.peak == 2

    def test_reload_total_counter(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            service.reload()
            service.reload()
            assert service.metrics.counter(
                "service.reload_total").value == 2

    def test_flight_records_slowest_and_errors(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False,
                              flight_capacity=4) as service:
            for msg in (1024, 65536):
                service.query("alltoall", 4, msg)
            with pytest.raises(ConfigurationError):
                service.query("alltoall", 0, 8)
            dump = service.flight.dump()
        assert dump["capacity"] == 4
        assert len(dump["slowest"]) == 2
        # Slowest-first ordering, full request coordinates attached.
        lats = [e["latency_seconds"] for e in dump["slowest"]]
        assert lats == sorted(lats, reverse=True)
        assert dump["slowest"][0]["request"]["collective"] == "alltoall"
        assert dump["slowest"][0]["source"] == "store"
        (err,) = dump["errors"]
        assert err["error"] == "ConfigurationError"
        assert err["request"]["comm_size"] == 0

    def test_flight_threshold_gates_recording(self):
        from repro.service import FlightRecorder

        rec = FlightRecorder(2)
        assert rec.fast_threshold == 0.0              # heap not full yet
        assert rec.record(latency=0.5)
        assert rec.record(latency=1.0)
        assert rec.fast_threshold == 0.5              # K-th slowest
        assert not rec.record(latency=0.1)            # below the bar
        assert rec.record(latency=2.0)                # displaces 0.5
        assert rec.fast_threshold == 1.0
        dump = rec.dump()
        assert [e["latency_seconds"] for e in dump["slowest"]] == [2.0, 1.0]
        assert rec.occupancy()["slow"] == 2
        # Errors bypass the latency bar entirely.
        assert rec.record(latency=0.0, error="Boom")
        assert rec.occupancy()["errors"] == 1
        rec.clear()
        assert rec.fast_threshold == 0.0
        assert rec.dump()["slowest"] == []

    def test_table_generation_and_uptime(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            assert service.table_generation == 1
            service.reload()
            assert service.table_generation == 2
            assert service.uptime_seconds() >= 0.0


class TestOpsEndpoints:
    """op:metrics / op:debug / enriched op:stats over the wire protocol."""

    def test_op_metrics_reply(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            client = InProcessClient(service)
            client.query("alltoall", 4, 1024)
            reply = client.metrics()
        assert reply["ok"] and reply["op"] == "metrics"
        key = 'service.query_total{collective="alltoall",source="store"}'
        assert reply["metrics"][key]["value"] == 1
        q = reply["quantiles"]["service.query_seconds"]
        assert set(q) == {"p50", "p90", "p99"}
        assert q["p50"] > 0
        # Empty histograms must serialize (no JSON Infinity).
        assert reply["metrics"]["service.batch_seconds"]["min"] is None
        assert reply["uptime_seconds"] >= 0.0

    def test_op_debug_reply(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            client = InProcessClient(service)
            client.query("alltoall", 4, 1024)
            client.query("nope", 4, 8, check=False)
            reply = client.debug()
        assert reply["ok"] and reply["op"] == "debug"
        assert reply["flight"]["slowest"]
        assert reply["flight"]["errors"][0]["error"] == "ConfigurationError"
        assert reply["config"]["cache_size"] == 4096
        assert reply["config"]["store_path"].endswith("tuning.db")
        assert reply["stats"]["queries"] == 2
        assert reply["table_generation"] == 1

    def test_op_stats_enriched(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            client = InProcessClient(service)
            client.query("alltoall", 4, 1024)
            reply = client.stats()
        assert reply["table_generation"] == 1
        assert reply["uptime_seconds"] >= 0.0
        occupancy = reply["flight"]
        assert occupancy["capacity"] == 32
        assert occupancy["slow"] == 1
        assert occupancy["errors"] == 0

    def test_ops_answer_over_tcp(self, seeded_store):
        with SelectionService(seeded_store, watch_store=False) as service:
            with SelectionServer(service, port=0) as server:
                host, port = server.address
                with SelectionClient(host, port) as client:
                    client.query("alltoall", 4, 1024)
                    metrics = client.metrics()
                    debug = client.debug()
        assert metrics["quantiles"]["service.query_seconds"]["p99"] > 0
        assert debug["flight"]["slowest"][0]["op"] == "query"


class TestPrometheusEndToEnd:
    """Acceptance: a live scrape of the service registry parses back."""

    def test_scrape_round_trips_labeled_service_metrics(self, seeded_store):
        import urllib.request

        from repro.obs import MetricsHTTPServer, parse_prometheus

        with SelectionService(seeded_store, watch_store=False) as service:
            service.query("alltoall", 4, 1024)
            service.query("alltoall", 4, 1024)
            service.query("scatter", 4, 8)            # fallback source
            with MetricsHTTPServer(service.metrics, port=0) as http:
                host, port = http.address
                text = urllib.request.urlopen(
                    f"http://{host}:{port}/metrics").read().decode()
        families = parse_prometheus(text)
        total = families["repro_service_query_total"]
        assert total["type"] == "counter"
        by_labels = {tuple(sorted(l.items())): v
                     for _n, l, v in total["samples"]}
        assert by_labels[(("collective", "alltoall"),
                          ("source", "store"))] == 2
        assert by_labels[(("collective", "scatter"),
                          ("source", "fallback"))] == 1
        hist = families["repro_service_query_seconds"]
        assert hist["type"] == "histogram"
        counts = [v for n, _l, v in hist["samples"] if n.endswith("_count")]
        assert counts == [3]


class TestJsonLoggerAndSignals:
    def test_json_logger_lines_parse_and_carry_run_id(self):
        import io

        from repro.service import JsonLogger

        stream = io.StringIO()
        logger = JsonLogger(stream, run_id="abc123")
        logger.log("serve.start", port=7453)
        logger.log("request.error", error="Boom", seq=4)
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert lines[0]["event"] == "serve.start"
        assert lines[0]["run_id"] == "abc123"
        assert lines[0]["port"] == 7453
        assert lines[1]["seq"] == 4
        assert all("ts" in l for l in lines)

    def test_server_logs_connections_and_errors(self, seeded_store):
        import io

        from repro.service import JsonLogger

        stream = io.StringIO()
        with SelectionService(seeded_store, watch_store=False) as service:
            with SelectionServer(service, port=0,
                                 logger=JsonLogger(stream),
                                 slow_log_seconds=0.0) as server:
                host, port = server.address
                with SelectionClient(host, port) as client:
                    client.query("alltoall", 4, 1024)
                    client.query("nope", 4, 8, check=False)
        events = [json.loads(l) for l in stream.getvalue().splitlines()]
        kinds = [e["event"] for e in events]
        assert "conn.open" in kinds and "conn.close" in kinds
        # slow_log_seconds=0.0 logs every success; the bad query errors.
        assert "request.slow" in kinds
        err = next(e for e in events if e["event"] == "request.error")
        assert err["error"] == "ConfigurationError"
        assert err["seq"] > 0
        close = next(e for e in events if e["event"] == "conn.close")
        assert close["requests"] == 2

    @pytest.mark.skipif(not hasattr(signal, "SIGUSR1"),
                        reason="SIGUSR1 is POSIX-only")
    def test_sigusr1_dumps_flight_recorder(self, seeded_store):
        import io

        from repro.service import install_sigusr1_dump

        service = SelectionService(seeded_store, watch_store=False)
        stream = io.StringIO()
        previous = install_sigusr1_dump(service, stream)
        if previous is None:  # pragma: no cover - non-main-thread runner
            service.close()
            pytest.skip("not on the main thread")
        try:
            service.query("alltoall", 4, 1024)
            os.kill(os.getpid(), signal.SIGUSR1)
            payload = json.loads(stream.getvalue())
            assert payload["op"] == "debug"
            assert payload["flight"]["slowest"]
        finally:
            signal.signal(signal.SIGUSR1, previous)
            service.close()
