"""Tests for the persistent tuning store: schema migration, idempotent
content-addressed ingest, round-trips, and the executor/campaign sinks."""

from __future__ import annotations

import sqlite3

import numpy as np
import pytest

from repro.errors import ConfigurationError, StoreError
from repro.bench.metrics import CollectiveTiming
from repro.bench.results import BenchResult, SweepResult
from repro.selection.table import SelectionTable
from repro.store import (
    PATTERN_BEST,
    TuningStore,
    canonical_json,
    content_hash,
    open_store,
)
from repro.store.schema import LATEST_VERSION, MIGRATIONS


def _result(collective="alltoall", algo="bruck", msg_bytes=1024.0,
            num_ranks=4, pattern="no_delay", delay=1.0) -> BenchResult:
    timing = CollectiveTiming(np.zeros(2), np.full(2, delay))
    return BenchResult(collective, algo, msg_bytes, num_ranks, pattern,
                       0.0, [timing])


def _sweep(collective="alltoall", msg_bytes=1024.0, num_ranks=4) -> SweepResult:
    sweep = SweepResult(collective, msg_bytes, num_ranks, machine="testbox")
    grid = {
        "no_delay": {"bruck": 1.0, "pairwise": 2.0},
        "ascending": {"bruck": 5.0, "pairwise": 2.5},
    }
    for pattern, row in grid.items():
        sweep.skew_by_pattern[pattern] = 0.0 if pattern == "no_delay" else 1e-3
        for algo, delay in row.items():
            sweep.add(_result(collective, algo, msg_bytes, num_ranks,
                              pattern, delay))
    return sweep


class TestSchemaMigration:
    def test_new_store_is_at_latest_version(self, tmp_path):
        with TuningStore(tmp_path / "t.db") as store:
            assert store.schema_version() == LATEST_VERSION

    def test_v0_empty_file_migrates_to_latest(self, tmp_path):
        path = tmp_path / "empty.db"
        path.touch()  # a v0 file: zero bytes, PRAGMA user_version == 0
        with TuningStore(path) as store:
            assert store.schema_version() == LATEST_VERSION
            assert store.counts() == {"provenance": 0, "sweeps": 0,
                                      "bench_results": 0, "rules": 0,
                                      "lint_findings": 0}

    def test_v1_file_migrates_and_keeps_data(self, tmp_path):
        path = tmp_path / "v1.db"
        conn = sqlite3.connect(path)
        conn.executescript(MIGRATIONS[0][1])
        conn.execute("PRAGMA user_version = 1")
        conn.execute(
            "INSERT INTO rules (strategy, collective, comm_size, msg_bytes,"
            " pattern, algorithm) VALUES ('s', 'alltoall', 8, 64.0, '', 'bruck')"
        )
        conn.commit()
        conn.close()
        with TuningStore(path) as store:
            assert store.schema_version() == LATEST_VERSION
            assert store.load_table("s").lookup("alltoall", 8, 64) == "bruck"

    def test_newer_schema_is_refused(self, tmp_path):
        path = tmp_path / "future.db"
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {LATEST_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="upgrade"):
            TuningStore(path)

    def test_non_database_file_is_refused(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_text("this is not sqlite" * 100)
        with pytest.raises(StoreError, match="not a tuning store"):
            TuningStore(path)

    def test_wal_journal_mode(self, tmp_path):
        store = TuningStore(tmp_path / "t.db")
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        store.close()
        assert mode == "wal"


class TestCanonicalJson:
    """NaN/Infinity must never reach a content-addressed row (regression:
    json.dumps defaults to allow_nan=True)."""

    def test_non_finite_float_names_the_key_path(self):
        with pytest.raises(ConfigurationError, match=r"\$\.a\.b\[1\]"):
            canonical_json({"a": {"b": [1.0, float("nan")]}})
        with pytest.raises(ConfigurationError, match="non-finite"):
            canonical_json({"x": float("inf")})

    def test_content_hash_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            content_hash({"delay": float("nan")})

    def test_finite_payloads_hash_as_before(self):
        assert canonical_json({"b": 1, "a": [2.0]}) == '{"a":[2.0],"b":1}'

    def test_nan_result_ingest_is_rejected(self, tmp_path):
        timing = CollectiveTiming(np.zeros(2), np.full(2, np.nan))
        bad = BenchResult("alltoall", "bruck", 1024.0, 4, "no_delay",
                          0.0, [timing])
        with TuningStore(tmp_path / "t.db") as store:
            with pytest.raises(ConfigurationError, match="non-finite"):
                store.ingest_result(bad)
            assert store.counts()["bench_results"] == 0


class TestIngestIdempotency:
    def test_result_ingest_is_idempotent(self, tmp_path):
        with TuningStore(tmp_path / "t.db") as store:
            rid, inserted = store.ingest_result(_result())
            assert inserted
            before = store.counts()
            rid2, inserted2 = store.ingest_result(_result())
            assert rid2 == rid and not inserted2
            assert store.counts() == before

    def test_distinct_results_get_distinct_rows(self, tmp_path):
        with TuningStore(tmp_path / "t.db") as store:
            store.ingest_result(_result(algo="bruck"))
            store.ingest_result(_result(algo="pairwise"))
            assert store.counts()["bench_results"] == 2

    def test_sweep_ingest_is_idempotent(self, tmp_path):
        with TuningStore(tmp_path / "t.db") as store:
            sid, inserted = store.ingest_sweep(_sweep())
            assert inserted
            before = store.counts()
            sid2, inserted2 = store.ingest_sweep(_sweep())
            assert sid2 == sid and not inserted2
            assert store.counts() == before

    def test_standalone_result_links_to_later_sweep(self, tmp_path):
        """An executor-sunk cell gains its sweep link without duplication."""
        sweep = _sweep()
        cell = next(iter(sweep.cells.values()))
        with TuningStore(tmp_path / "t.db") as store:
            store.ingest_result(cell)  # standalone: sweep_id NULL
            sid, _ = store.ingest_sweep(sweep)
            assert store.counts()["bench_results"] == len(sweep.cells)
            linked = store._conn.execute(
                "SELECT COUNT(*) FROM bench_results WHERE sweep_id=?", (sid,)
            ).fetchone()[0]
            assert linked == len(sweep.cells)

    def test_provenance_tuple_deduplicates(self, tmp_path):
        with TuningStore(tmp_path / "t.db") as store:
            a = store.ensure_provenance(run_id="r1", params_hash="h1")
            b = store.ensure_provenance(run_id="r1", params_hash="h1")
            c = store.ensure_provenance(run_id="r2", params_hash="h1")
            assert a == b and c != a
            assert store.counts()["provenance"] == 2


class TestRoundTrips:
    def test_sweep_round_trips_bit_exact(self, tmp_path):
        sweep = _sweep()
        with TuningStore(tmp_path / "t.db") as store:
            store.ingest_sweep(sweep)
            (back,) = list(store.load_sweeps())
        assert content_hash(back.to_dict()) == content_hash(sweep.to_dict())

    def test_load_sweeps_filters_by_collective(self, tmp_path):
        with TuningStore(tmp_path / "t.db") as store:
            store.ingest_sweep(_sweep("alltoall"))
            store.ingest_sweep(_sweep("allreduce"))
            assert len(list(store.load_sweeps("allreduce"))) == 1
            assert len(list(store.load_sweeps())) == 2

    def test_table_round_trip_via_store(self, tmp_path):
        path = tmp_path / "t.db"
        table = SelectionTable(strategy_name="robust_average")
        table.add_rule("alltoall", 16, 1024.0, "bruck")
        table.add_rule("reduce", 16, 8.0, "binomial")
        assert table.to_store(path) == 2
        back = SelectionTable.from_store(path)
        assert back.strategy_name == "robust_average"
        assert back.lookup("alltoall", 16, 1024) == "bruck"
        assert back.lookup("reduce", 16, 8) == "binomial"

    def test_rule_upsert_keeps_one_row(self, tmp_path):
        with TuningStore(tmp_path / "t.db") as store:
            store.add_rule("s", "alltoall", 8, 64.0, "bruck")
            store.add_rule("s", "alltoall", 8, 64.0, "pairwise")
            assert store.counts()["rules"] == 1
            assert store.load_table("s").lookup("alltoall", 8, 64) == "pairwise"

    def test_load_table_without_rules_raises(self, tmp_path):
        with TuningStore(tmp_path / "t.db") as store:
            with pytest.raises(StoreError, match="no selection rules"):
                store.load_table()

    def test_ambiguous_strategy_must_be_named(self, tmp_path):
        with TuningStore(tmp_path / "t.db") as store:
            store.add_rule("a", "alltoall", 8, 64.0, "bruck")
            store.add_rule("b", "alltoall", 8, 64.0, "pairwise")
            with pytest.raises(ConfigurationError, match="pick one"):
                store.load_table()
            assert store.strategies() == ["a", "b"]
            assert store.load_table("a").lookup("alltoall", 8, 64) == "bruck"

    def test_open_store_coercion(self, tmp_path):
        store = TuningStore(tmp_path / "t.db")
        same, owned = open_store(store)
        assert same is store and not owned
        opened, owned2 = open_store(tmp_path / "t2.db")
        assert owned2
        opened.close()
        store.close()


class TestCampaignIngest:
    def _campaign_result(self):
        from repro.bench.campaign import CampaignResult

        table = SelectionTable(strategy_name="robust_average")
        sweeps = {}
        winners = {}
        for size in (1024.0, 65536.0):
            sweep = _sweep(msg_bytes=size)
            from repro.selection import RobustAverageSelector

            winners[("alltoall", size)] = table.add_sweep(
                sweep, RobustAverageSelector())
            sweeps[("alltoall", size)] = sweep
        return CampaignResult(table=table, sweeps=sweeps, winners=winners)

    def test_campaign_ingest_and_idempotency(self, tmp_path):
        result = self._campaign_result()
        with TuningStore(tmp_path / "t.db") as store:
            first = store.ingest_campaign(result, run_id="run-1")
            assert first["new_sweeps"] == 2
            assert first["rules_written"] > 0
            before = store.counts()
            second = store.ingest_campaign(result, run_id="run-1")
            assert second["new_sweeps"] == 0
            assert store.counts() == before  # the acceptance probe

    def test_campaign_ingest_builds_pattern_tables(self, tmp_path):
        with TuningStore(tmp_path / "t.db") as store:
            store.ingest_campaign(self._campaign_result())
            tables = store.load_pattern_tables()
        assert set(tables) == {"no_delay", "ascending"}
        # The ascending row's winner in _sweep is pairwise (2.5 < 5.0).
        assert tables["ascending"].lookup("alltoall", 4, 1024) == "pairwise"
        assert tables["ascending"].strategy_name == PATTERN_BEST

    def test_pattern_rules_can_be_disabled(self, tmp_path):
        with TuningStore(tmp_path / "t.db") as store:
            store.ingest_campaign(self._campaign_result(),
                                  pattern_rules=False)
            assert store.load_pattern_tables() == {}


class TestExecutorSink:
    def _specs(self):
        from repro.bench import MicroBenchmark
        from repro.bench.executor import CellSpec
        from repro.sim.platform import get_machine

        bench = MicroBenchmark.from_machine(
            get_machine("hydra"), nodes=2, cores_per_node=2, nrep=1
        )
        return [CellSpec.from_bench(bench, "alltoall", algo, 1024)
                for algo in ("bruck", "pairwise")]

    def test_executor_sinks_cells_into_store(self, tmp_path):
        from repro.bench.executor import CellExecutor

        path = tmp_path / "t.db"
        specs = self._specs()
        executor = CellExecutor(store=path)
        try:
            executor.run_cells(specs)
        finally:
            executor.close()
        with TuningStore(path) as store:
            assert store.counts()["bench_results"] == len(specs)
            assert store.counts()["provenance"] == 1
            before = store.counts()
        # A second run over the same cells changes nothing (idempotent).
        executor = CellExecutor(store=path)
        try:
            executor.run_cells(specs)
        finally:
            executor.close()
        with TuningStore(path) as store:
            assert store.counts() == before

    def test_from_env_honors_repro_store(self, tmp_path, monkeypatch):
        from repro.bench.executor import CellExecutor

        path = tmp_path / "env.db"
        monkeypatch.setenv("REPRO_STORE", str(path))
        executor = CellExecutor.from_env()
        try:
            assert executor.store is not None
            assert executor.store.path == path
        finally:
            executor.close()

    def test_campaign_store_field_shares_one_connection(self, tmp_path):
        from repro.bench import MicroBenchmark
        from repro.bench.campaign import TuningCampaign
        from repro.sim.platform import get_machine

        bench = MicroBenchmark.from_machine(
            get_machine("hydra"), nodes=2, cores_per_node=2, nrep=1
        )
        path = tmp_path / "c.db"
        campaign = TuningCampaign(bench=bench, collectives=("alltoall",),
                                  msg_sizes=(1024,), shapes=("ascending",),
                                  store=path)
        try:
            result = campaign.run()
        finally:
            campaign.close()
        assert result.store_ingest is not None
        assert result.store_ingest["new_sweeps"] == 1
        with TuningStore(path) as store:
            counts = store.counts()
            assert counts["sweeps"] == 1
            assert counts["rules"] > 0
            assert counts["bench_results"] > 0
