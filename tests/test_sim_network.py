"""Unit tests for the network cost model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.network import NetworkModel, NetworkParams
from repro.sim.platform import Platform


@pytest.fixture
def model(small_platform):
    params = NetworkParams(
        intra_latency=1e-6,
        inter_latency=2e-6,
        intra_bandwidth=2e9,
        inter_bandwidth=1e9,
        eager_threshold=4096,
    )
    return NetworkModel(small_platform, params)


class TestLinkSelection:
    def test_same_node_detection(self, model):
        assert model.same_node(0, 3)
        assert not model.same_node(0, 4)

    def test_intra_vs_inter_latency(self, model):
        assert model.latency(0, 1) == 1e-6
        assert model.latency(0, 5) == 2e-6

    def test_self_message_is_free(self, model):
        assert model.latency(2, 2) == 0.0
        assert model.transmission_time(2, 2, 10_000) == 0.0

    def test_transmission_uses_link_bandwidth(self, model):
        assert model.transmission_time(0, 1, 2000) == pytest.approx(2000 / 2e9)
        assert model.transmission_time(0, 5, 2000) == pytest.approx(2000 / 1e9)


class TestProtocolSelection:
    def test_eager_threshold_boundary(self, model):
        assert model.is_eager(4096)
        assert not model.is_eager(4097)

    def test_point_to_point_eager_formula(self, model):
        nbytes = 1000
        expected = 2e-6 + 2 * nbytes / 1e9  # latency + tx + rx extraction
        assert model.point_to_point_time(0, 5, nbytes) == pytest.approx(expected)

    def test_point_to_point_rendezvous_adds_handshake(self, model):
        nbytes = 100_000
        eagerish = 2e-6 + 2 * nbytes / 1e9
        expected = eagerish + 2 * 2e-6
        assert model.point_to_point_time(0, 5, nbytes) == pytest.approx(expected)

    def test_rx_serialization_toggle(self, small_platform):
        on = NetworkModel(small_platform, NetworkParams(rx_serialization=True))
        off = NetworkModel(small_platform, NetworkParams(rx_serialization=False))
        assert on.point_to_point_time(0, 5, 1024) > off.point_to_point_time(0, 5, 1024)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(intra_latency=-1e-6),
            dict(inter_bandwidth=0.0),
            dict(send_overhead=-1.0),
            dict(eager_threshold=-1),
        ],
    )
    def test_bad_params_rejected(self, small_platform, kwargs):
        with pytest.raises(ConfigurationError):
            NetworkModel(small_platform, NetworkParams(**kwargs))


class TestSingleNode:
    def test_all_intra(self, single_node_platform):
        model = NetworkModel(single_node_platform, NetworkParams())
        for a in range(8):
            for b in range(8):
                if a != b:
                    assert model.latency(a, b) == model.params.intra_latency
