"""Tests for the Open-MPI-style fixed decision logic."""

from __future__ import annotations

import pytest

import repro.collectives  # noqa: F401 - populate registry
from repro.errors import ConfigurationError
from repro.collectives.tuned import fixed_decision, validate_fixed_decisions


class TestFixedDecision:
    def test_every_decision_is_a_registered_algorithm(self):
        validate_fixed_decisions()

    def test_alltoall_thresholds(self):
        assert fixed_decision("alltoall", 32, 64) == "bruck"
        assert fixed_decision("alltoall", 8, 64) == "basic_linear"  # small comm
        assert fixed_decision("alltoall", 32, 2048) == "basic_linear"
        assert fixed_decision("alltoall", 32, 1 << 20) == "pairwise"

    def test_allreduce_thresholds(self):
        assert fixed_decision("allreduce", 32, 8) == "recursive_doubling"
        assert fixed_decision("allreduce", 32, 65536) == "rabenseifner"
        assert fixed_decision("allreduce", 32, 1 << 22) == "ring"

    def test_reduce_thresholds(self):
        assert fixed_decision("reduce", 32, 8) == "binomial"
        assert fixed_decision("reduce", 32, 65536) == "binary"
        assert fixed_decision("reduce", 32, 1 << 20) == "rabenseifner"

    def test_bcast_thresholds(self):
        assert fixed_decision("bcast", 32, 8) == "binomial"
        assert fixed_decision("bcast", 32, 1 << 22) == "scatter_allgather"

    def test_alltoallv_thresholds(self):
        assert fixed_decision("alltoallv", 8, 1 << 20) == "basic_linear"
        assert fixed_decision("alltoallv", 32, 1024) == "basic_linear"
        assert fixed_decision("alltoallv", 32, 1 << 16) == "pairwise"

    def test_allgatherv_thresholds(self):
        assert fixed_decision("allgatherv", 2, 1 << 20) == "linear"
        assert fixed_decision("allgatherv", 32, 1024) == "linear"
        assert fixed_decision("allgatherv", 32, 1 << 16) == "ring"

    def test_rooted_vector_families_resolve(self):
        assert fixed_decision("gatherv", 32, 4096) == "linear"
        assert fixed_decision("scatterv", 32, 4096) == "linear"

    def test_size_monotone_families_have_no_gaps(self):
        """Every power-of-two size resolves for every family (no dead zones)."""
        for coll in ("alltoall", "allreduce", "reduce", "bcast", "allgather",
                     "alltoallv", "allgatherv", "gatherv", "scatterv"):
            for exp in range(0, 25):
                assert fixed_decision(coll, 64, 2**exp)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            fixed_decision("alltoall", 0, 8)
        with pytest.raises(ConfigurationError):
            fixed_decision("alltoall", 4, -1)
        with pytest.raises(ConfigurationError):
            fixed_decision("alltoallw", 4, 8)
