"""Tests for the repro.lint guideline engine: findings, report policies,
store persistence (v3 migration, suspect flags), and service exclusion."""

from __future__ import annotations

import json
import math
import sqlite3

import numpy as np
import pytest

from repro.errors import ConfigurationError, StoreError
from repro.bench.metrics import CollectiveTiming
from repro.bench.results import BenchResult
from repro.lint import (
    COMPOSITION_GUIDELINES,
    DEFAULT_GUIDELINES,
    LintFinding,
    LintReport,
    lint_records,
    lint_store,
    record_from_payload,
    record_from_result,
    severity_rank,
)
from repro.service import SelectionService
from repro.store import PATTERN_BEST, TuningStore, content_hash
from repro.store.schema import LATEST_VERSION, MIGRATIONS


def _result(coll="alltoall", algo="bruck", delay=1.0, msg=1024.0, ranks=4,
            pattern="no_delay", machine="testbox") -> BenchResult:
    timing = CollectiveTiming(np.zeros(2), np.full(2, delay))
    return BenchResult(coll, algo, msg, ranks, pattern, 0.0, [timing],
                       machine=machine)


def _records(*results: BenchResult):
    return [record_from_result(r) for r in results]


def _findings(report: LintReport, guideline: str) -> list[LintFinding]:
    return [f for f in report.findings if f.guideline == guideline]


class TestCompositionGuidelines:
    def test_clean_composition_passes(self):
        report = lint_records(_records(
            _result("reduce", "binomial", 1.0),
            _result("bcast", "binomial", 1.0),
            _result("allreduce", "ring", 1.8),
        ))
        assert report.findings == []
        assert report.cells_checked == 3
        assert "allreduce_le_reduce_bcast" in report.guidelines

    def test_moderate_violation_is_a_warning(self):
        report = lint_records(_records(
            _result("reduce", "binomial", 1.0),
            _result("bcast", "binomial", 1.0),
            _result("allreduce", "ring", 3.0),
        ))
        (finding,) = report.findings
        assert finding.guideline == "allreduce_le_reduce_bcast"
        assert finding.severity == "warning"
        assert finding.margin == pytest.approx(0.5)

    def test_gross_violation_is_an_error_with_hash_and_witnesses(self):
        bad = _result("allreduce", "ring", 100.0)
        reduce_cell = _result("reduce", "binomial", 1.0)
        bcast_cell = _result("bcast", "binomial", 1.0)
        report = lint_records(_records(reduce_cell, bcast_cell, bad))
        (finding,) = report.findings
        assert finding.severity == "error"
        assert finding.margin == pytest.approx(49.0)
        assert finding.content_hash == content_hash(bad.to_dict())
        assert set(finding.witnesses) == {
            content_hash(reduce_cell.to_dict()),
            content_hash(bcast_cell.to_dict()),
        }

    def test_best_part_time_sets_the_bound(self):
        """Multiple part algorithms: the *fastest* of each sums the bound."""
        report = lint_records(_records(
            _result("reduce", "binomial", 1.0),
            _result("reduce", "rabenseifner", 5.0),
            _result("bcast", "binomial", 1.0),
            _result("allreduce", "ring", 2.5),
        ))
        (finding,) = report.findings  # bound is 2.0, not 6.0
        assert finding.bound == pytest.approx(2.0)

    def test_cells_only_join_at_the_same_coordinate(self):
        report = lint_records(_records(
            _result("reduce", "binomial", 1.0, msg=64.0),
            _result("bcast", "binomial", 1.0, msg=64.0),
            _result("allreduce", "ring", 100.0, msg=2048.0),
        ))
        assert report.findings == []  # no parts at 2048 B -> vacuous

    @pytest.mark.parametrize("guideline", COMPOSITION_GUIDELINES,
                             ids=lambda g: g.name)
    def test_every_declared_relation_fires(self, guideline):
        cells = [_result(part, "x", 1.0) for part in guideline.parts]
        cells.append(_result(guideline.composite, "y", 50.0))
        report = lint_records(_records(*cells))
        (finding,) = _findings(report, guideline.name)
        assert finding.severity == "error"
        assert finding.collective == guideline.composite


class TestMonotonyGuidelines:
    def test_increasing_runtimes_pass(self):
        report = lint_records(_records(
            _result(delay=1.0, msg=1024.0),
            _result(delay=2.0, msg=65536.0),
        ))
        assert report.findings == []

    def test_msg_bytes_inversion_flags_the_faster_larger_cell(self):
        small = _result(delay=1.0, msg=1024.0)
        large = _result(delay=0.01, msg=65536.0)
        report = lint_records(_records(small, large))
        (finding,) = _findings(report, "monotone_msg_bytes")
        assert finding.severity == "error"  # margin 0.99 > 0.9
        assert finding.msg_bytes == 65536.0
        assert finding.content_hash == content_hash(large.to_dict())
        assert finding.witnesses == (content_hash(small.to_dict()),)

    def test_mild_inversion_is_a_warning(self):
        report = lint_records(_records(
            _result(delay=1.0, msg=1024.0),
            _result(delay=0.5, msg=65536.0),
        ))
        (finding,) = _findings(report, "monotone_msg_bytes")
        assert finding.severity == "warning"
        assert finding.margin == pytest.approx(0.5)

    def test_noise_within_tolerance_passes(self):
        report = lint_records(_records(
            _result(delay=1.0, msg=1024.0),
            _result(delay=0.9, msg=65536.0),  # -10% is within tolerance
        ))
        assert report.findings == []

    def test_comm_size_inversion_flags(self):
        report = lint_records(_records(
            _result(delay=1.0, ranks=4),
            _result(delay=0.01, ranks=16),
        ))
        (finding,) = _findings(report, "monotone_comm_size")
        assert finding.severity == "error"
        assert finding.comm_size == 16

    def test_different_algorithms_do_not_join(self):
        report = lint_records(_records(
            _result("alltoall", "bruck", 1.0, msg=1024.0),
            _result("alltoall", "pairwise", 0.01, msg=65536.0),
        ))
        assert report.findings == []


class TestSanityAndFloor:
    def test_nan_timings_flag_as_error(self):
        report = lint_records(_records(_result(delay=float("nan"))))
        (finding,) = report.findings
        assert finding.guideline == "finite_non_negative"
        assert finding.severity == "error"
        assert finding.content_hash  # legacy hash still computed

    def test_negative_delay_flags(self):
        payload = _result().to_dict()
        payload["last_delays"] = [-1.0, -1.0]
        payload["total_delays"] = [-1.0, -1.0]
        report = lint_records([record_from_payload(payload)])
        (finding,) = _findings(report, "finite_non_negative")
        assert finding.severity == "error"

    def test_impossibly_fast_cell_breaks_the_floor(self):
        # hydra's fastest link is 100 Gbit/s; 1 MiB cannot move in 1 ps.
        report = lint_records(_records(
            _result(delay=1e-12, msg=float(1 << 20), machine="hydra")))
        (finding,) = _findings(report, "bandwidth_floor")
        assert finding.severity == "error"
        assert 0.0 < finding.margin <= 1.0

    def test_realistic_cell_clears_the_floor(self):
        report = lint_records(_records(
            _result(delay=1.0, msg=float(1 << 20), machine="hydra")))
        assert report.findings == []

    def test_unknown_machine_skips_the_floor(self):
        report = lint_records(_records(
            _result(delay=1e-12, msg=float(1 << 20), machine="testbox")))
        assert _findings(report, "bandwidth_floor") == []


class TestLintReport:
    def _report(self):
        return lint_records(_records(
            _result("reduce", "binomial", 1.0),
            _result("bcast", "binomial", 1.0),
            _result("allreduce", "ring", 100.0),   # error
            _result("allreduce", "rd", 2.5),       # warning
        ))

    def test_counts_and_max_severity(self):
        report = self._report()
        assert report.counts() == {"info": 0, "warning": 1, "error": 1}
        assert report.max_severity() == "error"

    def test_fail_on_policies(self):
        report = self._report()
        assert report.fails("error") and report.fails("warning")
        assert not report.fails("never")
        assert not LintReport().fails("error")
        assert LintReport().max_severity() is None

    def test_unknown_severity_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown severity"):
            severity_rank("catastrophic")
        with pytest.raises(ConfigurationError, match="unknown severity"):
            self._report().fails("sometimes")

    def test_json_roundtrip_is_strict_json(self):
        report = self._report()
        blob = json.dumps(report.to_dict(), allow_nan=False)  # must not raise
        back = LintReport.from_dict(json.loads(blob))
        assert back.cells_checked == report.cells_checked
        assert {f.content_hash for f in back.findings} == \
            {f.content_hash for f in report.findings}
        assert back.max_severity() == "error"

    def test_render_text_names_the_cell(self):
        report = self._report()
        text = report.render_text()
        assert "allreduce/ring @ p=4, 1024 B" in text
        assert "[error] allreduce_le_reduce_bcast" in text
        clean = LintReport(cells_checked=5, guidelines=("a",)).render_text()
        assert clean.endswith("clean")


class TestStorePersistence:
    def _violating_store(self, path) -> tuple[TuningStore, BenchResult]:
        store = TuningStore(path)
        bad = _result("allreduce", "ring", 100.0)
        for cell in (_result("reduce", "binomial", 1.0),
                     _result("bcast", "binomial", 1.0), bad):
            store.ingest_result(cell)
        store.add_rule("s", "allreduce", 4, 1024.0, "ring")
        return store, bad

    def test_lint_store_reports_seeded_violation(self, tmp_path):
        store, bad = self._violating_store(tmp_path / "t.db")
        with store:
            report = lint_store(store)
        (finding,) = report.findings
        assert finding.guideline == "allreduce_le_reduce_bcast"
        assert finding.content_hash == content_hash(bad.to_dict())
        assert finding.margin == pytest.approx(49.0)

    def test_apply_lint_marks_and_clears(self, tmp_path):
        store, bad = self._violating_store(tmp_path / "t.db")
        with store:
            report = lint_store(store)
            applied = store.apply_lint(report)
            assert applied["cells_marked"] == 1
            assert store.suspect_hashes() == {content_hash(bad.to_dict())}
            # Re-applying is idempotent on both flags and finding rows.
            again = store.apply_lint(lint_store(store))
            assert again["cells_marked"] == 0
            assert store.counts()["lint_findings"] == 1
            # A clean report clears previously-marked cells.
            cleared = store.apply_lint(LintReport())
            assert cleared["cells_cleared"] == 1
            assert store.suspect_hashes() == set()

    def test_persisted_findings_reload(self, tmp_path):
        path = tmp_path / "t.db"
        store, bad = self._violating_store(path)
        with store:
            store.apply_lint(lint_store(store))
        with TuningStore(path) as back:
            (finding,) = back.load_lint_findings()
            assert finding.guideline == "allreduce_le_reduce_bcast"
            assert finding.content_hash == content_hash(bad.to_dict())
            assert finding.margin == pytest.approx(49.0)
            assert back.suspect_hashes() == {content_hash(bad.to_dict())}

    def test_v2_file_migrates_and_marks_persist(self, tmp_path):
        """--mark semantics survive a v2 -> v3 migration of an old file."""
        path = tmp_path / "v2.db"
        bad = _result("allreduce", "ring", 100.0)
        conn = sqlite3.connect(path)
        for _version, script in MIGRATIONS[:2]:
            conn.executescript(script)
        conn.execute("PRAGMA user_version = 2")
        for cell in (_result("reduce", "binomial", 1.0),
                     _result("bcast", "binomial", 1.0), bad):
            payload = cell.to_dict()
            conn.execute(
                "INSERT INTO bench_results (content_hash, collective,"
                " algorithm, msg_bytes, num_ranks, pattern, payload)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (content_hash(payload), cell.collective, cell.algorithm,
                 float(cell.msg_bytes), int(cell.num_ranks),
                 cell.pattern_name, json.dumps(payload)))
        conn.execute(
            "INSERT INTO rules (strategy, collective, comm_size, msg_bytes,"
            " pattern, algorithm) VALUES ('s', 'allreduce', 4, 1024.0, '',"
            " 'ring')")
        conn.commit()
        conn.close()
        with TuningStore(path) as store:
            assert store.schema_version() == LATEST_VERSION
            store.apply_lint(lint_store(store))
            assert store.suspect_hashes() == {content_hash(bad.to_dict())}
        with TuningStore(path) as back:  # flags survive reopen
            assert back.suspect_hashes() == {content_hash(bad.to_dict())}
            with pytest.raises(StoreError, match="suspect"):
                back.load_table("s")

    def test_excluded_table_raises_but_raw_load_works(self, tmp_path):
        store, _bad = self._violating_store(tmp_path / "t.db")
        with store:
            store.apply_lint(lint_store(store))
            with pytest.raises(StoreError, match="suspect"):
                store.load_table("s")
            raw = store.load_table("s", exclude_suspect=False)
            assert raw.lookup("allreduce", 4, 1024) == "ring"

    def test_clean_corroborating_cell_keeps_the_rule(self, tmp_path):
        store, _bad = self._violating_store(tmp_path / "t.db")
        with store:
            # Same (collective, algorithm, ranks, msg) coordinate, different
            # pattern, sane timing: one clean measurement saves the rule.
            store.ingest_result(_result("allreduce", "ring", 2.0,
                                        pattern="ascending"))
            store.apply_lint(lint_store(store))
            table = store.load_table("s")
            assert table.lookup("allreduce", 4, 1024) == "ring"

    def test_pattern_rules_excluded_per_pattern(self, tmp_path):
        store, _bad = self._violating_store(tmp_path / "t.db")
        with store:
            store.add_rule(PATTERN_BEST, "allreduce", 4, 1024.0, "ring",
                           pattern="no_delay")
            store.add_rule(PATTERN_BEST, "reduce", 4, 1024.0, "binomial",
                           pattern="no_delay")
            store.apply_lint(lint_store(store))
            tables = store.load_pattern_tables()
            with pytest.raises(ConfigurationError):
                tables["no_delay"].lookup("allreduce", 4, 1024)
            assert tables["no_delay"].lookup("reduce", 4, 1024) == "binomial"


class TestServiceExclusion:
    def test_suspect_backed_rule_falls_back_source_tagged(self, tmp_path):
        path = tmp_path / "t.db"
        bad = _result("allreduce", "ring", 100.0)
        with TuningStore(path) as store:
            for cell in (_result("reduce", "binomial", 1.0),
                         _result("bcast", "binomial", 1.0), bad):
                store.ingest_result(cell)
            store.add_rule("s", "allreduce", 4, 1024.0, "ring")
            store.add_rule("s", "reduce", 4, 1024.0, "binomial")
            store.apply_lint(lint_store(store))
        with SelectionService(path, watch_store=False) as service:
            reply = service.query("allreduce", 4, 1024.0)
            assert reply["source"] == "fallback"
            assert reply["algorithm"] != "ring"
            clean = service.query("reduce", 4, 1024.0)
            assert clean["source"] == "store"
            assert clean["algorithm"] == "binomial"
        with SelectionService(path, watch_store=False,
                              exclude_suspect=False) as service:
            raw = service.query("allreduce", 4, 1024.0)
            assert raw["source"] == "store"
            assert raw["algorithm"] == "ring"


class TestDefaultCatalogue:
    def test_default_guidelines_cover_all_families(self):
        names = {g.name for g in DEFAULT_GUIDELINES}
        assert "finite_non_negative" in names
        assert "bandwidth_floor" in names
        assert "monotone_msg_bytes" in names and "monotone_comm_size" in names
        assert {g.name for g in COMPOSITION_GUIDELINES} <= names

    def test_unknown_guideline_type_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown guideline"):
            lint_records([], guidelines=(object(),))
