"""Tests for the proxy applications."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.apps import CGProxy, FTProxy, IterativeProxyApp
from repro.sim.network import NetworkParams
from repro.sim.platform import Platform, get_machine


class TestIterativeProxyApp:
    def test_accounting_sums_to_runtime(self):
        app = IterativeProxyApp(
            platform=Platform("t", nodes=2, cores_per_node=4),
            collective="allreduce",
            algorithm="ring",
            msg_bytes=1024,
            iterations=5,
            calls_per_iteration=2,
            compute_per_iteration=1e-3,
        )
        result = app.run()
        assert result.collective_calls == 10
        # Per-rank compute + MPI accounts for (almost) the whole runtime.
        totals = result.rank_compute_time + result.rank_mpi_time
        assert np.all(totals <= result.runtime + 1e-9)
        assert totals.max() == pytest.approx(result.runtime, rel=0.05)

    def test_without_noise_compute_is_exact(self):
        app = IterativeProxyApp(
            platform=Platform("t", nodes=1, cores_per_node=4),
            collective="allreduce",
            algorithm="ring",
            msg_bytes=64,
            iterations=3,
            calls_per_iteration=1,
            compute_per_iteration=2e-3,
        )
        result = app.run()
        assert np.allclose(result.rank_compute_time, 6e-3, rtol=1e-6)

    def test_validation(self):
        plat = Platform("t", nodes=1, cores_per_node=2)
        with pytest.raises(ConfigurationError):
            IterativeProxyApp(plat, "alltoall", "bruck", 64, iterations=0)
        with pytest.raises(ConfigurationError):
            IterativeProxyApp(plat, "alltoall", "bruck", 64, compute_per_iteration=-1)


class TestFTProxy:
    def test_paper_message_size_default(self):
        spec = get_machine("hydra")
        ft = FTProxy.class_d_scaled(spec, nodes=2, cores_per_node=4)
        assert ft.msg_bytes == 32768.0
        assert ft.collective == "alltoall"

    def test_algorithm_choice_changes_runtime(self):
        spec = get_machine("hydra")
        runtimes = {}
        for algo in ("bruck", "pairwise"):
            ft = FTProxy.class_d_scaled(spec, nodes=4, cores_per_node=4,
                                        seed=3, algorithm=algo)
            runtimes[algo] = ft.run().runtime
        assert runtimes["bruck"] != runtimes["pairwise"]

    def test_deterministic_given_seed(self):
        spec = get_machine("galileo100")
        mk = lambda: FTProxy.class_d_scaled(spec, nodes=2, cores_per_node=4, seed=11)  # noqa: E731
        assert mk().run().runtime == mk().run().runtime

    def test_noise_seed_changes_runtime(self):
        spec = get_machine("galileo100")
        a = FTProxy.class_d_scaled(spec, nodes=2, cores_per_node=4, seed=1).run()
        b = FTProxy.class_d_scaled(spec, nodes=2, cores_per_node=4, seed=2).run()
        assert a.runtime != b.runtime


class TestFTClasses:
    def test_class_d_at_1024_ranks_matches_the_paper(self):
        from repro.apps.ft import ft_message_bytes

        assert ft_message_bytes("D", 1024) == 32768.0

    @pytest.mark.parametrize("cls_name", ["S", "W", "A", "B", "C", "D", "E"])
    def test_message_bytes_scale_inverse_square(self, cls_name):
        from repro.apps.ft import ft_message_bytes

        m32 = ft_message_bytes(cls_name, 32)
        m64 = ft_message_bytes(cls_name, 64)
        assert m32 == pytest.approx(4 * m64)

    def test_unknown_class_rejected(self):
        from repro.apps.ft import ft_message_bytes

        with pytest.raises(ValueError):
            ft_message_bytes("Z", 32)
        with pytest.raises(ValueError):
            ft_message_bytes("D", 0)

    def test_for_class_builds_consistent_app(self):
        from repro.apps.ft import ft_message_bytes

        spec = get_machine("hydra")
        ft = FTProxy.for_class("A", spec, nodes=4, cores_per_node=4,
                               iterations=3)
        assert ft.msg_bytes == ft_message_bytes("A", 16)
        assert ft.compute_per_iteration > 0
        result = ft.run()
        assert result.runtime > 0
        assert 0 < result.mpi_fraction < 1


class TestCGProxy:
    def test_cg_is_allreduce_dominant_and_cheap_on_comm(self):
        app = CGProxy(
            platform=Platform("t", nodes=2, cores_per_node=4),
            iterations=10,
        )
        result = app.run()
        assert result.collective_calls == 20
        # Tiny allreduces: MPI fraction must be small without noise.
        assert result.mpi_fraction < 0.2
