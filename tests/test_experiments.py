"""End-to-end tests of the experiment drivers (tiny fast configurations).

These validate the paper's shape-level claims at small scale:
Fig. 4 reduce shows pattern-dependent winners; Fig. 8's robustness pick
differs from (or matches, machine-dependent) the No-delay pick; etc.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    fig1_ft_trace,
    fig2_notation,
    fig3_patterns,
    fig4_simulation,
    fig5_runtimes,
    fig6_robustness,
    fig7_ft_vs_micro,
    fig8_normalized,
    fig9_prediction,
    tables,
)
from repro.experiments.common import ExperimentConfig
from repro.patterns.shapes import NO_DELAY

TINY = ExperimentConfig(nodes=4, cores_per_node=4, fast=True)
TINY_SIM = ExperimentConfig(machine="simcluster", nodes=4, cores_per_node=4, fast=True)


class TestFig1:
    def test_structure_and_report(self):
        result = fig1_ft_trace.run(TINY.with_machine("galileo100"))
        assert result.num_ranks == 16
        assert result.calls_traced > 0
        assert result.avg_delay_per_rank.shape == (16,)
        assert result.max_skew > 0
        text = fig1_ft_trace.report(result)
        assert "Fig. 1" in text and "galileo100" in text

    def test_delays_nonuniform(self):
        result = fig1_ft_trace.run(TINY.with_machine("galileo100"))
        assert np.std(result.avg_delay_per_rank) > 0


class TestFig2:
    def test_metrics_in_report(self):
        result = fig2_notation.run(TINY)
        text = fig2_notation.report(result)
        assert "total delay d*" in text and "last delay  d^" in text
        assert result.timing.total_delay >= result.timing.last_delay


class TestFig3:
    def test_all_eight_shapes_reported(self):
        result = fig3_patterns.run(TINY)
        assert len(result.patterns) == 8
        text = fig3_patterns.report(result)
        for shape in ("ascending", "descending", "bell", "zigzag"):
            assert f"[{shape}]" in text


class TestFig4:
    def test_reduce_has_pattern_dependent_winners(self):
        """The paper's central simulation claim for rooted collectives."""
        result = fig4_simulation.run(TINY_SIM, collective="reduce")
        mismatches = result.mismatch_cells()
        assert len(mismatches) > 0
        # At least one cell where the no-delay choice loses substantially.
        assert min(rel for *_x, rel in mismatches) < 0.8

    def test_allreduce_is_robust(self):
        """Paper: Allreduce's best algorithm rarely changes under patterns."""
        result = fig4_simulation.run(TINY_SIM, collective="allreduce")
        cells = len(result.msg_sizes) * len(result.shapes)
        assert len(result.mismatch_cells()) <= cells // 4

    def test_relative_values_meaningful(self):
        result = fig4_simulation.run(TINY_SIM, collective="reduce")
        for size in result.msg_sizes:
            for pattern in [NO_DELAY] + result.shapes:
                _algo, rel = result.best(size, pattern)
                assert 0 < rel <= 1.0 + 1e-9  # best can't be slower than the ND pick

    def test_unknown_collective_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fig4_simulation.run(TINY_SIM, collective="barrier")

    def test_report_renders(self):
        result = fig4_simulation.run(TINY_SIM, collective="alltoall")
        text = fig4_simulation.report(result)
        assert "Fig. 4" in text and "no_delay" in text


class TestFig5:
    def test_grid_complete_and_classified(self):
        result = fig5_runtimes.run(TINY, collective="reduce")
        for size in result.msg_sizes:
            for pattern in [NO_DELAY] + result.shapes:
                classes = result.classification(size, pattern)
                assert set(classes) == set(result.algorithms)
                assert any(classes.values())  # at least the fastest is good
        text = fig5_runtimes.report(result)
        assert "*" in text


class TestFig6:
    def test_normalized_values_and_counts(self):
        result = fig6_robustness.run(TINY, collective="reduce")
        size = result.msg_sizes[0]
        counts = result.counts(size)
        assert sum(counts.values()) == len(result.shapes) * len(result.algorithms)
        for shape in result.shapes:
            for algo in result.algorithms:
                value = result.normalized(size, shape, algo)
                assert value > -1.0  # d^ can't be negative

    def test_report_renders(self):
        result = fig6_robustness.run(TINY, collective="allreduce")
        assert "Fig. 6" in fig6_robustness.report(result)


class TestFig7:
    def test_two_series_per_machine(self):
        result = fig7_ft_vs_micro.run(TINY, machines=("hydra",), ft_runs=1)
        mres = result.machines["hydra"]
        assert set(mres.ft_runtime) == set(mres.micro_delay)
        assert all(v > 0 for v in mres.ft_runtime.values())
        text = fig7_ft_vs_micro.report(result)
        assert "AGREE" in text or "DISAGREE" in text


class TestFig8:
    def test_ft_scenario_and_average_row(self):
        result = fig8_normalized.run(TINY, machines=("hydra",))
        mres = result.machines["hydra"]
        assert "ft_scenario" in mres.sweep.patterns
        assert mres.traced_max_skew > 0
        normalized = mres.normalized
        for pattern, row in normalized.items():
            assert min(row.values()) == pytest.approx(1.0)
        avg = mres.average_row()
        assert set(avg) == set(mres.sweep.algorithms)
        assert mres.predicted_best() in avg
        text = fig8_normalized.report(result)
        assert "Average" in text


class TestFig9:
    def test_projections_and_errors(self):
        result = fig9_prediction.run(TINY)
        assert result.calls > 0 and result.compute_time > 0
        for algo in result.actual:
            assert result.predicted_no_delay[algo] > result.compute_time
            assert result.predicted_average[algo] > result.compute_time
        assert 0 <= result.no_delay_mean_error < 2.0
        text = fig9_prediction.report(result)
        assert "actual" in text and "%" in text


class TestTables:
    def test_table1_lists_all_machines(self):
        text = tables.table1()
        for machine in ("simcluster", "hydra", "galileo100", "discoverer"):
            assert machine in text

    def test_table2_matches_paper_ids(self):
        text = tables.table2()
        assert "rabenseifner" in text and "bruck" in text
        assert "in_order_binary" in text

    def test_full_registry_covers_every_family(self):
        text = tables.full_registry()
        for family in ("barrier", "bcast", "gather", "scatter", "reduce_scatter"):
            assert family in text
