"""Fabric link telemetry: recording, attribution, parity, and rendering.

Covers the ``record_links=True`` path end to end: a hand-computed
shared-NIC case where the attributed contention wait equals the known
serialization delay, exact-vs-hybrid per-link aggregate parity, export
round trips, the labeled fallback-reason counters, ring-overflow
surfacing, and the ASCII/SVG renderers.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.collectives import run_collective
from repro.collectives.base import CollArgs
from repro.obs.analysis import TraceAnalysis
from repro.obs.linkstats import RX, TX, LinkStatsRecorder, link_name, port_name
from repro.reporting.weather import render_weather_map
from repro.sim.flow import FlowConfig
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform

HETERO = Platform(name="hetero", nodes=16, cores_per_node=4)
ARGS = CollArgs(count=8, msg_bytes=2048.0)


def _alltoall_prog(algorithm):
    def prog(ctx):
        data = np.arange(ctx.size * ARGS.count,
                         dtype=np.float64).reshape(ctx.size, -1)
        out = yield from run_collective(
            ctx, "alltoall", algorithm, ARGS, data + ctx.rank
        )
        return out

    return prog


def _linked_run(platform, prog, flow=None, **session_kw):
    with obs.session(record_links=True, **session_kw) as octx:
        run_processes(platform, prog, flow=flow)
    return octx


# --------------------------------------------------------------------- #
# Hand-computed contention: two ranks share one node NIC
# --------------------------------------------------------------------- #


class TestHandComputedSharedNIC:
    """2 nodes x 2 cores: ranks 0 and 1 each send one inter-node message
    at t=0.  Both claims queue on node 0's shared injection port, so the
    second message's recorded wait must equal the first message's
    transmission time — the serialization delay, exactly."""

    platform = Platform(name="links", nodes=2, cores_per_node=2)

    @staticmethod
    def _prog(ctx):
        if ctx.rank < 2:
            yield from ctx.send(ctx.rank + 2, nbytes=4096)
        else:
            yield from ctx.recv(ctx.rank - 2, nbytes=4096)

    def test_second_claim_waits_one_serialization(self):
        octx = _linked_run(self.platform, self._prog)
        tx = sorted((r for r in octx.links
                     if r[0] == -1 and r[2] == TX),  # node 0 injection port
                    key=lambda r: r[3])
        assert len(tx) == 2
        first, second = tx
        assert first[8] == 0.0                  # wait: port was idle
        assert second[8] == first[5]            # wait == first's busy time
        assert second[3] == first[4]            # starts when first ends
        assert first[9] is None and second[9] is None   # raw p2p traffic

    def test_extraction_port_serializes_too(self):
        octx = _linked_run(self.platform, self._prog)
        rx = sorted((r for r in octx.links
                     if r[0] == -2 and r[2] == RX),  # node 1 extraction port
                    key=lambda r: r[3])
        assert len(rx) == 2
        assert rx[1][3] >= rx[0][4]             # FIFO: no overlap

    def test_attribution_charges_the_wait(self):
        octx = _linked_run(self.platform, self._prog)
        ana = TraceAnalysis.from_context(octx)
        attr = {(r["port"], r["cls"], r["direction"]): r
                for r in ana.link_attribution()}
        tx = sorted((r for r in octx.links if r[0] == -1 and r[2] == TX),
                    key=lambda r: r[3])
        key = (-1, tx[0][1], TX)
        assert attr[key]["activity"] == "p2p"
        assert attr[key]["wait"] == tx[0][5]    # the serialization delay
        assert ana.link_hotspots(top=1)[0]["link"] == link_name(*key)


# --------------------------------------------------------------------- #
# Exact vs hybrid: same case, same per-link picture
# --------------------------------------------------------------------- #


class TestExactHybridLinkParity:
    def _usage(self, flow):
        octx = _linked_run(HETERO, _alltoall_prog("basic_linear"), flow=flow)
        if flow is not None:
            # Guard: the hybrid run actually took the flow path.
            assert len(octx.links) < 1000
        return TraceAnalysis.from_context(octx)

    def test_per_link_bytes_and_messages_identical(self):
        exact = self._usage(None)
        hybrid = self._usage(FlowConfig(mode="hybrid", declared_spread=0.0,
                                        payloads=False))
        ue = {(u["port"], u["cls"], u["direction"]): u
              for u in exact.link_usage()}
        uh = {(u["port"], u["cls"], u["direction"]): u
              for u in hybrid.link_usage()}
        assert set(ue) == set(uh) and len(ue) > 0
        for key in ue:
            assert ue[key]["bytes"] == uh[key]["bytes"]          # exact
            assert ue[key]["messages"] == uh[key]["messages"]    # exact

    def test_top_hotspot_agrees(self):
        exact = self._usage(None)
        hybrid = self._usage(FlowConfig(mode="hybrid", declared_spread=0.0,
                                        payloads=False))
        he = exact.link_hotspots(top=1)[0]
        hh = hybrid.link_hotspots(top=1)[0]
        assert (he["port"], he["cls"], he["direction"]) == \
            (hh["port"], hh["cls"], hh["direction"])


# --------------------------------------------------------------------- #
# Export round trips
# --------------------------------------------------------------------- #


class TestLinkExportRoundTrip:
    def test_jsonl_and_perfetto_round_trip(self, tmp_path):
        octx = _linked_run(HETERO, _alltoall_prog("basic_linear"))
        source = TraceAnalysis.from_context(octx)
        loaded_jsonl = TraceAnalysis.from_file(
            obs.export_jsonl(tmp_path / "t.jsonl", octx))
        loaded_perfetto = TraceAnalysis.from_file(
            obs.export_perfetto(tmp_path / "t.json", octx))
        for loaded in (loaded_jsonl, loaded_perfetto):
            assert loaded.link_usage() == source.link_usage()
            assert loaded.link_attribution() == source.link_attribution()
            assert loaded.dropped_links == 0

    def test_metrics_payload_counts_links(self):
        octx = _linked_run(HETERO, _alltoall_prog("basic_linear"))
        payload = obs.metrics_payload(octx)
        assert payload["links"]["recorded"] == len(octx.links)
        assert payload["links"]["dropped"] == 0

    def test_analysis_payload_links_section(self):
        octx = _linked_run(HETERO, _alltoall_prog("basic_linear"))
        payload = TraceAnalysis.from_context(octx).analysis_payload()
        assert payload["links"]["records"] == len(octx.links)
        assert payload["links"]["hotspots"][0]["wait"] >= \
            payload["links"]["hotspots"][-1]["wait"]


# --------------------------------------------------------------------- #
# Labeled fallback-reason counters
# --------------------------------------------------------------------- #


class TestFallbackReasonLabels:
    def _labeled(self, algorithm, flow):
        with obs.session() as octx:
            run_processes(HETERO, _alltoall_prog(algorithm), flow=flow)
        return octx.metrics.snapshot()

    def test_shared_contention_reason(self):
        snap = self._labeled(
            "pairwise", FlowConfig(mode="hybrid", declared_spread=0.0))
        key = obs.metric_key("flow.fallback_calls",
                             {"reason": "shared_contention"})
        assert snap[key]["value"] == 1
        mkey = obs.metric_key("flow.fallback_messages",
                              {"reason": "shared_contention"})
        assert snap[mkey]["value"] == 64 * 63

    def test_spread_reason(self):
        snap = self._labeled(
            "basic_linear",
            FlowConfig(mode="hybrid", declared_spread=100e-6))
        key = obs.metric_key("flow.fallback_calls", {"reason": "spread"})
        assert snap[key]["value"] == 1

    def test_no_plan_reason(self):
        # bruck has no flow descriptor: previously uncounted, now labeled.
        snap = self._labeled(
            "bruck", FlowConfig(mode="hybrid", declared_spread=0.0))
        key = obs.metric_key("flow.fallback_calls", {"reason": "no_plan"})
        assert snap[key]["value"] == 1
        mkey = obs.metric_key("flow.fallback_messages", {"reason": "no_plan"})
        assert snap[mkey]["value"] == 0


# --------------------------------------------------------------------- #
# Ring overflow surfacing
# --------------------------------------------------------------------- #


class TestLinkRingOverflow:
    def test_overflow_reaches_warning_and_report(self):
        from repro.obs.report import render_report

        with obs.session(record_links=True, link_capacity=8) as octx:
            run_processes(HETERO, _alltoall_prog("basic_linear"))
        assert octx.links.dropped > 0
        assert len(octx.links) == 8
        warning = obs.dropped_span_warning(octx)
        assert warning is not None and "link record(s) dropped" in warning
        html = render_report(TraceAnalysis.from_context(octx))
        assert "class='warn'" in html and "link record(s)" in html

    def test_no_overflow_no_warning(self):
        octx = _linked_run(HETERO, _alltoall_prog("basic_linear"))
        assert obs.dropped_span_warning(octx) is None


# --------------------------------------------------------------------- #
# Rendering and exposition
# --------------------------------------------------------------------- #


class TestLinkRendering:
    def test_weather_map_shades_hot_links(self):
        octx = _linked_run(HETERO, _alltoall_prog("basic_linear"))
        ana = TraceAnalysis.from_context(octx)
        out = render_weather_map(ana.link_timeline(bins=32),
                                 ana.link_usage(), max_rows=10)
        lines = out.splitlines()
        assert "time →" in lines[0]
        hotspot = ana.link_hotspots(top=1)[0]["link"]
        assert lines[1].startswith(hotspot)      # hottest-wait-first order
        assert "cooler links not shown" in lines[-1]

    def test_report_fabric_section(self):
        from repro.obs.report import render_report

        octx = _linked_run(HETERO, _alltoall_prog("basic_linear"))
        html = render_report(TraceAnalysis.from_context(octx))
        assert "<h2>Fabric links</h2>" in html
        assert "Contention attribution" in html

    def test_gauges_reach_prometheus(self):
        octx = _linked_run(HETERO, _alltoall_prog("basic_linear"))
        published = octx.links.publish_gauges(octx.metrics)
        assert published == len({(r[0], r[1], r[2]) for r in octx.links})
        text = obs.render_prometheus(octx.metrics)
        assert 'link_busy_seconds{' in text
        assert 'port="node0"' in text

    def test_recorder_port_names(self):
        assert port_name(3) == "rank3"
        assert port_name(-1) == "node0"
        rec = LinkStatsRecorder(capacity=2)
        rec.record(0, 1, TX, 0.0, 1.0, 8.0, 0.0, "a/b")
        rec.record_batch(-1, 2, RX, 0.0, 4.0, 2.0, 64.0, 4, 1.0, None)
        rec.record(1, 1, TX, 1.0, 2.0, 8.0, 0.0, "a/b")
        assert rec.dropped == 1 and len(rec) == 2
        dicts = rec.to_dicts()
        assert dicts[0]["messages"] == 4 and dicts[0]["busy"] == 2.0
        assert dicts[1]["port"] == 1
