"""Tests for fibers and non-blocking collectives."""

from __future__ import annotations

import numpy as np
import pytest

import repro.collectives  # noqa: F401
from repro.collectives import CollArgs, make_input, reference_result
from repro.collectives.nonblocking import icollective, wait_collective
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform


@pytest.fixture
def plat():
    return Platform("t", nodes=2, cores_per_node=4)


class TestFibers:
    def test_fiber_runs_concurrently_with_main(self, plat):
        """Main computes 10 ms while the fiber sleeps 10 ms: total ~10 ms."""

        def prog(ctx):
            def side(fctx):
                yield fctx.sleep(0.01)
                return "side-done"

            handle = ctx.start_fiber(side)
            yield ctx.sleep(0.01)
            yield ctx.waitall(handle)
            return ctx.time(), handle.result

        run = run_processes(plat, prog)
        for total, result in run.rank_results:
            assert result == "side-done"
            assert total == pytest.approx(0.01, rel=1e-9)  # overlapped, not 0.02

    def test_fiber_messages_use_shared_queues(self, plat):
        """A fiber's send matches the peer's main-fiber receive."""

        def prog(ctx):
            if ctx.rank == 0:
                def sender(fctx):
                    yield from fctx.send(1, 8, tag=5, payload=np.array([3.0]))
                    return None

                handle = ctx.start_fiber(sender)
                yield ctx.waitall(handle)
            elif ctx.rank == 1:
                req = yield from ctx.recv(0, tag=5)
                return float(req.payload[0])
            return None

        run = run_processes(plat, prog)
        assert run.rank_results[1] == 3.0

    def test_join_already_finished_fiber(self, plat):
        def prog(ctx):
            def quick(fctx):
                return 42
                yield  # pragma: no cover

            handle = ctx.start_fiber(quick)
            yield ctx.sleep(0.05)
            yield ctx.waitall(handle)
            return handle.result

        run = run_processes(plat, prog)
        assert run.rank_results[0] == 42

    def test_unjoined_fiber_still_counts_for_deadlock(self, plat):
        """A fiber blocked forever deadlocks the simulation."""
        from repro.errors import DeadlockError

        def prog(ctx):
            if ctx.rank == 0:
                def stuck(fctx):
                    yield from fctx.recv(1, tag=99)  # never sent

                ctx.start_fiber(stuck)
            yield ctx.sleep(0.0)
            return None

        with pytest.raises(DeadlockError) as exc:
            run_processes(plat, prog)
        assert exc.value.blocked_ranks == [0]


class TestNonblockingCollectives:
    @pytest.mark.parametrize("collective,algorithm", [
        ("allreduce", "ring"),
        ("allreduce", "recursive_doubling"),
        ("alltoall", "pairwise"),
        ("bcast", "binomial"),
    ])
    def test_icollective_result_matches_reference(self, plat, collective, algorithm):
        p = plat.num_ranks
        count = 16
        args = CollArgs(count=count, msg_bytes=128.0)
        inputs = [make_input(collective, r, p, count) for r in range(p)]

        def prog(ctx):
            handle = icollective(ctx, collective, algorithm, args, inputs[ctx.rank])
            yield ctx.compute(1e-3)
            result = yield from wait_collective(ctx, handle)
            return result

        run = run_processes(plat, prog)
        for rank in range(p):
            expected = reference_result(collective, inputs, args, rank)
            if expected is None:
                assert run.rank_results[rank] is None
            else:
                assert np.array_equal(np.asarray(run.rank_results[rank]), expected)

    def test_overlap_hides_collective_latency(self, plat):
        """compute >> collective: total time ~ compute, not compute + collective."""
        p = plat.num_ranks
        args = CollArgs(count=64, msg_bytes=float(1 << 20))
        inputs = [make_input("allreduce", r, p, 64) for r in range(p)]
        compute = 20e-3

        def blocking(ctx):
            from repro.collectives import run_collective

            yield from ctx.barrier()
            start = ctx.time()
            yield ctx.compute(compute)
            yield from run_collective(ctx, "allreduce", "ring", args, inputs[ctx.rank])
            return ctx.time() - start

        def nonblocking(ctx):
            yield from ctx.barrier()
            start = ctx.time()
            handle = icollective(ctx, "allreduce", "ring", args, inputs[ctx.rank])
            yield ctx.compute(compute)
            yield from wait_collective(ctx, handle)
            return ctx.time() - start

        t_block = max(run_processes(plat, blocking).rank_results)
        t_nonblock = max(run_processes(plat, nonblocking).rank_results)
        assert t_nonblock < t_block  # some of the collective is hidden
        assert t_nonblock == pytest.approx(compute, rel=0.2)

    def test_two_outstanding_collectives_need_distinct_offsets(self, plat):
        p = plat.num_ranks
        args = CollArgs(count=8, msg_bytes=64.0)
        inputs = [make_input("allreduce", r, p, 8) for r in range(p)]

        def prog(ctx):
            h1 = icollective(ctx, "allreduce", "ring", args, inputs[ctx.rank],
                             tag_offset=0)
            h2 = icollective(ctx, "allreduce", "recursive_doubling", args,
                             inputs[ctx.rank], tag_offset=1)
            r1 = yield from wait_collective(ctx, h1)
            r2 = yield from wait_collective(ctx, h2)
            return r1, r2

        run = run_processes(plat, prog)
        expected = reference_result("allreduce", inputs, args, 0)
        for r1, r2 in run.rank_results:
            assert np.array_equal(r1, expected)
            assert np.array_equal(r2, expected)
