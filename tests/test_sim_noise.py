"""Unit tests for the system-noise models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.noise import NOISE_PROFILES, NoiseModel, NoiseProfile, get_noise_profile


class TestProfiles:
    def test_named_profiles_exist(self):
        for name in ("none", "quiet", "moderate", "noisy"):
            assert get_noise_profile(name).name == name

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            get_noise_profile("chaotic")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(speed_sigma=-0.1),
            dict(spike_probability=1.5),
            dict(spike_duration=-1.0),
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        profile = NoiseProfile("bad", **kwargs)
        with pytest.raises(ConfigurationError):
            NoiseModel(profile, num_ranks=4)


class TestNoiseModel:
    def test_none_profile_is_identity(self):
        model = NoiseModel("none", num_ranks=4, seed=1)
        for rank in range(4):
            assert model.perturb(rank, 0.0, 0.01) == 0.01

    def test_deterministic_given_seed(self):
        a = NoiseModel("noisy", num_ranks=8, seed=42)
        b = NoiseModel("noisy", num_ranks=8, seed=42)
        seq_a = [a.perturb(r, 0.0, 1e-3) for r in range(8) for _ in range(5)]
        seq_b = [b.perturb(r, 0.0, 1e-3) for r in range(8) for _ in range(5)]
        assert seq_a == seq_b

    def test_different_seeds_differ(self):
        a = NoiseModel("noisy", num_ranks=4, seed=1)
        b = NoiseModel("noisy", num_ranks=4, seed=2)
        assert [a.perturb(0, 0.0, 1e-3) for _ in range(10)] != [
            b.perturb(0, 0.0, 1e-3) for _ in range(10)
        ]

    def test_adding_ranks_preserves_existing_streams(self):
        small = NoiseModel("moderate", num_ranks=4, seed=7)
        large = NoiseModel("moderate", num_ranks=8, seed=7)
        for rank in range(4):
            assert small.speed_factor(rank) != 1.0 or small.profile.speed_sigma == 0
            s = [small.perturb(rank, 0.0, 1e-3) for _ in range(3)]
            l = [large.perturb(rank, 0.0, 1e-3) for _ in range(3)]
            assert s == l

    def test_persistent_speed_factor_is_stable(self):
        model = NoiseModel("noisy", num_ranks=16, seed=3)
        factors = [model.speed_factor(r) for r in range(16)]
        assert factors == [model.speed_factor(r) for r in range(16)]
        assert np.std(factors) > 0  # ranks genuinely differ

    def test_mean_duration_close_to_nominal(self):
        model = NoiseModel("moderate", num_ranks=1, seed=5)
        samples = np.array([model.perturb(0, 0.0, 1e-3) for _ in range(4000)])
        # Multiplicative noise is mean-one-ish; spikes shift the mean up a bit.
        assert 0.9e-3 * model.speed_factor(0) < samples.mean() < 1.4e-3

    def test_negative_compute_time_rejected(self):
        model = NoiseModel("none", num_ranks=1)
        with pytest.raises(ConfigurationError):
            model.perturb(0, 0.0, -1.0)
