"""Integration tests for the micro-benchmark harness (Listing 1 analogue)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.bench import MicroBenchmark
from repro.patterns import generate_pattern
from repro.sim.network import NetworkParams
from repro.sim.platform import Platform, get_machine


@pytest.fixture(scope="module")
def bench():
    return MicroBenchmark.from_machine(
        get_machine("hydra"), nodes=4, cores_per_node=4, nrep=2
    )


class TestMicroBenchmark:
    def test_no_delay_arrival_spread_is_tiny(self, bench):
        result = bench.run("reduce", "binomial", msg_bytes=8)
        for timing in result.timings:
            assert timing.arrival_spread < 1e-9

    def test_metrics_agree_without_pattern(self, bench):
        result = bench.run("allreduce", "ring", msg_bytes=1024)
        assert result.total_delay == pytest.approx(result.last_delay, rel=1e-6)

    def test_pattern_reproduced_in_arrivals(self, bench):
        """The measured arrival pattern equals the requested one."""
        pattern = generate_pattern("ascending", bench.num_ranks, 5e-4, seed=1)
        result = bench.run("alltoall", "bruck", msg_bytes=64, pattern=pattern)
        for timing in result.timings:
            measured = timing.delays_from_first()
            assert np.allclose(measured, pattern.skews, atol=1e-9)

    def test_total_delay_includes_skew_last_delay_does_not(self, bench):
        skew = 2e-3
        pattern = generate_pattern("last_delayed", bench.num_ranks, skew)
        result = bench.run("alltoall", "bruck", msg_bytes=64, pattern=pattern)
        assert result.total_delay >= skew
        assert result.last_delay < skew / 2

    def test_deterministic_across_invocations(self, bench):
        a = bench.run("reduce", "binomial", msg_bytes=512)
        b = bench.run("reduce", "binomial", msg_bytes=512)
        assert np.array_equal(a.last_delays, b.last_delays)

    def test_wrong_pattern_size_rejected(self, bench):
        with pytest.raises(ConfigurationError):
            bench.run("reduce", "binomial", 8, pattern=generate_pattern("bell", 3, 1e-3))

    def test_run_many_covers_all_algorithms(self, bench):
        out = bench.run_many("alltoall", ["bruck", "pairwise"], msg_bytes=64)
        assert set(out) == {"bruck", "pairwise"}

    def test_larger_messages_take_longer(self, bench):
        small = bench.run("alltoall", "pairwise", msg_bytes=64)
        large = bench.run("alltoall", "pairwise", msg_bytes=1 << 20)
        assert large.last_delay > small.last_delay * 10

    def test_validation(self):
        plat = Platform("t", nodes=1, cores_per_node=2)
        with pytest.raises(ConfigurationError):
            MicroBenchmark(platform=plat, nrep=0)
        with pytest.raises(ConfigurationError):
            MicroBenchmark(platform=plat, clock_mode="quantum")
        with pytest.raises(ConfigurationError):
            MicroBenchmark(platform=plat, noise_profile="hurricane")


class TestSyncedClockMode:
    def test_synced_mode_measures_close_to_perfect_mode(self):
        """Measurement with drifting+synced clocks stays within ~1 us of truth."""
        spec = get_machine("hydra")
        perfect = MicroBenchmark.from_machine(
            spec, nodes=2, cores_per_node=4, nrep=1, clock_mode="perfect"
        )
        synced = MicroBenchmark.from_machine(
            spec, nodes=2, cores_per_node=4, nrep=1, clock_mode="synced"
        )
        pattern = generate_pattern("bell", 8, 2e-4, seed=3)
        rp = perfect.run("alltoall", "pairwise", msg_bytes=4096, pattern=pattern)
        rs = synced.run("alltoall", "pairwise", msg_bytes=4096, pattern=pattern)
        assert rs.last_delay == pytest.approx(rp.last_delay, abs=2e-6)

    def test_synced_mode_deterministic(self):
        spec = get_machine("hydra")
        mk = lambda: MicroBenchmark.from_machine(  # noqa: E731
            spec, nodes=2, cores_per_node=4, nrep=1, clock_mode="synced", seed=9
        )
        a = mk().run("reduce", "binomial", msg_bytes=256)
        b = mk().run("reduce", "binomial", msg_bytes=256)
        assert np.array_equal(a.last_delays, b.last_delays)
