"""Tests for live exposition: quantiles, Prometheus text, windows, scraping.

The quantile pins are the paper-reproduction contract for satellite
telemetry: a fixed log2-bucket histogram must estimate p50/p99 within one
bucket width of the exact order statistic, so the service can report tail
latency without retaining samples.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.obs.expose import (
    MetricsHTTPServer,
    MetricsWindow,
    PROMETHEUS_CONTENT_TYPE,
    WindowedSnapshotter,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.metrics import Histogram, MetricsRegistry, bucket_exp


def exact_quantile(samples, q):
    """Numpy-style linear-interpolated quantile of raw samples."""
    xs = sorted(samples)
    rank = q * (len(xs) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(xs) - 1)
    return xs[lo] + (rank - lo) * (xs[hi] - xs[lo])


def bucket_width_at(value):
    """Width of the log2 bucket containing ``value``."""
    e = bucket_exp(value)
    return 2.0 ** (e + 1) - 2.0 ** e


class TestHistogramQuantile:
    """Pin the estimator against exact order statistics (satellite 3)."""

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_uniform_distribution_within_one_bucket(self, q):
        samples = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s uniform
        h = Histogram("h")
        for s in samples:
            h.observe(s)
        estimate = h.quantile(q)
        truth = exact_quantile(samples, q)
        assert abs(estimate - truth) <= bucket_width_at(truth)

    @pytest.mark.parametrize("q", [0.5, 0.99])
    def test_heavy_tail_within_one_bucket(self, q):
        # 95% fast queries at ~100us, 5% slow at ~50ms: the service's
        # actual latency shape — p99 must land in the slow mode's bucket.
        # (Both modes hold their quantile's whole interpolation span: a
        # rank interpolated *across* the bimodal gap has no single bucket
        # to live in, so the one-bucket-width bound only applies within a
        # mode.)
        samples = [100e-6 + i * 1e-9 for i in range(950)] \
            + [50e-3 + i * 1e-6 for i in range(50)]
        h = Histogram("h")
        for s in samples:
            h.observe(s)
        estimate = h.quantile(q)
        truth = exact_quantile(samples, q)
        assert abs(estimate - truth) <= bucket_width_at(truth)

    def test_single_observation_all_quantiles_exact(self):
        h = Histogram("h")
        h.observe(0.125)
        assert h.quantile(0.0) == h.quantile(0.5) == h.quantile(1.0) == 0.125

    def test_extremes_clamp_to_min_max(self):
        h = Histogram("h")
        for v in (0.3, 0.5, 0.7):
            h.observe(v)
        assert h.quantile(0.0) == pytest.approx(0.3)
        assert h.quantile(1.0) == pytest.approx(0.7)

    def test_zeros_rank_below_everything(self):
        h = Histogram("h")
        for _ in range(9):
            h.observe(0.0)
        h.observe(1.0)
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 1.0

    def test_empty_returns_none(self):
        assert Histogram("h").quantile(0.5) is None

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_merged_histograms_estimate_like_one(self):
        # Fixed buckets: merging shards then estimating equals estimating
        # the union (the property the cross-process telemetry relies on).
        a, b, union = Histogram("a"), Histogram("b"), Histogram("u")
        for i in range(1, 501):
            a.observe(i / 100.0)
            union.observe(i / 100.0)
        for i in range(501, 1001):
            b.observe(i / 100.0)
            union.observe(i / 100.0)
        a.merge_snapshot(b.snapshot())
        for q in (0.5, 0.99):
            assert a.quantile(q) == union.quantile(q)


class TestSanitizeMetricName:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("service.query_seconds") == \
            "service_query_seconds"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("2fast") == "_2fast"


class TestPrometheusRoundTrip:
    def _registry(self):
        m = MetricsRegistry()
        m.counter("service.query_total",
                  {"collective": "alltoall", "source": "store"}).inc(7)
        m.counter("service.query_total",
                  {"collective": "bcast", "source": "fallback"}).inc(2)
        m.gauge("service.cache_entries").set(42.0)
        h = m.histogram("service.query_seconds")
        for v in (0.0, 100e-6, 200e-6, 50e-3):
            h.observe(v)
        return m

    def test_counter_samples_round_trip(self):
        families = parse_prometheus(render_prometheus(self._registry()))
        total = families["repro_service_query_total"]
        assert total["type"] == "counter"
        samples = {frozenset(l.items()): v for _n, l, v in total["samples"]}
        assert samples[frozenset({("collective", "alltoall"),
                                  ("source", "store")}.copy())] == 7
        assert samples[frozenset({("collective", "bcast"),
                                  ("source", "fallback")}.copy())] == 2

    def test_gauge_round_trip(self):
        families = parse_prometheus(render_prometheus(self._registry()))
        gauge = families["repro_service_cache_entries"]
        assert gauge["type"] == "gauge"
        assert gauge["samples"] == [("repro_service_cache_entries", {}, 42.0)]

    def test_histogram_cumulative_buckets(self):
        families = parse_prometheus(render_prometheus(self._registry()))
        hist = families["repro_service_query_seconds"]
        assert hist["type"] == "histogram"
        by_name: dict[str, list] = {}
        for name, labels, value in hist["samples"]:
            by_name.setdefault(name, []).append((labels, value))
        buckets = by_name["repro_service_query_seconds_bucket"]
        # Cumulative counts never decrease, and +Inf equals the count.
        values = [v for _l, v in buckets]
        assert values == sorted(values)
        assert buckets[-1][0] == {"le": "+Inf"}
        assert buckets[-1][1] == 4
        assert by_name["repro_service_query_seconds_count"][0][1] == 4
        assert by_name["repro_service_query_seconds_sum"][0][1] == \
            pytest.approx(0.0 + 100e-6 + 200e-6 + 50e-3)
        # Zeros (observations <= 0) count into every finite bucket.
        assert buckets[0][1] >= 1

    def test_label_escaping_round_trips(self):
        m = MetricsRegistry()
        nasty = 'a\\b "c"\nd'
        m.counter("weird.total", {"v": nasty}).inc()
        families = parse_prometheus(render_prometheus(m))
        ((_name, labels, value),) = families["repro_weird_total"]["samples"]
        assert labels == {"v": nasty}
        assert value == 1

    def test_malformed_text_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE x counter\nx 1 2 3 garbage here\n")
        with pytest.raises(ValueError):
            parse_prometheus("orphan_sample 1\n")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}

    def test_snapshot_dict_input_equivalent(self):
        m = self._registry()
        assert render_prometheus(m) == render_prometheus(m.snapshot())


class TestMetricsWindow:
    def test_first_tick_is_empty_baseline(self):
        m = MetricsRegistry()
        m.counter("c").inc(5)
        w = MetricsWindow(m)
        assert w.tick(now=0.0)["counters"] == {}

    def test_deltas_and_rates(self):
        m = MetricsRegistry()
        m.counter("c").inc(5)
        w = MetricsWindow(m)
        w.tick(now=0.0)
        m.counter("c").inc(10)
        window = w.tick(now=2.0)
        assert window["interval_seconds"] == 2.0
        assert window["counters"]["c"] == {"delta": 10, "rate": 5.0}

    def test_histogram_interval_mean_and_quantiles(self):
        m = MetricsRegistry()
        h = m.histogram("h")
        h.observe(1.0)
        w = MetricsWindow(m)
        w.tick(now=0.0)
        h.observe(3.0)
        window = w.tick(now=1.0)["histograms"]["h"]
        assert window["count"] == 1
        assert window["sum"] == pytest.approx(3.0)
        assert window["mean"] == pytest.approx(3.0)
        assert window["p50"] is not None and window["p99"] is not None

    def test_new_metric_mid_window_counts_from_zero(self):
        m = MetricsRegistry()
        w = MetricsWindow(m)
        w.tick(now=0.0)
        m.counter("late").inc(3)
        assert w.tick(now=1.0)["counters"]["late"]["delta"] == 3


class TestWindowedSnapshotter:
    def test_periodic_callback_and_stop(self):
        m = MetricsRegistry()
        got = []
        fired = threading.Event()

        def on_window(window):
            got.append(window)
            fired.set()

        m.counter("c").inc()
        with WindowedSnapshotter(m, interval=0.02, on_window=on_window):
            m.counter("c").inc(4)
            assert fired.wait(timeout=5.0)
        n = len(got)
        assert n >= 1
        assert got[0]["counters"]["c"]["delta"] >= 1
        # Stopped: no more callbacks arrive.
        fired.clear()
        assert not fired.wait(timeout=0.1)
        assert len(got) == n

    def test_bad_interval_raises(self):
        with pytest.raises(ValueError):
            WindowedSnapshotter(MetricsRegistry(), interval=0.0,
                                on_window=lambda w: None)


class TestMetricsHTTPServer:
    def test_scrape_and_healthz(self):
        m = MetricsRegistry()
        m.counter("hits.total", {"kind": "test"}).inc(3)
        with MetricsHTTPServer(m, port=0) as server:
            host, port = server.address
            with urllib.request.urlopen(
                    f"http://{host}:{port}/metrics") as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
                families = parse_prometheus(resp.read().decode())
            assert families["repro_hits_total"]["samples"] == [
                ("repro_hits_total", {"kind": "test"}, 3)]
            with urllib.request.urlopen(
                    f"http://{host}:{port}/healthz") as resp:
                assert resp.read() == b"ok\n"

    def test_scrape_sees_live_updates(self):
        m = MetricsRegistry()
        c = m.counter("live.total")
        with MetricsHTTPServer(m, port=0) as server:
            host, port = server.address
            url = f"http://{host}:{port}/metrics"
            before = parse_prometheus(
                urllib.request.urlopen(url).read().decode())
            c.inc(5)
            after = parse_prometheus(
                urllib.request.urlopen(url).read().decode())
        assert before["repro_live_total"]["samples"][0][2] == 0
        assert after["repro_live_total"]["samples"][0][2] == 5

    def test_unknown_path_404s(self):
        with MetricsHTTPServer(MetricsRegistry(), port=0) as server:
            host, port = server.address
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"http://{host}:{port}/nope")
            assert err.value.code == 404
            assert "paths" in json.loads(err.value.read().decode())
