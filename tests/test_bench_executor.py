"""Tests for the parallel cell executor and the on-disk result cache."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.bench import (
    CellExecutor,
    CellSpec,
    MicroBenchmark,
    ResultCache,
    TuningCampaign,
    sweep_per_algorithm_skew,
    sweep_shared_skew,
)
from repro.bench.executor import run_cell
from repro.bench.results import BenchResult, SweepResult
from repro.collectives.ops import MAX
from repro.patterns.generator import generate_pattern
from repro.sim.platform import get_machine


@pytest.fixture(scope="module")
def bench():
    return MicroBenchmark.from_machine(
        get_machine("hydra"), nodes=2, cores_per_node=2, nrep=1
    )


def _spec(bench, algo="bruck", msg=256, pattern=None, **kw):
    return CellSpec.from_bench(bench, "alltoall", algo, msg, pattern, **kw)


class TestCellSpec:
    def test_run_matches_direct_bench_run(self, bench):
        pattern = generate_pattern("random", bench.num_ranks, 1e-5, seed=3)
        direct = bench.run("alltoall", "bruck", 256, pattern)
        via_spec = run_cell(_spec(bench, pattern=pattern))
        assert direct.to_dict() == via_spec.to_dict()

    def test_make_bench_is_value_equal(self, bench):
        assert _spec(bench).make_bench() == bench

    def test_reduce_op_and_segment_kwargs_round_trip(self, bench):
        spec = CellSpec.from_bench(
            bench, "reduce", "binomial", 1024, None, op=MAX, segment_bytes=256
        )
        direct = bench.run("reduce", "binomial", 1024, op=MAX, segment_bytes=256)
        assert spec.run().to_dict() == direct.to_dict()

    def test_unknown_run_kwargs_rejected(self, bench):
        with pytest.raises(ConfigurationError):
            _spec(bench, nonsense=1)

    def test_cache_key_is_deterministic(self, bench):
        assert _spec(bench).cache_key() == _spec(bench).cache_key()

    def test_cache_key_covers_the_full_spec(self, bench):
        base = _spec(bench).cache_key()
        assert _spec(bench, algo="pairwise").cache_key() != base
        assert _spec(bench, msg=512).cache_key() != base
        pattern = generate_pattern("random", bench.num_ranks, 1e-5, seed=0)
        assert _spec(bench, pattern=pattern).cache_key() != base

    def test_cache_key_covers_model_version(self, bench, monkeypatch):
        import repro.bench.executor as executor_mod

        base = _spec(bench).cache_key()
        monkeypatch.setattr(executor_mod, "MODEL_VERSION", "0.0.0-test")
        assert _spec(bench).cache_key() != base


class TestBenchResultRoundTrip:
    def test_exact_json_round_trip(self, bench):
        result = bench.run("alltoall", "bruck", 256)
        rebuilt = BenchResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.to_dict() == result.to_dict()
        np.testing.assert_array_equal(rebuilt.timings[0].arrivals,
                                      result.timings[0].arrivals)

    def test_missing_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchResult.from_dict({"collective": "alltoall"})


class TestResultCache:
    def test_put_get_round_trip(self, bench, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(bench)
        assert cache.get(spec) is None
        result = run_cell(spec)
        path = cache.put(spec, result)
        assert path.exists()
        assert cache.get(spec).to_dict() == result.to_dict()

    def test_changed_spec_misses(self, bench, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(bench)
        cache.put(spec, run_cell(spec))
        assert cache.get(_spec(bench, msg=512)) is None

    def test_version_bump_misses(self, bench, tmp_path, monkeypatch):
        import repro.bench.executor as executor_mod

        cache = ResultCache(tmp_path)
        spec = _spec(bench)
        cache.put(spec, run_cell(spec))
        monkeypatch.setattr(executor_mod, "MODEL_VERSION", "0.0.0-test")
        assert cache.get(spec) is None

    def test_corrupt_record_is_a_miss(self, bench, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(bench)
        cache.put(spec, run_cell(spec))
        cache.path_for(spec.cache_key()).write_text("{not json")
        assert cache.get(spec) is None


class TestCellExecutor:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CellExecutor(jobs=0)

    def test_parallel_results_in_spec_order(self, bench):
        specs = [_spec(bench, algo=a) for a in ("bruck", "pairwise", "basic_linear")]
        serial = CellExecutor(jobs=1).run_cells(specs)
        parallel = CellExecutor(jobs=2).run_cells(specs)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]
        assert [r.algorithm for r in parallel] == ["bruck", "pairwise", "basic_linear"]

    def test_stats_counters(self, bench, tmp_path):
        specs = [_spec(bench, algo=a) for a in ("bruck", "pairwise")]
        ex = CellExecutor(jobs=1, cache_dir=tmp_path)
        ex.run_cells(specs)
        assert ex.stats.cells == 2
        assert ex.stats.simulated == 2 and ex.stats.hits == 0
        assert len(ex.stats.cell_seconds) == 2
        warm = CellExecutor(jobs=1, cache_dir=tmp_path)
        warm.run_cells(specs)
        assert warm.stats.hits == 2 and warm.stats.simulated == 0
        assert warm.stats.hit_rate == 1.0
        assert "100% hit rate" in warm.stats.summary()

    def test_from_env_overrides(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ex = CellExecutor.from_env()
        assert ex.jobs == 3
        assert ex.cache is not None and ex.cache.cache_dir == tmp_path
        monkeypatch.delenv("REPRO_JOBS")
        monkeypatch.delenv("REPRO_CACHE_DIR")
        ex = CellExecutor.from_env()
        assert ex.jobs == 1 and ex.cache is None


class TestSweepParity:
    def test_shared_skew_parallel_is_byte_identical(self, bench):
        kw = dict(collective="alltoall", algorithms=["bruck", "pairwise"],
                  msg_bytes=256, shapes=["ascending", "random"])
        serial = sweep_shared_skew(bench, **kw)
        parallel = sweep_shared_skew(bench, executor=CellExecutor(jobs=2), **kw)
        assert json.dumps(serial.to_dict()) == json.dumps(parallel.to_dict())

    def test_per_algorithm_skew_parallel_is_byte_identical(self, bench):
        kw = dict(collective="alltoall", algorithms=["bruck", "pairwise"],
                  msg_bytes=256, shapes=["last_delayed"])
        serial = sweep_per_algorithm_skew(bench, **kw)
        parallel = sweep_per_algorithm_skew(bench, executor=CellExecutor(jobs=2), **kw)
        assert json.dumps(serial.to_dict()) == json.dumps(parallel.to_dict())

    def test_sweep_round_trips_through_dict(self, bench):
        sweep = sweep_per_algorithm_skew(
            bench, "alltoall", ["bruck", "pairwise"], 256, ["last_delayed"]
        )
        rebuilt = SweepResult.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert json.dumps(rebuilt.to_dict()) == json.dumps(sweep.to_dict())
        assert rebuilt.per_algorithm_skews == sweep.per_algorithm_skews


CAMPAIGN_KW = dict(
    collectives=("alltoall",),
    msg_sizes=(64, "1KiB"),
    shapes=("first_delayed", "random"),
)


class TestCampaignParity:
    def test_jobs4_artifacts_byte_identical_to_serial(self, bench, tmp_path):
        serial = TuningCampaign(bench=bench, **CAMPAIGN_KW)
        paths1 = serial.save(serial.run(), tmp_path / "serial")
        parallel = TuningCampaign(bench=bench, jobs=4, **CAMPAIGN_KW)
        paths2 = parallel.save(parallel.run(), tmp_path / "parallel")
        for artifact in ("sweeps", "table", "rules"):
            assert paths1[artifact].read_bytes() == paths2[artifact].read_bytes()

    def test_warm_cache_hits_everything_and_stays_identical(self, bench, tmp_path):
        kw = dict(bench=bench, cache_dir=tmp_path / "cache", **CAMPAIGN_KW)
        cold = TuningCampaign(**kw)
        cold_result = cold.run()
        assert cold_result.stats.hits == 0
        assert cold_result.stats.simulated == cold_result.stats.cells
        paths1 = cold.save(cold_result, tmp_path / "cold")
        warm = TuningCampaign(**kw)
        warm_result = warm.run()
        assert warm_result.stats.hit_rate == 1.0
        assert warm_result.stats.simulated == 0
        paths2 = warm.save(warm_result, tmp_path / "warm")
        assert paths1["sweeps"].read_bytes() == paths2["sweeps"].read_bytes()
        assert paths1["table"].read_bytes() == paths2["table"].read_bytes()

    def test_changed_campaign_spec_misses_cache(self, bench, tmp_path):
        kw = dict(bench=bench, cache_dir=tmp_path / "cache", **CAMPAIGN_KW)
        TuningCampaign(**kw).run()
        changed = TuningCampaign(bench=bench, cache_dir=tmp_path / "cache",
                                 collectives=("alltoall",), msg_sizes=(128,),
                                 shapes=("first_delayed", "random"))
        result = changed.run()
        assert result.stats.hits == 0

    def test_changed_skew_factor_only_reuses_baselines(self, bench, tmp_path):
        kw = dict(bench=bench, cache_dir=tmp_path / "cache", **CAMPAIGN_KW)
        TuningCampaign(**kw).run()
        # A different skew factor changes every skewed pattern but not the
        # No-delay baselines, which are keyed identically and hit.
        result = TuningCampaign(skew_factor=0.5, **kw).run()
        from repro.collectives.base import list_algorithms

        algos = len(list_algorithms("alltoall"))
        assert result.stats.hits == algos * len(CAMPAIGN_KW["msg_sizes"])

    def test_campaign_default_skew_factor_is_headline(self, bench):
        from repro.patterns.skew import DEFAULT_SKEW_FACTOR, SKEW_FACTORS

        assert DEFAULT_SKEW_FACTOR == 1.5 == SKEW_FACTORS[-1]
        assert TuningCampaign(bench=bench, **CAMPAIGN_KW).skew_factor == 1.5
        import inspect

        assert (
            inspect.signature(sweep_shared_skew).parameters["skew_factor"].default
            == DEFAULT_SKEW_FACTOR
        )
