"""Tests for the ASCII renderers and exporters."""

from __future__ import annotations

import csv
import json

import pytest

from repro.errors import ConfigurationError
from repro.reporting import (
    grid_to_csv,
    render_bars,
    render_grid,
    render_series,
    render_table,
    results_to_json,
)


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["name", "value"], [["a", "1"], ["long-name", "22"]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert all(len(l) <= len(max(lines, key=len)) for l in lines)

    def test_title(self):
        assert render_table(["x"], [["1"]], title="T").splitlines()[0] == "T"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])


class TestRenderGrid:
    def test_missing_cells_dashed(self):
        grid = {"r1": {"c1": "x"}, "r2": {"c2": "y"}}
        text = render_grid(grid, corner="rows")
        assert "-" in text
        assert "c1" in text and "c2" in text

    def test_explicit_order_respected(self):
        grid = {"b": {"z": "1", "a": "2"}, "a": {"z": "3", "a": "4"}}
        text = render_grid(grid, row_order=["a", "b"], col_order=["z", "a"])
        lines = text.splitlines()
        assert lines[2].startswith("a")
        assert lines[3].startswith("b")


class TestRenderBars:
    def test_bar_lengths_scale(self):
        text = render_bars({"small": 1.0, "big": 4.0}, width=20)
        lines = {l.split()[0]: l for l in text.splitlines()}
        assert lines["big"].count("#") == 20
        assert 4 <= lines["small"].count("#") <= 6

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_bars({})


class TestRenderSeries:
    def test_height_and_axis(self):
        text = render_series([0, 1, 2, 3, 2, 1], height=4)
        lines = text.splitlines()
        assert len(lines) == 5  # 4 levels + axis
        assert lines[-1].strip().startswith("+")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series([])


class TestExport:
    def test_results_to_json_handles_numpy(self, tmp_path):
        import numpy as np

        path = tmp_path / "r.json"
        results_to_json(path, {"arr": np.arange(3), "x": np.float64(1.5)})
        data = json.loads(path.read_text())
        assert data["arr"] == [0, 1, 2]
        assert data["x"] == 1.5

    def test_grid_to_csv(self, tmp_path):
        path = tmp_path / "g.csv"
        grid_to_csv(path, {"r1": {"a": 1, "b": 2}, "r2": {"a": 3}}, row_label="pattern")
        rows = list(csv.reader(open(path)))
        assert rows[0] == ["pattern", "a", "b"]
        assert rows[2] == ["r2", "3", ""]
