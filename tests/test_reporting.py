"""Tests for the ASCII renderers and exporters."""

from __future__ import annotations

import csv
import json

import pytest

from repro.errors import ConfigurationError
from repro.reporting import (
    grid_to_csv,
    render_bars,
    render_grid,
    render_series,
    render_table,
    render_timeline,
    results_to_json,
)


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["name", "value"], [["a", "1"], ["long-name", "22"]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert all(len(l) <= len(max(lines, key=len)) for l in lines)

    def test_title(self):
        assert render_table(["x"], [["1"]], title="T").splitlines()[0] == "T"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])


class TestRenderGrid:
    def test_missing_cells_dashed(self):
        grid = {"r1": {"c1": "x"}, "r2": {"c2": "y"}}
        text = render_grid(grid, corner="rows")
        assert "-" in text
        assert "c1" in text and "c2" in text

    def test_explicit_order_respected(self):
        grid = {"b": {"z": "1", "a": "2"}, "a": {"z": "3", "a": "4"}}
        text = render_grid(grid, row_order=["a", "b"], col_order=["z", "a"])
        lines = text.splitlines()
        assert lines[2].startswith("a")
        assert lines[3].startswith("b")


class TestRenderBars:
    def test_bar_lengths_scale(self):
        text = render_bars({"small": 1.0, "big": 4.0}, width=20)
        lines = {l.split()[0]: l for l in text.splitlines()}
        assert lines["big"].count("#") == 20
        assert 4 <= lines["small"].count("#") <= 6

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_bars({})


class TestRenderSeries:
    def test_height_and_axis(self):
        text = render_series([0, 1, 2, 3, 2, 1], height=4)
        lines = text.splitlines()
        assert len(lines) == 5  # 4 levels + axis
        assert lines[-1].strip().startswith("+")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series([])


class TestExport:
    def test_results_to_json_handles_numpy(self, tmp_path):
        import numpy as np

        path = tmp_path / "r.json"
        results_to_json(path, {"arr": np.arange(3), "x": np.float64(1.5)})
        data = json.loads(path.read_text())
        assert data["arr"] == [0, 1, 2]
        assert data["x"] == 1.5

    def test_grid_to_csv(self, tmp_path):
        path = tmp_path / "g.csv"
        grid_to_csv(path, {"r1": {"a": 1, "b": 2}, "r2": {"a": 3}}, row_label="pattern")
        rows = list(csv.reader(open(path)))
        assert rows[0] == ["pattern", "a", "b"]
        assert rows[2] == ["r2", "3", ""]


class TestRenderTimeline:
    def _recorder(self):
        from repro.obs.spans import SpanRecorder

        rec = SpanRecorder()
        rec.record("wait", "rank 0", 0.0, 0.0)   # zero-length, clamps to 1 col
        rec.record("coll", "rank 0", 0.0, 1.0)
        rec.record("wait", "rank 1", 0.0, 0.5)
        rec.record("coll", "rank 1", 0.5, 1.0)
        return rec

    def test_rows_symbols_and_legend(self):
        text = render_timeline(self._recorder(), width=10)
        lines = text.splitlines()
        assert lines[0].startswith("virtual timeline")
        assert lines[1] == "rank 0  |==========|"
        assert lines[2] == "rank 1  |#####=====|"
        assert "# wait" in text and "= coll" in text

    def test_accepts_obs_context(self):
        from repro.obs.context import session

        with session() as octx:
            octx.record_rank_span("s", 0, 0.0, 1.0)
        assert "rank 0" in render_timeline(octx, width=8)

    def test_natural_track_order(self):
        from repro.obs.spans import SpanRecorder

        rec = SpanRecorder()
        for rank in (10, 2, 0):
            rec.record("s", f"rank {rank}", 0.0, 1.0)
        lines = render_timeline(rec, width=8).splitlines()
        assert [ln.split("|")[0].strip() for ln in lines[1:4]] == \
            ["rank 0", "rank 2", "rank 10"]

    def test_name_filter_and_track_restriction(self):
        text = render_timeline(self._recorder(), width=10, names={"coll"},
                               tracks=["rank 1"])
        assert "rank 0" not in text
        assert "wait" not in text

    def test_wall_domain_selected_explicitly(self):
        from repro.obs.spans import SpanRecorder

        rec = SpanRecorder()
        with rec.wall_span("stage"):
            pass
        assert "(no spans)" in render_timeline(rec)  # virtual: nothing
        assert "stage" in render_timeline(rec, domain="wall")

    def test_empty_and_narrow_rejected(self):
        assert "(no spans)" in render_timeline([])
        with pytest.raises(ConfigurationError):
            render_timeline([], width=4)
