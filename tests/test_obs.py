"""Tests for the repro.obs metrics registry, span recorder, and context."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.context import NULL_CONTEXT, current, session
from repro.obs.metrics import (
    MAX_EXP,
    MIN_EXP,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_METRICS,
    MetricsRegistry,
    bucket_exp,
    metric_key,
    parse_metric_key,
)
from repro.obs.runid import RUN_ID_LEN, make_run_id
from repro.obs.spans import WALL, SpanRecorder, rank_track


class TestBucketExp:
    def test_powers_of_two_land_exactly(self):
        for k in range(-20, 20):
            assert bucket_exp(2.0 ** k) == k

    def test_just_below_boundary_lands_one_lower(self):
        for k in range(-10, 10):
            v = 2.0 ** k
            assert bucket_exp(v * (1 - 1e-12)) == k - 1

    def test_clamped_to_range(self):
        assert bucket_exp(1e-300) == MIN_EXP
        assert bucket_exp(1e300) == MAX_EXP


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.counter("c").inc(3)
        m.gauge("g").set(2.0)
        m.gauge("g").set(1.0)
        m.histogram("h").observe(0.25)
        m.histogram("h").observe(0.0)
        snap = m.snapshot()
        assert snap["c"] == {"kind": "counter", "value": 4}
        assert snap["g"]["value"] == 1.0 and snap["g"]["peak"] == 2.0
        assert snap["h"]["count"] == 2
        assert snap["h"]["zeros"] == 1
        assert snap["h"]["buckets"] == {"2^-2": 1}

    def test_same_name_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")

    def test_kind_mismatch_raises(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(ValueError):
            m.gauge("x")

    def test_snapshot_sorted_by_name(self):
        m = MetricsRegistry()
        m.counter("b")
        m.counter("a")
        assert list(m.snapshot()) == ["a", "b"]

    def test_get_missing_is_none(self):
        assert MetricsRegistry().get("nope") is None


class TestLabeledMetrics:
    def test_distinct_label_sets_are_distinct_instruments(self):
        m = MetricsRegistry()
        m.counter("q", {"coll": "alltoall"}).inc()
        m.counter("q", {"coll": "bcast"}).inc(2)
        m.counter("q").inc(10)
        snap = m.snapshot()
        assert snap['q{coll="alltoall"}']["value"] == 1
        assert snap['q{coll="bcast"}']["value"] == 2
        assert snap["q"]["value"] == 10

    def test_label_order_is_canonical(self):
        m = MetricsRegistry()
        a = m.counter("q", {"b": "2", "a": "1"})
        b = m.counter("q", {"a": "1", "b": "2"})
        assert a is b
        assert a.name == 'q{a="1",b="2"}'

    def test_key_round_trip_with_escaping(self):
        nasty = 'sl\\ash "quote"\nnewline'
        key = metric_key("m", {"v": nasty})
        assert parse_metric_key(key) == ("m", {"v": nasty})

    def test_bare_name_parses_to_empty_labels(self):
        assert parse_metric_key("plain.name") == ("plain.name", {})

    def test_malformed_key_raises(self):
        with pytest.raises(ValueError):
            parse_metric_key("m{unterminated")

    def test_invalid_label_name_raises(self):
        with pytest.raises(ValueError):
            metric_key("m", {"bad-name": "v"})

    def test_kind_mismatch_with_labels_raises(self):
        m = MetricsRegistry()
        m.counter("x", {"l": "1"})
        with pytest.raises(ValueError):
            m.histogram("x", {"l": "1"})

    def test_get_with_labels(self):
        m = MetricsRegistry()
        c = m.counter("x", {"l": "1"})
        assert m.get("x", {"l": "1"}) is c
        assert m.get("x") is None

    def test_merge_snapshot_preserves_labeled_keys(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("q", {"coll": "alltoall"}).inc(2)
        b.counter("q", {"coll": "alltoall"}).inc(3)
        b.histogram("h", {"coll": "bcast"}).observe(0.5)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap['q{coll="alltoall"}']["value"] == 5
        assert snap['h{coll="bcast"}']["count"] == 1

    def test_null_registry_accepts_labels(self):
        assert NULL_METRICS.counter("a", {"l": "1"}) is NULL_COUNTER
        assert NULL_METRICS.histogram("a", {"l": "1"}) is NULL_HISTOGRAM
        assert NULL_METRICS.get("a", {"l": "1"}) is None
        assert NULL_HISTOGRAM.quantile(0.5) is None


class TestNullMetrics:
    def test_stubs_are_shared_singletons(self):
        # The disabled path must never allocate: every request returns the
        # same module-level stub object.
        assert NULL_METRICS.counter("a") is NULL_COUNTER
        assert NULL_METRICS.counter("b") is NULL_COUNTER
        assert NULL_METRICS.gauge("a") is NULL_GAUGE
        assert NULL_METRICS.histogram("a") is NULL_HISTOGRAM

    def test_stub_operations_record_nothing(self):
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(3.0)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0
        assert len(NULL_METRICS) == 0
        assert NULL_METRICS.snapshot() == {}


class TestSpanRecorder:
    def test_record_and_ids(self):
        rec = SpanRecorder()
        a = rec.record("x", rank_track(0), 0.0, 1.0)
        b = rec.record("y", rank_track(0), 1.0, 2.0, parent=a)
        assert b > a
        spans = list(rec)
        assert spans[1].parent_id == a
        assert spans[0].duration == 1.0

    def test_ring_overflow_drops_and_counts(self):
        rec = SpanRecorder(capacity=3)
        for i in range(5):
            rec.record("s", "t", float(i), float(i + 1))
        assert len(rec) == 3
        assert rec.dropped == 2
        # Oldest spans were evicted.
        assert [s.start for s in rec] == [2.0, 3.0, 4.0]

    def test_wall_span_nests_automatically(self):
        rec = SpanRecorder()
        with rec.wall_span("outer") as outer_id:
            with rec.wall_span("inner"):
                pass
        spans = {s.name: s for s in rec}
        assert spans["inner"].parent_id == outer_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].domain == WALL
        assert spans["outer"].start <= spans["inner"].start

    def test_by_track_sorted_by_start(self):
        rec = SpanRecorder()
        rec.record("b", "t", 2.0, 3.0)
        rec.record("a", "t", 0.0, 1.0)
        assert [s.name for s in rec.by_track()["t"]] == ["a", "b"]


class TestRunId:
    def test_deterministic(self):
        assert make_run_id({"a": 1}) == make_run_id({"a": 1})
        assert make_run_id({"a": 1}) != make_run_id({"a": 2})

    def test_key_order_irrelevant(self):
        assert make_run_id({"a": 1, "b": 2}) == make_run_id({"b": 2, "a": 1})

    def test_prefix_and_length(self):
        rid = make_run_id({"x": 1}, prefix="run")
        assert rid.startswith("run-")
        assert len(rid) == len("run-") + RUN_ID_LEN


class TestContext:
    def test_no_session_means_null_context(self):
        ctx = current()
        assert ctx is NULL_CONTEXT
        assert not ctx.enabled
        assert ctx.record_vspan("x", "t", 0.0, 1.0) is None
        with ctx.wall_span("x") as sid:
            assert sid is None

    def test_session_installs_and_restores(self):
        with session(meta={"t": 1}) as octx:
            assert current() is octx
            assert octx.enabled
        assert current() is NULL_CONTEXT

    def test_sessions_nest(self):
        with session(run_id="outer") as outer:
            with session(run_id="inner") as inner:
                assert current() is inner
            assert current() is outer

    def test_session_run_id_deterministic_from_meta(self):
        with session(meta={"command": "x"}) as a:
            pass
        with session(meta={"command": "x"}) as b:
            pass
        assert a.run_id == b.run_id
        assert a.run_id.startswith("run-")

    def test_record_spans_off_disables_spans_only(self):
        with session(record_spans=False) as octx:
            assert octx.record_rank_span("x", 0, 0.0, 1.0) is None
            with octx.wall_span("w") as sid:
                assert sid is None
            assert len(octx.spans) == 0
            octx.metrics.counter("still.counted").inc()
            assert octx.metrics.get("still.counted").value == 1

    def test_rank_span_uses_canonical_track(self):
        with session() as octx:
            octx.record_rank_span("x", 7, 0.0, 1.0)
            assert next(iter(octx.spans)).track == rank_track(7)


class TestEngineStatsAbsorption:
    def test_session_aggregates_engine_runs(self):
        from repro.sim.engine import EngineStats
        from repro.obs.context import absorb_engine_stats

        with session() as octx:
            s = EngineStats()
            s.runs = 1
            s.events_start = 10
            absorb_engine_stats(s)
            absorb_engine_stats(s)
            assert octx.engine_stats.runs == 2
            assert octx.engine_stats.events_start == 20
        # Outside the session nothing accumulates (and nothing crashes).
        absorb_engine_stats(s)

    def test_legacy_process_accumulator_still_works(self):
        from repro.sim.engine import (
            EngineStats,
            disable_stats_aggregation,
            enable_stats_aggregation,
        )
        from repro.obs.context import absorb_engine_stats

        agg = enable_stats_aggregation()
        try:
            s = EngineStats()
            s.runs = 1
            absorb_engine_stats(s)
            assert agg.runs == 1
            # A session and the process accumulator both see the report.
            with session() as octx:
                absorb_engine_stats(s)
                assert octx.engine_stats.runs == 1
            assert agg.runs == 2
        finally:
            disable_stats_aggregation()


class TestPackageSurface:
    def test_public_reexports(self):
        for name in ("session", "current", "export_perfetto", "export_jsonl",
                     "read_jsonl", "make_run_id", "MetricsRegistry",
                     "SpanRecorder", "render_timeline"):
            if name == "render_timeline":
                from repro.reporting import render_timeline  # noqa: F401
            else:
                assert hasattr(obs, name), name
