"""Tests for online pattern classification and adaptive selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.bench.metrics import CollectiveTiming
from repro.bench.results import BenchResult, SweepResult
from repro.patterns import generate_pattern, list_shapes
from repro.selection.online import (
    AdaptiveSelector,
    PatternClassifier,
    run_adaptive_app,
)
from repro.sim.network import NetworkParams
from repro.sim.platform import Platform, get_machine


class TestPatternClassifier:
    @pytest.mark.parametrize("shape", ["ascending", "descending", "first_delayed",
                                       "last_delayed", "bell", "step", "zigzag"])
    def test_recovers_generating_shape(self, shape):
        clf = PatternClassifier(num_ranks=32)
        pattern = generate_pattern(shape, 32, 3e-4, seed=1)
        detected, magnitude = clf.classify(pattern.skews)
        assert detected == shape
        # Magnitude = observed spread (bell's tail never quite reaches zero).
        expected = pattern.skews.max() - pattern.skews.min()
        assert magnitude == pytest.approx(expected, rel=1e-9)

    def test_flat_delays_classified_no_delay(self):
        clf = PatternClassifier(num_ranks=16)
        detected, _ = clf.classify(np.zeros(16))
        assert detected == "no_delay"
        detected, _ = clf.classify(np.full(16, 0.5))  # uniform offset, no spread
        assert detected == "no_delay"

    def test_noisy_shape_still_recovered(self):
        clf = PatternClassifier(num_ranks=64)
        pattern = generate_pattern("ascending", 64, 1e-3, seed=2)
        rng = np.random.default_rng(0)
        noisy = pattern.skews + rng.normal(0, 5e-5, 64)
        noisy -= noisy.min()
        detected, _ = clf.classify(noisy)
        assert detected == "ascending"

    def test_wrong_length_rejected(self):
        clf = PatternClassifier(num_ranks=8)
        with pytest.raises(ConfigurationError):
            clf.classify(np.zeros(9))

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            PatternClassifier(num_ranks=0)

    def test_all_zero_delays_are_no_delay_with_zero_magnitude(self):
        clf = PatternClassifier(num_ranks=8)
        detected, magnitude = clf.classify(np.zeros(8))
        assert detected == "no_delay"
        assert magnitude == 0.0

    def test_single_rank_always_no_delay(self):
        """One rank has no arrival *pattern* by definition."""
        clf = PatternClassifier(num_ranks=1)
        for value in (0.0, 1.0, 123.456):
            detected, magnitude = clf.classify(np.array([value]))
            assert detected == "no_delay"
            assert magnitude == 0.0

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_delays_rejected(self, bad):
        clf = PatternClassifier(num_ranks=4)
        delays = np.array([0.0, 1.0, 2.0, bad])
        with pytest.raises(ConfigurationError, match="non-finite"):
            clf.classify(delays)


def _sweep_with_per_pattern_winners(num_ranks=8):
    """Synthetic sweep: 'fastpath' wins no_delay, 'sturdy' wins under skew."""
    sweep = SweepResult("alltoall", 1024.0, num_ranks)
    table = {
        "no_delay": {"fastpath": 1.0, "sturdy": 2.0},
        "first_delayed": {"fastpath": 9.0, "sturdy": 2.1},
        "ascending": {"fastpath": 5.0, "sturdy": 2.0},
    }
    for pattern, row in table.items():
        for algo, t in row.items():
            timing = CollectiveTiming(np.zeros(2), np.full(2, t))
            sweep.add(BenchResult("alltoall", algo, 1024.0, num_ranks,
                                  pattern, 0.0, [timing]))
    return sweep


class TestAdaptiveSelector:
    def test_pick_follows_classified_pattern(self):
        selector = AdaptiveSelector.from_sweep(_sweep_with_per_pattern_winners(), 8)
        assert selector.pick(None) == "fastpath"  # default = no_delay winner
        first = generate_pattern("first_delayed", 8, 1e-3).skews
        assert selector.pick(first) == "sturdy"
        assert selector.pick(np.zeros(8)) == "fastpath"

    def test_unknown_pattern_falls_back_to_default(self):
        selector = AdaptiveSelector.from_sweep(_sweep_with_per_pattern_winners(), 8)
        bell = generate_pattern("bell", 8, 1e-3).skews
        assert selector.pick(bell) == "fastpath"


class TestRunAdaptiveApp:
    def _platform(self):
        return Platform("t", nodes=4, cores_per_node=4)

    def _selector(self, sweep_ranks=16):
        from repro.bench import MicroBenchmark, sweep_shared_skew

        bench = MicroBenchmark.from_machine(
            get_machine("hydra"), nodes=4, cores_per_node=4, nrep=1
        )
        sweep = sweep_shared_skew(
            bench, "alltoall", ["basic_linear", "pairwise", "linear_sync"],
            32768, ["first_delayed", "last_delayed", "ascending"],
        )
        return AdaptiveSelector.from_sweep(sweep, 16)

    def test_adaptive_run_produces_picks_per_iteration(self):
        selector = self._selector()
        result = run_adaptive_app(
            self._platform(), selector, iterations=6,
            params=NetworkParams(**get_machine("hydra").network),
        )
        assert len(result.picks) == 6
        assert result.runtime > 0

    def test_adaptation_reacts_to_scripted_imbalance(self):
        """A strong first_delayed imbalance should steer picks mid-run."""
        selector = self._selector()

        def delay(it, rank):
            return 2e-3 if (it >= 3 and rank == 0) else 0.0

        result = run_adaptive_app(
            self._platform(), selector, iterations=8, extra_delay=delay,
            params=NetworkParams(**get_machine("hydra").network),
        )
        early = set(result.picks[:3])
        late = set(result.picks[5:])
        # The pick conditioned on the injected pattern matches the sweep's
        # first_delayed winner.
        assert selector.table["first_delayed"] in late or early == late

    def test_fixed_algorithm_baseline(self):
        selector = self._selector()
        result = run_adaptive_app(
            self._platform(), selector, iterations=4,
            fixed_algorithm="pairwise",
            params=NetworkParams(**get_machine("hydra").network),
        )
        assert result.picks == ["pairwise"] * 4
        assert result.switches == 0
