"""Unit + property tests for arrival-pattern generation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TraceFormatError
from repro.patterns import (
    ArrivalPattern,
    NO_DELAY,
    PATTERN_SHAPES,
    generate_pattern,
    list_shapes,
    no_delay_pattern,
    read_pattern_file,
    skew_from_mean_runtime,
    per_algorithm_skews,
    write_pattern_file,
)


class TestShapes:
    def test_paper_has_eight_artificial_shapes(self):
        assert len(PATTERN_SHAPES) == 8
        assert set(PATTERN_SHAPES) == {
            "ascending", "descending", "first_delayed", "last_delayed",
            "random", "bell", "step", "zigzag",
        }

    def test_list_shapes_with_reference(self):
        names = list_shapes(include_no_delay=True)
        assert names[0] == NO_DELAY
        assert len(names) == 9

    @pytest.mark.parametrize("shape", list(PATTERN_SHAPES))
    @pytest.mark.parametrize("p", [1, 2, 3, 8, 33, 64])
    def test_skews_bounded_and_peak_exact(self, shape, p):
        s = 1.25e-3
        pattern = generate_pattern(shape, p, s, seed=3)
        assert pattern.num_ranks == p
        assert (pattern.skews >= 0).all()
        assert pattern.skews.max() == pytest.approx(s)

    def test_semantics_of_directional_shapes(self):
        p, s = 16, 1.0
        asc = generate_pattern("ascending", p, s).skews
        desc = generate_pattern("descending", p, s).skews
        assert asc[0] == 0 and asc[-1] == s
        assert np.all(np.diff(asc) > 0)
        assert np.array_equal(desc, asc[::-1])
        first = generate_pattern("first_delayed", p, s).skews
        assert first[0] == s and np.all(first[1:] == 0)
        last = generate_pattern("last_delayed", p, s).skews
        assert last[-1] == s and np.all(last[:-1] == 0)
        stp = generate_pattern("step", p, s).skews
        assert np.all(stp[: p // 2] == 0) and np.all(stp[p // 2 :] == s)
        zig = generate_pattern("zigzag", p, s).skews
        assert np.all(zig[0::2] == 0) and np.all(zig[1::2] == s)
        bellp = generate_pattern("bell", p, s).skews
        assert bellp.argmax() in (p // 2 - 1, p // 2)

    def test_random_is_seed_deterministic(self):
        a = generate_pattern("random", 32, 1e-3, seed=5).skews
        b = generate_pattern("random", 32, 1e-3, seed=5).skews
        c = generate_pattern("random", 32, 1e-3, seed=6).skews
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_no_delay_is_all_zero(self):
        assert np.all(no_delay_pattern(10).skews == 0)

    def test_unknown_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_pattern("spiral", 8, 1.0)

    @pytest.mark.parametrize("kwargs", [dict(num_ranks=0), dict(max_skew=-1.0)])
    def test_bad_parameters_rejected(self, kwargs):
        base = dict(shape="random", num_ranks=8, max_skew=1.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            generate_pattern(base["shape"], base["num_ranks"], base["max_skew"])


class TestArrivalPattern:
    def test_scaled_to(self):
        pattern = generate_pattern("ascending", 8, 2.0)
        scaled = pattern.scaled_to(0.5)
        assert scaled.max_skew == pytest.approx(0.5)
        assert np.allclose(scaled.skews * 4, pattern.skews)

    def test_scaled_zero_pattern(self):
        assert no_delay_pattern(4).scaled_to(1.0).max_skew == 0.0

    def test_negative_skews_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrivalPattern("bad", np.array([-1.0, 0.0]))

    @given(st.integers(min_value=1, max_value=100),
           st.floats(min_value=0, max_value=10, allow_nan=False))
    def test_skew_of_matches_array(self, p, s):
        pattern = generate_pattern("random", p, s, seed=1)
        for rank in range(0, p, max(1, p // 7)):
            assert pattern.skew_of(rank) == pattern.skews[rank]


class TestPatternFiles:
    def test_roundtrip(self, tmp_path):
        pattern = generate_pattern("bell", 12, 3.5e-3, seed=2)
        path = tmp_path / "bell.pattern"
        write_pattern_file(path, pattern)
        back = read_pattern_file(path)
        assert back.name == "bell"
        assert np.allclose(back.skews, pattern.skews)

    def test_file_has_one_line_per_rank(self, tmp_path):
        pattern = generate_pattern("step", 9, 1.0)
        path = tmp_path / "step.pattern"
        write_pattern_file(path, pattern)
        data_lines = [
            l for l in path.read_text().splitlines() if l and not l.startswith("#")
        ]
        assert len(data_lines) == 9

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.pattern"
        path.write_text("0.1\nnot-a-number\n")
        with pytest.raises(TraceFormatError):
            read_pattern_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.pattern"
        path.write_text("# nothing\n")
        with pytest.raises(TraceFormatError):
            read_pattern_file(path)


class TestSkewPolicies:
    def test_mean_runtime_policy(self):
        assert skew_from_mean_runtime([1.0, 2.0, 3.0], factor=1.5) == pytest.approx(3.0)
        assert skew_from_mean_runtime({"a": 2.0, "b": 4.0}, factor=0.5) == pytest.approx(1.5)

    def test_per_algorithm_policy(self):
        skews = per_algorithm_skews({"lin": 1e-3, "bruck": 4e-3})
        assert skews == {"lin": 1e-3, "bruck": 4e-3}

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            skew_from_mean_runtime([])
        with pytest.raises(ConfigurationError):
            skew_from_mean_runtime([1.0], factor=-1)
        with pytest.raises(ConfigurationError):
            per_algorithm_skews({"x": -1.0})
