"""Instrumentation must never change simulated results.

The determinism contract of the observability layer: opening a session only
*reads* clocks, so a traced run is bit-for-bit identical to an untraced one,
and disabled-mode instrumentation costs no allocations on the hot paths.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.bench.micro import MicroBenchmark
from repro.obs.context import NULL_CONTEXT, current
from repro.patterns.generator import generate_pattern
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform


def _bench(nodes: int = 2, cores: int = 4) -> MicroBenchmark:
    return MicroBenchmark(
        platform=Platform(name="parity", nodes=nodes, cores_per_node=cores),
        nrep=2,
    )


def _run_cell(bench: MicroBenchmark):
    pattern = generate_pattern("ascending", bench.num_ranks, 5e-4, seed=0)
    return bench.run("alltoall", "pairwise", 1024, pattern)


class TestTracedUntracedParity:
    def test_bench_results_bit_identical(self):
        untraced = _run_cell(_bench())
        with obs.session() as octx:
            traced = _run_cell(_bench())
        assert untraced.to_dict() == traced.to_dict()
        # The traced run actually recorded something (the test is vacuous
        # otherwise).
        assert len(octx.spans) > 0
        assert octx.metrics.get("collective.calls.alltoall.pairwise").value > 0

    def test_metrics_only_session_also_parity(self):
        untraced = _run_cell(_bench())
        with obs.session(record_spans=False):
            traced = _run_cell(_bench())
        assert untraced.to_dict() == traced.to_dict()

    def test_raw_run_processes_parity(self):
        platform = Platform(name="parity", nodes=2, cores_per_node=2)

        def prog(ctx):
            peer = (ctx.rank + 1) % ctx.size
            yield from ctx.sendrecv(peer, (ctx.rank - 1) % ctx.size, nbytes=256)
            yield from ctx.barrier()
            return ctx.time()

        plain = run_processes(platform, prog)
        with obs.session():
            traced = run_processes(platform, prog)
        assert plain.final_time == traced.final_time
        assert plain.rank_times == traced.rank_times
        assert plain.events_processed == traced.events_processed

    def test_session_engine_aggregate_counts_runs(self):
        with obs.session() as octx:
            _run_cell(_bench())
        assert octx.engine_stats is not None
        assert octx.engine_stats.runs == 1

    def test_parity_with_labeled_flow_metrics(self):
        # The flow engine's labeled counters (flow.batches{algorithm=...})
        # must not perturb results either: labels only change how counts
        # are keyed, never what the simulation computes.
        from repro.collectives import run_collective
        from repro.collectives.base import CollArgs
        from repro.sim.flow import FlowConfig

        platform = Platform(name="parity", nodes=16, cores_per_node=4)
        args = CollArgs(count=8, msg_bytes=2048.0)

        def prog(ctx):
            data = np.arange(ctx.size * args.count,
                             dtype=np.float64).reshape(ctx.size, -1)
            out = yield from run_collective(
                ctx, "alltoall", "basic_linear", args, data + ctx.rank
            )
            return out

        flow = FlowConfig(mode="hybrid", declared_spread=0.0)
        plain = run_processes(platform, prog, flow=flow)
        with obs.session() as octx:
            traced = run_processes(platform, prog, flow=flow)
        assert plain.final_time == traced.final_time
        assert plain.rank_times == traced.rank_times
        assert plain.events_processed == traced.events_processed
        for a, b in zip(plain.rank_results, traced.rank_results):
            np.testing.assert_array_equal(a, b)
        # The traced run recorded the labeled counter (vacuity guard) and
        # the key round-trips through the exposition parser.
        key = obs.metric_key("flow.batches", {"algorithm": "basic_linear"})
        assert octx.metrics.get(key).value == 1
        assert obs.parse_metric_key(key) == (
            "flow.batches", {"algorithm": "basic_linear"})

    def test_link_recording_parity_exact_engine(self):
        untraced = _run_cell(_bench())
        with obs.session(record_links=True) as octx:
            traced = _run_cell(_bench())
        assert untraced.to_dict() == traced.to_dict()
        # Vacuity guard: the fabric recorder actually captured claims.
        assert len(octx.links) > 0

    def test_link_recording_parity_flow_engine(self):
        from repro.collectives import run_collective
        from repro.collectives.base import CollArgs
        from repro.sim.flow import FlowConfig

        platform = Platform(name="parity", nodes=16, cores_per_node=4)
        args = CollArgs(count=8, msg_bytes=2048.0)

        def prog(ctx):
            data = np.arange(ctx.size * args.count,
                             dtype=np.float64).reshape(ctx.size, -1)
            out = yield from run_collective(
                ctx, "alltoall", "basic_linear", args, data + ctx.rank
            )
            return out

        flow = FlowConfig(mode="hybrid", declared_spread=0.0)
        plain = run_processes(platform, prog, flow=flow)
        with obs.session(record_links=True) as octx:
            traced = run_processes(platform, prog, flow=flow)
        assert plain.final_time == traced.final_time
        assert plain.rank_times == traced.rank_times
        assert plain.events_processed == traced.events_processed
        for a, b in zip(plain.rank_results, traced.rank_results):
            np.testing.assert_array_equal(a, b)
        # The flow path wrote back synthetic aggregates, not nothing.
        assert len(octx.links) > 0


class TestDisabledModeIsInert:
    def test_no_session_leaves_null_context(self):
        _run_cell(_bench())
        assert current() is NULL_CONTEXT
        assert NULL_CONTEXT.metrics.snapshot() == {}

    def test_engine_skips_span_hook_when_disabled(self):
        from repro.sim.engine import Engine
        from repro.sim.network import NetworkModel, NetworkParams

        platform = Platform(name="parity", nodes=1, cores_per_node=2)
        network = NetworkModel(platform, NetworkParams())
        assert Engine(2, network)._obs is None
        with obs.session():
            assert Engine(2, network)._obs is not None
        with obs.session(record_spans=False):
            # Metrics-only sessions keep the engine's per-fiber hook off.
            assert Engine(2, network)._obs is None

    def test_engine_skips_link_hook_unless_requested(self):
        from repro.sim.engine import Engine
        from repro.sim.network import NetworkModel, NetworkParams

        platform = Platform(name="parity", nodes=1, cores_per_node=2)
        network = NetworkModel(platform, NetworkParams())
        # Link recording is opt-in: the hot path keeps its single None
        # check in every other mode, including full-trace sessions.
        assert Engine(2, network)._obs_link is None
        with obs.session():
            assert Engine(2, network)._obs_link is None
        with obs.session(record_links=True) as octx:
            assert Engine(2, network)._obs_link is octx.links

    def test_disabled_wall_span_is_shared_nullcontext(self):
        cm1 = NULL_CONTEXT.wall_span("a")
        cm2 = NULL_CONTEXT.wall_span("b", args={"k": 1})
        assert cm1 is cm2  # no per-call allocation

    def test_untraced_rank_results_match_numpy_reference(self):
        # Unchanged semantic results under instrumentation: validate the
        # collective's payload too, not just timing.
        from repro.collectives import make_input, reference_result, run_collective
        from repro.collectives.base import CollArgs

        platform = Platform(name="parity", nodes=1, cores_per_node=4)
        args = CollArgs(count=4, msg_bytes=64.0)
        inputs = [make_input("allgather", r, 4, 4) for r in range(4)]

        def prog(ctx):
            out = yield from run_collective(
                ctx, "allgather", "ring", args, inputs[ctx.rank]
            )
            return out

        with obs.session():
            run = run_processes(platform, prog)
        for rank in range(4):
            expected = reference_result("allgather", inputs, args, rank)
            np.testing.assert_array_equal(run.rank_results[rank], expected)
