"""Unit tests for the flow-level fast path (:mod:`repro.sim.flow`).

The bitwise hybrid-vs-exact sweeps live in ``test_engine_parity.py``; this
file covers the building blocks: the sequential port-chain kernel, platform
classification, dispatch eligibility (including fallback reasons and their
counters), gate protocol errors, and the engine's max_events diagnostics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.collectives import CollArgs, run_collective
from repro.errors import ConfigurationError, SimulationError
from repro.sim.flow import (
    ENGINE_MODES,
    FlowConfig,
    _seq_chain,
    get_descriptor,
)
from repro.sim.mpi import build_engine, run_processes
from repro.sim.platform import Platform

HETERO = Platform("hetero", nodes=16, cores_per_node=4)
UNIFORM = Platform("uniform", nodes=64, cores_per_node=1)
INTRA = Platform("intra", nodes=1, cores_per_node=64)

ARGS = CollArgs(count=8, msg_bytes=2048.0)


def _alltoall_data(p, count):
    return np.arange(p * count, dtype=np.float64).reshape(p, count)


def _single_collective_prog(collective, algorithm, args, skews=None):
    def prog(ctx):
        if skews is not None:
            yield ctx.wait_until(float(skews[ctx.rank]))
        if collective == "barrier":
            data = None
        elif collective == "alltoall":
            data = _alltoall_data(ctx.size, args.count) + ctx.rank
        else:
            data = np.arange(args.count, dtype=np.float64) + ctx.rank
        return (yield from run_collective(ctx, collective, algorithm, args, data))

    return prog


def _run_flow(plat, prog, flow):
    """Run and return (result, flow_runtime) so counters are inspectable."""
    engine, contexts = build_engine(plat, flow=flow)
    for rank, ctx in enumerate(contexts):
        engine.set_process(rank, prog(ctx))
    engine.run()
    return engine


# --------------------------------------------------------------------- #
# _seq_chain: the exact sequential port-claim kernel
# --------------------------------------------------------------------- #


def _seq_chain_scalar(a, t, free0):
    """The definitional left fold _seq_chain must match bit-for-bit."""
    out = np.empty(len(a))
    prev = free0
    for i in range(len(a)):
        start = a[i] if a[i] > prev else prev
        prev = start + t[i]
        out[i] = prev
    return out, prev


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_seq_chain_matches_scalar_fold(seed):
    rng = np.random.default_rng(seed)
    n = 257
    a = np.cumsum(rng.uniform(0, 2e-6, n))        # mostly increasing claims
    a[rng.integers(0, n, 40)] = a[n // 2]         # inject ties and back-jumps
    t = rng.uniform(1e-7, 5e-6, n)
    free0 = float(a[3])
    ends, last = _seq_chain(a, t, free0)
    ref_ends, ref_last = _seq_chain_scalar(a, t, free0)
    assert np.array_equal(ends, ref_ends)         # bitwise, not approx
    assert last == ref_last


def test_seq_chain_idle_port():
    a = np.array([5.0, 6.0, 9.0])
    t = np.array([0.5, 0.5, 0.5])
    ends, last = _seq_chain(a, t, 0.0)
    assert ends.tolist() == [5.5, 6.5, 9.5]
    assert last == 9.5


def test_seq_chain_busy_port_serializes():
    a = np.zeros(4)
    t = np.full(4, 1.0)
    ends, last = _seq_chain(a, t, 10.0)
    assert ends.tolist() == [11.0, 12.0, 13.0, 14.0]
    assert last == 14.0


# --------------------------------------------------------------------- #
# Platform classification
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "plat,private,uniform",
    [
        (HETERO, False, False),   # multi-rank nodes + shared NIC + two classes
        (UNIFORM, True, True),    # one rank per node: all inter, private ports
        (INTRA, True, True),      # one node: all intra, node ports unused
    ],
)
def test_net_tables_port_privacy(plat, private, uniform):
    engine, _ = build_engine(plat, flow=FlowConfig(mode="hybrid"))
    nt = engine.flow_runtime.net_tables
    assert nt.private_ports is private
    assert nt.uniform is uniform


# --------------------------------------------------------------------- #
# Single-port-owner scan (shared-platform stepped eligibility)
# --------------------------------------------------------------------- #


def _plan_for(plat, collective, algorithm, args=ARGS):
    engine, _ = build_engine(plat, flow=FlowConfig(mode="hybrid"))
    fn = get_descriptor(collective, algorithm)
    assert fn is not None
    plan = fn(engine.num_procs, args, engine.network)
    assert plan is not None
    return engine.flow_runtime, plan


def test_ring_schedule_is_single_owner_on_smp():
    rt, plan = _plan_for(HETERO, "allgather", "ring")
    assert rt._single_port_owner(plan, ARGS) is True


def test_strided_schedules_are_contended_on_smp():
    for collective, algorithm in [
        ("alltoall", "pairwise"),
        ("allreduce", "recursive_doubling"),
        ("barrier", "bruck"),
    ]:
        args = CollArgs(count=1, msg_bytes=0.0) if collective == "barrier" else ARGS
        rt, plan = _plan_for(HETERO, collective, algorithm, args)
        assert rt._single_port_owner(plan, args) is False, (collective, algorithm)


def test_owner_scan_verdict_is_cached():
    rt, plan = _plan_for(HETERO, "allgather", "ring")
    rt._single_port_owner(plan, ARGS)
    key = (plan.collective, plan.algorithm, rt.net_tables.p, ARGS.count,
           ARGS.msg_bytes)
    assert rt._owner_cache[key] is True


# --------------------------------------------------------------------- #
# Dispatch eligibility and fallback counters
# --------------------------------------------------------------------- #


def test_flow_engages_on_eligible_cell():
    prog = _single_collective_prog("alltoall", "basic_linear", ARGS)
    engine = _run_flow(HETERO, prog, FlowConfig(mode="hybrid", declared_spread=0.0))
    rt = engine.flow_runtime
    assert rt.batches == 1
    assert rt.fallback_calls == 0
    assert rt.messages_collapsed == 64 * 63
    assert engine.events_processed <= 4 * 64


def test_shared_contention_falls_back():
    prog = _single_collective_prog("alltoall", "pairwise", ARGS)
    engine = _run_flow(HETERO, prog, FlowConfig(mode="hybrid", declared_spread=0.0))
    rt = engine.flow_runtime
    assert rt.batches == 0
    assert rt.fallback_calls == 1          # counted once, not once per rank
    assert rt.fallback_messages == 64 * 63


def test_vector_args_fall_back_with_reason():
    """Vector collectives always take the exact path, labeled reason=vector."""
    from repro.collectives import VectorArgs, make_vector_input

    p = HETERO.num_ranks
    counts = tuple(tuple(0 if i == j else 2 for j in range(p))
                   for i in range(p))
    args = VectorArgs(counts=counts)

    def prog(ctx):
        data = make_vector_input("alltoallv", ctx.rank, p, args)
        return (yield from run_collective(
            ctx, "alltoallv", "basic_linear", args, data))

    with obs.session(meta={"test": "vector_fallback"}) as octx:
        engine = _run_flow(
            HETERO, prog, FlowConfig(mode="hybrid", declared_spread=0.0))
        snap = octx.metrics.snapshot()
    rt = engine.flow_runtime
    assert rt.batches == 0
    # Like "no_plan", the vector early-return counts only in the labeled
    # obs counter; the plain attribute means "a plan existed but fell back".
    assert rt.fallback_calls == 0
    assert snap['flow.fallback_calls{reason="vector"}']["value"] == 1
    assert 'flow.fallback_calls{reason="no_plan"}' not in snap


def test_unknown_spread_falls_back():
    prog = _single_collective_prog("alltoall", "basic_linear", ARGS)
    engine = _run_flow(HETERO, prog, FlowConfig(mode="hybrid", declared_spread=None))
    assert engine.flow_runtime.batches == 0
    assert engine.flow_runtime.fallback_calls == 1


def test_declared_skew_beyond_tolerance_falls_back():
    skews = np.linspace(0, 100e-6, HETERO.num_ranks)
    prog = _single_collective_prog("alltoall", "basic_linear", ARGS, skews=skews)
    engine = _run_flow(
        HETERO, prog, FlowConfig(mode="hybrid", declared_spread=100e-6)
    )
    assert engine.flow_runtime.batches == 0
    assert engine.flow_runtime.fallback_calls == 1


def test_skewed_stepped_engages_on_private_ports():
    skews = np.linspace(0, 100e-6, UNIFORM.num_ranks)
    prog = _single_collective_prog("alltoall", "pairwise", ARGS, skews=skews)
    engine = _run_flow(
        UNIFORM, prog, FlowConfig(mode="hybrid", declared_spread=100e-6)
    )
    assert engine.flow_runtime.batches == 1


def test_flow_counters_reach_obs_metrics():
    prog = _single_collective_prog("alltoall", "basic_linear", ARGS)
    with obs.session(meta={"test": "flow_counters"}) as octx:
        _run_flow(HETERO, prog, FlowConfig(mode="hybrid", declared_spread=0.0))
        snap = octx.metrics.snapshot()
    key = 'flow.batches{algorithm="basic_linear"}'
    assert snap[key]["value"] == 1
    assert snap['flow.messages_collapsed{algorithm="basic_linear"}'][
        "value"] == 64 * 63
    # The labeled key parses back to (name, labels) for exposition.
    assert obs.parse_metric_key(key) == (
        "flow.batches", {"algorithm": "basic_linear"})


# --------------------------------------------------------------------- #
# Gate protocol and resolve-time checks
# --------------------------------------------------------------------- #


def test_gate_signature_mismatch_raises():
    def prog(ctx):
        tag = 1 if ctx.rank == 0 else 2     # diverging parameters
        args = CollArgs(count=8, msg_bytes=2048.0, tag=tag)
        data = _alltoall_data(ctx.size, 8)
        return (yield from run_collective(ctx, "alltoall", "basic_linear", args, data))

    with pytest.raises(SimulationError, match="flow gate mismatch"):
        run_processes(HETERO, prog,
                      flow=FlowConfig(mode="hybrid", declared_spread=0.0))


def test_stale_declaration_raises_at_resolve():
    # Two back-to-back collectives: ranks exit the first at different times,
    # so the second gate sees a real spread the declaration (0.0) promised
    # away.  The gate must refuse rather than silently mis-replay.
    def prog(ctx):
        data = _alltoall_data(ctx.size, 8)
        args1 = CollArgs(count=8, msg_bytes=2048.0, tag=1)
        args2 = CollArgs(count=8, msg_bytes=2048.0, tag=2)
        yield from run_collective(ctx, "alltoall", "basic_linear", args1, data)
        return (yield from run_collective(ctx, "alltoall", "basic_linear", args2, data))

    with pytest.raises(SimulationError, match="actual entry spread"):
        run_processes(HETERO, prog,
                      flow=FlowConfig(mode="hybrid", declared_spread=0.0))


def test_forced_flow_mode_accepts_skew():
    # mode="flow" takes the analytic batch regardless of skew — it must
    # complete and collapse the phase (no bitwise claim here).
    skews = np.linspace(0, 200e-6, HETERO.num_ranks)
    prog = _single_collective_prog("alltoall", "basic_linear", ARGS, skews=skews)
    engine = _run_flow(HETERO, prog, FlowConfig(mode="flow"))
    assert engine.flow_runtime.batches == 1
    assert engine.now > 0


def test_payloads_disabled_returns_none():
    prog = _single_collective_prog("alltoall", "basic_linear", ARGS)
    result = run_processes(
        HETERO, prog,
        flow=FlowConfig(mode="hybrid", declared_spread=0.0, payloads=False),
    )
    assert all(r is None for r in result.rank_results)
    assert result.final_time > 0


# --------------------------------------------------------------------- #
# Config validation and engine diagnostics
# --------------------------------------------------------------------- #


def test_flow_config_validation():
    assert ENGINE_MODES == ("exact", "hybrid", "flow")
    with pytest.raises(ConfigurationError, match="unknown engine mode"):
        FlowConfig(mode="fast")
    with pytest.raises(ConfigurationError, match="tolerance"):
        FlowConfig(tolerance=-1e-9)
    with pytest.raises(ConfigurationError, match="declared_spread"):
        FlowConfig(declared_spread=-1.0)


def test_max_events_error_names_activity_and_suggests_hybrid():
    engine, contexts = build_engine(HETERO)
    engine.max_events = 500       # far below the ~4k events this cell needs
    prog = _single_collective_prog("alltoall", "basic_linear", ARGS)
    for rank, ctx in enumerate(contexts):
        engine.set_process(rank, prog(ctx))
    with pytest.raises(SimulationError) as exc:
        engine.run()
    msg = str(exc.value)
    assert "alltoall/basic_linear" in msg
    assert "--engine-mode hybrid" in msg
