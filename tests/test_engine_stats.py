"""EngineStats observability and matching-queue hygiene."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import (
    ANY_SOURCE,
    ANY_TAG,
    Engine,
    EngineStats,
    disable_stats_aggregation,
    enable_stats_aggregation,
)
from repro.sim.mpi import build_engine, run_processes
from repro.sim.network import NetworkModel, NetworkParams
from repro.sim.platform import Platform


@pytest.fixture
def plat() -> Platform:
    return Platform("stats", nodes=2, cores_per_node=4)


def exchange_prog(ctx):
    """Every rank sends to and receives from its neighbour."""
    peer = ctx.rank ^ 1
    sreq = ctx.isend(peer, nbytes=64, tag=2)
    rreq = ctx.irecv(peer, tag=2)
    yield ctx.waitall(sreq, rreq)
    return rreq.source_rank


class TestEngineStats:
    def test_run_result_carries_stats(self, plat):
        res = run_processes(plat, exchange_prog)
        stats = res.engine_stats
        assert stats is not None
        assert stats.events_total == res.events_processed
        assert stats.events_start == plat.num_ranks
        assert stats.events_deliver == plat.num_ranks  # one message per rank
        assert stats.runs == 1
        assert stats.peak_heap > 0
        assert stats.wall_seconds > 0
        assert stats.events_per_sec > 0

    def test_fast_path_counters(self, plat):
        res = run_processes(plat, exchange_prog)
        stats = res.engine_stats
        # All receives are exact and no wildcard is ever posted.
        assert stats.match_fast == plat.num_ranks
        assert stats.match_scan == 0
        assert stats.posted_fast == plat.num_ranks
        assert stats.posted_wild == 0

    def test_wildcard_counters(self, plat):
        def prog(ctx):
            if ctx.rank == 0:
                req = yield from ctx.recv(ANY_SOURCE, tag=ANY_TAG)
                return req.source_rank
            elif ctx.rank == 1:
                yield from ctx.send(0, nbytes=8, tag=4)

        res = run_processes(plat, prog)
        stats = res.engine_stats
        assert stats.match_scan == 1  # the wildcard irecv probes the queues
        assert stats.posted_wild == 1  # the arriving message sees a live wildcard

    def test_to_dict_and_summary(self, plat):
        stats = run_processes(plat, exchange_prog).engine_stats
        d = stats.to_dict()
        assert d["events_total"] == stats.events_total
        assert d["events_per_sec"] == stats.events_per_sec
        assert d["peak_heap"] == stats.peak_heap
        text = stats.summary()
        assert f"{stats.events_total} events" in text
        assert "peak heap" in text

    def test_merge_accumulates(self, plat):
        a = run_processes(plat, exchange_prog).engine_stats
        b = run_processes(plat, exchange_prog).engine_stats
        total = EngineStats()
        total.merge(a)
        total.merge(b)
        assert total.events_total == a.events_total + b.events_total
        assert total.runs == 2
        assert total.peak_heap == max(a.peak_heap, b.peak_heap)

    def test_aggregation_collects_across_runs(self, plat):
        agg = enable_stats_aggregation()
        try:
            first = run_processes(plat, exchange_prog)
            second = run_processes(plat, exchange_prog)
        finally:
            disable_stats_aggregation()
        assert agg.runs == 2
        assert agg.events_total == (
            first.engine_stats.events_total + second.engine_stats.events_total
        )
        # Disabling stops further accumulation.
        run_processes(plat, exchange_prog)
        assert agg.runs == 2

    def test_max_events_error_includes_stats(self, plat):
        network = NetworkModel(plat, NetworkParams())
        engine = Engine(plat.num_ranks, network, max_events=3)

        def prog():
            while True:
                yield ("sleep", 1e-6)

        for rank in range(plat.num_ranks):
            engine.set_process(rank, prog())
        with pytest.raises(SimulationError, match="max_events=3") as err:
            engine.run()
        # Diagnosable from the message alone: the stats digest rides along.
        assert "events" in str(err.value)
        assert "peak heap" in str(err.value)


class TestQueueHygiene:
    def test_unexpected_and_posted_dicts_drain_empty(self, plat):
        """Long multi-collective programs must not leak one dict entry per
        (src, tag) pair ever used: keys are deleted when their deque empties."""
        engine, contexts = build_engine(plat)

        def prog(ctx):
            peer = ctx.rank ^ 1
            for tag in range(40):  # 40 distinct (src, tag) pairs per proc
                sreq = ctx.isend(peer, nbytes=16, tag=tag)
                rreq = ctx.irecv(peer, tag=tag)
                yield ctx.waitall(sreq, rreq)

        for rank, ctx in enumerate(contexts):
            engine.set_process(rank, prog(ctx))
        engine.run()
        for proc in engine.procs:
            assert proc.unexpected == {}
            assert proc.posted == {}
            assert proc.wild_posted == 0

    def test_wildcard_scan_path_also_prunes(self, plat):
        engine, contexts = build_engine(plat)

        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.sleep(1e-3)  # let both messages become unexpected
                for _ in range(2):
                    yield from ctx.recv(ANY_SOURCE, tag=ANY_TAG)
            elif ctx.rank in (1, 2):
                yield from ctx.send(0, nbytes=8, tag=ctx.rank)

        for rank, ctx in enumerate(contexts):
            engine.set_process(rank, prog(ctx))
        engine.run()
        assert engine.procs[0].unexpected == {}
        assert engine.procs[0].posted == {}
