"""Tests for the three-level (Dragonfly-style) topology support."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.network import NetworkModel, NetworkParams
from repro.sim.platform import Platform, get_machine


@pytest.fixture
def grouped_platform() -> Platform:
    """4 groups x 2 nodes x 2 cores = 16 ranks."""
    return Platform("dragonfly", nodes=8, cores_per_node=2, nodes_per_group=2)


class TestGroupedPlatform:
    def test_group_mapping(self, grouped_platform):
        plat = grouped_platform
        assert plat.num_groups == 4
        assert plat.group_of_node(0) == 0
        assert plat.group_of_node(1) == 0
        assert plat.group_of_node(2) == 1
        assert plat.group_of_node(7) == 3

    def test_group_table_matches_scalar(self, grouped_platform):
        table = grouped_platform.group_of_rank_table()
        for rank in range(grouped_platform.num_ranks):
            node = grouped_platform.node_of_rank(rank)
            assert table[rank] == grouped_platform.group_of_node(node)

    def test_two_level_platform_has_one_group(self):
        plat = Platform("flat", nodes=4, cores_per_node=4)
        assert plat.num_groups == 1
        assert set(plat.group_of_rank_table()) == {0}

    def test_uneven_group_division(self):
        plat = Platform("odd", nodes=5, cores_per_node=1, nodes_per_group=2)
        assert plat.num_groups == 3
        assert plat.group_of_node(4) == 2

    def test_invalid_group_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Platform("bad", nodes=4, cores_per_node=2, nodes_per_group=0)


class TestThreeLevelNetwork:
    def test_latency_hierarchy(self, grouped_platform):
        model = NetworkModel(
            grouped_platform,
            NetworkParams(
                intra_latency=0.5e-6,
                inter_latency=1.0e-6,
                group_latency=2.0e-6,
            ),
        )
        assert model.latency(0, 1) == 0.5e-6  # same node
        assert model.latency(0, 2) == 1.0e-6  # same group, different node
        assert model.latency(0, 4) == 2.0e-6  # different group

    def test_group_bandwidth(self, grouped_platform):
        model = NetworkModel(
            grouped_platform,
            NetworkParams(
                intra_bandwidth=4e9, inter_bandwidth=2e9, group_bandwidth=1e9
            ),
        )
        nbytes = 1000
        assert model.transmission_time(0, 1, nbytes) == pytest.approx(nbytes / 4e9)
        assert model.transmission_time(0, 2, nbytes) == pytest.approx(nbytes / 2e9)
        assert model.transmission_time(0, 4, nbytes) == pytest.approx(nbytes / 1e9)

    def test_group_params_default_to_inter(self, grouped_platform):
        model = NetworkModel(grouped_platform, NetworkParams(inter_latency=1.5e-6))
        assert model.latency(0, 4) == 1.5e-6

    def test_group_param_validation(self, grouped_platform):
        with pytest.raises(ConfigurationError):
            NetworkModel(grouped_platform, NetworkParams(group_latency=-1e-6))
        with pytest.raises(ConfigurationError):
            NetworkModel(grouped_platform, NetworkParams(group_bandwidth=0.0))

    def test_discoverer_preset_is_grouped(self):
        spec = get_machine("discoverer")
        assert spec.platform.nodes_per_group == 8
        assert spec.network["group_latency"] > spec.network["inter_latency"]
