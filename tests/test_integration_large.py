"""Large-scale integration smoke tests (64 ranks, every collective family).

These catch scale-dependent schedule bugs (wrap-arounds, non-power-of-two
folds, deep trees) that small-p unit tests can miss, and pin down the
end-to-end pipeline: trace -> pattern -> benchmark -> selection -> export.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.collectives  # noqa: F401
from repro.collectives import list_algorithms, reference_result
from repro.selection import RobustAverageSelector, SelectionTable, write_ompi_rules_file
from tests.helpers import run_collective_all_ranks

LARGE_P = 64


@pytest.mark.parametrize(
    "collective",
    ["bcast", "reduce", "allreduce", "alltoall", "allgather",
     "gather", "scatter", "reduce_scatter", "scan", "exscan"],
)
def test_every_family_correct_at_64_ranks(collective):
    """One representative algorithm per family at 64 ranks."""
    algo = list_algorithms(collective)[0]
    results, run, args, inputs = run_collective_all_ranks(
        collective, algo, LARGE_P, count=LARGE_P * 2, cores_per_node=8
    )
    for rank in (0, 1, 31, 63):
        expected = reference_result(collective, inputs, args, rank)
        got = results[rank]
        if expected is None:
            assert got is None
        else:
            assert np.array_equal(np.asarray(got), expected)


@pytest.mark.parametrize("algo", list_algorithms("alltoall"))
def test_alltoall_all_algorithms_at_64_ranks(algo):
    """The paper's central collective gets full coverage at scale."""
    results, _, args, inputs = run_collective_all_ranks(
        "alltoall", algo, LARGE_P, count=4, cores_per_node=8
    )
    for rank in range(0, LARGE_P, 7):
        expected = reference_result("alltoall", inputs, args, rank)
        assert np.array_equal(results[rank], expected), f"{algo} rank {rank}"


@pytest.mark.parametrize("size", [48, 63])  # non-power-of-two at scale
@pytest.mark.parametrize("algo", ["rabenseifner", "recursive_doubling"])
def test_allreduce_fold_paths_at_scale(size, algo):
    results, _, args, inputs = run_collective_all_ranks(
        "allreduce", algo, size, count=size + 3, cores_per_node=8
    )
    expected = np.sum(np.stack(inputs), axis=0)
    for rank in (0, 1, size // 2, size - 1):
        assert np.array_equal(results[rank], expected)


def test_full_pipeline_trace_to_rules_file(tmp_path):
    """End to end: FT trace -> scenario pattern -> sweep -> table -> OMPI file."""
    from repro.apps import FTProxy
    from repro.bench import MicroBenchmark, sweep_shared_skew
    from repro.sim.platform import get_machine
    from repro.tracing import CollectiveTracer, max_observed_skew, pattern_from_trace

    spec = get_machine("hydra")
    nodes, cores = 4, 4
    p = nodes * cores
    ft = FTProxy.class_d_scaled(spec, nodes=nodes, cores_per_node=cores,
                                seed=2, iterations=4)
    tracer = CollectiveTracer()
    ft.run(tracer)
    scenario = pattern_from_trace(tracer, "alltoall", p)
    skew = max_observed_skew(tracer, "alltoall", p)
    assert skew > 0

    bench = MicroBenchmark.from_machine(spec, nodes=nodes, cores_per_node=cores, nrep=1)
    sweep = sweep_shared_skew(
        bench, "alltoall", ["basic_linear", "pairwise", "bruck", "linear_sync"],
        32768, ["first_delayed", "random"], max_skew=skew,
        extra_patterns=[scenario],
    )
    table = SelectionTable()
    winner = table.add_sweep(sweep, RobustAverageSelector(exclude=("ft_scenario",)))
    assert winner in sweep.algorithms
    assert table.lookup("alltoall", p, 32768) == winner

    rules = tmp_path / "rules.conf"
    write_ompi_rules_file(rules, table)
    content = rules.read_text()
    assert content.splitlines()[0] == "1"
    assert "# alltoall" in content
