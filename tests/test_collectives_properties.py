"""Property-based tests (hypothesis) over the collective library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.collectives  # noqa: F401 - populate registry
from repro.collectives import SUM, list_algorithms, reference_result
from tests.helpers import run_collective_all_ranks

_slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


@_slow
@given(
    size=st.integers(min_value=1, max_value=12),
    count=st.integers(min_value=1, max_value=40),
    algo=st.sampled_from(list_algorithms("allreduce")),
    data=st.data(),
)
def test_allreduce_equals_sum_of_inputs(size, count, algo, data):
    inputs = [
        np.array(
            data.draw(
                st.lists(
                    st.integers(min_value=-(2**30), max_value=2**30),
                    min_size=count,
                    max_size=count,
                )
            ),
            dtype=np.int64,
        )
        for _ in range(size)
    ]
    results, _, args, _ = run_collective_all_ranks(
        "allreduce", algo, size, count=count, inputs=inputs
    )
    expected = np.sum(np.stack(inputs), axis=0)
    for rank in range(size):
        assert np.array_equal(results[rank], expected)


@_slow
@given(
    size=st.integers(min_value=1, max_value=10),
    count=st.integers(min_value=1, max_value=16),
    algo=st.sampled_from(list_algorithms("alltoall")),
)
def test_alltoall_is_matrix_transpose(size, count, algo):
    """Alltoall is exactly a block transpose: out[me][i] == in[i][me]."""
    results, _, args, inputs = run_collective_all_ranks(
        "alltoall", algo, size, count=count
    )
    for rank in range(size):
        expected = reference_result("alltoall", inputs, args, rank)
        assert np.array_equal(results[rank], expected)


@_slow
@given(
    size=st.integers(min_value=1, max_value=12),
    root=st.data(),
    algo=st.sampled_from(list_algorithms("bcast")),
)
def test_bcast_delivers_root_buffer_everywhere(size, root, algo):
    root = root.draw(st.integers(min_value=0, max_value=size - 1))
    results, _, args, inputs = run_collective_all_ranks(
        "bcast", algo, size, count=12, root=root
    )
    for rank in range(size):
        assert np.array_equal(np.asarray(results[rank]), np.asarray(inputs[root]))


@_slow
@given(
    size=st.integers(min_value=2, max_value=10),
    algo=st.sampled_from(list_algorithms("reduce")),
)
def test_reduce_only_root_returns_data(size, algo):
    results, _, args, inputs = run_collective_all_ranks(
        "reduce", algo, size, count=size * 2, root=size - 1
    )
    expected = np.sum(np.stack(inputs), axis=0)
    for rank in range(size):
        if rank == size - 1:
            assert np.array_equal(results[rank], expected)
        else:
            assert results[rank] is None


@_slow
@given(
    size=st.integers(min_value=1, max_value=10),
    algo=st.sampled_from(list_algorithms("allgather")),
)
def test_allgather_collects_every_contribution(size, algo):
    results, _, args, inputs = run_collective_all_ranks(
        "allgather", algo, size, count=6
    )
    expected = np.stack(inputs)
    for rank in range(size):
        assert np.array_equal(results[rank], expected)


@_slow
@given(
    size=st.integers(min_value=1, max_value=10),
    algo=st.sampled_from(list_algorithms("reduce_scatter")),
)
def test_reduce_scatter_blocks_partition_the_reduction(size, algo):
    results, _, args, inputs = run_collective_all_ranks(
        "reduce_scatter", algo, size, count=4
    )
    total = np.sum(np.stack(inputs), axis=0)
    reassembled = np.concatenate([results[r] for r in range(size)])
    assert np.array_equal(reassembled, total)


@_slow
@given(
    size=st.integers(min_value=2, max_value=12),
    algo=st.sampled_from(list_algorithms("gather")),
    root=st.data(),
)
def test_gather_scatter_roundtrip(size, algo, root):
    """scatter(gather(x)) is the identity on per-rank blocks."""
    root = root.draw(st.integers(min_value=0, max_value=size - 1))
    results, _, args, inputs = run_collective_all_ranks(
        "gather", algo, size, count=5, root=root
    )
    gathered = results[root]
    assert np.array_equal(gathered, np.stack(inputs))
    scat_results, _, sargs, _ = run_collective_all_ranks(
        "scatter", "binomial", size, count=5, root=root,
        inputs=[gathered if r == root else np.zeros_like(gathered) for r in range(size)],
    )
    for rank in range(size):
        assert np.array_equal(scat_results[rank], inputs[rank])
