"""Tests for selection strategies, tables, and the Open MPI rules exporter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.bench.metrics import CollectiveTiming
from repro.bench.results import BenchResult, SweepResult
from repro.selection import (
    MinMaxSelector,
    NoDelaySelector,
    OracleSelector,
    RobustAverageSelector,
    SelectionTable,
    write_ompi_rules_file,
)


def _sweep(table: dict[str, dict[str, float]], collective="alltoall",
           msg_bytes=32768.0, num_ranks=16) -> SweepResult:
    sweep = SweepResult(collective, msg_bytes, num_ranks)
    for pattern, row in table.items():
        for algo, delay in row.items():
            timing = CollectiveTiming(np.zeros(2), np.full(2, delay))
            sweep.add(BenchResult(collective, algo, msg_bytes, num_ranks,
                                  pattern, 0.0, [timing]))
    return sweep


#: A Fig. 8a-like scenario: 'fast_fragile' wins No-delay but collapses under
#: skew; 'robust' is slightly slower synchronized but steady everywhere.
FIG8_LIKE = {
    "no_delay": {"fast_fragile": 1.0, "robust": 1.3, "slowpoke": 4.6},
    "descending": {"fast_fragile": 16.0, "robust": 1.4, "slowpoke": 4.8},
    "random": {"fast_fragile": 8.0, "robust": 1.5, "slowpoke": 4.7},
    "ft_scenario": {"fast_fragile": 6.0, "robust": 1.4, "slowpoke": 4.9},
}


class TestStrategies:
    def test_no_delay_selector_picks_the_trap(self):
        assert NoDelaySelector().select(_sweep(FIG8_LIKE)) == "fast_fragile"

    def test_robust_average_picks_the_steady_algorithm(self):
        assert RobustAverageSelector().select(_sweep(FIG8_LIKE)) == "robust"

    def test_robust_average_exclusion_still_picks_robust(self):
        """The paper's 'Avg (excl. FT-Sce.)': no application knowledge needed."""
        strategy = RobustAverageSelector(exclude=("ft_scenario",))
        assert strategy.select(_sweep(FIG8_LIKE)) == "robust"

    def test_minmax_selector(self):
        assert MinMaxSelector().select(_sweep(FIG8_LIKE)) == "robust"

    def test_oracle_matches_trace_row(self):
        assert OracleSelector("ft_scenario").select(_sweep(FIG8_LIKE)) == "robust"
        flipped = dict(FIG8_LIKE)
        flipped["ft_scenario"] = {"fast_fragile": 0.9, "robust": 1.4, "slowpoke": 4.9}
        assert OracleSelector("ft_scenario").select(_sweep(flipped)) == "fast_fragile"

    def test_oracle_missing_pattern_raises(self):
        with pytest.raises(ConfigurationError):
            OracleSelector("nonexistent").select(_sweep(FIG8_LIKE))

    def test_no_delay_requires_baseline(self):
        table = {"random": {"a": 1.0}}
        with pytest.raises(ConfigurationError):
            NoDelaySelector().select(_sweep(table))


class TestSelectionTable:
    def test_build_and_lookup_with_bucketing(self):
        table = SelectionTable()
        table.add_sweep(_sweep(FIG8_LIKE, msg_bytes=1024.0), RobustAverageSelector())
        table.add_sweep(_sweep(FIG8_LIKE, msg_bytes=65536.0), NoDelaySelector())
        assert table.lookup("alltoall", 16, 1024) == "robust"
        assert table.lookup("alltoall", 16, 32000) == "robust"  # below 64 KiB bucket
        assert table.lookup("alltoall", 16, 65536) == "fast_fragile"
        assert table.lookup("alltoall", 16, 1 << 22) == "fast_fragile"
        assert table.lookup("alltoall", 16, 2) == "robust"  # clamps to smallest

    def test_lookup_without_rules_raises(self):
        with pytest.raises(ConfigurationError):
            SelectionTable().lookup("bcast", 4, 8)

    def test_comm_size_bucketing(self):
        """An untuned rank count resolves to the nearest tuned bucket below."""
        table = SelectionTable()
        table.add_rule("alltoall", 32, 0.0, "bruck")
        table.add_rule("alltoall", 128, 0.0, "pairwise")
        assert table.lookup("alltoall", 48, 8) == "bruck"  # 32 <= 48 < 128
        assert table.lookup("alltoall", 128, 8) == "pairwise"
        assert table.lookup("alltoall", 4096, 8) == "pairwise"
        assert table.lookup("alltoall", 8, 8) == "bruck"  # clamps to smallest
        with pytest.raises(ConfigurationError):
            table.lookup("alltoall", 48, 8, exact_comm_size=True)

    def test_replacing_rule_overwrites(self):
        table = SelectionTable()
        table.add_rule("alltoall", 8, 64.0, "a")
        table.add_rule("alltoall", 8, 64.0, "b")
        assert table.lookup("alltoall", 8, 64) == "b"
        assert len(table.rules_for("alltoall", 8)) == 1

    def test_json_roundtrip(self, tmp_path):
        table = SelectionTable(strategy_name="robust_average")
        table.add_rule("alltoall", 16, 32768.0, "pairwise")
        table.add_rule("reduce", 16, 8.0, "binomial")
        path = tmp_path / "table.json"
        table.save_json(path)
        back = SelectionTable.load_json(path)
        assert back.strategy_name == "robust_average"
        assert back.lookup("alltoall", 16, 32768) == "pairwise"
        assert back.lookup("reduce", 16, 8) == "binomial"

    def test_comm_size_nearest_below_fallback_direct(self):
        """The largest tuned comm size at or below the query applies."""
        table = SelectionTable()
        table.add_rule("allreduce", 16, 0.0, "ring")
        table.add_rule("allreduce", 64, 0.0, "rabenseifner")
        # Between buckets: 16 <= 63 < 64 resolves to the 16-rank rules.
        assert table.lookup("allreduce", 63, 1024) == "ring"
        # Exactly on a bucket boundary uses that bucket.
        assert table.lookup("allreduce", 64, 1024) == "rabenseifner"
        # Above every bucket: the largest tuned size applies.
        assert table.lookup("allreduce", 10_000, 1024) == "rabenseifner"
        # Below every bucket: clamps up to the smallest tuned size.
        assert table.lookup("allreduce", 2, 1024) == "ring"

    def test_empty_rule_list_still_buckets_to_nearest_below(self):
        """An empty rule list at the exact comm size must not short-circuit
        the nearest-below bucketing (regression: `rules is None` guard)."""
        table = SelectionTable()
        table.add_rule("alltoall", 32, 0.0, "bruck")
        table._rules[("alltoall", 64)] = []  # registered but empty
        assert table.lookup("alltoall", 64, 8) == "bruck"
        # comm_sizes/collectives only report sizes that hold rules.
        assert table.comm_sizes("alltoall") == [32]
        assert table.collectives == ["alltoall"]

    def test_comm_size_cache_invalidates_on_add_rule(self):
        table = SelectionTable()
        table.add_rule("alltoall", 32, 0.0, "bruck")
        assert table.comm_sizes("alltoall") == [32]  # primes the cache
        table.add_rule("alltoall", 128, 0.0, "pairwise")
        assert table.comm_sizes("alltoall") == [32, 128]
        assert table.lookup("alltoall", 200, 8) == "pairwise"
        # Mutating the returned list must not corrupt the cache.
        table.comm_sizes("alltoall").append(999)
        assert table.comm_sizes("alltoall") == [32, 128]

    def test_msg_size_below_smallest_bucket_clamps(self):
        """A query smaller than every tuned size uses the smallest rule."""
        table = SelectionTable()
        table.add_rule("alltoall", 16, 1024.0, "bruck")
        table.add_rule("alltoall", 16, 65536.0, "pairwise")
        assert table.lookup("alltoall", 16, 0) == "bruck"
        assert table.lookup("alltoall", 16, 1023) == "bruck"
        assert table.lookup("alltoall", 16, 1024) == "bruck"
        assert table.lookup("alltoall", 16, 65535) == "bruck"
        assert table.lookup("alltoall", 16, 1 << 20) == "pairwise"


class TestTableValidation:
    """load_json / from_dict reject malformed files with a pathful error."""

    def _load(self, tmp_path, payload) -> SelectionTable:
        import json

        path = tmp_path / "table.json"
        path.write_text(json.dumps(payload))
        return SelectionTable.load_json(path)

    def test_to_dict_carries_version(self):
        from repro.selection.table import TABLE_FORMAT_VERSION

        data = SelectionTable(strategy_name="s").to_dict()
        assert data["version"] == TABLE_FORMAT_VERSION

    def test_legacy_file_without_version_loads(self, tmp_path):
        table = self._load(tmp_path, {
            "strategy": "legacy",
            "rules": [{"collective": "alltoall", "comm_size": 8,
                       "msg_bytes": 64.0, "algorithm": "bruck"}],
        })
        assert table.lookup("alltoall", 8, 64) == "bruck"

    def test_invalid_json_names_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            SelectionTable.load_json(path)

    def test_non_object_top_level_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="top level"):
            self._load(tmp_path, [1, 2, 3])

    def test_unknown_top_level_key_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown keys.*surprise"):
            self._load(tmp_path, {"strategy": "s", "rules": [], "surprise": 1})

    def test_unsupported_version_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match=r"version"):
            self._load(tmp_path, {"version": 999, "strategy": "s", "rules": []})

    def test_non_list_rules_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match=r"rules: expected a list"):
            self._load(tmp_path, {"strategy": "s", "rules": {"a": 1}})

    def test_non_dict_rule_entry_names_index(self, tmp_path):
        with pytest.raises(ConfigurationError, match=r"rules\[1\]"):
            self._load(tmp_path, {
                "strategy": "s",
                "rules": [{"collective": "alltoall", "comm_size": 8,
                           "msg_bytes": 8.0, "algorithm": "bruck"},
                          "oops"],
            })

    def test_non_numeric_msg_bytes_names_path(self, tmp_path):
        with pytest.raises(ConfigurationError,
                           match=r"rules\[0\]\.msg_bytes"):
            self._load(tmp_path, {
                "strategy": "s",
                "rules": [{"collective": "alltoall", "comm_size": 8,
                           "msg_bytes": "big", "algorithm": "bruck"}],
            })

    def test_bool_msg_bytes_is_not_a_number(self, tmp_path):
        with pytest.raises(ConfigurationError,
                           match=r"rules\[0\]\.msg_bytes"):
            self._load(tmp_path, {
                "strategy": "s",
                "rules": [{"collective": "alltoall", "comm_size": 8,
                           "msg_bytes": True, "algorithm": "bruck"}],
            })

    def test_unknown_rule_key_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError,
                           match=r"rules\[0\]: unknown keys.*extra"):
            self._load(tmp_path, {
                "strategy": "s",
                "rules": [{"collective": "alltoall", "comm_size": 8,
                           "msg_bytes": 8.0, "algorithm": "bruck",
                           "extra": 1}],
            })

    def test_missing_rule_key_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError,
                           match=r"rules\[0\]: missing.*algorithm"):
            self._load(tmp_path, {
                "strategy": "s",
                "rules": [{"collective": "alltoall", "comm_size": 8,
                           "msg_bytes": 8.0}],
            })

    def test_fractional_comm_size_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError,
                           match=r"rules\[0\]\.comm_size"):
            self._load(tmp_path, {
                "strategy": "s",
                "rules": [{"collective": "alltoall", "comm_size": 8.5,
                           "msg_bytes": 8.0, "algorithm": "bruck"}],
            })


class TestOmpiRulesExport:
    def test_export_format(self, tmp_path):
        table = SelectionTable()
        table.add_rule("alltoall", 1024, 0.0, "bruck")
        table.add_rule("alltoall", 1024, 32768.0, "pairwise")
        table.add_rule("reduce", 1024, 0.0, "binomial")
        path = tmp_path / "rules.conf"
        write_ompi_rules_file(path, table)
        lines = [l.split("#")[0].strip() for l in path.read_text().splitlines()]
        assert lines[0] == "2"  # two collectives
        assert "3" in lines  # alltoall's coll_tuned id
        # bruck is alltoall algorithm 3, pairwise algorithm 2 (Table II).
        joined = path.read_text()
        assert "0 3 0 0" in joined and "32768 2 0 0" in joined

    def test_empty_table_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_ompi_rules_file(tmp_path / "x", SelectionTable())

    def test_fractional_boundaries_do_not_collapse_to_duplicates(self, tmp_path):
        """Truncating fractional boundaries must dedupe message sizes,
        keeping the larger original boundary's algorithm."""
        table = SelectionTable()
        table.add_rule("alltoall", 16, 100.4, "bruck")
        table.add_rule("alltoall", 16, 100.9, "pairwise")
        path = tmp_path / "rules.conf"
        write_ompi_rules_file(path, table)
        data = [l.split("#")[0].strip() for l in path.read_text().splitlines()]
        msg_sizes = [int(l.split()[0]) for l in data if len(l.split()) == 4]
        assert len(msg_sizes) == len(set(msg_sizes)), "duplicate boundaries"
        # pairwise (id 2) governs the truncated 100-byte boundary; bruck
        # (id 3, the smallest rule) is replicated down to message size 0.
        joined = path.read_text()
        assert "100 2 0 0" in joined
        assert "0 3 0 0" in joined

    def test_zero_byte_rule_prepended_when_absent(self, tmp_path):
        table = SelectionTable()
        table.add_rule("alltoall", 16, 32768.0, "pairwise")
        path = tmp_path / "rules.conf"
        write_ompi_rules_file(path, table)
        data = [l.split("#")[0].strip() for l in path.read_text().splitlines()]
        rules = [l for l in data if len(l.split()) == 4]
        # coll_tuned wants coverage from 0: the smallest rule is replicated.
        assert rules[0] == "0 2 0 0"
        assert rules[1] == "32768 2 0 0"
        # The declared rule count matches the emitted lines.
        assert data[data.index(rules[0]) - 1] == "2"

    def test_explicit_zero_rule_not_duplicated(self, tmp_path):
        table = SelectionTable()
        table.add_rule("alltoall", 16, 0.0, "bruck")
        table.add_rule("alltoall", 16, 32768.0, "pairwise")
        path = tmp_path / "rules.conf"
        write_ompi_rules_file(path, table)
        data = [l.split("#")[0].strip() for l in path.read_text().splitlines()]
        rules = [l for l in data if len(l.split()) == 4]
        assert rules == ["0 3 0 0", "32768 2 0 0"]
