"""Tests for the tuning-campaign orchestrator."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.bench import MicroBenchmark, TuningCampaign
from repro.selection import NoDelaySelector, SelectionTable
from repro.sim.platform import get_machine


@pytest.fixture(scope="module")
def bench():
    return MicroBenchmark.from_machine(
        get_machine("hydra"), nodes=4, cores_per_node=4, nrep=1
    )


@pytest.fixture(scope="module")
def small_campaign_result(bench):
    campaign = TuningCampaign(
        bench=bench,
        collectives=("alltoall",),
        msg_sizes=(64, "32KiB"),
        shapes=("first_delayed", "random"),
    )
    return campaign, campaign.run()


class TestTuningCampaign:
    def test_winners_cover_the_grid(self, small_campaign_result):
        campaign, result = small_campaign_result
        assert set(result.winners) == {("alltoall", 64.0), ("alltoall", 32768.0)}
        for winner in result.winners.values():
            assert winner in ("basic_linear", "pairwise", "bruck", "linear_sync")

    def test_table_lookup_matches_winners(self, small_campaign_result):
        campaign, result = small_campaign_result
        for (coll, size), winner in result.winners.items():
            assert result.table.lookup(coll, 16, size) == winner

    def test_progress_callback_invoked(self, bench):
        seen = []
        campaign = TuningCampaign(
            bench=bench, collectives=("reduce",), msg_sizes=(8,),
            shapes=("last_delayed",),
        )
        campaign.run(progress=lambda c, s: seen.append((c, s)))
        assert seen == [("reduce", 8)]

    def test_save_writes_three_artifacts(self, small_campaign_result, tmp_path):
        campaign, result = small_campaign_result
        paths = campaign.save(result, tmp_path / "out")
        assert paths["table"].exists()
        assert paths["rules"].exists()
        sweeps = json.loads(paths["sweeps"].read_text())
        assert "alltoall:64" in sweeps and "alltoall:32768" in sweeps
        table = SelectionTable.load_json(paths["table"])
        assert table.lookup("alltoall", 16, 64) == result.winners[("alltoall", 64.0)]

    def test_strategy_is_pluggable(self, bench):
        campaign = TuningCampaign(
            bench=bench, collectives=("alltoall",), msg_sizes=(64,),
            shapes=("last_delayed",), strategy=NoDelaySelector(),
        )
        result = campaign.run()
        assert result.table.strategy_name == "no_delay"

    def test_string_sizes_parsed(self, bench):
        campaign = TuningCampaign(
            bench=bench, collectives=("alltoall",), msg_sizes=("1KiB",),
            shapes=("random",),
        )
        result = campaign.run()
        assert ("alltoall", 1024.0) in result.winners

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(collectives=()),
            dict(collectives=("teleport",)),
            dict(msg_sizes=()),
            dict(msg_sizes=("many",)),
        ],
    )
    def test_validation(self, bench, kwargs):
        base = dict(bench=bench, collectives=("alltoall",), msg_sizes=(64,))
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            TuningCampaign(**base)
