"""Tests for the selection-regime comparison extension experiment."""

from __future__ import annotations

from repro.experiments import ext_selection_comparison
from repro.experiments.common import ExperimentConfig


class TestSelectionComparison:
    def test_all_four_regimes_present(self):
        config = ExperimentConfig(nodes=4, cores_per_node=4, fast=True)
        result = ext_selection_comparison.run(config)
        assert set(result.regimes) == {
            "library default (fixed rules)",
            "no-delay tuned",
            "robust tuned (paper)",
            "online adaptive (extension)",
        }
        for regime, (algo, runtime) in result.regimes.items():
            assert runtime > 0, regime
            assert algo, regime

    def test_report_marks_best(self):
        config = ExperimentConfig(nodes=4, cores_per_node=4, fast=True)
        result = ext_selection_comparison.run(config)
        text = ext_selection_comparison.report(result)
        assert "<-- best" in text
        assert "adaptive" in text
