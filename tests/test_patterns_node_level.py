"""Tests for node-correlated arrival patterns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.patterns import generate_node_pattern
from repro.sim.platform import Platform


@pytest.fixture
def plat():
    return Platform("t", nodes=4, cores_per_node=4)


class TestNodePatterns:
    def test_ranks_of_a_node_share_the_skew(self, plat):
        pattern = generate_node_pattern("ascending", plat, 1e-3)
        for node in range(plat.nodes):
            ranks = list(plat.ranks_of_node(node))
            values = pattern.skews[ranks]
            assert np.all(values == values[0]), f"node {node} not uniform"

    def test_shape_applies_across_nodes(self, plat):
        pattern = generate_node_pattern("ascending", plat, 1e-3)
        node_values = [pattern.skews[plat.ranks_of_node(n)[0]] for n in range(4)]
        assert node_values == sorted(node_values)
        assert node_values[0] == 0.0
        assert node_values[-1] == pytest.approx(1e-3)

    def test_last_delayed_hits_one_whole_node(self, plat):
        pattern = generate_node_pattern("last_delayed", plat, 2e-4)
        delayed = pattern.skews > 0
        assert delayed.sum() == plat.cores_per_node
        assert all(plat.node_of_rank(r) == plat.nodes - 1
                   for r in np.where(delayed)[0])

    def test_peak_normalized_with_jitter(self, plat):
        pattern = generate_node_pattern("descending", plat, 5e-4,
                                        intra_jitter=1e-4, seed=3)
        assert pattern.max_skew == pytest.approx(5e-4)
        # Jitter breaks intra-node uniformity.
        ranks = list(plat.ranks_of_node(0))
        assert len(set(pattern.skews[ranks].tolist())) > 1

    def test_name_prefix(self, plat):
        assert generate_node_pattern("bell", plat, 1.0).name == "node_bell"

    def test_deterministic(self, plat):
        a = generate_node_pattern("random", plat, 1e-3, seed=9).skews
        b = generate_node_pattern("random", plat, 1e-3, seed=9).skews
        assert np.array_equal(a, b)

    def test_validation(self, plat):
        with pytest.raises(ConfigurationError):
            generate_node_pattern("bell", plat, -1.0)
        with pytest.raises(ConfigurationError):
            generate_node_pattern("bell", plat, 1.0, intra_jitter=-1.0)
        with pytest.raises(ConfigurationError):
            generate_node_pattern("wiggle", plat, 1.0)

    def test_usable_in_micro_benchmark(self, plat):
        from repro.bench import MicroBenchmark
        from repro.sim.platform import get_machine

        bench = MicroBenchmark.from_machine(get_machine("hydra"),
                                            nodes=4, cores_per_node=4, nrep=1)
        pattern = generate_node_pattern("step", bench.platform, 2e-4)
        result = bench.run("alltoall", "pairwise", 4096, pattern=pattern)
        assert result.max_skew == pytest.approx(2e-4)
        assert result.last_delay > 0
