"""Tests for the selection-service load generator and its regression gate."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.loadgen import (
    LoadGenConfig,
    WORKLOADS,
    build_mix,
    percentile,
    run_suite,
    run_workload,
)
from repro.bench.metrics import CollectiveTiming
from repro.bench.results import BenchResult, SweepResult
from repro.errors import ConfigurationError
from repro.selection import RobustAverageSelector
from repro.selection.table import SelectionTable
from repro.service import SelectionService
from repro.store import TuningStore


@pytest.fixture
def small_store(tmp_path):
    """A store covering the loadgen's default collectives at one size."""
    from repro.bench.campaign import CampaignResult

    table = SelectionTable(strategy_name="robust_average")
    sweeps, winners = {}, {}
    for coll in ("alltoall", "allreduce"):
        sweep = SweepResult(coll, 1024.0, 4, machine="testbox")
        sweep.skew_by_pattern["no_delay"] = 0.0
        for algo, delay in (("bruck", 1.0), ("pairwise", 2.0)):
            timing = CollectiveTiming(np.zeros(2), np.full(2, delay))
            sweep.add(BenchResult(coll, algo, 1024.0, 4, "no_delay",
                                  0.0, [timing]))
        winners[(coll, 1024.0)] = table.add_sweep(sweep,
                                                  RobustAverageSelector())
        sweeps[(coll, 1024.0)] = sweep
    path = tmp_path / "tuning.db"
    with TuningStore(path) as store:
        store.ingest_campaign(
            CampaignResult(table=table, sweeps=sweeps, winners=winners),
            run_id="seed")
    return path


def _config(**kw):
    kw.setdefault("queries", 200)
    kw.setdefault("threads", 2)
    return LoadGenConfig(**kw)


class TestMixAndPercentile:
    def test_mix_is_deterministic_per_seed(self):
        a = build_mix(_config(seed=7))
        b = build_mix(_config(seed=7))
        c = build_mix(_config(seed=8))
        assert a == b
        assert a != c

    def test_distinct_caps_the_key_space(self):
        mix = build_mix(_config(), distinct=3)
        keys = {tuple(sorted(q.items(), key=str)) for q in mix}
        assert len(keys) <= 3

    def test_mix_queries_are_all_valid(self, small_store):
        with SelectionService(small_store, watch_store=False) as service:
            for q in build_mix(_config(queries=50)):
                service.query(**q)  # must not raise
            assert service.stats.errors == 0

    def test_percentile_exact(self):
        xs = list(range(1, 101))
        assert percentile(xs, 0.0) == 1
        assert percentile(xs, 1.0) == 100
        assert percentile(xs, 0.5) == pytest.approx(50.5)
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            LoadGenConfig(queries=0)
        with pytest.raises(ConfigurationError):
            LoadGenConfig(threads=0)


class TestRunWorkload:
    def test_hot_cache_counts_and_histogram_cross_check(self, small_store):
        with SelectionService(small_store, watch_store=False) as service:
            result = run_workload(service, "hot_cache", _config())
        assert result.queries == 200
        assert result.errors == 0
        assert len(result.latencies) == 200
        assert result.qps > 0
        # The service histogram quantile estimate accompanies the exact
        # sample percentiles.
        assert result.hist_p50 is not None and result.hist_p99 is not None

    def test_batch_workload_uses_query_batch(self, small_store):
        with SelectionService(small_store, watch_store=False) as service:
            result = run_workload(service, "batch",
                                  _config(batch_size=50))
            batch_hist = service.metrics.histogram("service.batch_seconds")
        assert result.errors == 0
        assert batch_hist.count == 4  # 2 threads x (100-query shard / 50)

    def test_reload_churn_reloads_concurrently(self, small_store):
        with SelectionService(small_store, reload_interval=0.0) as service:
            result = run_workload(
                service, "reload_churn",
                _config(queries=2000, reload_interval=0.001))
        assert result.errors == 0
        assert result.reloads >= 1
        assert service.stats.reloads >= result.reloads

    def test_unknown_workload_raises(self, small_store):
        with SelectionService(small_store, watch_store=False) as service:
            with pytest.raises(ConfigurationError):
                run_workload(service, "nope", _config())


class TestRunSuite:
    def test_payload_shape_matches_the_gate(self, small_store):
        payload = run_suite(small_store, _config(queries=100),
                            workloads=("hot_cache", "batch"))
        assert set(payload["workloads"]) == {"hot_cache", "batch"}
        for row in payload["workloads"].values():
            assert {"qps", "p50_us", "p99_us", "queries", "errors",
                    "reloads", "hist_p50_us", "hist_p99_us"} <= set(row)
            assert row["errors"] == 0
            assert row["p50_us"] <= row["p99_us"]
        assert payload["meta"]["queries_per_workload"] == 100
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_default_workload_names_are_stable(self):
        # The committed BENCH_service.json covers exactly these; renames
        # must update the baseline (the gate hard-fails otherwise).
        assert WORKLOADS == ("hot_cache", "cold_mix", "batch",
                             "reload_churn")


def _load_gate():
    path = Path(__file__).resolve().parents[1] / "benchmarks" \
        / "check_service_regression.py"
    spec = importlib.util.spec_from_file_location("check_service", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRegressionGate:
    BASE = {"hot_cache": {"qps": 50000.0, "p99_us": 70.0, "errors": 0}}

    def test_identical_run_is_clean(self):
        gate = _load_gate()
        errors, warnings = gate.compare(self.BASE, self.BASE, 0.4)
        assert errors == [] and warnings == []

    def test_coverage_drift_is_hard_error(self):
        gate = _load_gate()
        fresh = dict(self.BASE, extra={"qps": 1.0, "p99_us": 1.0,
                                       "errors": 0})
        errors, _ = gate.compare(fresh, self.BASE, 0.4)
        assert any("extra" in e for e in errors)
        errors, _ = gate.compare({}, self.BASE, 0.4)
        assert any("hot_cache" in e for e in errors)

    def test_query_errors_are_hard_errors(self):
        gate = _load_gate()
        fresh = {"hot_cache": {"qps": 50000.0, "p99_us": 70.0, "errors": 3}}
        errors, _ = gate.compare(fresh, self.BASE, 0.4)
        assert any("3 query error" in e for e in errors)

    def test_perf_drift_only_warns(self):
        gate = _load_gate()
        fresh = {"hot_cache": {"qps": 10000.0, "p99_us": 700.0, "errors": 0}}
        errors, warnings = gate.compare(fresh, self.BASE, 0.4)
        assert errors == []
        assert len(warnings) == 2   # QPS drop + p99 rise
        assert all("::warning::" in w for w in warnings)

    def test_committed_baseline_parses_and_covers_all_workloads(self):
        gate = _load_gate()
        baseline = gate.load_workloads(gate.BASELINE_PATH)
        assert set(baseline) == set(WORKLOADS)
        for row in baseline.values():
            assert row["errors"] == 0
