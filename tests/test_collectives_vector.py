"""Tests for the vector (irregular) collectives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.collectives  # noqa: F401
from repro.errors import ConfigurationError
from repro.collectives import VectorArgs
from repro.collectives.base import get_algorithm, list_algorithms
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform


def _platform(p: int) -> Platform:
    return Platform("t", nodes=max(1, (p + 3) // 4), cores_per_node=4)


def _run(collective: str, algorithm: str, args: VectorArgs, inputs, p: int):
    info = get_algorithm(collective, algorithm)

    def prog(ctx):
        result = yield from info.fn(ctx, args, inputs[ctx.rank])
        return result

    return run_processes(_platform(p), prog, num_ranks=p).rank_results


def _alltoallv_inputs(counts: np.ndarray):
    """Block (i -> j) holds values i*1000 + j*10 + k."""
    p = counts.shape[0]
    return [
        [np.arange(counts[i][j]) + i * 1000 + j * 10 for j in range(p)]
        for i in range(p)
    ]


class TestAlltoallv:
    @pytest.mark.parametrize("algorithm", list_algorithms("alltoallv"))
    @pytest.mark.parametrize("p", [1, 2, 3, 6, 9])
    def test_matches_semantics(self, algorithm, p):
        rng = np.random.default_rng(p)
        counts = rng.integers(0, 6, size=(p, p))
        args = VectorArgs(counts=tuple(map(tuple, counts)), item_bytes=16.0)
        inputs = _alltoallv_inputs(counts)
        results = _run("alltoallv", algorithm, args, inputs, p)
        for me in range(p):
            for src in range(p):
                expected = inputs[src][me]
                assert np.array_equal(results[me][src], expected), (
                    f"{algorithm} p={p} me={me} src={src}"
                )

    @pytest.mark.parametrize("algorithm", list_algorithms("alltoallv"))
    def test_all_zero_counts(self, algorithm):
        p = 4
        counts = np.zeros((p, p), dtype=int)
        args = VectorArgs(counts=tuple(map(tuple, counts)))
        inputs = _alltoallv_inputs(counts)
        results = _run("alltoallv", algorithm, args, inputs, p)
        for me in range(p):
            assert all(block.size == 0 for block in results[me])

    def test_wrong_count_matrix_rejected(self):
        args = VectorArgs(counts=((1, 2),))  # not (p, p)
        inputs = _alltoallv_inputs(np.ones((4, 4), dtype=int))
        with pytest.raises(ConfigurationError):
            _run("alltoallv", "basic_linear", args, inputs, 4)


class TestAllgatherv:
    @pytest.mark.parametrize("algorithm", list_algorithms("allgatherv"))
    @pytest.mark.parametrize("p", [1, 2, 5, 8])
    def test_matches_semantics(self, algorithm, p):
        rng = np.random.default_rng(p + 100)
        counts = rng.integers(0, 7, size=p)
        args = VectorArgs(counts=tuple(counts), item_bytes=8.0)
        inputs = [np.arange(counts[r]) + r * 100 for r in range(p)]
        results = _run("allgatherv", algorithm, args, inputs, p)
        for me in range(p):
            for src in range(p):
                assert np.array_equal(results[me][src], inputs[src])

    @pytest.mark.parametrize("algorithm", list_algorithms("allgatherv"))
    def test_empty_contributions_allowed(self, algorithm):
        p = 4
        counts = np.array([0, 3, 0, 2])
        args = VectorArgs(counts=tuple(counts))
        inputs = [np.arange(counts[r]) + r for r in range(p)]
        results = _run("allgatherv", algorithm, args, inputs, p)
        for me in range(p):
            assert results[me][0].size == 0
            assert np.array_equal(results[me][1], inputs[1])


class TestGathervScatterv:
    @pytest.mark.parametrize("root", [0, 2])
    def test_gatherv_roundtrips_with_scatterv(self, root):
        p = 5
        counts = np.array([2, 0, 4, 1, 3])
        args = VectorArgs(counts=tuple(counts), root=root)
        inputs = [np.arange(counts[r]) + 10 * r for r in range(p)]
        gathered = _run("gatherv", "linear", args, inputs, p)
        for rank in range(p):
            if rank == root:
                for src in range(p):
                    assert np.array_equal(gathered[rank][src], inputs[src])
            else:
                assert gathered[rank] is None
        # Scatter the gathered list back out.
        scatter_inputs = [
            gathered[root] if r == root else None for r in range(p)
        ]
        scattered = _run("scatterv", "linear", args, scatter_inputs, p)
        for rank in range(p):
            assert np.array_equal(scattered[rank], inputs[rank])

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            VectorArgs(counts=(1, -2, 3)).vector(3)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    p=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
    algorithm=st.sampled_from(list_algorithms("alltoallv")),
)
def test_alltoallv_property(p, seed, algorithm):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 5, size=(p, p))
    args = VectorArgs(counts=tuple(map(tuple, counts)))
    inputs = _alltoallv_inputs(counts)
    results = _run("alltoallv", algorithm, args, inputs, p)
    total_in = sum(counts.sum(axis=0))
    total_out = sum(sum(b.size for b in results[me]) for me in range(p))
    assert total_in == total_out  # conservation of items
    for me in range(p):
        for src in range(p):
            assert np.array_equal(results[me][src], inputs[src][me])


# --------------------------------------------------------------------- #
# Vector collectives through the benchmark harness: patterns + parity
# --------------------------------------------------------------------- #


class TestVectorUnderPatterns:
    """Vector collectives under skewed arrival patterns, both engines."""

    def _bench(self, engine_mode="exact"):
        from repro.bench import MicroBenchmark
        from repro.sim.platform import get_machine

        return MicroBenchmark.from_machine(
            get_machine("simcluster"), nodes=4, cores_per_node=2, nrep=2,
            engine_mode=engine_mode,
        )

    def _matrix(self, p, seed=11):
        rng = np.random.default_rng(seed)
        counts = rng.integers(1, 32, size=(p, p))
        np.fill_diagonal(counts, 0)
        return tuple(map(tuple, counts.tolist()))

    def test_pattern_reproduced_in_arrivals(self):
        from repro.patterns import generate_pattern

        bench = self._bench()
        p = bench.num_ranks
        pattern = generate_pattern("ascending", p, 2e-4, seed=1)
        counts = tuple(4 * (i + 1) for i in range(p))
        result = bench.run("allgatherv", "ring", 0.0, pattern, counts=counts)
        for timing in result.timings:
            assert np.allclose(timing.delays_from_first(), pattern.skews,
                               atol=1e-9)

    def test_skew_changes_vector_runtime(self):
        from repro.patterns import generate_pattern

        bench = self._bench()
        p = bench.num_ranks
        counts = self._matrix(p)
        balanced = bench.run("alltoallv", "pairwise", 0.0, counts=counts)
        skewed = bench.run(
            "alltoallv", "pairwise", 0.0,
            generate_pattern("last_delayed", p, 2e-3), counts=counts)
        assert skewed.total_delay > balanced.total_delay

    @pytest.mark.parametrize("collective,algorithm", [
        ("alltoallv", "pairwise"), ("allgatherv", "ring")])
    def test_hybrid_parity_under_skew(self, collective, algorithm):
        """Vector phases take the exact path inside hybrid: bitwise parity."""
        from repro.patterns import generate_pattern

        exact = self._bench("exact")
        hybrid = self._bench("hybrid")
        p = exact.num_ranks
        counts = (self._matrix(p) if collective == "alltoallv"
                  else tuple(3 * (i + 1) for i in range(p)))
        pattern = generate_pattern("bell", p, 1e-4, seed=2)
        a = exact.run(collective, algorithm, 0.0, pattern, counts=counts)
        b = hybrid.run(collective, algorithm, 0.0, pattern, counts=counts)
        assert np.array_equal(a.last_delays, b.last_delays)
        assert a.msg_bytes == b.msg_bytes
