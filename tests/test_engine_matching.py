"""Matching-order guarantees around the O(1) fast paths.

The engine resolves exact-envelope receives with a single dict lookup and
only falls back to scanning when wildcards are involved.  These tests pin
the MPI-mandated ordering semantics that must survive the fast path:
wildcard receives match the earliest-*arrived* message, arriving messages
match the earliest-*posted* receive, ties break deterministically, and
mixed exact+wildcard queues interleave correctly.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import ANY_SOURCE, ANY_TAG
from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.platform import Platform


@pytest.fixture
def plat() -> Platform:
    return Platform("match", nodes=2, cores_per_node=4)


@pytest.fixture
def params() -> NetworkParams:
    # Flat, overhead-free network so arrival order is forced purely by the
    # explicit sleeps in the programs below.
    return NetworkParams(
        intra_latency=1e-6,
        inter_latency=1e-6,
        intra_bandwidth=1e9,
        inter_bandwidth=1e9,
        send_overhead=0.0,
        recv_overhead=0.0,
        eager_threshold=1 << 20,
        rx_serialization=False,
    )


class TestWildcardRecvOrder:
    def test_any_source_matches_earliest_arrival_across_sources(self, plat, params):
        """Senders 1..3 arrive in reverse-rank order; ANY_SOURCE must drain
        them by arrival time, not by source rank or dict order."""

        def prog(ctx):
            if ctx.rank in (1, 2, 3):
                yield ctx.sleep((4 - ctx.rank) * 1e-3)  # rank 3 first, rank 1 last
                yield from ctx.send(0, nbytes=8, tag=5, payload=ctx.rank)
            elif ctx.rank == 0:
                yield ctx.sleep(10e-3)  # all three are unexpected by now
                order = []
                for _ in range(3):
                    req = yield from ctx.recv(ANY_SOURCE, tag=5)
                    order.append(req.source_rank)
                return order

        res = run_processes(plat, prog, params=params)
        assert res.rank_results[0] == [3, 2, 1]

    def test_any_tag_matches_earliest_arrival_across_tags(self, plat, params):
        def prog(ctx):
            if ctx.rank == 1:
                for tag in (30, 10, 20):  # arrival order by tag
                    yield from ctx.send(0, nbytes=8, tag=tag, payload=tag)
                    yield ctx.sleep(1e-3)
            elif ctx.rank == 0:
                yield ctx.sleep(10e-3)
                tags = []
                for _ in range(3):
                    req = yield from ctx.recv(1, tag=ANY_TAG)
                    tags.append(req.recv_tag)
                return tags

        res = run_processes(plat, prog, params=params)
        assert res.rank_results[0] == [30, 10, 20]

    def test_full_wildcard_interleaves_sources_and_tags(self, plat, params):
        arrival_order = [(2, 7), (1, 9), (2, 9), (1, 7)]

        def prog(ctx):
            if ctx.rank in (1, 2):
                for i, (src, tag) in enumerate(arrival_order):
                    if src == ctx.rank:
                        yield ctx.wait_until((i + 1) * 1e-3)
                        yield from ctx.send(0, nbytes=8, tag=tag, payload=(src, tag))
            elif ctx.rank == 0:
                yield ctx.sleep(10e-3)
                seen = []
                for _ in range(4):
                    req = yield from ctx.recv(ANY_SOURCE, tag=ANY_TAG)
                    seen.append((req.source_rank, req.recv_tag))
                return seen

        res = run_processes(plat, prog, params=params)
        assert res.rank_results[0] == arrival_order

    def test_exact_recv_skips_other_tags_wildcard_drains_rest(self, plat, params):
        """Mixed exact+wildcard receives against a multi-tag unexpected queue:
        the exact receive takes only its tag; wildcards take arrival order."""

        def prog(ctx):
            if ctx.rank == 1:
                for tag in (11, 12, 13):
                    yield from ctx.send(0, nbytes=8, tag=tag, payload=tag)
                    yield ctx.sleep(1e-3)
            elif ctx.rank == 0:
                yield ctx.sleep(10e-3)
                exact = yield from ctx.recv(1, tag=12)
                rest = []
                for _ in range(2):
                    req = yield from ctx.recv(1, tag=ANY_TAG)
                    rest.append(req.recv_tag)
                return (exact.recv_tag, rest)

        res = run_processes(plat, prog, params=params)
        assert res.rank_results[0] == (12, [11, 13])


class TestPostedRecvOrder:
    def test_message_matches_earliest_posted_among_exact_and_wildcard(self, plat, params):
        """A wildcard receive posted before an exact one wins the message."""

        def prog(ctx):
            if ctx.rank == 0:
                wild = ctx.irecv(ANY_SOURCE, tag=3)
                yield ctx.sleep(1e-3)
                exact = ctx.irecv(1, tag=3)
                yield ctx.waitall(wild)
                assert wild.source_rank == 1
                # Second message lands on the (later-posted) exact receive.
                yield ctx.waitall(exact)
                return (wild.payload, exact.payload)
            elif ctx.rank == 1:
                yield ctx.sleep(5e-3)
                yield from ctx.send(0, nbytes=8, tag=3, payload="first")
                yield from ctx.send(0, nbytes=8, tag=3, payload="second")

        res = run_processes(plat, prog, params=params)
        assert res.rank_results[0] == ("first", "second")

    def test_exact_posted_before_wildcard_wins(self, plat, params):
        def prog(ctx):
            if ctx.rank == 0:
                exact = ctx.irecv(1, tag=3)
                yield ctx.sleep(1e-3)
                wild = ctx.irecv(ANY_SOURCE, tag=ANY_TAG)
                yield ctx.waitall(exact)
                assert not wild.done
                yield from ctx.send(2, nbytes=8, tag=4, payload="x")  # satisfy wild
                yield ctx.waitall(wild)
                return (exact.payload, wild.source_rank)
            elif ctx.rank == 1:
                yield ctx.sleep(5e-3)
                yield from ctx.send(0, nbytes=8, tag=3, payload="exact-wins")
            elif ctx.rank == 2:
                req = yield from ctx.recv(0, tag=4)
                yield from ctx.send(0, nbytes=8, tag=9, payload=req.payload)

        res = run_processes(plat, prog, params=params)
        assert res.rank_results[0] == ("exact-wins", 2)

    def test_posted_tie_breaks_toward_wildcard_deterministically(self, plat, params):
        """With recv_overhead=0 an exact and a wildcard receive can carry the
        same post_time; the tie must break the same way on every run."""

        def prog(ctx):
            if ctx.rank == 0:
                exact = ctx.irecv(1, tag=3)
                wild = ctx.irecv(ANY_SOURCE, tag=3)  # identical post_time
                yield ctx.waitany(exact, wild)
                winner = "exact" if exact.done else "wild"
                remaining = wild if winner == "exact" else exact
                yield ctx.waitall(remaining)
                return winner
            elif ctx.rank == 1:
                yield ctx.sleep(1e-3)
                yield from ctx.send(0, nbytes=8, tag=3)
                yield from ctx.send(0, nbytes=8, tag=3)

        first = run_processes(plat, prog, params=params)
        second = run_processes(plat, prog, params=params)
        assert first.rank_results[0] == second.rank_results[0]
        # The wildcard key (-1, 3) sorts before (1, 3): documented tie-break.
        assert first.rank_results[0] == "wild"

    def test_wildcard_fallback_disengages_after_wildcards_drain(self, plat, params):
        """Once all wildcard receives are matched, later messages go back to
        the exact fast path (wild_posted bookkeeping must hit zero)."""

        def prog(ctx):
            if ctx.rank == 0:
                wild = ctx.irecv(ANY_SOURCE, tag=ANY_TAG)
                yield ctx.waitall(wild)
                exact = yield from ctx.recv(1, tag=8)
                return (wild.recv_tag, exact.payload)
            elif ctx.rank == 1:
                yield ctx.sleep(1e-3)
                yield from ctx.send(0, nbytes=8, tag=7)
                yield from ctx.send(0, nbytes=8, tag=8, payload="fast-path")

        res = run_processes(plat, prog, params=params)
        assert res.rank_results[0] == (7, "fast-path")
        stats = res.engine_stats
        assert stats is not None
        assert stats.posted_fast > 0  # fast path re-engaged after the wildcard
