"""Tests for the shared per-node NIC model (inter-node port contention)."""

from __future__ import annotations

import pytest

from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.platform import Platform


def _params(shared: bool) -> NetworkParams:
    return NetworkParams(
        intra_latency=1e-6,
        inter_latency=1e-6,
        intra_bandwidth=1e9,
        inter_bandwidth=1e9,
        send_overhead=0.0,
        recv_overhead=0.0,
        eager_threshold=1 << 30,
        rx_serialization=False,
        shared_node_nic=shared,
    )


def _two_senders_one_node(shared: bool) -> list[float]:
    """Ranks 0 and 1 (node 0) each send 1 MB to ranks 2 and 3 (node 1)."""
    plat = Platform("t", nodes=2, cores_per_node=2)
    nbytes = 1_000_000

    def prog(ctx):
        if ctx.rank in (0, 1):
            yield from ctx.send(ctx.rank + 2, nbytes=nbytes)
        else:
            yield from ctx.recv(ctx.rank - 2)
        return ctx.time()

    run = run_processes(plat, prog, params=_params(shared))
    return run.rank_results


class TestSharedNodeNic:
    def test_same_node_senders_serialize_on_shared_nic(self):
        times = _two_senders_one_node(shared=True)
        tx = 1_000_000 / 1e9  # 1 ms per transfer
        # The two receivers cannot both finish after one transfer time: the
        # sending node's NIC carried 2 MB.
        assert max(times[2], times[3]) >= 2 * tx

    def test_private_ports_run_in_parallel(self):
        times = _two_senders_one_node(shared=False)
        tx = 1_000_000 / 1e9
        assert max(times[2], times[3]) < 1.5 * tx

    def test_intra_node_traffic_unaffected_by_nic(self):
        """Intra-node messages use private ports even with shared NICs on."""
        plat = Platform("t", nodes=2, cores_per_node=4)
        nbytes = 1_000_000

        def prog(ctx):
            if ctx.rank in (0, 1):
                yield from ctx.send(ctx.rank + 2, nbytes=nbytes)  # same node
            elif ctx.rank in (2, 3):
                yield from ctx.recv(ctx.rank - 2)
            return ctx.time()

        run = run_processes(plat, prog, params=_params(True))
        tx = nbytes / 1e9
        assert max(run.rank_results[2], run.rank_results[3]) < 1.5 * tx

    def test_receiver_side_nic_contention(self):
        """Two different-node senders into one node serialize on its rx NIC."""
        plat = Platform("t", nodes=3, cores_per_node=2)
        nbytes = 1_000_000
        params = NetworkParams(
            intra_latency=1e-6, inter_latency=1e-6,
            intra_bandwidth=1e9, inter_bandwidth=1e9,
            send_overhead=0.0, recv_overhead=0.0,
            eager_threshold=1 << 30, rx_serialization=True,
            shared_node_nic=True,
        )

        def prog(ctx):
            if ctx.rank == 2:  # node 1
                yield from ctx.send(0, nbytes=nbytes)
            elif ctx.rank == 4:  # node 2
                yield from ctx.send(1, nbytes=nbytes)
            elif ctx.rank in (0, 1):  # node 0 receivers
                yield from ctx.recv(2 if ctx.rank == 0 else 4)
            return ctx.time()

        run = run_processes(plat, prog, params=params)
        tx = nbytes / 1e9
        # rx extraction of 2 MB through node 0's shared NIC.
        assert max(run.rank_results[0], run.rank_results[1]) >= 3 * tx
