"""Tests for the all-families sensitivity extension experiment."""

from __future__ import annotations

from repro.experiments import ext_all_families
from repro.experiments.common import ExperimentConfig

TINY = ExperimentConfig(machine="simcluster", nodes=4, cores_per_node=4, fast=True)


class TestAllFamilies:
    def test_fast_mode_covers_four_families(self):
        result = ext_all_families.run(TINY)
        assert set(result.families) == {"bcast", "allgather", "reduce", "alltoall"}
        for fam in result.families.values():
            assert fam.cells > 0
            assert 0 <= fam.flips <= fam.cells
            assert 0 < fam.best_win <= 1.0 + 1e-9

    def test_reduce_is_the_most_sensitive_family(self):
        result = ext_all_families.run(TINY)
        reduce_frac = result.families["reduce"].flip_fraction
        assert reduce_frac >= max(
            f.flip_fraction for name, f in result.families.items() if name != "reduce"
        ) - 1e-9

    def test_report_renders(self):
        result = ext_all_families.run(TINY)
        text = ext_all_families.report(result)
        assert "rooted" in text and "flip fraction" in text
