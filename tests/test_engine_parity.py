"""Determinism parity pins for the engine hot-path overhaul.

These constants were captured from the pre-overhaul engine (PR 1 state) on
fixed seeds.  The O(1) matching, countdown waits, and tuple-event heap must
not move a single timestamp: ``final_time``, per-rank clocks, per-rank
results, event counts, and selection outcomes are pinned bit-for-bit.  If a
deliberate model change ever invalidates them, re-capture with the recipe in
each test — do not loosen the comparisons to approx.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.bench.micro import MicroBenchmark
from repro.collectives import CollArgs, make_input, run_collective
from repro.patterns.generator import generate_pattern
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform


def digest_floats(values) -> str:
    arr = np.asarray(values, dtype=np.float64)
    return hashlib.sha256(arr.tobytes()).hexdigest()[:16]


def digest_results(results) -> str:
    h = hashlib.sha256()
    for r in results:
        arr = np.asarray(r, dtype=np.float64) if r is not None else np.array([])
        h.update(arr.tobytes())
    return h.hexdigest()[:16]


# (collective, algorithm) -> (final_time, rank_times digest, results digest,
# events processed), captured at 64 ranks (16 nodes x 4 cores), default
# network, ascending pattern (max_skew=200us, seed=7), count=8, 2048 B.
PINNED = {
    ("reduce", "binomial"): (
        0.00023146079999999988,
        "eea76f212665b4bf",
        "0647177bc6b9fb7d",
        317,
    ),
    ("allreduce", "recursive_doubling"): (
        0.00023959119999999981,
        "a65a004b67a4db6f",
        "340f587faf1d76e7",
        896,
    ),
    ("alltoall", "basic_linear"): (
        0.0006074305904761939,
        "7875e4414a3ae789",
        "29de3e8047dd4c32",
        4224,
    ),
    ("alltoall", "pairwise"): (
        0.0006251037968253995,
        "221723447819f902",
        "29de3e8047dd4c32",
        8192,
    ),
}


@pytest.mark.parametrize("collective,algorithm", sorted(PINNED))
def test_collective_parity_is_bit_identical(collective, algorithm):
    plat = Platform("parity", nodes=16, cores_per_node=4)
    p = plat.num_ranks
    pattern = generate_pattern("ascending", p, max_skew=200e-6, seed=7)
    args = CollArgs(count=8, msg_bytes=2048.0)
    inputs = [make_input(collective, r, p, 8) for r in range(p)]

    def prog(ctx):
        yield ctx.wait_until(pattern.skew_of(ctx.rank))
        result = yield from run_collective(ctx, collective, algorithm, args, inputs[ctx.rank])
        return result

    run = run_processes(plat, prog)
    final_time, times_digest, results_digest, events = PINNED[(collective, algorithm)]
    assert run.final_time == final_time  # exact, not approx
    assert digest_floats(run.rank_times) == times_digest
    assert digest_results(run.rank_results) == results_digest
    assert run.events_processed == events


# Expected mean last_delay per alltoall algorithm (32 ranks, random pattern
# max_skew=150us seed=11, 4 KiB, nrep=2, seed=3) and the resulting winner.
PINNED_SELECTION = {
    "basic_linear": 0.0003246882001687962,
    "bruck": 0.0009031895999999985,
    "linear_sync": 0.00033754058500244806,
    "pairwise": 0.00038687839999999017,
}


def test_selection_outcome_parity():
    bench = MicroBenchmark(
        platform=Platform("parity-sel", nodes=8, cores_per_node=4), nrep=2, seed=3
    )
    pattern = generate_pattern("random", 32, max_skew=150e-6, seed=11)
    results = bench.run_many(
        "alltoall", sorted(PINNED_SELECTION), msg_bytes=4096.0, pattern=pattern
    )
    means = {a: float(np.mean(r.last_delays)) for a, r in results.items()}
    assert means == PINNED_SELECTION  # exact float equality
    assert min(means, key=means.get) == "basic_linear"


# ===================================================================== #
# Hybrid flow-engine parity (repro.sim.flow)
#
# Wherever the hybrid dispatcher engages a flow batch, the run must be
# bit-identical to the exact engine: same final_time, same per-rank exit
# clocks, same payload results.  Fallback cases must also be bit-identical
# (the exact path runs either way) — the assertions below additionally pin
# *whether* each cell engages, so eligibility regressions are caught even
# when timings happen to agree.
# ===================================================================== #

from repro.sim.flow import FlowConfig  # noqa: E402

FLOW_COMBOS = [
    ("alltoall", "basic_linear"),
    ("alltoall", "pairwise"),
    ("allreduce", "recursive_doubling"),
    ("allgather", "ring"),
    ("barrier", "bruck"),
]

FLOW_PLATFORMS = {
    "hetero16x4": (16, 4),    # shared node NICs, intra/inter classes
    "uniform64x1": (64, 1),   # private ports, all inter-node
    "intra1x64": (1, 64),     # private ports, all intra-node
}


def _flow_prog(seq, skews=None):
    def prog(ctx):
        if skews is not None:
            yield ctx.wait_until(float(skews[ctx.rank]))
        res = None
        for i, (coll, algo) in enumerate(seq):
            args = CollArgs(count=8, msg_bytes=2048.0, tag=10_000 + 50 * i)
            if coll == "barrier":
                data = None
            elif coll == "alltoall":
                data = np.arange(ctx.size * 8, dtype=np.float64).reshape(
                    ctx.size, 8) + ctx.rank
            else:
                data = np.arange(8, dtype=np.float64) + ctx.rank
            res = yield from run_collective(ctx, coll, algo, args, data)
        return res

    return prog


def _assert_hybrid_bitwise(plat, seq, skews, declared, expect_flow):
    exact = run_processes(plat, _flow_prog(seq, skews))
    hybrid = run_processes(
        plat, _flow_prog(seq, skews),
        flow=FlowConfig(mode="hybrid", declared_spread=declared),
    )
    assert hybrid.final_time == exact.final_time          # bitwise, not approx
    assert hybrid.rank_times == exact.rank_times
    for a, b in zip(exact.rank_results, hybrid.rank_results):
        if a is None and b is None:
            continue
        assert np.array_equal(np.asarray(a), np.asarray(b))
    engaged = hybrid.events_processed < exact.events_processed
    assert engaged == expect_flow, (
        f"expected engage={expect_flow}, events "
        f"{exact.events_processed}->{hybrid.events_processed}"
    )


def _expect_engage(pname, coll, algo, skewed):
    """The eligibility contract: see the dispatch rules in repro.sim.flow."""
    private = pname != "hetero16x4"
    stepped = algo != "basic_linear"
    if skewed:
        # Only stepped plans on private-port platforms survive entry skew.
        return private and stepped
    # Aligned: everything engages except shared-contention stepped schedules
    # (strided exchanges on multi-core shared-NIC nodes).
    if not private and stepped:
        return (coll, algo) == ("allgather", "ring")
    return True


@pytest.mark.parametrize("pname", sorted(FLOW_PLATFORMS))
@pytest.mark.parametrize("coll,algo", FLOW_COMBOS)
def test_hybrid_parity_aligned(pname, coll, algo):
    nodes, cores = FLOW_PLATFORMS[pname]
    plat = Platform(pname, nodes=nodes, cores_per_node=cores)
    _assert_hybrid_bitwise(plat, [(coll, algo)], None, 0.0,
                           _expect_engage(pname, coll, algo, skewed=False))


@pytest.mark.parametrize("pname", sorted(FLOW_PLATFORMS))
@pytest.mark.parametrize("coll,algo", FLOW_COMBOS)
@pytest.mark.parametrize("shape", ["ascending", "random", "bell"])
def test_hybrid_parity_skewed(pname, coll, algo, shape):
    nodes, cores = FLOW_PLATFORMS[pname]
    plat = Platform(pname, nodes=nodes, cores_per_node=cores)
    p = plat.num_ranks
    pattern = generate_pattern(shape, p, max_skew=200e-6, seed=13)
    skews = pattern.skews
    declared = float(skews.max() - skews.min())
    _assert_hybrid_bitwise(plat, [(coll, algo)], skews, declared,
                           _expect_engage(pname, coll, algo, skewed=True))


def test_hybrid_parity_multi_collective_sequence():
    # Back-to-back phases on a private-port platform: exits of one phase
    # become skewed entries of the next, and every phase must still collapse
    # bit-exactly.
    seq = [("alltoall", "pairwise"), ("allgather", "ring"),
           ("barrier", "bruck"), ("allreduce", "recursive_doubling")]
    skews = generate_pattern("random", 64, max_skew=200e-6, seed=5).skews
    for nodes, cores in [(64, 1), (1, 64)]:
        plat = Platform(f"seq{nodes}x{cores}", nodes=nodes, cores_per_node=cores)
        _assert_hybrid_bitwise(plat, seq, skews,
                               float(skews.max() - skews.min()), True)


def test_hybrid_parity_256_ranks():
    plat = Platform("parity256", nodes=64, cores_per_node=4)
    for coll, algo, expect in [
        ("alltoall", "basic_linear", True),
        ("allgather", "ring", True),
        ("alltoall", "pairwise", False),        # shared contention
    ]:
        _assert_hybrid_bitwise(plat, [(coll, algo)], None, 0.0, expect)


def test_hybrid_fallback_on_skewed_linear():
    # The documented fallback trigger: a skewed arrival pattern forces the
    # linear plan onto the exact path — counters record the decision and no
    # batch is formed.
    from repro.sim.mpi import build_engine

    plat = Platform("fb", nodes=16, cores_per_node=4)
    p = plat.num_ranks
    skews = generate_pattern("descending", p, max_skew=150e-6, seed=3).skews
    declared = float(skews.max() - skews.min())
    flow = FlowConfig(mode="hybrid", declared_spread=declared)
    engine, contexts = build_engine(plat, flow=flow)
    prog = _flow_prog([("alltoall", "basic_linear")], skews)
    for rank, ctx in enumerate(contexts):
        engine.set_process(rank, prog(ctx))
    engine.run()
    rt = engine.flow_runtime
    assert rt.batches == 0
    assert rt.fallback_calls == 1
    assert rt.fallback_messages == p * (p - 1)
    # And the fallback run is still bit-identical to exact:
    _assert_hybrid_bitwise(plat, [("alltoall", "basic_linear")], skews,
                           declared, False)


@pytest.mark.parametrize("shape", [None, "ascending", "random", "bell"])
def test_microbenchmark_hybrid_parity(shape):
    # The harness-level contract: MicroBenchmark(engine_mode="hybrid")
    # reproduces exact-mode results bit-for-bit in perfect-clock mode, where
    # harmonized entries make the declared spread provably hold.
    pattern = (
        generate_pattern(shape, 64, max_skew=200e-6, seed=9) if shape else None
    )
    runs = {}
    for mode in ("exact", "hybrid"):
        bench = MicroBenchmark(
            platform=Platform("mb", nodes=16, cores_per_node=4),
            nrep=3, seed=11, engine_mode=mode,
        )
        runs[mode] = bench.run("alltoall", "basic_linear",
                               msg_bytes=2048.0, pattern=pattern)
    assert np.array_equal(runs["exact"].last_delays, runs["hybrid"].last_delays)
    assert np.array_equal(runs["exact"].total_delays, runs["hybrid"].total_delays)
    assert np.array_equal(
        runs["exact"].arrival_spreads, runs["hybrid"].arrival_spreads
    )
