"""Determinism parity pins for the engine hot-path overhaul.

These constants were captured from the pre-overhaul engine (PR 1 state) on
fixed seeds.  The O(1) matching, countdown waits, and tuple-event heap must
not move a single timestamp: ``final_time``, per-rank clocks, per-rank
results, event counts, and selection outcomes are pinned bit-for-bit.  If a
deliberate model change ever invalidates them, re-capture with the recipe in
each test — do not loosen the comparisons to approx.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.bench.micro import MicroBenchmark
from repro.collectives import CollArgs, make_input, run_collective
from repro.patterns.generator import generate_pattern
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform


def digest_floats(values) -> str:
    arr = np.asarray(values, dtype=np.float64)
    return hashlib.sha256(arr.tobytes()).hexdigest()[:16]


def digest_results(results) -> str:
    h = hashlib.sha256()
    for r in results:
        arr = np.asarray(r, dtype=np.float64) if r is not None else np.array([])
        h.update(arr.tobytes())
    return h.hexdigest()[:16]


# (collective, algorithm) -> (final_time, rank_times digest, results digest,
# events processed), captured at 64 ranks (16 nodes x 4 cores), default
# network, ascending pattern (max_skew=200us, seed=7), count=8, 2048 B.
PINNED = {
    ("reduce", "binomial"): (
        0.00023146079999999988,
        "eea76f212665b4bf",
        "0647177bc6b9fb7d",
        317,
    ),
    ("allreduce", "recursive_doubling"): (
        0.00023959119999999981,
        "a65a004b67a4db6f",
        "340f587faf1d76e7",
        896,
    ),
    ("alltoall", "basic_linear"): (
        0.0006074305904761939,
        "7875e4414a3ae789",
        "29de3e8047dd4c32",
        4224,
    ),
    ("alltoall", "pairwise"): (
        0.0006251037968253995,
        "221723447819f902",
        "29de3e8047dd4c32",
        8192,
    ),
}


@pytest.mark.parametrize("collective,algorithm", sorted(PINNED))
def test_collective_parity_is_bit_identical(collective, algorithm):
    plat = Platform("parity", nodes=16, cores_per_node=4)
    p = plat.num_ranks
    pattern = generate_pattern("ascending", p, max_skew=200e-6, seed=7)
    args = CollArgs(count=8, msg_bytes=2048.0)
    inputs = [make_input(collective, r, p, 8) for r in range(p)]

    def prog(ctx):
        yield ctx.wait_until(pattern.skew_of(ctx.rank))
        result = yield from run_collective(ctx, collective, algorithm, args, inputs[ctx.rank])
        return result

    run = run_processes(plat, prog)
    final_time, times_digest, results_digest, events = PINNED[(collective, algorithm)]
    assert run.final_time == final_time  # exact, not approx
    assert digest_floats(run.rank_times) == times_digest
    assert digest_results(run.rank_results) == results_digest
    assert run.events_processed == events


# Expected mean last_delay per alltoall algorithm (32 ranks, random pattern
# max_skew=150us seed=11, 4 KiB, nrep=2, seed=3) and the resulting winner.
PINNED_SELECTION = {
    "basic_linear": 0.0003246882001687962,
    "bruck": 0.0009031895999999985,
    "linear_sync": 0.00033754058500244806,
    "pairwise": 0.00038687839999999017,
}


def test_selection_outcome_parity():
    bench = MicroBenchmark(
        platform=Platform("parity-sel", nodes=8, cores_per_node=4), nrep=2, seed=3
    )
    pattern = generate_pattern("random", 32, max_skew=150e-6, seed=11)
    results = bench.run_many(
        "alltoall", sorted(PINNED_SELECTION), msg_bytes=4096.0, pattern=pattern
    )
    means = {a: float(np.mean(r.last_delays)) for a, r in results.items()}
    assert means == PINNED_SELECTION  # exact float equality
    assert min(means, key=means.get) == "basic_linear"
