"""Tests for the trace analysis engine (repro.obs.analysis).

Hand-computed values follow the paper's Section II notation and its Fig. 2
example style: per-rank arrivals ``a_i`` and exits ``e_i`` give last delay
``d^ = max(e) - max(a)``, total delay ``d* = max(e) - min(a)``, and arrival
spread ``omega = max(a) - min(a)``.
"""

from __future__ import annotations

import importlib
import json
import sys

import numpy as np
import pytest

from repro import obs
from repro.bench.executor import CellExecutor, CellSpec
from repro.bench.micro import MicroBenchmark
from repro.errors import TraceFormatError
from repro.obs.analysis import (
    HOST_TIME_METRICS,
    CollectiveCall,
    TraceAnalysis,
    diff_payloads,
)
from repro.obs.export import export_jsonl, export_perfetto
from repro.patterns.generator import generate_pattern
from repro.sim.platform import Platform

US = 1e-6


def _rank_span(rank, name, start, end, cell=None, span_id=None):
    args = {}
    if cell is not None:
        args["cell"] = cell
    return {"span_id": span_id or 0, "parent_id": None, "name": name,
            "track": f"rank {rank}", "domain": "virtual",
            "start": start, "end": end, "args": args or None}


def _msg_span(src, dst, start, end, nbytes=256.0, cell=None):
    args = {"src": src, "dst": dst, "bytes": nbytes, "tag": 0}
    if cell is not None:
        args["cell"] = cell
    return {"span_id": 0, "parent_id": None, "name": "msg",
            "track": f"msgs {dst}", "domain": "virtual",
            "start": start, "end": end, "args": args}


def _fig2_spans():
    """Four ranks, one call: a = [0, 2, 4, 6] us, e = [7, 8, 9, 10] us."""
    arrivals = [0.0, 2 * US, 4 * US, 6 * US]
    exits = [7 * US, 8 * US, 9 * US, 10 * US]
    return [_rank_span(r, "alltoall/pairwise", arrivals[r], exits[r])
            for r in range(4)]


class TestHandComputedDelays:
    def test_fig2_style_call_metrics(self):
        ana = TraceAnalysis(_fig2_spans())
        (call,) = ana.calls()
        assert call.name == "alltoall/pairwise"
        assert call.ranks == (0, 1, 2, 3)
        # d^ = 10us - 6us, d* = 10us - 0, omega = 6us - 0.
        assert call.last_delay == pytest.approx(4 * US)
        assert call.total_delay == pytest.approx(10 * US)
        assert call.arrival_spread == pytest.approx(6 * US)
        assert call.delays() == pytest.approx((0.0, 2 * US, 4 * US, 6 * US))

    def test_imbalance_factors(self):
        imb = TraceAnalysis(_fig2_spans()).imbalance()
        assert imb["calls"] == 1
        assert imb["mean_arrival_spread"] == pytest.approx(6 * US)
        # omega / d^ = 6 / 4.
        assert imb["spread_over_last_delay"]["mean"] == pytest.approx(1.5)
        assert imb["spread_over_last_delay"]["max"] == pytest.approx(1.5)
        # mean delay = (0 + 2 + 4 + 6)/4 = 3us; / d^ = 0.75.
        assert imb["mean_delay_over_last_delay"]["mean"] == pytest.approx(0.75)

    def test_imbalance_against_external_baseline(self):
        # The paper's kappa = omega / T with T a balanced completion time.
        imb = TraceAnalysis(_fig2_spans()).imbalance(baseline=3 * US)
        assert imb["spread_over_baseline"]["mean"] == pytest.approx(2.0)
        with pytest.raises(TraceFormatError):
            TraceAnalysis(_fig2_spans()).imbalance(baseline=0.0)

    def test_arrival_pattern_reconstruction(self):
        pattern = TraceAnalysis(_fig2_spans()).arrival_pattern()
        assert pattern.skews == pytest.approx([0.0, 2 * US, 4 * US, 6 * US])

    def test_reconstruction_averages_across_calls(self):
        spans = _fig2_spans()
        # Second rep: delays doubled -> averages are 1.5x the first rep's.
        for r, (a, e) in enumerate([(0.0, 30 * US), (4 * US, 31 * US),
                                    (8 * US, 32 * US), (12 * US, 33 * US)]):
            spans.append(_rank_span(r, "alltoall/pairwise", 20 * US + a,
                                    20 * US + e))
        ana = TraceAnalysis(spans)
        assert len(ana.calls()) == 2
        assert ana.calls()[0].rep == 0 and ana.calls()[1].rep == 1
        assert ana.arrival_pattern().skews == pytest.approx(
            [0.0, 3 * US, 6 * US, 9 * US])

    def test_empty_trace_raises(self):
        with pytest.raises(TraceFormatError):
            TraceAnalysis([]).arrival_pattern()
        with pytest.raises(TraceFormatError):
            TraceAnalysis([]).imbalance()

    def test_collective_filter(self):
        spans = _fig2_spans() + [
            _rank_span(r, "allreduce/ring", 20 * US, 21 * US) for r in range(4)
        ]
        ana = TraceAnalysis(spans)
        assert len(ana.calls()) == 2
        assert len(ana.calls("alltoall")) == 1
        assert len(ana.calls("allreduce")) == 1
        assert ana.calls("bcast") == []

    def test_cells_group_independently(self):
        spans = ([_rank_span(r, "a/b", r * US, 10 * US, cell=0)
                  for r in range(2)]
                 + [_rank_span(r, "c/d", r * US, 20 * US, cell=1)
                    for r in range(2)])
        ana = TraceAnalysis(spans)
        assert [c.cell for c in ana.calls()] == [0, 1]
        assert len(ana.calls(cell=1)) == 1


class TestCommMatrix:
    def test_volume_and_counts(self):
        spans = [_msg_span(0, 1, 0.0, 1 * US, nbytes=100.0),
                 _msg_span(0, 1, 1 * US, 2 * US, nbytes=50.0),
                 _msg_span(1, 0, 0.0, 3 * US, nbytes=10.0)]
        m = TraceAnalysis(spans).comm_matrix()
        assert m.ranks == (0, 1)
        assert m.bytes_sent[0][1] == pytest.approx(150.0)
        assert m.messages[0][1] == 2
        assert m.bytes_sent[1][0] == pytest.approx(10.0)
        assert m.total_bytes == pytest.approx(160.0)
        assert m.total_messages == 3
        d = m.to_dict()
        assert d["bytes"]["0"]["1"] == pytest.approx(150.0)

    def test_cell_filter(self):
        spans = [_msg_span(0, 1, 0.0, 1 * US, cell=0),
                 _msg_span(1, 0, 0.0, 1 * US, cell=1)]
        assert TraceAnalysis(spans).comm_matrix(cell=0).total_messages == 1


class TestCriticalPath:
    def test_hand_built_two_rank_path(self):
        # rank 0 arrives at 0, sends at 3, delivered at 5; rank 1 arrives
        # at 2, exits at 6.  Path: compute(1: 5->6) + link(0->1: 3->5) +
        # compute(0: 0->3); skew 0 (path origin is the first arrival).
        spans = [
            _rank_span(0, "x/y", 0.0, 3.5),
            _rank_span(1, "x/y", 2.0, 6.0),
            _msg_span(0, 1, 3.0, 5.0, nbytes=64.0),
        ]
        cp = TraceAnalysis(spans).critical_path()
        assert cp.compute == pytest.approx(4.0)
        assert cp.link == pytest.approx(2.0)
        assert cp.skew == pytest.approx(0.0)
        assert cp.total == pytest.approx(cp.call.total_delay) == pytest.approx(6.0)
        kinds = [s["kind"] for s in cp.steps]
        assert kinds == ["compute", "link", "compute"]

    def test_skew_attribution_when_origin_arrives_late(self):
        # The path ends on rank 1, whose arrival (2.0) trails rank 0's
        # (0.0): that gap is skew, not compute.
        spans = [
            _rank_span(0, "x/y", 0.0, 1.0),
            _rank_span(1, "x/y", 2.0, 6.0),
        ]
        cp = TraceAnalysis(spans).critical_path()
        assert cp.compute == pytest.approx(4.0)
        assert cp.link == pytest.approx(0.0)
        assert cp.skew == pytest.approx(2.0)
        assert cp.total == pytest.approx(cp.call.total_delay)
        assert cp.steps[-1]["kind"] == "skew"

    def test_invariant_on_simulated_trace(self):
        bench = MicroBenchmark(
            platform=Platform(name="cp", nodes=2, cores_per_node=2), nrep=2
        )
        pattern = generate_pattern("ascending", 4, 1e-5, seed=1)
        with obs.session(record_messages=True) as ctx:
            bench.run("alltoall", "pairwise", 1024, pattern)
            ana = TraceAnalysis.from_context(ctx)
        calls = ana.calls()
        assert len(calls) == 2
        for call in calls:
            cp = ana.critical_path(call)
            # Exact attribution: compute + link + skew == d*.
            assert cp.compute + cp.link + cp.skew == pytest.approx(
                call.total_delay, rel=1e-9)
            assert cp.compute >= 0 and cp.link >= 0 and cp.skew >= 0
            assert cp.link > 0  # an alltoall must cross the network

    def test_no_calls_raises(self):
        with pytest.raises(TraceFormatError):
            TraceAnalysis([]).critical_path()


class TestSources:
    def _recorded_context(self):
        bench = MicroBenchmark(
            platform=Platform(name="src", nodes=1, cores_per_node=4), nrep=1
        )
        with obs.session(run_id="src-test", record_messages=True) as ctx:
            bench.run("allreduce", "ring", 512)
            yielded = TraceAnalysis.from_context(ctx)
        return ctx, yielded

    def test_jsonl_roundtrip_payload_identical(self, tmp_path):
        ctx, ana = self._recorded_context()
        path = tmp_path / "trace.jsonl"
        export_jsonl(path, ctx)
        loaded = TraceAnalysis.from_file(path)
        assert loaded.run_id == "src-test"
        assert json.dumps(loaded.analysis_payload(), sort_keys=True) == \
            json.dumps(ana.analysis_payload(), sort_keys=True)

    def test_perfetto_loads_with_microsecond_precision(self, tmp_path):
        ctx, ana = self._recorded_context()
        path = tmp_path / "trace.json"
        export_perfetto(path, ctx)
        loaded = TraceAnalysis.from_file(path)
        (a,), (b,) = ana.calls("allreduce")[:1], loaded.calls("allreduce")[:1]
        assert b.last_delay == pytest.approx(a.last_delay, rel=1e-9)
        assert b.arrival_spread == pytest.approx(a.arrival_spread, abs=1e-12)

    def test_payload_excludes_host_time_metrics(self):
        metrics = {"executor.cells": {"kind": "counter", "value": 3},
                   "executor.cell_seconds": {"kind": "histogram", "count": 3}}
        payload = TraceAnalysis(_fig2_spans(), metrics=metrics).analysis_payload()
        assert "executor.cells" in payload["metrics"]
        assert "executor.cell_seconds" not in payload["metrics"]
        assert "executor.cell_seconds" in HOST_TIME_METRICS


class TestDiffPayloads:
    def test_identical_payloads_agree(self):
        p = {"metrics": {"a": {"value": 3}}, "engine": {"runs": 2}}
        assert diff_payloads(p, json.loads(json.dumps(p))) == []

    def test_detects_increase_and_direction(self):
        old = {"m": {"x": 100.0}}
        new = {"m": {"x": 120.0}}
        (d,) = diff_payloads(old, new, threshold=0.1)
        assert d["path"] == "m.x"
        assert d["direction"] == "increase"
        assert d["change"] == pytest.approx(0.2)
        assert diff_payloads(old, new, threshold=0.5) == []

    def test_detects_added_and_removed_leaves(self):
        drifts = diff_payloads({"a": 1, "b": 2}, {"a": 1, "c": 3})
        assert {(d["path"], d["direction"]) for d in drifts} == \
            {("b", "removed"), ("c", "added")}

    def test_ignores_host_time_paths_by_default(self):
        old = {"metrics": {"executor.cell_seconds": {"sum": 1.0}},
               "engine": {"wall_seconds": 0.5, "events_per_sec": 100.0,
                          "runs": 4}}
        new = {"metrics": {"executor.cell_seconds": {"sum": 9.0}},
               "engine": {"wall_seconds": 5.0, "events_per_sec": 1.0,
                          "runs": 4}}
        assert diff_payloads(old, new) == []
        new["engine"]["runs"] = 8
        (d,) = diff_payloads(old, new)
        assert d["path"] == "engine.runs"

    def test_zero_baseline_counts_as_drift(self):
        (d,) = diff_payloads({"x": 0.0}, {"x": 1.0}, threshold=0.5)
        assert d["direction"] == "increase"


class TestDeprecatedShim:
    def test_old_module_warns_and_reexports(self):
        sys.modules.pop("repro.tracing.analysis", None)
        with pytest.warns(DeprecationWarning, match="repro.obs.analysis"):
            import repro.tracing.analysis as legacy
        import repro.obs.analysis as current
        assert legacy.average_delay_per_rank is current.average_delay_per_rank
        assert legacy.max_observed_skew is current.max_observed_skew
        assert legacy.pattern_from_trace is current.pattern_from_trace

    def test_package_root_import_does_not_warn(self):
        import warnings

        sys.modules.pop("repro.tracing", None)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            importlib.import_module("repro.tracing")


class TestTracerBasedReconstruction:
    """The absorbed Section V-A helpers still work on tracer records."""

    def test_pattern_from_trace_matches_by_hand(self):
        from repro.obs.analysis import pattern_from_trace
        from repro.tracing.tracer import CollectiveTracer

        tracer = CollectiveTracer()
        for seq, base in ((0, 0.0), (1, 1e-3)):
            for rank, delay in enumerate((0.0, 2 * US, 4 * US)):
                tracer.record("alltoall", seq, rank,
                              arrival=base + delay, exit=base + delay + US)
        pattern = pattern_from_trace(tracer, "alltoall", 3)
        assert pattern.skews == pytest.approx([0.0, 2 * US, 4 * US])


class TestExecutorMergedTraceAnalysis:
    def test_merged_cells_analyze_like_direct_runs(self):
        bench = MicroBenchmark(
            platform=Platform(name="merged", nodes=2, cores_per_node=2), nrep=1
        )
        pattern = generate_pattern("descending", 4, 2e-5, seed=5)
        spec = CellSpec.from_bench(bench, "alltoall", "bruck", 512, pattern)
        with obs.session(record_messages=True) as ctx:
            CellExecutor(jobs=1).run_cells([spec])
            ana = TraceAnalysis.from_context(ctx)
        (call,) = ana.calls()
        assert call.cell == 0
        direct = spec.run()
        np.testing.assert_allclose(call.last_delay,
                                   direct.timings[0].last_delay)
        np.testing.assert_allclose(call.arrival_spread,
                                   direct.timings[0].arrival_spread)
