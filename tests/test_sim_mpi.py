"""Tests for the user-facing simulated MPI layer (ProcContext, runners)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.sim.mpi import ProcContext, build_engine, run_processes
from repro.sim.network import NetworkParams
from repro.sim.noise import NoiseModel
from repro.sim.platform import Platform


class TestBuildEngine:
    def test_contexts_match_ranks(self, small_platform):
        engine, contexts = build_engine(small_platform)
        assert len(contexts) == small_platform.num_ranks
        for rank, ctx in enumerate(contexts):
            assert ctx.rank == rank
            assert ctx.size == small_platform.num_ranks

    def test_undersubscription(self, small_platform):
        engine, contexts = build_engine(small_platform, num_ranks=3)
        assert len(contexts) == 3
        assert contexts[0].size == 3

    @pytest.mark.parametrize("bad", [0, -1, 999])
    def test_invalid_num_ranks_rejected(self, small_platform, bad):
        with pytest.raises(ProtocolError):
            build_engine(small_platform, num_ranks=bad)


class TestRunProcesses:
    def test_per_rank_program_list(self, small_platform):
        def sender(ctx):
            yield from ctx.send(1, nbytes=8, payload=np.array([1.0]))
            return "sent"

        def receiver(ctx):
            req = yield from ctx.recv(0)
            return float(req.payload[0])

        def idle(ctx):
            return "idle"
            yield  # pragma: no cover

        programs = [sender, receiver] + [idle] * (small_platform.num_ranks - 2)
        run = run_processes(small_platform, programs)
        assert run.rank_results[0] == "sent"
        assert run.rank_results[1] == 1.0
        assert run.rank_results[2] == "idle"

    def test_user_slot_is_per_rank(self, small_platform):
        def prog(ctx):
            ctx.user["mine"] = ctx.rank * 2
            yield ctx.sleep(0.0)
            return ctx.user["mine"]

        run = run_processes(small_platform, prog)
        assert run.rank_results == [r * 2 for r in range(small_platform.num_ranks)]

    def test_events_counted(self, small_platform):
        def prog(ctx):
            yield from ctx.barrier()

        run = run_processes(small_platform, prog)
        assert run.events_processed > small_platform.num_ranks


class TestContextHelpers:
    def test_sendrecv_returns_receive_request(self, small_platform):
        def prog(ctx):
            partner = ctx.rank ^ 1
            req = yield from ctx.sendrecv(
                partner, partner, nbytes=8, payload=np.array([float(ctx.rank)])
            )
            return float(req.payload[0])

        run = run_processes(small_platform, prog)
        for rank, value in enumerate(run.rank_results):
            assert value == float(rank ^ 1)

    def test_waitall_accepts_iterables_and_singletons(self, small_platform):
        def prog(ctx):
            if ctx.rank == 0:
                reqs = [ctx.isend(1, 8) for _ in range(3)]
                extra = ctx.isend(1, 8)
                yield ctx.waitall(reqs, extra)
            elif ctx.rank == 1:
                reqs = [ctx.irecv(0) for _ in range(4)]
                yield ctx.waitall(reqs)
            return None

        run_processes(small_platform, prog)

    def test_compute_without_noise_is_exact(self, small_platform):
        def prog(ctx):
            yield ctx.compute(0.25)
            return ctx.time()

        run = run_processes(small_platform, prog)
        assert all(t == pytest.approx(0.25) for t in run.rank_results)

    def test_compute_with_noise_differs_per_rank(self, small_platform):
        noise = NoiseModel("noisy", small_platform.num_ranks, seed=5)

        def prog(ctx):
            yield ctx.compute(1e-3)
            return ctx.time()

        run = run_processes(small_platform, prog, noise=noise)
        assert len(set(run.rank_results)) > 1

    def test_barrier_synchronizes_staggered_ranks(self, small_platform):
        def prog(ctx):
            yield ctx.sleep(ctx.rank * 1e-3)
            entry = ctx.time()
            yield from ctx.barrier()
            return entry, ctx.time()

        run = run_processes(small_platform, prog)
        entries = [r[0] for r in run.rank_results]
        exits = [r[1] for r in run.rank_results]
        assert min(exits) >= max(entries)

    def test_single_rank_barrier_is_noop(self):
        plat = Platform("solo", nodes=1, cores_per_node=1)

        def prog(ctx):
            yield from ctx.barrier()
            return ctx.time()

        run = run_processes(plat, prog)
        assert run.rank_results == [0.0]

    def test_custom_params_respected(self, small_platform):
        params = NetworkParams(inter_latency=1.0, intra_latency=1.0,
                               send_overhead=0.0, recv_overhead=0.0)

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes=1)
            elif ctx.rank == 1:
                yield from ctx.recv(0)
            return ctx.time()

        run = run_processes(small_platform, prog, params=params)
        assert run.rank_results[1] >= 1.0  # one-second wire latency
