"""Tests for the SMP-aware (node-leader) hierarchical collectives."""

from __future__ import annotations

import numpy as np
import pytest

import repro.collectives  # noqa: F401
from repro.errors import ConfigurationError
from repro.collectives import reference_result
from repro.collectives.base import get_algorithm
from tests.helpers import run_collective_all_ranks


class TestSmpCorrectness:
    @pytest.mark.parametrize("cores", [1, 2, 4, 8])
    def test_allreduce_any_node_shape(self, cores):
        size = 8
        results, _, args, inputs = run_collective_all_ranks(
            "allreduce", "smp", size, count=16, cores_per_node=cores
        )
        expected = np.sum(np.stack(inputs), axis=0)
        for rank in range(size):
            assert np.array_equal(results[rank], expected)

    @pytest.mark.parametrize("root", [0, 3, 5, 11])
    def test_bcast_root_anywhere(self, root):
        """Roots that are leaders, non-leaders, and on various nodes."""
        size = 12
        results, _, args, inputs = run_collective_all_ranks(
            "bcast", "smp", size, count=8, root=root, cores_per_node=4
        )
        for rank in range(size):
            assert np.array_equal(np.asarray(results[rank]),
                                  np.asarray(inputs[root]))

    def test_uneven_last_node(self):
        """13 ranks on 4-core nodes: the last node has a single rank."""
        size = 13
        results, _, args, inputs = run_collective_all_ranks(
            "allreduce", "smp", size, count=8, cores_per_node=4
        )
        expected = reference_result("allreduce", inputs, args, 0)
        for rank in (0, 3, 4, 12):
            assert np.array_equal(results[rank], expected)

    def test_non_commutative_rejected(self):
        from repro.collectives.ops import ReduceOp

        weird = ReduceOp("weird", lambda a, b: a, commutative=False)
        with pytest.raises(ConfigurationError):
            run_collective_all_ranks("allreduce", "smp", 8, op=weird)

    def test_aliases(self):
        assert get_algorithm("allreduce", "hierarchical").name == "smp"
        assert get_algorithm("bcast", "hierarchical").name == "smp"


class TestSmpBehaviour:
    def test_smp_competitive_at_small_and_medium_sizes(self):
        """The hierarchical scheme stays within 2x of the best flat algorithm."""
        from repro.bench import MicroBenchmark
        from repro.sim.platform import get_machine

        bench = MicroBenchmark.from_machine(
            get_machine("hydra"), nodes=8, cores_per_node=4, nrep=1
        )
        for msg in (8, 4096, 65536):
            flat = min(
                bench.run("allreduce", a, msg).last_delay
                for a in ("ring", "recursive_doubling", "rabenseifner")
            )
            smp = bench.run("allreduce", "smp", msg).last_delay
            assert smp < 2.0 * flat, f"smp uncompetitive at {msg} B"

    def test_smp_matches_rdb_and_crushes_ring_at_high_latency(self):
        """With an expensive interconnect, latency-bound algorithms dominate.

        Interesting nuance this pins down: flat recursive doubling under
        *block* rank placement is already hierarchy-friendly (its low-
        distance rounds stay intra-node), so the SMP scheme only *ties* it
        (both pay ~log2(nodes) inter-node hops) — while the ring, whose
        every step wraps across nodes sequentially, is several times
        slower.
        """
        from repro.bench import MicroBenchmark
        from repro.sim.network import NetworkParams
        from repro.sim.platform import Platform

        params = NetworkParams(
            intra_latency=0.5e-6, inter_latency=25e-6,
            intra_bandwidth=50e9, inter_bandwidth=12.5e9,
        )
        bench = MicroBenchmark(
            platform=Platform("wan", nodes=4, cores_per_node=8),
            params=params, nrep=1,
        )
        flat = bench.run("allreduce", "recursive_doubling", 1024).last_delay
        smp = bench.run("allreduce", "smp", 1024).last_delay
        ring = bench.run("allreduce", "ring", 1024).last_delay
        assert smp < 1.2 * flat
        assert smp < ring / 3
