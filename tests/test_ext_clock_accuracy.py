"""Tests for the clock-accuracy extension experiment."""

from __future__ import annotations

from repro.experiments import ext_clock_accuracy
from repro.experiments.common import ExperimentConfig


class TestClockAccuracy:
    def test_benchmark_horizon_meets_paper_bound(self):
        result = ext_clock_accuracy.run(ExperimentConfig(fast=True))
        assert result.worst_benchmark_error() < 1e-6

    def test_errors_grow_with_horizon(self):
        result = ext_clock_accuracy.run(ExperimentConfig(fast=True))
        for (p, drift), (e0, e1, e2) in result.cells.items():
            assert e0 <= e1 <= e2 * 1.001, (p, drift)

    def test_report_has_verdict(self):
        result = ext_clock_accuracy.run(ExperimentConfig(fast=True))
        text = ext_clock_accuracy.report(result)
        assert "PASS" in text or "WARN" in text
        assert "ranks" in text
