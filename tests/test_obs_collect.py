"""Tests for cross-process telemetry capture, shipping, and merging.

The headline contract: a ``--jobs N`` run merges worker telemetry into a
trace byte-identical to the serial run's, and cache hits replay their
stored payloads (differing only by the provenance tag).
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro import obs
from repro.bench.executor import CellExecutor, CellSpec
from repro.bench.micro import MicroBenchmark
from repro.errors import TraceFormatError
from repro.obs.analysis import HOST_TIME_METRICS, TraceAnalysis
from repro.obs.collect import (
    CACHE_REPLAY,
    CELLS_TRACK,
    SIMULATED,
    CellTelemetry,
    capture_telemetry,
    merge_telemetry,
)
from repro.obs.context import ObsContext
from repro.patterns.generator import generate_pattern
from repro.sim.platform import Platform


def _specs():
    bench = MicroBenchmark(
        platform=Platform(name="collect", nodes=2, cores_per_node=2), nrep=2,
        seed=7,
    )
    pattern = generate_pattern("ascending", 4, 1e-5, seed=3)
    return [
        CellSpec.from_bench(bench, "alltoall", "pairwise", 1024, pattern),
        CellSpec.from_bench(bench, "allreduce", "ring", 4096, None),
    ]


def _run(jobs, cache_dir=None):
    """One instrumented executor batch; returns (ctx, virtual span dicts)."""
    with obs.session(run_id="collect-test", record_spans=True,
                     record_messages=True) as ctx:
        executor = CellExecutor(jobs=jobs, cache_dir=cache_dir)
        executor.run_cells(_specs())
    spans = [s.to_dict() for s in ctx.spans if s.domain == "virtual"]
    return ctx, spans


def _deterministic_metrics(ctx):
    return {name: snap for name, snap in ctx.metrics.snapshot().items()
            if name not in HOST_TIME_METRICS}


class TestCellTelemetry:
    def test_dict_roundtrip(self):
        t = CellTelemetry(run_id="cell-x", spans=[{"name": "s"}],
                          metrics={"m": {"kind": "counter", "value": 1}},
                          engine={"runs": 1}, dropped=2)
        back = CellTelemetry.from_dict(json.loads(json.dumps(t.to_dict())))
        assert back == t

    def test_from_dict_rejects_missing_keys(self):
        with pytest.raises(TraceFormatError):
            CellTelemetry.from_dict({"run_id": "x"})

    def test_picklable(self):
        t = CellTelemetry(run_id="cell-x", spans=[{"a": 1}])
        assert pickle.loads(pickle.dumps(t)) == t

    def test_tagged_copy_changes_only_provenance(self):
        t = CellTelemetry(run_id="cell-x", spans=[{"a": 1}], dropped=3)
        replay = t.tagged(CACHE_REPLAY)
        assert replay.provenance == CACHE_REPLAY
        assert t.provenance == SIMULATED
        assert replay.spans == t.spans and replay.dropped == t.dropped


class TestCaptureAndMerge:
    def _captured_cell(self):
        with obs.session(run_id="inner", record_spans=True) as cctx:
            cctx.record_rank_span("x/y", 0, 0.0, 2.0)
            cctx.record_rank_span("x/y", 1, 1.0, 3.0)
            cctx.metrics.counter("collective.calls.x.y").inc(2)
            return capture_telemetry(cctx)

    def test_capture_snapshots_everything(self):
        telemetry = self._captured_cell()
        assert telemetry.run_id == "inner"
        assert telemetry.provenance == SIMULATED
        assert len(telemetry.spans) == 2
        assert telemetry.metrics["collective.calls.x.y"]["value"] == 2

    def test_merge_rebases_and_tags_spans(self):
        telemetry = self._captured_cell()
        parent = ObsContext("parent", {})
        cid = merge_telemetry(parent, telemetry, cell=0, name="x/y")
        # Container on the cells track covering the cell's extent.
        container = next(s for s in parent.spans if s.span_id == cid)
        assert container.track == CELLS_TRACK
        assert container.start == 0.0 and container.end == 3.0
        assert container.args["provenance"] == SIMULATED
        assert container.args["cell_run_id"] == "inner"
        # Second cell tiles after the first (cursor advanced by the extent).
        assert parent.merge_cursor == 3.0
        cid2 = merge_telemetry(parent, telemetry, cell=1, name="x/y")
        container2 = next(s for s in parent.spans if s.span_id == cid2)
        assert container2.start == 3.0 and container2.end == 6.0
        merged = [s for s in parent.spans if s.track.startswith("rank ")]
        assert len(merged) == 4
        assert all(s.args["cell"] in (0, 1) for s in merged)
        assert {s.parent_id for s in merged} == {cid, cid2}

    def test_merge_accumulates_metrics_and_dropped(self):
        telemetry = self._captured_cell().tagged(SIMULATED)
        telemetry = CellTelemetry(
            run_id=telemetry.run_id, spans=telemetry.spans,
            metrics=telemetry.metrics, dropped=5,
        )
        parent = ObsContext("parent", {})
        merge_telemetry(parent, telemetry)
        merge_telemetry(parent, telemetry)
        assert parent.metrics.get("collective.calls.x.y").value == 4
        assert parent.spans.dropped == 10

    def test_merge_without_span_recording_merges_metrics_only(self):
        telemetry = self._captured_cell()
        parent = ObsContext("parent", {}, record_spans=False)
        assert merge_telemetry(parent, telemetry) is None
        assert parent.metrics.get("collective.calls.x.y").value == 2

    def test_wall_spans_never_merge(self):
        with obs.session(run_id="inner") as cctx:
            with cctx.wall_span("bench.cell", track="bench"):
                cctx.record_rank_span("x/y", 0, 0.0, 1.0)
            telemetry = capture_telemetry(cctx)
        assert any(s["domain"] == "wall" for s in telemetry.spans)
        parent = ObsContext("parent", {})
        merge_telemetry(parent, telemetry)
        assert all(s.domain == "virtual" for s in parent.spans)


class TestSerialParallelParity:
    def test_jobs2_trace_is_byte_identical_to_serial(self):
        ctx1, spans1 = _run(jobs=1)
        ctx2, spans2 = _run(jobs=2)
        assert spans1 == spans2
        assert _deterministic_metrics(ctx1) == _deterministic_metrics(ctx2)
        # Worker engine runs merged back into the parent aggregate.
        assert ctx2.engine_stats is not None
        assert ctx2.engine_stats.runs == ctx1.engine_stats.runs > 0
        # The parallel trace really contains worker-originated rank tracks.
        assert any(s["track"].startswith("rank ") for s in spans2)

    def test_analysis_payloads_identical(self):
        ctx1, _ = _run(jobs=1)
        ctx2, _ = _run(jobs=2)
        p1 = TraceAnalysis.from_context(ctx1).analysis_payload()
        p2 = TraceAnalysis.from_context(ctx2).analysis_payload()
        assert json.dumps(p1, sort_keys=True) == json.dumps(p2, sort_keys=True)

    def test_provenance_identical_inline_vs_worker(self):
        _, spans1 = _run(jobs=1)
        _, spans2 = _run(jobs=2)
        prov1 = [s["args"]["provenance"] for s in spans1
                 if s["track"] == CELLS_TRACK]
        prov2 = [s["args"]["provenance"] for s in spans2
                 if s["track"] == CELLS_TRACK]
        assert prov1 == prov2 == [SIMULATED, SIMULATED]


class TestCacheReplay:
    def test_warm_cache_replays_stored_telemetry(self, tmp_path):
        cache = tmp_path / "cache"
        ctx_cold, spans_cold = _run(jobs=1, cache_dir=cache)
        ctx_warm, spans_warm = _run(jobs=1, cache_dir=cache)
        # Same spans except the provenance tag on the cell containers.
        prov = [s["args"]["provenance"] for s in spans_warm
                if s["track"] == CELLS_TRACK]
        assert prov == [CACHE_REPLAY, CACHE_REPLAY]

        def untagged(spans):
            out = []
            for s in spans:
                s = dict(s)
                if s["track"] == CELLS_TRACK:
                    s["args"] = {k: v for k, v in s["args"].items()
                                 if k != "provenance"}
                out.append(s)
            return out

        assert untagged(spans_cold) == untagged(spans_warm)
        # The derived analysis agrees exactly, except for the counters that
        # exist precisely to tell hits apart from fresh simulation.
        p_cold = TraceAnalysis.from_context(ctx_cold).analysis_payload()
        p_warm = TraceAnalysis.from_context(ctx_warm).analysis_payload()
        for payload in (p_cold, p_warm):
            for name in ("executor.cache_hit_total", "executor.simulated"):
                payload["metrics"].pop(name, None)
        assert json.dumps(p_cold, sort_keys=True) == \
            json.dumps(p_warm, sort_keys=True)

    def test_cache_hit_counter_separates_hits_from_simulated(self, tmp_path):
        cache = tmp_path / "cache"
        ctx_cold, _ = _run(jobs=1, cache_dir=cache)
        assert ctx_cold.metrics.get("executor.cache_hit_total").value == 0
        assert ctx_cold.metrics.get("executor.simulated").value == 2
        assert ctx_cold.metrics.get("executor.cell_seconds").count == 2
        ctx_warm, _ = _run(jobs=1, cache_dir=cache)
        assert ctx_warm.metrics.get("executor.cache_hit_total").value == 2
        assert ctx_warm.metrics.get("executor.simulated").value == 0
        # Satellite contract: the histogram covers simulated cells only —
        # a fully-cached run observes nothing.
        assert ctx_warm.metrics.get("executor.cell_seconds") is None

    def test_records_without_telemetry_still_hit(self, tmp_path):
        # A cache written without a session (old records) has telemetry
        # None; warm runs with a session still hit, just without replay.
        cache = tmp_path / "cache"
        executor = CellExecutor(jobs=1, cache_dir=cache)
        executor.run_cells(_specs())
        with obs.session(record_spans=True) as ctx:
            warm = CellExecutor(jobs=1, cache_dir=cache)
            warm.run_cells(_specs())
        assert warm.stats.hits == 2
        assert ctx.metrics.get("executor.cache_hit_total").value == 2
        assert not any(s.track == CELLS_TRACK for s in ctx.spans)


class TestUninstrumentedPath:
    def test_no_session_means_no_telemetry(self, tmp_path):
        cache = tmp_path / "cache"
        executor = CellExecutor(jobs=1, cache_dir=cache)
        results = executor.run_cells(_specs())
        assert len(results) == 2
        record = executor.cache.get_record(_specs()[0])
        assert record is not None and record[1] is None

    def test_results_identical_with_and_without_session(self):
        plain = CellExecutor(jobs=1).run_cells(_specs())
        with obs.session(record_spans=True, record_messages=True):
            traced = CellExecutor(jobs=1).run_cells(_specs())
        assert [r.to_dict() for r in plain] == [r.to_dict() for r in traced]
