"""Tests for the mixed-collective, table-driven proxy application."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.apps import MixedProxyApp, Phase
from repro.collectives.tuned import fixed_decision
from repro.selection import SelectionTable
from repro.sim.platform import Platform, get_machine

PHASES = (
    Phase("alltoall", 32768.0, count=16),
    Phase("allreduce", 8.0, count=8),
    Phase("bcast", 1024.0, count=16),
)


@pytest.fixture
def plat():
    return Platform("t", nodes=4, cores_per_node=4)


class TestResolution:
    def test_explicit_algorithm_wins(self, plat):
        app = MixedProxyApp(
            platform=plat,
            phases=(Phase("alltoall", 64.0, algorithm="bruck"),),
        )
        assert app.resolve_algorithm(app.phases[0]) == "bruck"

    def test_table_overrides_fixed_rules(self, plat):
        table = SelectionTable()
        table.add_rule("alltoall", plat.num_ranks, 0.0, "pairwise")
        app = MixedProxyApp(platform=plat, phases=(Phase("alltoall", 64.0),),
                            table=table)
        assert app.resolve_algorithm(app.phases[0]) == "pairwise"

    def test_fallback_to_fixed_rules(self, plat):
        app = MixedProxyApp(platform=plat, phases=(Phase("alltoall", 64.0),))
        expected = fixed_decision("alltoall", plat.num_ranks, 64.0)
        assert app.resolve_algorithm(app.phases[0]) == expected

    def test_table_missing_collective_falls_back(self, plat):
        table = SelectionTable()
        table.add_rule("reduce", plat.num_ranks, 0.0, "binomial")
        app = MixedProxyApp(platform=plat, phases=(Phase("alltoall", 64.0),),
                            table=table)
        expected = fixed_decision("alltoall", plat.num_ranks, 64.0)
        assert app.resolve_algorithm(app.phases[0]) == expected


class TestRun:
    def test_accounting_per_phase(self, plat):
        app = MixedProxyApp(platform=plat, phases=PHASES, iterations=3,
                            compute_per_iteration=5e-4)
        result = app.run()
        assert result.runtime > 0
        assert set(result.resolved) == {
            "alltoall@32768B", "allreduce@8B", "bcast@1024B"
        }
        assert set(result.phase_mpi_time) == set(result.resolved)
        # The 32 KiB alltoall dominates the tiny allreduce/bcast.
        assert result.dominant_phase == "alltoall@32768B"

    def test_tuned_table_end_to_end(self):
        """Campaign -> table -> mixed app resolves from the campaign."""
        from repro.bench import MicroBenchmark, TuningCampaign

        spec = get_machine("hydra")
        bench = MicroBenchmark.from_machine(spec, nodes=4, cores_per_node=4, nrep=1)
        campaign = TuningCampaign(
            bench=bench, collectives=("alltoall",), msg_sizes=(32768,),
            shapes=("first_delayed", "random"),
        )
        campaign_result = campaign.run()
        app = MixedProxyApp.from_machine(
            spec, PHASES, nodes=4, cores_per_node=4,
            table=campaign_result.table, iterations=2,
        )
        result = app.run()
        assert result.resolved["alltoall@32768B"] == campaign_result.winners[
            ("alltoall", 32768.0)
        ]

    def test_validation(self, plat):
        with pytest.raises(ConfigurationError):
            MixedProxyApp(platform=plat, phases=())
        with pytest.raises(ConfigurationError):
            MixedProxyApp(platform=plat, phases=PHASES, iterations=0)
        with pytest.raises(ConfigurationError):
            Phase("alltoall", -1.0)
