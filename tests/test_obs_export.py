"""Tests for the Perfetto and JSONL exporters (round-trips, validation)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import TraceFormatError
from repro.obs.context import session
from repro.obs.export import (
    export_jsonl,
    export_metrics,
    export_perfetto,
    load_perfetto,
    metrics_payload,
    rank_tracks,
    read_jsonl,
    trace_events,
)


def _populated_session():
    """A closed session with spans on ranks 0,2,10, a wall span, metrics."""
    with session(run_id="run-test", meta={"command": "unit"}) as octx:
        octx.record_rank_span("coll", 0, 0.0, 1e-3)
        octx.record_rank_span("coll", 2, 1e-4, 1.1e-3)
        octx.record_rank_span("coll", 10, 2e-4, 1.2e-3)
        with octx.wall_span("stage", args={"cells": 3}):
            pass
        octx.metrics.counter("c").inc(2)
        octx.metrics.histogram("h").observe(0.5)
    return octx


class TestPerfetto:
    def test_round_trip_and_rank_tracks(self, tmp_path):
        octx = _populated_session()
        path = export_perfetto(tmp_path / "trace.json", octx)
        trace = load_perfetto(path)
        # Natural ordering: rank 2 before rank 10.
        assert rank_tracks(trace) == ["rank 0", "rank 2", "rank 10"]
        assert trace["otherData"]["run_id"] == "run-test"
        assert trace["otherData"]["command"] == "unit"
        assert trace["otherData"]["dropped_spans"] == 0

    def test_complete_events_use_microseconds(self):
        octx = _populated_session()
        xs = [e for e in trace_events(octx) if e["ph"] == "X"]
        coll0 = next(e for e in xs if e["name"] == "coll" and e["ts"] == 0.0)
        assert coll0["dur"] == pytest.approx(1e-3 * 1e6)
        assert coll0["cat"] == "virtual"
        assert coll0["pid"] == 1
        wall = next(e for e in xs if e["name"] == "stage")
        assert wall["pid"] == 2
        assert wall["args"]["cells"] == 3

    def test_span_links_ride_in_args(self):
        with session() as octx:
            parent = octx.record_rank_span("outer", 0, 0.0, 2.0)
            octx.record_rank_span("inner", 0, 0.5, 1.0, parent=parent)
        xs = {e["name"]: e for e in trace_events(octx) if e["ph"] == "X"}
        assert xs["inner"]["args"]["parent_id"] == parent
        assert xs["outer"]["args"]["span_id"] == parent

    def test_load_rejects_non_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(TraceFormatError):
            load_perfetto(bad)

    def test_load_rejects_missing_trace_events(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(TraceFormatError):
            load_perfetto(bad)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        octx = _populated_session()
        path = export_jsonl(tmp_path / "obs.jsonl", octx)
        back = read_jsonl(path)
        assert back["header"]["run_id"] == "run-test"
        assert back["header"]["meta"] == {"command": "unit"}
        assert len(back["spans"]) == 4
        assert back["metrics"]["c"]["value"] == 2
        assert back["metrics"]["h"]["count"] == 1
        assert back["end"]["spans"] == 4
        assert back["end"]["dropped"] == 0
        # Spans round-trip exactly (JSON floats are lossless for these).
        original = [s.to_dict() for s in octx.spans]
        assert back["spans"] == original

    def test_truncated_stream_detected(self, tmp_path):
        octx = _populated_session()
        path = export_jsonl(tmp_path / "obs.jsonl", octx)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the end record
        with pytest.raises(TraceFormatError):
            read_jsonl(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        path.write_text(json.dumps({"magic": "other"}) + "\n")
        with pytest.raises(TraceFormatError):
            read_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            read_jsonl(path)


class TestMetricsExport:
    def test_payload_shape(self, tmp_path):
        octx = _populated_session()
        path = export_metrics(tmp_path / "metrics.json", octx)
        payload = json.loads(path.read_text())
        assert payload == metrics_payload(octx)
        assert payload["run_id"] == "run-test"
        assert payload["metrics"]["c"]["value"] == 2
        assert payload["spans"] == {"recorded": 4, "dropped": 0}
        assert payload["engine"] is None

    def test_engine_stats_included_when_present(self, tmp_path):
        from repro.sim.engine import EngineStats

        with session() as octx:
            s = EngineStats()
            s.runs = 1
            s.events_start = 5
            octx.absorb_engine_stats(s)
        payload = metrics_payload(octx)
        assert payload["engine"]["runs"] == 1
        assert payload["engine"]["events_total"] == 5


class TestDroppedSpanAccounting:
    def test_exports_surface_dropped_count(self, tmp_path):
        with session(span_capacity=2) as octx:
            for i in range(5):
                octx.record_rank_span("s", 0, float(i), float(i + 1))
        trace = load_perfetto(export_perfetto(tmp_path / "t.json", octx))
        assert trace["otherData"]["dropped_spans"] == 3
        back = read_jsonl(export_jsonl(tmp_path / "t.jsonl", octx))
        assert back["end"] == {"spans": 2, "dropped": 3,
                               "links": 0, "dropped_links": 0}


class TestRunIdStamping:
    def test_same_config_same_artifact_ids(self, tmp_path):
        paths = []
        for name in ("a.json", "b.json"):
            with obs.session(meta={"command": "profile", "cell": "x"}) as octx:
                octx.record_rank_span("s", 0, 0.0, 1.0)
            paths.append(export_perfetto(tmp_path / name, octx))
        ids = [load_perfetto(p)["otherData"]["run_id"] for p in paths]
        assert ids[0] == ids[1]
