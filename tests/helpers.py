"""Test helpers: run a collective on every rank and collect results."""

from __future__ import annotations

import numpy as np

from repro.collectives import CollArgs, make_input, run_collective
from repro.sim.mpi import RunResult, run_processes
from repro.sim.network import NetworkParams
from repro.sim.platform import Platform


def run_collective_all_ranks(
    collective: str,
    algorithm: str,
    size: int,
    count: int = 8,
    msg_bytes: float | None = None,
    root: int = 0,
    op=None,
    cores_per_node: int = 4,
    params: NetworkParams | None = None,
    segment_bytes: float | None = None,
    inputs: list[np.ndarray] | None = None,
) -> tuple[list, RunResult, CollArgs, list[np.ndarray]]:
    """Run one collective over ``size`` ranks; returns (results, run, args, inputs)."""
    nodes = max(1, (size + cores_per_node - 1) // cores_per_node)
    platform = Platform("test", nodes=nodes, cores_per_node=cores_per_node)
    kwargs = dict(
        count=count,
        msg_bytes=float(msg_bytes if msg_bytes is not None else count * 8),
        root=root,
        segment_bytes=segment_bytes,
    )
    if op is not None:
        kwargs["op"] = op
    args = CollArgs(**kwargs)
    if inputs is None:
        inputs = [make_input(collective, r, size, count) for r in range(size)]

    def prog(ctx):
        result = yield from run_collective(ctx, collective, algorithm, args, inputs[ctx.rank])
        return result

    run = run_processes(platform, prog, params=params, num_ranks=size)
    return run.rank_results, run, args, inputs
