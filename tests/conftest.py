"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.sim.network import NetworkParams
from repro.sim.platform import Platform


@pytest.fixture
def small_platform() -> Platform:
    """2 nodes x 4 cores = 8 ranks; enough to hit intra- and inter-node paths."""
    return Platform("test-small", nodes=2, cores_per_node=4)


@pytest.fixture
def single_node_platform() -> Platform:
    return Platform("test-1node", nodes=1, cores_per_node=8)


@pytest.fixture
def flat_params() -> NetworkParams:
    """Uniform network: equal latency/bandwidth at both levels, no rx port.

    Handy for closed-form timing expectations in tests.
    """
    return NetworkParams(
        intra_latency=1e-6,
        inter_latency=1e-6,
        intra_bandwidth=1e9,
        inter_bandwidth=1e9,
        send_overhead=0.0,
        recv_overhead=0.0,
        eager_threshold=4096,
        rx_serialization=False,
    )
