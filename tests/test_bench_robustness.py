"""Tests for robustness analysis and the sweep runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.bench import (
    MicroBenchmark,
    average_normalized,
    classify,
    good_algorithms,
    normalize_rows,
    normalized_performance,
    sweep_per_algorithm_skew,
    sweep_shared_skew,
)
from repro.patterns import ArrivalPattern, NO_DELAY
from repro.sim.platform import get_machine


class TestRobustnessMath:
    def test_normalized_performance_sign_convention(self):
        # Paper Fig. 6: negative = absorbed skew (faster), positive = slower.
        assert normalized_performance(0.5, 1.0) == pytest.approx(-0.5)
        assert normalized_performance(2.0, 1.0) == pytest.approx(1.0)
        assert normalized_performance(1.0, 1.0) == 0.0

    def test_classification_thresholds(self):
        assert classify(-0.564) == "faster"  # the paper's Fig. 6a example
        assert classify(-0.25) == "neutral"
        assert classify(0.25) == "neutral"
        assert classify(0.3) == "slower"

    def test_good_algorithms_five_percent_rule(self):
        row = {"a": 1.00, "b": 1.04, "c": 1.06, "d": 9.0}
        assert good_algorithms(row) == {"a", "b"}

    def test_good_algorithms_all_equal(self):
        assert good_algorithms({"a": 2.0, "b": 2.0}) == {"a", "b"}

    def test_normalize_rows(self):
        table = {"p1": {"a": 2.0, "b": 4.0}, "p2": {"a": 3.0, "b": 1.5}}
        normalized = normalize_rows(table)
        assert normalized["p1"] == {"a": 1.0, "b": 2.0}
        assert normalized["p2"]["b"] == 1.0
        assert normalized["p2"]["a"] == pytest.approx(2.0)

    def test_average_normalized_with_exclusion(self):
        table = {
            "no_delay": {"a": 1.0, "b": 2.0},
            "asc": {"a": 4.0, "b": 2.0},
            "ft": {"a": 100.0, "b": 1.0},
        }
        avg = average_normalized(table, exclude=("ft",))
        assert avg["a"] == pytest.approx((1.0 + 2.0) / 2)
        assert avg["b"] == pytest.approx((2.0 + 1.0) / 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            normalized_performance(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            good_algorithms({})
        with pytest.raises(ConfigurationError):
            normalize_rows({"p": {}})
        with pytest.raises(ConfigurationError):
            average_normalized({"p": {"a": 1.0}}, exclude=("p",))


@pytest.fixture(scope="module")
def bench():
    return MicroBenchmark.from_machine(
        get_machine("hydra"), nodes=4, cores_per_node=4, nrep=1
    )


ALGOS = ["basic_linear", "pairwise", "bruck", "linear_sync"]


class TestSweeps:
    def test_shared_skew_sweep_structure(self, bench):
        sweep = sweep_shared_skew(
            bench, "alltoall", ALGOS, 256, ["ascending", "last_delayed"]
        )
        assert sweep.patterns == [NO_DELAY, "ascending", "last_delayed"]
        assert set(sweep.algorithms) == set(ALGOS)
        # All non-reference patterns share one skew magnitude.
        skews = {sweep.skew_by_pattern[p] for p in ("ascending", "last_delayed")}
        assert len(skews) == 1
        no_delay_mean = np.mean(list(sweep.row(NO_DELAY).values()))
        assert skews.pop() == pytest.approx(1.5 * no_delay_mean, rel=1e-9)

    def test_shared_skew_override(self, bench):
        sweep = sweep_shared_skew(
            bench, "alltoall", ["bruck"], 64, ["bell"], max_skew=3.3e-4
        )
        assert sweep.skew_by_pattern["bell"] == pytest.approx(3.3e-4)

    def test_extra_patterns_included(self, bench):
        traced = ArrivalPattern("ft_scenario", np.linspace(0, 1e-4, bench.num_ranks))
        sweep = sweep_shared_skew(
            bench, "alltoall", ["bruck"], 64, [], extra_patterns=[traced]
        )
        assert "ft_scenario" in sweep.patterns
        assert sweep.skew_by_pattern["ft_scenario"] == pytest.approx(1e-4)

    def test_per_algorithm_skew_scales_with_runtime(self, bench):
        sweep = sweep_per_algorithm_skew(
            bench, "alltoall", ["bruck", "pairwise"], 1024, ["last_delayed"]
        )
        # Pairwise is slower than Bruck at this size, so its pattern run saw
        # a proportionally larger max skew.
        bruck = sweep.get("last_delayed", "bruck")
        pairwise = sweep.get("last_delayed", "pairwise")
        assert pairwise.max_skew > bruck.max_skew
        assert bruck.max_skew == pytest.approx(
            sweep.get(NO_DELAY, "bruck").last_delay, rel=1e-6
        )

    def test_per_algorithm_skew_metadata_recorded(self, bench):
        # Regression: per-shape skews used to be dropped entirely — only the
        # no_delay entry existed and skew_by_pattern[shape] raised KeyError.
        algos = ["bruck", "pairwise"]
        sweep = sweep_per_algorithm_skew(
            bench, "alltoall", algos, 1024, ["last_delayed"]
        )
        per_algo = sweep.per_algorithm_skews["last_delayed"]
        assert set(per_algo) == set(algos)
        for algo in algos:
            assert per_algo[algo] == pytest.approx(
                sweep.get(NO_DELAY, algo).last_delay, rel=1e-6
            )
        assert sweep.skew_by_pattern[NO_DELAY] == 0.0
        assert sweep.skew_by_pattern["last_delayed"] == pytest.approx(
            np.mean(list(per_algo.values()))
        )

    def test_per_algorithm_skews_round_trip_through_dict(self, bench):
        from repro.bench.results import SweepResult

        sweep = sweep_per_algorithm_skew(
            bench, "alltoall", ["bruck", "pairwise"], 1024, ["last_delayed"]
        )
        rebuilt = SweepResult.from_dict(sweep.to_dict())
        assert rebuilt.per_algorithm_skews == sweep.per_algorithm_skews
        assert rebuilt.skew_by_pattern == sweep.skew_by_pattern

    def test_shared_skew_sweep_has_no_per_algorithm_skews(self, bench):
        sweep = sweep_shared_skew(bench, "alltoall", ["bruck"], 64, ["bell"])
        assert sweep.per_algorithm_skews == {}

    def test_empty_algorithm_list_rejected(self, bench):
        with pytest.raises(ConfigurationError):
            sweep_shared_skew(bench, "alltoall", [], 64, ["bell"])
