"""Tests for the wait_any blocking condition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform


@pytest.fixture
def plat():
    return Platform("t", nodes=2, cores_per_node=4)


class TestWaitAny:
    def test_returns_index_of_earliest_completion(self, plat):
        def prog(ctx):
            if ctx.rank == 1:
                yield ctx.sleep(0.2)
                yield from ctx.send(0, 8, tag=1, payload=np.array([1.0]))
            elif ctx.rank == 2:
                yield ctx.sleep(0.1)
                yield from ctx.send(0, 8, tag=2, payload=np.array([2.0]))
            elif ctx.rank == 0:
                r1 = ctx.irecv(1, tag=1)
                r2 = ctx.irecv(2, tag=2)
                index = yield ctx.waitany(r1, r2)
                first_time = ctx.time()
                assert index == 1  # rank 2's message lands first
                yield ctx.waitall(r1)
                return first_time, ctx.time()
            return None

        run = run_processes(plat, prog)
        first, second = run.rank_results[0]
        assert 0.1 <= first < 0.15
        assert second >= 0.2

    def test_already_complete_request_resumes_immediately(self, plat):
        def prog(ctx):
            if ctx.rank == 1:
                yield from ctx.send(0, 8, payload=np.array([7.0]))
            elif ctx.rank == 0:
                req = ctx.irecv(1)
                yield ctx.sleep(0.05)  # message certainly arrived
                index = yield ctx.waitany([req])
                assert index == 0
                assert req.payload[0] == 7.0
                return ctx.time()
            return None

        run = run_processes(plat, prog)
        # A few CPU-overhead microseconds on top of the 50 ms sleep.
        assert run.rank_results[0] == pytest.approx(0.05, abs=1e-5)

    def test_sliding_window_consumes_all(self, plat):
        """waitany-driven window: receive 6 messages with 2 slots."""

        def prog(ctx):
            if ctx.rank == 0:
                srcs = [1, 2, 3]
                pending = []
                seen = []
                # two messages from each of three peers
                queue = [(src, k) for src in srcs for k in range(2)]
                queue_iter = iter(queue)
                for _ in range(2):
                    src, _k = next(queue_iter)
                    pending.append((src, ctx.irecv(src)))
                remaining = queue[2:]
                while pending:
                    index = yield ctx.waitany([r for _, r in pending])
                    src, req = pending.pop(index)
                    seen.append(float(req.payload[0]))
                    if remaining:
                        nsrc, _k = remaining.pop(0)
                        pending.append((nsrc, ctx.irecv(nsrc)))
                return sorted(seen)
            if ctx.rank in (1, 2, 3):
                for k in range(2):
                    yield from ctx.send(
                        0, 8, payload=np.array([ctx.rank * 10.0 + k])
                    )
            return None

        run = run_processes(plat, prog)
        assert run.rank_results[0] == [10.0, 11.0, 20.0, 21.0, 30.0, 31.0]

    def test_empty_waitany_rejected(self, plat):
        def prog(ctx):
            yield ctx.waitany()

        with pytest.raises(ProtocolError):
            run_processes(plat, prog)

    def test_waitany_deadlock_detected(self, plat):
        from repro.errors import DeadlockError

        def prog(ctx):
            if ctx.rank == 0:
                req = ctx.irecv(1)  # never sent
                yield ctx.waitany([req])
            return None

        with pytest.raises(DeadlockError):
            run_processes(plat, prog)
