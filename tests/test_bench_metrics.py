"""Tests for the delay metrics and result containers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.bench.metrics import CollectiveTiming, last_delay, total_delay
from repro.bench.results import BenchResult, SweepResult


class TestDelayMetrics:
    def test_paper_equations_on_figure2_example(self):
        # 4 ranks: arrivals 0, 1, 3, 2; exits 5, 6, 7, 8.
        a = np.array([0.0, 1.0, 3.0, 2.0])
        e = np.array([5.0, 6.0, 7.0, 8.0])
        assert total_delay(a, e) == 8.0  # max(e) - min(a)
        assert last_delay(a, e) == 5.0  # max(e) - max(a)

    def test_synchronized_case_metrics_agree(self):
        a = np.zeros(4)
        e = np.array([1.0, 2.0, 1.5, 1.2])
        assert total_delay(a, e) == last_delay(a, e) == 2.0

    def test_last_delay_excludes_imposed_waiting(self):
        """A hugely delayed rank inflates d* but not necessarily d^."""
        a = np.array([0.0, 0.0, 0.0, 100.0])
        e = np.array([0.5, 0.5, 0.5, 100.5])
        assert total_delay(a, e) == pytest.approx(100.5)
        assert last_delay(a, e) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            total_delay(np.array([0.0]), np.array([0.0, 1.0]))
        with pytest.raises(ConfigurationError):
            last_delay(np.array([2.0]), np.array([1.0]))  # exit before arrival
        with pytest.raises(ConfigurationError):
            total_delay(np.array([]), np.array([]))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e3, allow_nan=False),
                st.floats(min_value=0, max_value=10, allow_nan=False),
            ),
            min_size=1,
            max_size=64,
        )
    )
    def test_total_delay_dominates_last_delay(self, pairs):
        a = np.array([p[0] for p in pairs])
        e = a + np.array([p[1] for p in pairs])
        assert total_delay(a, e) >= last_delay(a, e) - 1e-12


class TestCollectiveTiming:
    def test_properties(self):
        timing = CollectiveTiming(np.array([0.0, 1.0]), np.array([2.0, 3.0]))
        assert timing.num_ranks == 2
        assert timing.total_delay == 3.0
        assert timing.last_delay == 2.0
        assert timing.arrival_spread == 1.0
        assert np.array_equal(timing.delays_from_first(), [0.0, 1.0])


def _mk_result(algo="a", pattern="no_delay", delays=(1.0, 2.0)):
    timings = [
        CollectiveTiming(np.zeros(2), np.full(2, d)) for d in delays
    ]
    return BenchResult(
        collective="alltoall", algorithm=algo, msg_bytes=8.0, num_ranks=2,
        pattern_name=pattern, max_skew=0.0, timings=timings,
    )


class TestBenchResult:
    def test_statistics(self):
        r = _mk_result(delays=(1.0, 2.0, 6.0))
        assert r.nrep == 3
        assert r.last_delay == pytest.approx(3.0)
        assert r.median_last_delay == pytest.approx(2.0)

    def test_requires_repetitions(self):
        with pytest.raises(ConfigurationError):
            BenchResult("alltoall", "a", 8.0, 2, "no_delay", 0.0, timings=[])

    def test_to_dict_roundtrippable_fields(self):
        d = _mk_result().to_dict()
        assert d["algorithm"] == "a"
        assert len(d["last_delays"]) == 2


class TestSweepResult:
    def test_rows_and_best(self):
        sweep = SweepResult("alltoall", 8.0, 2)
        sweep.add(_mk_result("fast", "no_delay", delays=(1.0,)))
        sweep.add(_mk_result("slow", "no_delay", delays=(5.0,)))
        sweep.add(_mk_result("fast", "ascending", delays=(4.0,)))
        sweep.add(_mk_result("slow", "ascending", delays=(2.0,)))
        assert sweep.best_algorithm("no_delay") == "fast"
        assert sweep.best_algorithm("ascending") == "slow"
        assert sweep.patterns == ["no_delay", "ascending"]
        assert set(sweep.algorithms) == {"fast", "slow"}

    def test_missing_cell_raises(self):
        sweep = SweepResult("alltoall", 8.0, 2)
        with pytest.raises(ConfigurationError):
            sweep.get("no_delay", "ghost")

    def test_json_and_csv_export(self, tmp_path):
        sweep = SweepResult("alltoall", 8.0, 2)
        sweep.add(_mk_result("a", "no_delay"))
        sweep.save_json(tmp_path / "s.json")
        sweep.save_csv(tmp_path / "s.csv")
        assert (tmp_path / "s.json").stat().st_size > 0
        text = (tmp_path / "s.csv").read_text()
        assert "mean_last_delay" in text and "no_delay" in text
