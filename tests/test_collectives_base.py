"""Unit tests for collective infrastructure: CollArgs, trees, registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.collectives  # noqa: F401 - populate registry
from repro.errors import ConfigurationError, UnknownAlgorithmError
from repro.collectives.base import (
    CollArgs,
    binary_tree,
    binomial_tree,
    chain_tree,
    get_algorithm,
    get_algorithm_by_id,
    in_order_binary_tree,
    in_order_tree_root,
    list_algorithms,
    list_collectives,
    vrank,
)


class TestCollArgs:
    def test_bytes_for_scales_proportionally(self):
        args = CollArgs(count=100, msg_bytes=1000.0)
        assert args.bytes_for(100) == 1000.0
        assert args.bytes_for(50) == 500.0
        assert args.bytes_for(1) == 10.0

    def test_segments_cover_count_exactly(self):
        args = CollArgs(count=24, msg_bytes=1 << 20, segment_bytes=1 << 17)
        segs = args.segments()
        assert len(segs) == 8
        assert sum(n for _, n in segs) == 24
        assert segs[0][0] == 0
        for (o1, n1), (o2, _) in zip(segs, segs[1:]):
            assert o1 + n1 == o2

    def test_small_message_single_segment(self):
        args = CollArgs(count=8, msg_bytes=64.0)
        assert args.segments() == [(0, 8)]

    def test_segment_count_capped_by_items(self):
        args = CollArgs(count=3, msg_bytes=1 << 24, segment_bytes=1024.0)
        assert len(args.segments()) == 3

    @pytest.mark.parametrize("kwargs", [dict(count=0), dict(count=-1), dict(msg_bytes=-2.0)])
    def test_validation(self, kwargs):
        base = dict(count=4, msg_bytes=8.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            CollArgs(**base)


def _validate_tree(tree_fn, size, root=0, **kw):
    """Generic tree invariants: single root, consistent parent/child, connected."""
    parents = {}
    children_of = {}
    for rank in range(size):
        parent, children = tree_fn(rank, size, root, **kw)
        parents[rank] = parent
        children_of[rank] = children
    roots = [r for r, p in parents.items() if p is None]
    assert len(roots) == 1
    for rank in range(size):
        for child in children_of[rank]:
            assert parents[child] == rank
        if parents[rank] is not None:
            assert rank in children_of[parents[rank]]
    # Connectivity: walking up from any rank reaches the root.
    for rank in range(size):
        seen = set()
        node = rank
        while parents[node] is not None:
            assert node not in seen, "cycle detected"
            seen.add(node)
            node = parents[node]
        assert node == roots[0]
    return roots[0]


@pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8, 15, 16, 33])
@pytest.mark.parametrize("root", [0, 1])
def test_binomial_tree_invariants(size, root):
    if root >= size:
        pytest.skip("root out of range")
    top = _validate_tree(binomial_tree, size, root)
    assert top == root


@pytest.mark.parametrize("size", [1, 2, 5, 8, 16, 31])
def test_binary_tree_invariants(size):
    top = _validate_tree(binary_tree, size, 0)
    assert top == 0


@pytest.mark.parametrize("size", [1, 2, 5, 9, 16])
@pytest.mark.parametrize("fanout", [1, 2, 4])
def test_chain_tree_invariants(size, fanout):
    top = _validate_tree(lambda r, s, rt: chain_tree(r, s, rt, fanout=fanout), size, 0)
    assert top == 0


@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 16, 17, 64, 100])
@pytest.mark.parametrize("radix", [2, 3, 4])
def test_knomial_tree_invariants(size, radix):
    from repro.collectives.base import knomial_tree

    top = _validate_tree(
        lambda r, s, rt: knomial_tree(r, s, rt, radix=radix), size, 0
    )
    assert top == 0


@pytest.mark.parametrize("size", [1, 2, 7, 16, 33])
def test_knomial_radix2_equals_binomial(size):
    from repro.collectives.base import knomial_tree

    for rank in range(size):
        assert knomial_tree(rank, size, 0, radix=2) == binomial_tree(rank, size, 0)


def test_knomial_shallower_than_binomial():
    """Radix 4 halves the tree depth at 256 ranks (4 levels vs 8)."""
    from repro.collectives.base import knomial_tree

    def depth(tree_fn, size):
        parents = {r: tree_fn(r, size, 0)[0] for r in range(size)}
        worst = 0
        for rank in range(size):
            d, node = 0, rank
            while parents[node] is not None:
                node = parents[node]
                d += 1
            worst = max(worst, d)
        return worst

    size = 256
    d4 = depth(lambda r, s, rt: knomial_tree(r, s, rt, radix=4), size)
    d2 = depth(binomial_tree, size)
    assert d4 == 4 and d2 == 8


def test_knomial_invalid_radix():
    from repro.errors import ConfigurationError
    from repro.collectives.base import knomial_tree

    with pytest.raises(ConfigurationError):
        knomial_tree(0, 8, 0, radix=1)


@pytest.mark.parametrize("size", [1, 2, 3, 8, 15, 16, 33])
def test_in_order_tree_invariants(size):
    top = _validate_tree(lambda r, s, rt: in_order_binary_tree(r, s), size, 0)
    assert top == in_order_tree_root(size)


@pytest.mark.parametrize("size", [2, 5, 8, 13])
def test_in_order_tree_traversal_is_sorted(size):
    """The defining property: in-order traversal visits ranks ascending."""
    children = {r: in_order_binary_tree(r, size)[1] for r in range(size)}

    def traverse(node):
        ch = children[node]
        left = [c for c in ch if c < node]
        right = [c for c in ch if c > node]
        out = []
        for c in left:
            out += traverse(c)
        out.append(node)
        for c in right:
            out += traverse(c)
        return out

    assert traverse(in_order_tree_root(size)) == list(range(size))


@given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=63))
def test_binomial_depth_logarithmic(size, root):
    """Binomial tree depth equals the max popcount over virtual ranks.

    (The depth of virtual rank v in a binomial tree is popcount(v); the
    tree is therefore at most ceil(log2 p) deep.)
    """
    root %= size
    depth = {root: 0}
    pending = list(range(size))
    guard = 0
    while pending and guard < 1000:
        guard += 1
        for rank in list(pending):
            parent, _ = binomial_tree(rank, size, root)
            if parent is None:
                depth[rank] = 0
                pending.remove(rank)
            elif parent in depth:
                depth[rank] = depth[parent] + 1
                pending.remove(rank)
    expected = max(bin(v).count("1") for v in range(size))
    assert max(depth.values()) == expected
    assert max(depth.values()) <= (int(np.ceil(np.log2(size))) if size > 1 else 0)


class TestRegistry:
    def test_expected_families_registered(self):
        assert set(list_collectives()) >= {
            "allgather",
            "allreduce",
            "alltoall",
            "barrier",
            "bcast",
            "gather",
            "reduce",
            "reduce_scatter",
        }

    def test_paper_table2_ids(self):
        """Table II: the Open MPI 4.1.x algorithm IDs the paper benchmarks."""
        assert get_algorithm_by_id("allreduce", 2).name == "nonoverlapping"
        assert get_algorithm_by_id("allreduce", 3).name == "recursive_doubling"
        assert get_algorithm_by_id("allreduce", 4).name == "ring"
        assert get_algorithm_by_id("allreduce", 5).name == "segmented_ring"
        assert get_algorithm_by_id("allreduce", 6).name == "rabenseifner"
        assert get_algorithm_by_id("alltoall", 1).name == "basic_linear"
        assert get_algorithm_by_id("alltoall", 2).name == "pairwise"
        assert get_algorithm_by_id("alltoall", 3).name == "bruck"
        assert get_algorithm_by_id("alltoall", 4).name == "linear_sync"
        assert get_algorithm_by_id("reduce", 1).name == "linear"
        assert get_algorithm_by_id("reduce", 2).name == "chain"
        assert get_algorithm_by_id("reduce", 3).name == "pipeline"
        assert get_algorithm_by_id("reduce", 4).name == "binary"
        assert get_algorithm_by_id("reduce", 5).name == "binomial"
        assert get_algorithm_by_id("reduce", 6).name == "in_order_binary"
        assert get_algorithm_by_id("reduce", 7).name == "rabenseifner"

    def test_simgrid_aliases_resolve(self):
        """Fig. 4's SimGrid algorithm names map onto our implementations."""
        assert get_algorithm("allreduce", "lr").name == "ring"
        assert get_algorithm("allreduce", "rdb").name == "recursive_doubling"
        assert get_algorithm("allreduce", "rab_rdb").name == "rabenseifner"
        assert get_algorithm("allreduce", "redbcast").name == "nonoverlapping"
        assert get_algorithm("allreduce", "ompi_ring_segmented").name == "segmented_ring"
        assert get_algorithm("alltoall", "bruck").name == "bruck"
        assert get_algorithm("reduce", "ompi_binomial").name == "binomial"
        assert get_algorithm("reduce", "ompi_in_order_binary").name == "in_order_binary"
        assert get_algorithm("reduce", "scatter_gather").name == "rabenseifner"

    def test_unknown_algorithm_raises_with_candidates(self):
        with pytest.raises(UnknownAlgorithmError) as exc:
            get_algorithm("reduce", "quantum")
        assert "binomial" in str(exc.value)

    def test_unknown_family_raises(self):
        with pytest.raises(UnknownAlgorithmError):
            list_algorithms("alltoallw")

    def test_labels_include_id(self):
        info = get_algorithm("alltoall", "bruck")
        assert info.label == "alltoall/bruck (ID 3)"
