"""Unit tests for the discrete-event engine core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeadlockError, ProtocolError
from repro.sim.engine import ANY_SOURCE, ANY_TAG
from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.platform import Platform


def run(platform, fn, params=None, **kw):
    return run_processes(platform, fn, params=params, **kw)


class TestBasicExecution:
    def test_empty_program_finishes_at_zero(self, small_platform):
        def prog(ctx):
            return ctx.time()
            yield  # pragma: no cover - makes prog a generator

        res = run(small_platform, prog)
        assert res.final_time == 0.0
        assert res.rank_results == [0.0] * small_platform.num_ranks

    def test_sleep_advances_only_that_rank(self, small_platform):
        def prog(ctx):
            if ctx.rank == 3:
                yield ctx.sleep(0.25)
            return ctx.time()

        res = run(small_platform, prog)
        assert res.rank_results[3] == pytest.approx(0.25)
        assert all(t == 0.0 for i, t in enumerate(res.rank_results) if i != 3)

    def test_wait_until_past_time_is_noop(self, small_platform):
        def prog(ctx):
            yield ctx.sleep(1.0)
            yield ctx.wait_until(0.5)
            return ctx.time()

        res = run(small_platform, prog)
        assert res.rank_results[0] == pytest.approx(1.0)

    def test_wait_until_future_time(self, small_platform):
        def prog(ctx):
            yield ctx.wait_until(2.0)
            return ctx.time()

        res = run(small_platform, prog)
        assert all(t == pytest.approx(2.0) for t in res.rank_results)

    def test_negative_sleep_rejected(self, small_platform):
        def prog(ctx):
            yield ctx.sleep(-1.0)

        with pytest.raises(ProtocolError):
            run(small_platform, prog)

    def test_invalid_yield_rejected(self, small_platform):
        def prog(ctx):
            yield "nonsense"

        with pytest.raises(ProtocolError):
            run(small_platform, prog)

    def test_rank_results_returned_in_order(self, small_platform):
        def prog(ctx):
            yield ctx.sleep(0.001 * ctx.rank)
            return ctx.rank * 10

        res = run(small_platform, prog)
        assert res.rank_results == [r * 10 for r in range(small_platform.num_ranks)]


class TestPointToPoint:
    def test_payload_transfer(self, small_platform):
        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes=64, payload=np.arange(8))
            elif ctx.rank == 1:
                req = yield from ctx.recv(0)
                assert np.array_equal(req.payload, np.arange(8))
                return float(req.payload.sum())
            return None

        res = run(small_platform, prog)
        assert res.rank_results[1] == 28.0

    def test_payload_is_snapshotted_at_isend(self, small_platform):
        """Mutating the send buffer after isend must not corrupt the message."""

        def prog(ctx):
            if ctx.rank == 0:
                buf = np.ones(4)
                req = ctx.isend(1, nbytes=32, payload=buf)
                buf[:] = -1.0
                yield ctx.waitall(req)
            elif ctx.rank == 1:
                req = yield from ctx.recv(0)
                assert np.array_equal(req.payload, np.ones(4))
            return None

        run(small_platform, prog)

    def test_eager_timing_closed_form(self, small_platform, flat_params):
        """One eager message: arrival = tx_time + latency (no overheads)."""
        nbytes = 1000

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes=nbytes)
            elif ctx.rank == 1:
                yield from ctx.recv(0)
            return ctx.time()

        res = run(small_platform, prog, params=flat_params)
        expected = nbytes / 1e9 + 1e-6
        assert res.rank_results[1] == pytest.approx(expected)
        # Sender completes at end of injection, before arrival.
        assert res.rank_results[0] == pytest.approx(nbytes / 1e9)

    def test_back_to_back_sends_serialize_on_injection_port(
        self, small_platform, flat_params
    ):
        nbytes = 2000

        def prog(ctx):
            if ctx.rank == 0:
                r1 = ctx.isend(1, nbytes=nbytes)
                r2 = ctx.isend(2, nbytes=nbytes)
                yield ctx.waitall(r1, r2)
            elif ctx.rank in (1, 2):
                yield from ctx.recv(0)
            return ctx.time()

        res = run(small_platform, prog, params=flat_params)
        tx = nbytes / 1e9
        # Second message cannot start until the first has drained.
        assert res.rank_results[2] == pytest.approx(2 * tx + 1e-6)

    def test_late_receiver_does_not_stall_eager_sender(self, small_platform, flat_params):
        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes=10)
                return ctx.time()
            if ctx.rank == 1:
                yield ctx.sleep(1.0)
                yield from ctx.recv(0)
                return ctx.time()
            return None

        res = run(small_platform, prog, params=flat_params)
        assert res.rank_results[0] < 1e-3  # sender finished immediately
        assert res.rank_results[1] == pytest.approx(1.0, abs=1e-3)

    def test_late_receiver_stalls_rendezvous_sender(self, small_platform, flat_params):
        nbytes = 100_000  # above the 4096-byte eager threshold

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes=nbytes)
                return ctx.time()
            if ctx.rank == 1:
                yield ctx.sleep(0.5)
                yield from ctx.recv(0)
                return ctx.time()
            return None

        res = run(small_platform, prog, params=flat_params)
        assert res.rank_results[0] >= 0.5  # sender waited for the handshake
        # Receiver: handshake at 0.5 + CTS latency + tx + latency.
        expected = 0.5 + 1e-6 + nbytes / 1e9 + 1e-6
        assert res.rank_results[1] == pytest.approx(expected, rel=1e-6)

    def test_unexpected_message_queue(self, small_platform):
        """Message arriving before the recv is posted waits in the queue."""

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes=8, payload=np.array([42.0]))
            elif ctx.rank == 1:
                yield ctx.sleep(0.1)
                req = yield from ctx.recv(0)
                assert req.payload[0] == 42.0
                return ctx.time()
            return None

        res = run(small_platform, prog)
        assert res.rank_results[1] == pytest.approx(0.1, rel=1e-3)

    def test_message_order_preserved_per_pair(self, small_platform):
        def prog(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield from ctx.send(1, nbytes=8, payload=np.array([float(i)]))
            elif ctx.rank == 1:
                values = []
                for _ in range(5):
                    req = yield from ctx.recv(0)
                    values.append(req.payload[0])
                assert values == [0.0, 1.0, 2.0, 3.0, 4.0]
            return None

        run(small_platform, prog)

    def test_tags_disambiguate_messages(self, small_platform):
        def prog(ctx):
            if ctx.rank == 0:
                ra = ctx.isend(1, nbytes=8, tag=7, payload=np.array([7.0]))
                rb = ctx.isend(1, nbytes=8, tag=9, payload=np.array([9.0]))
                yield ctx.waitall(ra, rb)
            elif ctx.rank == 1:
                # Receive in the opposite tag order.
                r9 = yield from ctx.recv(0, tag=9)
                r7 = yield from ctx.recv(0, tag=7)
                assert r9.payload[0] == 9.0
                assert r7.payload[0] == 7.0
            return None

        run(small_platform, prog)

    def test_any_source_matches_earliest_arrival(self, small_platform):
        def prog(ctx):
            if ctx.rank == 2:
                yield ctx.sleep(0.2)
                yield from ctx.send(0, nbytes=8, payload=np.array([2.0]))
            elif ctx.rank == 1:
                yield ctx.sleep(0.1)
                yield from ctx.send(0, nbytes=8, payload=np.array([1.0]))
            elif ctx.rank == 0:
                yield ctx.sleep(0.3)
                first = yield from ctx.recv(ANY_SOURCE, tag=ANY_TAG)
                second = yield from ctx.recv(ANY_SOURCE, tag=ANY_TAG)
                assert first.source_rank == 1
                assert second.source_rank == 2
            return None

        run(small_platform, prog)

    def test_self_message(self, small_platform):
        def prog(ctx):
            if ctx.rank == 0:
                sreq = ctx.isend(0, nbytes=8, payload=np.array([5.0]))
                rreq = ctx.irecv(0)
                yield ctx.waitall(sreq, rreq)
                assert rreq.payload[0] == 5.0
            return None
            yield  # pragma: no cover

        def prog_all(ctx):
            if ctx.rank == 0:
                yield from prog(ctx)
            return None

        run(small_platform, prog_all)


class TestErrorHandling:
    def test_deadlock_detection(self, small_platform):
        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.recv(1)  # never sent
            return None

        with pytest.raises(DeadlockError) as exc:
            run(small_platform, prog)
        assert exc.value.blocked_ranks == [0]

    def test_send_to_invalid_rank(self, small_platform):
        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(999, nbytes=8)
            return None

        with pytest.raises(ProtocolError):
            run(small_platform, prog)

    def test_negative_size_rejected(self, small_platform):
        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes=-5)
            return None

        with pytest.raises(ProtocolError):
            run(small_platform, prog)

    def test_waitall_empty_rejected(self, small_platform):
        def prog(ctx):
            yield ctx.waitall()

        with pytest.raises(ProtocolError):
            run(small_platform, prog)


class TestDeterminism:
    def test_identical_runs_are_bit_identical(self, small_platform):
        def prog(ctx):
            partner = ctx.rank ^ 1
            for _ in range(10):
                yield from ctx.sendrecv(partner, partner, nbytes=500)
            return ctx.time()

        res1 = run(small_platform, prog)
        res2 = run(small_platform, prog)
        assert res1.rank_results == res2.rank_results
        assert res1.final_time == res2.final_time
        assert res1.events_processed == res2.events_processed
