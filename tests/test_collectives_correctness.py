"""Semantic correctness of every registered collective algorithm.

Each algorithm is validated against :func:`reference_result` (the MPI
standard's definition computed directly from all inputs) across power-of-two
and awkward rank counts, different roots, and segmented configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.collectives  # noqa: F401 - populate the registry
from repro.collectives import MAX, SUM, list_algorithms, reference_result
from tests.helpers import run_collective_all_ranks

SIZES = [1, 2, 3, 4, 5, 7, 8, 13, 16]
ROOTED = {"bcast", "reduce", "gather", "scatter"}


def check(collective, algorithm, size, count=8, root=0, op=None, **kw):
    results, _, args, inputs = run_collective_all_ranks(
        collective, algorithm, size, count=count, root=root, op=op, **kw
    )
    for rank in range(size):
        expected = reference_result(collective, inputs, args, rank)
        got = results[rank]
        if expected is None:
            assert got is None, f"rank {rank} should return None, got {got!r}"
        else:
            assert got is not None, f"rank {rank} returned None, expected data"
            assert np.array_equal(np.asarray(got), expected), (
                f"{collective}/{algorithm} p={size} rank={rank}:\n"
                f"expected {expected}\ngot      {np.asarray(got)}"
            )


def all_cases():
    cases = []
    for coll in ("bcast", "reduce", "allreduce", "alltoall",
                 "allgather", "gather", "scatter", "reduce_scatter",
                 "scan", "exscan"):
        for algo in list_algorithms(coll):
            cases.append((coll, algo))
    return cases


@pytest.mark.parametrize("collective,algorithm", all_cases())
@pytest.mark.parametrize("size", SIZES)
def test_algorithm_matches_reference(collective, algorithm, size):
    check(collective, algorithm, size, count=16)


@pytest.mark.parametrize("collective,algorithm", all_cases())
def test_algorithm_nonzero_root_or_large(collective, algorithm):
    if collective in ROOTED:
        check(collective, algorithm, size=6, count=16, root=3)
        check(collective, algorithm, size=8, count=16, root=7)
    else:
        check(collective, algorithm, size=6, count=32)


@pytest.mark.parametrize("collective", ["bcast", "reduce", "allreduce"])
def test_segmented_paths(collective):
    """Force multiple segments: big modeled size, small segment size."""
    for algo in list_algorithms(collective):
        check(
            collective,
            algo,
            size=5,
            count=24,
            msg_bytes=1 << 20,
            segment_bytes=1 << 17,  # 8 segments
        )


@pytest.mark.parametrize(
    "collective", ["reduce", "allreduce", "reduce_scatter"]
)
def test_max_operator(collective):
    for algo in list_algorithms(collective):
        check(collective, algo, size=6, count=16, op=MAX)


def _affine_compose(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Compose affine maps stored as interleaved (m, c) pairs: b after a.

    Associative but non-commutative — exactly the class of operators MPI
    defines a reduction order for.
    """
    m1, c1 = a[0::2], a[1::2]
    m2, c2 = b[0::2], b[1::2]
    out = np.empty_like(a)
    out[0::2] = m1 * m2
    out[1::2] = c1 * m2 + c2
    return out


@pytest.mark.parametrize("algorithm", ["linear", "in_order_binary"])
def test_reduce_order_sensitive_algorithms_combine_in_rank_order(algorithm):
    """Non-commutative (but associative) op must reduce in ascending rank order."""
    from repro.collectives.ops import ReduceOp

    affine = ReduceOp("affine", _affine_compose, commutative=False)
    inputs = [np.array([r + 2, r + 1, r + 3, 2 * r + 1], dtype=np.int64) for r in range(7)]
    results, _, args, _ = run_collective_all_ranks(
        "reduce", algorithm, size=7, count=4, op=affine, inputs=inputs
    )
    expected = inputs[0].copy()
    for contrib in inputs[1:]:
        expected = affine(expected, contrib)
    # Sanity: a wrong order would give a different value.
    backwards = inputs[-1].copy()
    for contrib in reversed(inputs[:-1]):
        backwards = affine(backwards, contrib)
    assert not np.array_equal(expected, backwards)
    assert np.array_equal(results[0], expected)


def test_tree_algorithms_reject_non_commutative_ops():
    from repro.errors import ConfigurationError
    from repro.collectives.ops import ReduceOp

    weird = ReduceOp("weird", lambda a, b: 2 * a + b, commutative=False)
    with pytest.raises(ConfigurationError):
        run_collective_all_ranks("reduce", "binomial", size=4, op=weird)
    with pytest.raises(ConfigurationError):
        run_collective_all_ranks("allreduce", "ring", size=4, op=weird)


@pytest.mark.parametrize("algorithm", list_algorithms("barrier"))
@pytest.mark.parametrize("size", [1, 2, 5, 8, 12])
def test_barrier_completes_and_synchronizes(algorithm, size):
    """After a barrier, no rank's exit time precedes another rank's entry."""
    from repro.collectives import CollArgs, run_collective
    from repro.sim.mpi import run_processes
    from repro.sim.platform import Platform

    args = CollArgs(count=1, msg_bytes=1.0)

    def prog(ctx):
        # Staggered arrivals: rank r arrives at r milliseconds.
        yield ctx.sleep(ctx.rank * 1e-3)
        entry = ctx.time()
        yield from run_collective(ctx, "barrier", algorithm, args, None)
        return entry, ctx.time()

    nodes = max(1, (size + 3) // 4)
    run = run_processes(Platform("t", nodes=nodes, cores_per_node=4), prog, num_ranks=size)
    entries = [r[0] for r in run.rank_results]
    exits = [r[1] for r in run.rank_results]
    assert min(exits) >= max(entries), f"{algorithm}: barrier exit before last entry"
