"""Tests for the robust measurement statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.bench.stats import drop_warmup, median_ci, summarize, winsorize


class TestDropWarmup:
    def test_drops_prefix(self):
        out = drop_warmup(np.array([9.0, 1.0, 1.1, 1.2]), warmup=1)
        assert out.tolist() == [1.0, 1.1, 1.2]

    def test_zero_warmup_identity(self):
        values = np.array([1.0, 2.0])
        assert drop_warmup(values, 0).tolist() == values.tolist()

    def test_all_dropped_rejected(self):
        with pytest.raises(ConfigurationError):
            drop_warmup(np.array([1.0, 2.0]), warmup=2)
        with pytest.raises(ConfigurationError):
            drop_warmup(np.array([1.0]), warmup=-1)


class TestWinsorize:
    def test_clamps_outliers(self):
        values = np.array([1.0] * 18 + [100.0, -50.0])
        out = winsorize(values, fraction=0.1)
        assert out.max() <= 1.0
        assert out.min() >= -50.0 + 1  # clamped up to the 10% quantile
        assert np.median(out) == 1.0

    def test_zero_fraction_identity(self):
        values = np.array([1.0, 5.0, 9.0])
        assert winsorize(values, 0.0).tolist() == values.tolist()

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            winsorize(np.array([1.0]), fraction=0.5)
        with pytest.raises(ConfigurationError):
            winsorize(np.array([]), fraction=0.1)


class TestMedianCI:
    def test_tiny_samples_degenerate_to_range(self):
        lo, hi = median_ci(np.array([3.0, 1.0]))
        assert (lo, hi) == (1.0, 3.0)

    def test_interval_contains_median_for_large_samples(self):
        rng = np.random.default_rng(1)
        values = rng.normal(10.0, 1.0, size=200)
        lo, hi = median_ci(values)
        med = np.median(values)
        assert lo <= med <= hi
        assert hi - lo < 1.0  # tight at n=200

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            median_ci(np.array([]))
        with pytest.raises(ConfigurationError):
            median_ci(np.array([1.0, 2.0, 3.0]), confidence=1.5)

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=3, max_size=60))
    def test_interval_is_ordered_and_within_range(self, values):
        lo, hi = median_ci(np.array(values))
        assert min(values) <= lo <= hi <= max(values)

    @staticmethod
    def _order_stats(n: int, confidence: float) -> tuple[int, int]:
        """1-based (l, u) the implementation picks, recovered via identity data."""
        lo, hi = median_ci(np.arange(1, n + 1, dtype=float), confidence)
        return int(lo), int(hi)

    @pytest.mark.parametrize(
        "n,expected",
        [
            # Known 95% order-statistic pairs (Conover, Table A3 style):
            (6, (1, 6)),    # coverage 0.96875
            (8, (1, 8)),    # coverage 0.99219
            (10, (2, 9)),   # coverage 0.97852
            (15, (4, 12)),  # coverage 0.96484
            (20, (6, 15)),  # coverage 0.95861
        ],
    )
    def test_known_table_indices_at_95(self, n, expected):
        assert self._order_stats(n, 0.95) == expected

    @pytest.mark.parametrize("confidence", [0.90, 0.95, 0.99])
    @pytest.mark.parametrize("n", list(range(3, 51)))
    def test_exact_coverage_meets_nominal(self, n, confidence):
        # Coverage of (x_(l), x_(u)) is P(l <= B <= u-1), B ~ Binom(n, 1/2).
        # No interval of n order statistics can exceed the (x_(1), x_(n))
        # coverage 1 - 2 * 0.5^n, so tiny samples cap there (full range).
        from scipy import stats as sps

        l, u = self._order_stats(n, confidence)
        coverage = sps.binom.cdf(u - 1, n, 0.5) - sps.binom.cdf(l - 1, n, 0.5)
        achievable = min(confidence, 1.0 - 2.0 * 0.5 ** n)
        assert coverage >= achievable
        if coverage < confidence:  # degenerate case must be the full range
            assert (l, u) == (1, n)

    def test_interval_is_symmetric_in_order_statistics(self):
        # The binomial is symmetric at p = 1/2, so u = n - l + 1.
        for n in range(3, 40):
            l, u = self._order_stats(n, 0.95)
            assert u == n - l + 1


class TestSummarize:
    def test_basic_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0 and s.maximum == 5.0
        assert s.ci_low <= s.median <= s.ci_high

    def test_pipeline_warmup_then_winsorize(self):
        values = [50.0] + [1.0] * 20 + [30.0]  # warmup spike + one outlier
        s = summarize(values, warmup=1, winsor_fraction=0.1)
        assert s.median == 1.0
        assert s.maximum < 30.0

    def test_relative_spread(self):
        s = summarize([1.0, 1.0, 2.0])
        assert s.relative_spread == pytest.approx(1.0)

    def test_single_value(self):
        s = summarize([4.2])
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 4.2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            summarize([])
        with pytest.raises(ConfigurationError):
            summarize(np.zeros((2, 2)))


class TestBenchResultIntegration:
    def test_summary_from_bench_result(self):
        from repro.bench import MicroBenchmark
        from repro.sim.platform import get_machine

        bench = MicroBenchmark.from_machine(
            get_machine("hydra"), nodes=2, cores_per_node=4, nrep=5,
            noise_profile="moderate", clock_mode="synced",
        )
        result = bench.run("reduce", "binomial", msg_bytes=1024)
        s = result.summary(warmup=1)
        assert s.n == 4
        assert s.ci_low <= s.median <= s.ci_high
