"""Tests for the engine's safety guards and introspection surface."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError, SimulationError
from repro.sim.engine import ANY_SOURCE, ANY_TAG, Engine
from repro.sim.mpi import build_engine, run_processes
from repro.sim.network import NetworkModel, NetworkParams
from repro.sim.platform import Platform


class TestGuards:
    def test_max_events_limit(self, small_platform):
        network = NetworkModel(small_platform, NetworkParams())
        engine = Engine(small_platform.num_ranks, network, max_events=10)

        def prog():
            for _ in range(100):
                yield ("sleep", 1e-6)

        for rank in range(small_platform.num_ranks):
            engine.set_process(rank, prog())
        with pytest.raises(SimulationError, match="max_events"):
            engine.run()

    def test_zero_procs_rejected(self, small_platform):
        network = NetworkModel(small_platform, NetworkParams())
        with pytest.raises(ProtocolError):
            Engine(0, network)

    def test_missing_generator_rejected(self, small_platform):
        engine, _ = build_engine(small_platform)
        with pytest.raises(ProtocolError, match="no generator"):
            engine.run()

    def test_double_set_process_rejected(self, small_platform):
        engine, _ = build_engine(small_platform)

        def prog():
            return
            yield  # pragma: no cover

        engine.set_process(0, prog())
        with pytest.raises(ProtocolError, match="already"):
            engine.set_process(0, prog())

    def test_proc_time_and_events_introspection(self, small_platform):
        def prog(ctx):
            yield ctx.sleep(0.5 if ctx.rank == 0 else 0.1)

        engine, contexts = build_engine(small_platform)
        for rank, ctx in enumerate(contexts):
            engine.set_process(rank, prog(ctx))
        engine.run()
        assert engine.proc_time(0) == pytest.approx(0.5)
        assert engine.proc_time(1) == pytest.approx(0.1)
        assert engine.events_processed > 0

    def test_foreign_recv_wait_rejected(self, small_platform):
        """Waiting on another rank's receive request is a protocol error."""
        box = {}

        def prog(ctx):
            if ctx.rank == 1:
                box["req"] = ctx.irecv(0)
                yield ctx.sleep(1.0)
            elif ctx.rank == 0:
                yield ctx.sleep(0.5)
                yield ctx.waitall(box["req"])  # not ours!
            return None

        with pytest.raises(ProtocolError, match="foreign recv"):
            run_processes(small_platform, prog)

    def test_irecv_negative_tag_rejected(self, small_platform):
        """A negative tag that is not ANY_TAG would silently never match any
        message (sends reject negative tags) — fail fast instead."""
        _, contexts = build_engine(small_platform)
        with pytest.raises(ProtocolError, match="negative tag"):
            contexts[0].irecv(1, tag=-7)

    def test_irecv_negative_size_rejected(self, small_platform):
        _, contexts = build_engine(small_platform)
        with pytest.raises(ProtocolError, match="negative size"):
            contexts[0].irecv(1, nbytes=-1)

    def test_irecv_wildcards_still_accepted(self, small_platform):
        """ANY_SOURCE / ANY_TAG are negative sentinels and must stay legal."""
        _, contexts = build_engine(small_platform)
        req = contexts[0].irecv(ANY_SOURCE, tag=ANY_TAG)
        assert not req.done

    def test_self_message_zero_cost(self):
        """A rank messaging itself completes instantly (no wire charges)."""
        plat = Platform("solo", nodes=1, cores_per_node=1)
        params = NetworkParams(send_overhead=0.0, recv_overhead=0.0)

        def prog(ctx):
            sreq = ctx.isend(0, 1 << 20, payload=None)
            rreq = ctx.irecv(0)
            yield ctx.waitall(sreq, rreq)
            return ctx.time()

        run = run_processes(plat, prog, params=params)
        assert run.rank_results[0] == 0.0
