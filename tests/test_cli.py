"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                    "fig8", "fig9", "table1", "table2", "registry", "all"):
            args = parser.parse_args([cmd] if cmd.startswith("table") or cmd == "registry"
                                     else [cmd, "--fast"] if cmd != "all" else [cmd, "--fast"])
            assert args.command == cmd

    def test_collective_choice_validated(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig4", "--collective", "bogus"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_table_commands(self, capsys):
        assert main(["table1"]) == 0
        assert "hydra" in capsys.readouterr().out
        assert main(["table2"]) == 0
        assert "bruck" in capsys.readouterr().out

    def test_fig3_fast(self, capsys):
        assert main(["fig3", "--nodes", "2", "--cores", "4", "--fast"]) == 0
        assert "Fig. 3" in capsys.readouterr().out

    def test_fig4_with_json_export(self, capsys, tmp_path):
        out = tmp_path / "fig4.json"
        code = main([
            "fig4", "--collective", "reduce", "--machine", "simcluster",
            "--nodes", "2", "--cores", "4", "--fast", "--json", str(out),
        ])
        assert code == 0
        assert "Fig. 4" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["collective"] == "reduce"

    def test_fig2_runs(self, capsys):
        assert main(["fig2", "--fast"]) == 0
        assert "last delay" in capsys.readouterr().out

    def test_selfcheck_quick(self, capsys):
        assert main(["selfcheck", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "self-check" in out and "OK" in out

    def test_trace_writes_artifacts(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main([
            "trace", "--app", "ft", "--nodes", "2", "--cores", "4",
            "--iterations", "3",
            "--trace-out", str(tmp_path / "x.trace"),
            "--pattern-out", str(tmp_path / "x.pattern"),
        ])
        assert code == 0
        assert (tmp_path / "x.trace").exists()
        assert (tmp_path / "x.pattern").exists()
        out = capsys.readouterr().out
        assert "traced" in out and "max skew" in out

    def test_tune_writes_rules(self, capsys, tmp_path):
        code = main([
            "tune", "--nodes", "2", "--cores", "4",
            "--collectives", "alltoall",
            "--sizes", "64",
            "--out", str(tmp_path / "tuned"),
        ])
        assert code == 0
        assert (tmp_path / "tuned" / "ompi_dynamic_rules.conf").exists()
        assert (tmp_path / "tuned" / "selection_table.json").exists()
        assert "selected algorithm" in capsys.readouterr().out

    def test_tune_jobs_and_cache_flags(self, capsys, tmp_path):
        argv = [
            "tune", "--nodes", "2", "--cores", "4",
            "--collectives", "alltoall",
            "--sizes", "64",
            "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv + ["--out", str(tmp_path / "cold")]) == 0
        cold_err = capsys.readouterr().err
        assert "0% hit rate" in cold_err
        # The warm re-run serves every cell from the cache and is identical.
        assert main(argv + ["--out", str(tmp_path / "warm")]) == 0
        warm_err = capsys.readouterr().err
        assert "100% hit rate" in warm_err and "all served from cache" in warm_err
        cold = (tmp_path / "cold" / "sweeps.json").read_bytes()
        warm = (tmp_path / "warm" / "sweeps.json").read_bytes()
        assert cold == warm

    def test_tune_store_then_query_roundtrip(self, capsys, tmp_path):
        store = tmp_path / "tuning.db"
        code = main([
            "tune", "--machine", "simcluster", "--nodes", "2", "--cores", "2",
            "--collectives", "alltoall", "--sizes", "64",
            "--out", str(tmp_path / "tuned"), "--store", str(store),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "+1 sweeps" in out
        assert store.exists()
        # Offline query answers from the store the campaign just filled.
        assert main(["query", "alltoall", "4", "64",
                     "--store", str(store), "--json"]) == 0
        reply = json.loads(capsys.readouterr().out.splitlines()[0])
        assert reply["ok"] is True
        assert reply["source"] == "store"
        from repro.selection.table import SelectionTable

        offline = SelectionTable.from_store(store)
        assert reply["algorithm"] == offline.lookup("alltoall", 4, 64)

    def test_tune_store_rerun_is_idempotent(self, capsys, tmp_path):
        argv = [
            "tune", "--machine", "simcluster", "--nodes", "2", "--cores", "2",
            "--collectives", "alltoall", "--sizes", "64",
            "--out", str(tmp_path / "tuned"), "--store",
            str(tmp_path / "tuning.db"),
        ]
        assert main(argv) == 0
        assert "+1 sweeps" in capsys.readouterr().out
        assert main(argv) == 0
        assert "+0 sweeps" in capsys.readouterr().out

    def test_cache_stats_and_gc(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main([
            "tune", "--machine", "simcluster", "--nodes", "2", "--cores", "2",
            "--collectives", "alltoall", "--sizes", "64",
            "--out", str(tmp_path / "tuned"), "--cache-dir", str(cache_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and str(cache_dir) in out
        # Evict everything; stats then reports an empty cache.
        assert main(["cache", "gc", "--max-bytes", "0",
                     "--cache-dir", str(cache_dir)]) == 0
        assert "evicted" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cache_without_dir_fails_cleanly(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err

    def test_ext_subcommands_fast(self, capsys):
        assert main(["ext-nonblocking", "--nodes", "2", "--cores", "4",
                     "--fast"]) == 0
        assert "overlap benefit" in capsys.readouterr().out


class TestProfile:
    def test_profile_emits_timeline_and_perfetto_trace(self, capsys, tmp_path):
        from repro.obs.export import load_perfetto, rank_tracks

        trace = tmp_path / "trace.json"
        code = main([
            "profile", "--nodes", "2", "--cores", "4",
            "--collective", "alltoall", "--algorithm", "pairwise",
            "--msg-bytes", "1KiB",
            "--trace-out", str(trace),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "virtual timeline" in out
        assert "alltoall/pairwise" in out
        assert f"wrote trace: {trace}" in out
        loaded = load_perfetto(trace)
        # One track per rank, each carrying arrival->exit collective spans.
        assert rank_tracks(loaded) == [f"rank {r}" for r in range(8)]
        coll = [e for e in loaded["traceEvents"]
                if e.get("ph") == "X" and e["name"] == "alltoall/pairwise"]
        assert len(coll) >= 8
        assert all(e["dur"] > 0 for e in coll)

    def test_profile_default_trace_filename(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["profile", "--nodes", "1", "--cores", "2",
                     "--msg-bytes", "64", "--shape", "no_delay"]) == 0
        assert (tmp_path / "profile_trace.json").exists()

    def test_metrics_out_on_experiment_command(self, tmp_path):
        metrics = tmp_path / "m.json"
        code = main([
            "fig4", "--collective", "reduce", "--machine", "simcluster",
            "--nodes", "2", "--cores", "4", "--fast",
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert payload["metrics"]["executor.cells"]["value"] > 0
        assert payload["engine"]["runs"] > 0
        assert payload["meta"]["command"] == "fig4"

    def test_executor_summary_on_stderr(self, capsys, tmp_path):
        code = main([
            "tune", "--nodes", "2", "--cores", "4",
            "--collectives", "alltoall", "--sizes", "64",
            "--out", str(tmp_path / "tuned"),
            "--metrics-out", str(tmp_path / "m.json"),
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "executor:" in err and "hit rate" in err

    def test_workload_list_shows_builtins(self, capsys):
        assert main(["workload", "list"]) == 0
        out = capsys.readouterr().out
        names = [line.split()[0] for line in out.splitlines()
                 if line and not line.startswith(("workload", "-"))]
        assert len(names) >= 4
        assert "dlrm_embedding" in names

    def test_workload_describe(self, capsys):
        assert main(["workload", "describe", "allgatherv_ragged",
                     "--ranks", "4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "allgatherv" in out and "length-p" in out

    def test_workload_run_replay_round_trip(self, capsys, tmp_path,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        db = tmp_path / "wl.db"
        code = main([
            "workload", "run", "halo_mix", "--fast",
            "--machine", "simcluster", "--nodes", "2", "--cores", "2",
            "--store", str(db), "--trace-out", "wl.json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime" in out and "phase cell(s)" in out
        assert db.exists() and (tmp_path / "wl.json").exists()
        code = main(["workload", "replay", str(tmp_path / "wl.json"),
                     "--fast", "--machine", "simcluster",
                     "--nodes", "2", "--cores", "2", "--no-cells"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alltoall@" in out and "pattern replay:" in out

    def test_workload_contend_attributes_both_jobs(self, capsys):
        code = main([
            "workload", "contend", "halo_mix", "dlrm_embedding", "--fast",
            "--machine", "simcluster", "--nodes", "4", "--cores", "2",
            "--links",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "link wait attribution by job:" in out
        assert "job0-halo_mix" in out and "job1-dlrm_embedding" in out

    def test_trace_out_and_metrics_out_parse_everywhere(self):
        parser = build_parser()
        args = parser.parse_args(["fig5", "--trace-out", "t.json",
                                  "--metrics-out", "m.json"])
        assert args.obs_trace_out == "t.json"
        assert args.obs_metrics_out == "m.json"
        # The trace command keeps its app-trace flag; obs metrics still parse.
        args = parser.parse_args(["trace", "--trace-out", "x.trace",
                                  "--metrics-out", "m.json"])
        assert args.trace_out == "x.trace"
        assert args.obs_metrics_out == "m.json"
