"""Validation of simulated collective times against closed-form cost models.

For uncontended, single-segment, eager configurations the classic LogP-style
cost formulas predict our simulator exactly (it implements those
mechanics), so these tests pin the cost model down analytically:

* point-to-point: ``T = o_s + m/B + L`` (+ extraction),
* binomial broadcast of a tiny message: ``depth x per-hop cost``,
* ring allreduce of a large message: ``2 (p-1) (m/p) / B`` bandwidth term,
* linear gather: root-side serialization ``(p-1) m / B``.

Any refactor that changes these silently would invalidate the experiment
conclusions; here the numbers are locked.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import CollArgs, make_input, run_collective
from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.platform import Platform

# One rank per node: no shared-NIC coupling, pure per-link costs.
L = 2e-6
BW = 1e9
O = 0.1e-6

PARAMS = NetworkParams(
    intra_latency=L, inter_latency=L,
    intra_bandwidth=BW, inter_bandwidth=BW,
    send_overhead=O, recv_overhead=O,
    eager_threshold=1 << 30,  # everything eager
    rx_serialization=False,
    shared_node_nic=False,
)


def _one_per_node(p: int) -> Platform:
    return Platform("analytic", nodes=p, cores_per_node=1)


def _run_collective(collective, algorithm, p, count, msg_bytes, segment_bytes=None):
    platform = _one_per_node(p)
    args = CollArgs(count=count, msg_bytes=float(msg_bytes),
                    segment_bytes=segment_bytes)
    inputs = [make_input(collective, r, p, count) for r in range(p)]

    def prog(ctx):
        start = ctx.time()
        yield from run_collective(ctx, collective, algorithm, args, inputs[ctx.rank])
        return start, ctx.time()

    run = run_processes(platform, prog, params=PARAMS)
    exits = [r[1] for r in run.rank_results]
    return max(exits)


class TestPointToPointFormula:
    @pytest.mark.parametrize("m", [1, 1000, 100_000])
    def test_eager_message_cost(self, m):
        platform = _one_per_node(2)

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, m)
            else:
                yield from ctx.recv(0)
            return ctx.time()

        run = run_processes(platform, prog, params=PARAMS)
        # recv posted at t=o_r; arrival = o_s + m/B + L; completes at max.
        expected = O + m / BW + L
        assert run.rank_results[1] == pytest.approx(expected, rel=1e-12)


class TestBroadcastFormula:
    @pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
    def test_binomial_tiny_message_depth(self, p):
        """Completion = ceil(log2 p) sequential hops for the deepest leaf.

        Per hop: the parent's send overhead + wire latency (tiny payload).
        Parents send to the far child first; each level adds one (o + L)
        on the critical path (plus the child's recv-post overhead
        absorbed before arrival).
        """
        t = _run_collective("bcast", "binomial", p, count=1, msg_bytes=1)
        depth = int(np.ceil(np.log2(p)))
        per_hop = O + 1 / BW + L
        # The deepest chain pays one hop per level; senders' earlier sends
        # add at most (depth-1) extra overheads at the root.
        lower = depth * per_hop
        upper = depth * per_hop + depth * O + 1e-12
        assert lower - 1e-12 <= t <= upper, (t, lower, upper)

    def test_linear_bcast_root_serialization(self):
        """Root's NIC drains (p-1) x m back-to-back: last arrival fixed."""
        p, m = 9, 50_000
        t = _run_collective("bcast", "linear", p, count=8, msg_bytes=m)
        expected = O + (p - 1) * m / BW + L
        assert t == pytest.approx(expected, rel=1e-6)


class TestAllreduceFormula:
    @pytest.mark.parametrize("p", [4, 8])
    def test_ring_bandwidth_term(self, p):
        """Ring allreduce moves 2(p-1) blocks of m/p bytes per rank."""
        m = 1 << 20
        count = 4 * p
        t = _run_collective("allreduce", "ring", p, count=count, msg_bytes=m)
        bandwidth_term = 2 * (p - 1) * (m / p) / BW
        # Latency/overhead add 2(p-1) small per-step terms.
        steps = 2 * (p - 1)
        overhead_term = steps * (L + 2 * O)
        assert t == pytest.approx(bandwidth_term + overhead_term, rel=0.02)

    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_recursive_doubling_round_count(self, p):
        """log2(p) full-size exchange rounds for power-of-two p."""
        m = 8
        t = _run_collective("allreduce", "recursive_doubling", p, count=4,
                            msg_bytes=m)
        rounds = int(np.log2(p))
        per_round = 2 * O + m / BW + L  # sendrecv: overheads + wire
        assert t == pytest.approx(rounds * per_round, rel=0.25)


class TestGatherFormula:
    def test_linear_gather_wire_serialization(self):
        """All (p-1) messages arrive back-to-back at the root's link rate.

        With private ports and no rx serialization the senders transmit in
        parallel; the root completes at the slowest single message, not the
        sum — pinning the *absence* of artificial serialization.
        """
        p, m = 8, 100_000
        t = _run_collective("gather", "linear", p, count=8, msg_bytes=m)
        single = 2 * O + m / BW + L
        assert t == pytest.approx(single, rel=0.05)

    def test_rx_serialization_restores_the_sum(self):
        """Turning the extraction port on makes the root the bottleneck."""
        p, m = 8, 100_000
        platform = _one_per_node(p)
        import dataclasses

        params = dataclasses.replace(PARAMS, rx_serialization=True)
        args = CollArgs(count=8, msg_bytes=float(m))
        inputs = [make_input("gather", r, p, 8) for r in range(p)]

        def prog(ctx):
            yield from run_collective(ctx, "gather", "linear", args, inputs[ctx.rank])
            return ctx.time()

        run = run_processes(platform, prog, params=params)
        t = max(run.rank_results)
        assert t >= (p - 1) * m / BW  # the extraction port drained everything
