"""Tests for the clock substrate: local clocks, hierarchical sync, harmonize."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.clocks import ClockSet, LinearCorrection, LocalClock, SyncedClocks
from repro.clocks.harmonize import harmonize
from repro.clocks.sync import sync_clocks
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform


class TestLocalClock:
    def test_offset_and_drift(self):
        clock = LocalClock(offset=5.0, drift=1e-5)
        assert clock.read(0.0) == pytest.approx(5.0)
        assert clock.read(10.0) == pytest.approx(5.0 + 10.0 * (1 + 1e-5))

    def test_inverse(self):
        clock = LocalClock(offset=-2.0, drift=5e-6)
        for t in (0.0, 1.5, 100.0):
            assert clock.true_from_local(clock.read(t)) == pytest.approx(t)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LocalClock(offset=0.0, drift=-1.5)
        with pytest.raises(ConfigurationError):
            LocalClock(offset=0.0, drift=0.0, read_jitter=-1e-9)


class TestClockSet:
    def test_deterministic(self):
        a = ClockSet(8, seed=1)
        b = ClockSet(8, seed=1)
        assert [c.offset for c in a.clocks] == [c.offset for c in b.clocks]

    def test_clocks_disagree_before_sync(self):
        clocks = ClockSet(16, seed=0, max_offset=0.05)
        readings = [clocks.read(r, 1.0) for r in range(16)]
        assert np.ptp(readings) > 1e-3  # tens of milliseconds of disagreement


class TestLinearCorrection:
    def test_apply_and_invert(self):
        corr = LinearCorrection(1.0 + 2e-6, -0.731)
        for local in (0.0, 3.7, 1e4):
            assert corr.local_for_global(corr.apply(local)) == pytest.approx(local)

    def test_compose(self):
        outer = LinearCorrection(2.0, 1.0)
        composed = outer.compose(3.0, 4.0)
        # outer(inner(l)) = 2*(3l + 4) + 1 = 6l + 9
        assert composed.a == pytest.approx(6.0)
        assert composed.b == pytest.approx(9.0)


def _run_sync(p: int, seed: int = 0, **clockset_kw):
    platform = Platform("t", nodes=max(1, (p + 3) // 4), cores_per_node=4)
    clockset = ClockSet(p, seed=seed, **clockset_kw)

    def prog(ctx):
        corr = yield from sync_clocks(ctx, clockset[ctx.rank])
        return corr

    run = run_processes(platform, prog, num_ranks=p)
    return clockset, SyncedClocks(clockset, run.rank_results), run


class TestHierarchicalSync:
    @pytest.mark.parametrize("p", [2, 4, 7, 16])
    def test_submicrosecond_global_clock(self, p):
        """Paper Section II-B: the global clock's accuracy is < 1 us."""
        clockset, synced, run = _run_sync(p)
        horizon = run.final_time
        for t in (horizon, horizon + 0.05, horizon + 0.2):
            assert synced.max_error(t) < 1e-6, f"error {synced.max_error(t)} at {t}"

    def test_sync_beats_raw_clocks_by_orders_of_magnitude(self):
        clockset, synced, run = _run_sync(8, max_offset=0.05)
        t = run.final_time + 0.1
        raw_spread = np.ptp([clockset.read(r, t) for r in range(8)])
        assert synced.max_error(t) < raw_spread / 1e4

    def test_single_rank_identity(self):
        _, synced, _ = _run_sync(1)
        assert synced.corrections[0].a == 1.0
        assert synced.corrections[0].b == 0.0

    def test_corrections_deterministic(self):
        _, s1, _ = _run_sync(5, seed=3)
        _, s2, _ = _run_sync(5, seed=3)
        assert [(c.a, c.b) for c in s1.corrections] == [(c.a, c.b) for c in s2.corrections]

    def test_too_few_exchanges_rejected(self):
        platform = Platform("t", nodes=1, cores_per_node=2)
        clockset = ClockSet(2)

        def prog(ctx):
            yield from sync_clocks(ctx, clockset[ctx.rank], exchanges=2)

        with pytest.raises(ConfigurationError):
            run_processes(platform, prog)


class TestHarmonize:
    def test_perfect_clock_harmonize_aligns_ranks(self):
        """All ranks leave harmonize at the same true instant."""
        platform = Platform("t", nodes=2, cores_per_node=4)

        def prog(ctx):
            yield ctx.sleep(ctx.rank * 1e-4)  # staggered arrivals
            target, ok = yield from harmonize(ctx, slack=5e-3)
            return ctx.time(), ok

        run = run_processes(platform, prog)
        times = [r[0] for r in run.rank_results]
        assert all(r[1] for r in run.rank_results)
        assert np.ptp(times) < 1e-12

    def test_harmonize_with_synced_clocks_aligns_below_microsecond(self):
        p = 8
        platform = Platform("t", nodes=2, cores_per_node=4)
        clockset = ClockSet(p, seed=1)

        def prog(ctx):
            corr = yield from sync_clocks(ctx, clockset[ctx.rank])
            target, ok = yield from harmonize(
                ctx, clockset[ctx.rank], corr, slack=5e-3
            )
            return ctx.time(), ok

        run = run_processes(platform, prog, num_ranks=p)
        times = [r[0] for r in run.rank_results]
        assert all(r[1] for r in run.rank_results)
        assert np.ptp(times) < 1e-6

    def test_straggler_absorbed_by_fan_in(self):
        """The max-reduce fan-in waits for stragglers, so the flag stays ok."""
        platform = Platform("t", nodes=2, cores_per_node=4)

        def prog(ctx):
            if ctx.rank == ctx.size - 1:
                yield ctx.sleep(0.1)
            target, ok = yield from harmonize(ctx, slack=5e-3)
            return target, ok, ctx.time()

        run = run_processes(platform, prog)
        assert all(r[1] for r in run.rank_results)
        times = [r[2] for r in run.rank_results]
        assert np.ptp(times) < 1e-12
        assert min(times) > 0.1  # nobody left before the straggler arrived

    def test_insufficient_slack_flagged(self):
        """Slack below the broadcast propagation time trips the failure flag."""
        platform = Platform("t", nodes=2, cores_per_node=4)

        def prog(ctx):
            target, ok = yield from harmonize(ctx, slack=1e-9)
            return ok

        run = run_processes(platform, prog)
        assert not any(run.rank_results)  # everyone reaches the target late

    def test_bad_slack_rejected(self):
        platform = Platform("t", nodes=1, cores_per_node=2)

        def prog(ctx):
            yield from harmonize(ctx, slack=0.0)

        with pytest.raises(ConfigurationError):
            run_processes(platform, prog)
