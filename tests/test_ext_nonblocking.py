"""Tests for the non-blocking-collectives extension experiment."""

from __future__ import annotations

from repro.experiments import ext_nonblocking
from repro.experiments.common import ExperimentConfig


class TestNonblockingExperiment:
    def test_grid_complete_and_positive(self):
        config = ExperimentConfig(nodes=4, cores_per_node=4, fast=True)
        result = ext_nonblocking.run(config)
        assert len(result.cells) == len(ext_nonblocking.WORKLOADS) * len(
            ext_nonblocking.NOISE_LEVELS
        )
        for (workload, noise), (blocking, nonblocking) in result.cells.items():
            assert blocking > 0 and nonblocking > 0

    def test_overlap_helps_bandwidth_bound_workload(self):
        config = ExperimentConfig(nodes=4, cores_per_node=4, fast=True)
        result = ext_nonblocking.run(config)
        # Large alltoall with real compute: hiding must give a clear benefit.
        assert result.benefit("large_alltoall", "none") > 0.05

    def test_report_renders(self):
        config = ExperimentConfig(nodes=4, cores_per_node=4, fast=True)
        result = ext_nonblocking.run(config)
        text = ext_nonblocking.report(result)
        assert "overlap benefit" in text
        assert "non-blocking" in text
