#!/usr/bin/env python
"""End-to-end arrival-pattern-aware algorithm selection for an FT-like app.

The full Section-V pipeline of the paper:

1. run the FT proxy with the tracing library attached and extract its real
   arrival pattern (the "FT-Scenario") and maximum observed skew;
2. micro-benchmark every Alltoall algorithm under the eight artificial
   patterns (scaled to the traced skew) plus the FT-Scenario;
3. apply three selection strategies — classic No-delay tuning, the paper's
   robustness average, and the trace oracle;
4. validate each pick by actually running FT with it;
5. export the robust selection as an Open MPI ``coll_tuned`` dynamic rules
   file you could drop onto a real cluster.

Run:  python examples/algorithm_selection_ft.py
"""

from pathlib import Path

from repro.apps import FTProxy
from repro.apps.ft import FT_MSG_BYTES
from repro.bench import MicroBenchmark, sweep_shared_skew
from repro.patterns import list_shapes
from repro.reporting import render_table
from repro.selection import (
    NoDelaySelector,
    OracleSelector,
    RobustAverageSelector,
    SelectionTable,
    write_ompi_rules_file,
)
from repro.sim.platform import get_machine
from repro.tracing import CollectiveTracer, max_observed_skew, pattern_from_trace

MACHINE = "hydra"
NODES, CORES = 8, 4
ALGORITHMS = ["basic_linear", "pairwise", "bruck", "linear_sync"]


def main() -> None:
    spec = get_machine(MACHINE)
    num_ranks = NODES * CORES

    # --- 1. trace the application. -------------------------------------
    print(f"[1/5] tracing FT on '{MACHINE}' ({num_ranks} ranks) ...")
    ft = FTProxy.class_d_scaled(spec, nodes=NODES, cores_per_node=CORES, seed=1)
    tracer = CollectiveTracer()
    ft.run(tracer)
    scenario = pattern_from_trace(tracer, "alltoall", num_ranks, name="ft_scenario")
    skew = max_observed_skew(tracer, "alltoall", num_ranks)
    print(f"      traced {tracer.num_calls('alltoall')} Alltoall calls, "
          f"max skew {skew * 1e6:.1f} us")

    # --- 2. benchmark under patterns. ----------------------------------
    print("[2/5] benchmarking Alltoall algorithms under arrival patterns ...")
    bench = MicroBenchmark.from_machine(spec, nodes=NODES, cores_per_node=CORES, nrep=2)
    sweep = sweep_shared_skew(
        bench, "alltoall", ALGORITHMS, FT_MSG_BYTES, list_shapes(),
        max_skew=skew, extra_patterns=[scenario],
    )

    # --- 3. apply the selection strategies. ----------------------------
    strategies = {
        "no_delay (classic tuning)": NoDelaySelector(),
        "robust average (paper)": RobustAverageSelector(exclude=("ft_scenario",)),
        "oracle (traced pattern)": OracleSelector("ft_scenario"),
    }
    picks = {name: strat.select(sweep) for name, strat in strategies.items()}

    # --- 4. validate in the application. -------------------------------
    print("[3/5] validating picks by running FT with each algorithm ...")
    ft_runtimes = {}
    for algo in ALGORITHMS:
        app = FTProxy.class_d_scaled(
            spec, nodes=NODES, cores_per_node=CORES, seed=1, algorithm=algo
        ).run()
        ft_runtimes[algo] = app.runtime
    actual_best = min(ft_runtimes, key=ft_runtimes.get)

    print("[4/5] results:")
    rows = [
        [name, algo, f"{ft_runtimes[algo] * 1e3:.2f}",
         "YES" if algo == actual_best else "no"]
        for name, algo in picks.items()
    ]
    rows.append(["(actual best in FT)", actual_best,
                 f"{ft_runtimes[actual_best] * 1e3:.2f}", "-"])
    print(render_table(
        ["strategy", "picked algorithm", "FT runtime (ms)", "optimal?"], rows
    ))

    # --- 5. export a deployable tuning file. ---------------------------
    table = SelectionTable()
    table.add_sweep(sweep, RobustAverageSelector(exclude=("ft_scenario",)))
    rules_path = Path("ompi_tuned_rules.conf")
    write_ompi_rules_file(rules_path, table)
    print(f"[5/5] wrote Open MPI dynamic rules to {rules_path} "
          f"(coll_tuned_dynamic_rules_filename)")


if __name__ == "__main__":
    main()
