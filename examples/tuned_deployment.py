#!/usr/bin/env python
"""The full production loop: tune once, deploy the table, run a real app mix.

1. run a :class:`~repro.bench.campaign.TuningCampaign` (the paper's
   robustness-average strategy) over the collectives and sizes a
   CFD-flavoured application uses,
2. persist the table + an Open MPI ``coll_tuned`` rules file,
3. run a mixed-collective proxy app three ways — library default rules,
   the freshly tuned table, and the tuned table reloaded from disk — and
   compare end-to-end runtimes.

Run:  python examples/tuned_deployment.py
"""

from pathlib import Path

from repro.apps import MixedProxyApp, Phase
from repro.bench import MicroBenchmark, TuningCampaign
from repro.reporting import render_table
from repro.selection import SelectionTable
from repro.sim.platform import get_machine

MACHINE = "galileo100"
NODES, CORES = 8, 4

# A CFD-ish timestep: transpose-heavy Alltoall, residual Allreduce,
# occasional control Bcast.
PHASES = (
    Phase("alltoall", 32768.0, count=16),
    Phase("allreduce", 8.0, count=8),
    Phase("bcast", 4096.0, count=16),
)


def main() -> None:
    spec = get_machine(MACHINE)

    print(f"[1/3] tuning campaign on '{MACHINE}' ({NODES * CORES} ranks) ...")
    bench = MicroBenchmark.from_machine(spec, nodes=NODES, cores_per_node=CORES,
                                        nrep=2)
    campaign = TuningCampaign(
        bench=bench,
        collectives=("alltoall", "allreduce", "bcast"),
        msg_sizes=(8, 4096, 32768),
    )
    result = campaign.run(progress=lambda c, s: print(f"      {c} @ {s} B"))
    outdir = Path("tuned_deployment")
    paths = campaign.save(result, outdir)
    print(f"      wrote {paths['rules']}")

    print("[2/3] reloading the deployed table from disk ...")
    deployed = SelectionTable.load_json(paths["table"])

    print("[3/3] running the mixed app under each decision source ...")
    rows = []
    for label, table in (("library fixed rules", None),
                         ("tuned (in-memory)", result.table),
                         ("tuned (reloaded from disk)", deployed)):
        app = MixedProxyApp.from_machine(
            spec, PHASES, nodes=NODES, cores_per_node=CORES, seed=5,
            table=table, iterations=10, compute_per_iteration=1e-3,
        )
        out = app.run()
        rows.append([
            label,
            out.resolved["alltoall@32768B"],
            f"{out.runtime * 1e3:.2f}",
            out.dominant_phase,
        ])
    print(render_table(
        ["decision source", "alltoall algorithm", "app runtime (ms)",
         "dominant phase"],
        rows,
    ))
    same = rows[1][1:3] == rows[2][1:3]
    print(f"\nreloaded table reproduces the in-memory decisions: "
          f"{'yes' if same else 'NO'}")


if __name__ == "__main__":
    main()
