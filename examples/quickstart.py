#!/usr/bin/env python
"""Quickstart: benchmark MPI collective algorithms under arrival patterns.

This walks the library's core loop in ~40 lines:

1. pick a simulated machine and build a micro-benchmark harness,
2. measure every Reduce algorithm with perfectly synchronized ranks
   (the classic OSU-style "No-delay" measurement),
3. repeat with a `last_delayed` arrival pattern (one straggler rank),
4. see that the winner changes — the paper's central observation.

Run:  python examples/quickstart.py
"""

from repro.bench import MicroBenchmark
from repro.collectives import list_algorithms
from repro.patterns import generate_pattern
from repro.reporting import render_table
from repro.sim.platform import get_machine


def main() -> None:
    # A scaled-down Hydra analogue: 8 nodes x 4 cores = 32 ranks.
    bench = MicroBenchmark.from_machine(
        get_machine("hydra"), nodes=8, cores_per_node=4, nrep=3
    )
    algorithms = list_algorithms("reduce")
    msg_bytes = 1024

    # --- 1. the classic measurement: everyone enters simultaneously. ---
    no_delay = bench.run_many("reduce", algorithms, msg_bytes)

    # --- 2. the same measurement with a straggler (last rank delayed by
    #        roughly one collective runtime). ---
    skew = max(r.last_delay for r in no_delay.values())
    pattern = generate_pattern("last_delayed", bench.num_ranks, skew)
    delayed = bench.run_many("reduce", algorithms, msg_bytes, pattern=pattern)

    rows = [
        [
            algo,
            f"{no_delay[algo].last_delay * 1e6:9.2f}",
            f"{delayed[algo].last_delay * 1e6:9.2f}",
            f"{delayed[algo].last_delay / no_delay[algo].last_delay:5.2f}x",
        ]
        for algo in algorithms
    ]
    print(render_table(
        ["algorithm", "no-delay d^ (us)", "last-delayed d^ (us)", "ratio"],
        rows,
        title=f"MPI_Reduce, {msg_bytes} B, {bench.num_ranks} ranks on 'hydra'",
    ))

    best_nd = min(no_delay, key=lambda a: no_delay[a].last_delay)
    best_ld = min(delayed, key=lambda a: delayed[a].last_delay)
    print(f"\nfastest when synchronized : {best_nd}")
    print(f"fastest with a straggler  : {best_ld}")
    if best_nd != best_ld:
        print("-> tuning on synchronized micro-benchmarks picks the wrong algorithm!")


if __name__ == "__main__":
    main()
