#!/usr/bin/env python
"""Trace an application's arrival patterns, persist them, and replay them.

Demonstrates the tracing toolchain on the CG proxy (Allreduce-dominant):

1. attach the PMPI-style tracer (with call sampling) to a CG run,
2. write the trace to disk (JSONL) and read it back,
3. extract the per-rank average-delay pattern and save it in the paper's
   p-line pattern-file format,
4. replay the extracted pattern in a micro-benchmark and confirm the
   measured arrival spread matches the trace.

Run:  python examples/tracing_and_replay.py
"""

from pathlib import Path

import numpy as np

from repro.apps import CGProxy
from repro.bench import MicroBenchmark
from repro.patterns import read_pattern_file, write_pattern_file
from repro.sim.network import NetworkParams
from repro.sim.noise import NoiseModel
from repro.sim.platform import get_machine
from repro.tracing import (
    CollectiveTracer,
    average_delay_per_rank,
    pattern_from_trace,
    read_trace,
    write_trace,
)

MACHINE = "galileo100"
NODES, CORES = 8, 4


def main() -> None:
    spec = get_machine(MACHINE)
    num_ranks = NODES * CORES

    # --- 1. trace CG, sampling every 2nd collective call. ---------------
    app = CGProxy(
        platform=spec.platform.scaled(NODES, CORES),
        params=NetworkParams(**spec.network),
        noise=NoiseModel(spec.noise_profile, num_ranks, seed=3),
        iterations=40,
    )
    tracer = CollectiveTracer(call_sampling=2)
    result = app.run(tracer)
    print(f"CG runtime {result.runtime * 1e3:.2f} ms; traced "
          f"{tracer.num_calls('allreduce')} of {result.collective_calls} calls")

    # --- 2. persist and reload the trace. -------------------------------
    trace_path = Path("cg_run.trace")
    write_trace(trace_path, tracer, metadata={"app": "cg", "machine": MACHINE})
    reloaded, meta = read_trace(trace_path)
    print(f"trace file: {trace_path} ({trace_path.stat().st_size} bytes, "
          f"metadata {meta})")

    # --- 3. extract and persist the arrival pattern. ---------------------
    pattern = pattern_from_trace(reloaded, "allreduce", num_ranks, name="cg_scenario")
    pattern_path = Path("cg_scenario.pattern")
    write_pattern_file(pattern_path, pattern)
    print(f"pattern file: {pattern_path} (max skew {pattern.max_skew * 1e6:.1f} us)")

    # --- 4. replay it in a micro-benchmark. ------------------------------
    replayed = read_pattern_file(pattern_path)
    bench = MicroBenchmark.from_machine(spec, nodes=NODES, cores_per_node=CORES, nrep=1)
    measured = bench.run("allreduce", "recursive_doubling", 8.0, pattern=replayed)
    observed = measured.timings[0].delays_from_first()
    # delays_from_first() is relative to the earliest arrival, so compare
    # against the min-shifted skews.
    error = np.abs(observed - (replayed.skews - replayed.skews.min())).max()
    print(f"replayed pattern; max |measured - requested| arrival delay: "
          f"{error * 1e9:.1f} ns")
    avg = average_delay_per_rank(reloaded, "allreduce", num_ranks)
    print(f"per-rank average delay range: {avg.min() * 1e6:.2f} .. "
          f"{avg.max() * 1e6:.2f} us")


if __name__ == "__main__":
    main()
