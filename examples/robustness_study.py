#!/usr/bin/env python
"""Robustness study of a collective the paper did not show: MPI_Bcast.

The paper presents Reduce/Allreduce/Alltoall and notes that other rooted
collectives (Bcast in particular) behave like Reduce.  This example runs
the Fig.-6 robustness methodology on our six Bcast algorithms: each
algorithm is exposed to every arrival-pattern shape with the skew scaled to
its own No-delay runtime, and cells are classified green/gray/red at the
+-25 % threshold.

Run:  python examples/robustness_study.py
"""

from repro.bench import MicroBenchmark, sweep_per_algorithm_skew
from repro.bench.robustness import classify, normalized_performance
from repro.collectives import list_algorithms
from repro.patterns import list_shapes
from repro.reporting import render_grid
from repro.sim.platform import get_machine
from repro.utils.units import format_bytes

MARK = {"faster": "G", "neutral": ".", "slower": "R"}


def main() -> None:
    bench = MicroBenchmark.from_machine(
        get_machine("hydra"), nodes=8, cores_per_node=4, nrep=2
    )
    algorithms = list_algorithms("bcast")
    shapes = list_shapes()

    for msg_bytes in (8, 65536):
        sweep = sweep_per_algorithm_skew(
            bench, "bcast", algorithms, msg_bytes, shapes
        )
        grid: dict[str, dict[str, str]] = {}
        greens = reds = 0
        for shape in shapes:
            grid[shape] = {}
            for algo in algorithms:
                value = normalized_performance(
                    sweep.get(shape, algo).last_delay,
                    sweep.get("no_delay", algo).last_delay,
                )
                cls = classify(value)
                greens += cls == "faster"
                reds += cls == "slower"
                grid[shape][algo] = f"{value:+.2f}{MARK[cls]}"
        print(render_grid(
            grid, row_order=shapes, col_order=algorithms,
            corner=f"{format_bytes(msg_bytes)} \\ algo",
            title=f"\nMPI_Bcast robustness at {format_bytes(msg_bytes)} "
            f"(G = absorbs skew, R = degrades, . = within 25%)",
        ))
        print(f"summary: {greens} green / {reds} red cells")
        print("-> like Reduce, the rooted Bcast absorbs skew in many "
              "tree algorithms" if greens > reds else
              "-> at this size Bcast degrades more often than it absorbs")


if __name__ == "__main__":
    main()
