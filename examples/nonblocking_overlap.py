#!/usr/bin/env python
"""Non-blocking collectives: hiding communication behind compute under noise.

The paper's related work (Widener et al.) asks whether non-blocking
collectives mitigate noise-induced process imbalance.  This example runs a
double-buffered iterative loop —

    start Iallreduce(iteration k) -> compute -> wait(iteration k-1)

against the plain blocking loop, across noise intensities and compute/
communication ratios, using the simulator's progress fibers (a perfectly
progressing MPI, Widener's idealized model).

Run:  python examples/nonblocking_overlap.py
"""

from repro.collectives import CollArgs, make_input, run_collective
from repro.collectives.nonblocking import icollective, wait_collective
from repro.reporting import render_table
from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.noise import NoiseModel
from repro.sim.platform import get_machine

MACHINE = "hydra"
NODES, CORES = 8, 4
ITERATIONS = 12
MSG_BYTES = 1 << 20  # 1 MiB Allreduce


def run_loop(platform, params, noise, compute, nonblocking: bool) -> float:
    p = platform.num_ranks
    args = CollArgs(count=64, msg_bytes=float(MSG_BYTES))
    inputs = [make_input("allreduce", r, p, 64) for r in range(p)]

    def prog(ctx):
        me = ctx.rank
        yield from ctx.barrier()
        start = ctx.time()
        if nonblocking:
            handle = None
            for it in range(ITERATIONS):
                nxt = icollective(ctx, "allreduce", "ring", args, inputs[me],
                                  tag_offset=it % 2)
                yield ctx.compute(compute)
                if handle is not None:
                    yield from wait_collective(ctx, handle)
                handle = nxt
            yield from wait_collective(ctx, handle)
        else:
            for _it in range(ITERATIONS):
                yield ctx.compute(compute)
                yield from run_collective(ctx, "allreduce", "ring", args, inputs[me])
        return ctx.time() - start

    return max(run_processes(platform, prog, params=params, noise=noise).rank_results)


def main() -> None:
    spec = get_machine(MACHINE)
    platform = spec.platform.scaled(NODES, CORES)
    params = NetworkParams(**spec.network)

    rows = []
    for compute_ms in (0.5, 2.0, 8.0):
        for noise_name in ("none", "moderate", "noisy"):
            noise = (NoiseModel(noise_name, platform.num_ranks, seed=3)
                     if noise_name != "none" else None)
            blocking = run_loop(platform, params, noise, compute_ms * 1e-3, False)
            overlap = run_loop(platform, params, noise, compute_ms * 1e-3, True)
            rows.append([
                f"{compute_ms:.1f}",
                noise_name,
                f"{blocking * 1e3:.2f}",
                f"{overlap * 1e3:.2f}",
                f"{(1 - overlap / blocking) * 100:+.1f}%",
            ])
    print(render_table(
        ["compute/iter (ms)", "noise", "blocking (ms)",
         "non-blocking (ms)", "benefit"],
        rows,
        title=f"1 MiB Iallreduce overlap on '{MACHINE}' "
        f"({platform.num_ranks} ranks, {ITERATIONS} iterations)",
    ))
    print("\nWhen compute dwarfs the collective, overlap hides it almost fully;")
    print("noise adds imbalance that overlap can only partially absorb.")


if __name__ == "__main__":
    main()
