#!/usr/bin/env python
"""Compare arrival-pattern sensitivity across the three machine analogues.

For each machine preset (Hydra / Galileo100 / Discoverer) this example runs
the Alltoall pattern sweep at FT's message size and reports:

* the No-delay winner vs. the robustness-average winner,
* each algorithm's worst-case normalized slowdown across patterns,
* whether classic tuning would have picked a fragile algorithm.

This is the "selection logic should not rely solely on time-synchronized
micro-benchmarking" argument of the paper, machine by machine.

Run:  python examples/cluster_comparison.py
"""

from repro.apps.ft import FT_MSG_BYTES
from repro.bench import MicroBenchmark, sweep_shared_skew
from repro.bench.robustness import average_normalized, normalize_rows
from repro.patterns import list_shapes
from repro.reporting import render_table
from repro.selection import NoDelaySelector, RobustAverageSelector
from repro.sim.platform import get_machine

MACHINES = ("hydra", "galileo100", "discoverer")
ALGORITHMS = ["basic_linear", "pairwise", "bruck", "linear_sync"]
NODES, CORES = 8, 4


def main() -> None:
    rows = []
    for machine in MACHINES:
        bench = MicroBenchmark.from_machine(
            get_machine(machine), nodes=NODES, cores_per_node=CORES, nrep=2
        )
        sweep = sweep_shared_skew(
            bench, "alltoall", ALGORITHMS, FT_MSG_BYTES, list_shapes(),
            skew_factor=1.0,
        )
        nd_pick = NoDelaySelector().select(sweep)
        robust_pick = RobustAverageSelector().select(sweep)
        table = {p: sweep.row(p) for p in sweep.patterns}
        normalized = normalize_rows(table)
        worst = {
            algo: max(normalized[p][algo] for p in normalized)
            for algo in ALGORITHMS
        }
        avg = average_normalized(table)
        rows.append([
            machine,
            f"{nd_pick} (worst {worst[nd_pick]:.2f}x)",
            f"{robust_pick} (worst {worst[robust_pick]:.2f}x)",
            f"{avg[robust_pick]:.2f} vs {avg[nd_pick]:.2f}",
            "yes" if nd_pick != robust_pick else "no",
        ])
    print(render_table(
        ["machine", "No-delay pick", "robust pick",
         "avg-normalized (robust vs ND)", "classic tuning fragile?"],
        rows,
        title=f"Alltoall selection at {int(FT_MSG_BYTES)} B, "
        f"{NODES * CORES} ranks",
    ))


if __name__ == "__main__":
    main()
