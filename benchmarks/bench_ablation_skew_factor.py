"""Ablation: the paper's skew magnitude factors 0.5 / 1.0 / 1.5 x t_avg.

The paper generated patterns at all three factors and reports only 1.5x,
"as it had the strongest influence".  This ablation verifies the
monotonicity behind that choice: the number of pattern-induced winner flips
(and the magnitude of the best win) grows with the factor.
"""

from __future__ import annotations

from repro.bench.runner import sweep_shared_skew
from repro.experiments.common import ExperimentConfig, SIMULATION_ALGORITHMS
from repro.patterns.shapes import NO_DELAY
from repro.patterns.skew import SKEW_FACTORS


def _flip_score(bench, factor: float) -> tuple[int, float]:
    """(#cells where the winner flips, strongest relative win) at one factor."""
    flips = 0
    best_rel = 1.0
    for size in (1024, 65536):
        sweep = sweep_shared_skew(
            bench, "reduce", SIMULATION_ALGORITHMS["reduce"], size,
            ["ascending", "descending", "last_delayed", "random"],
            skew_factor=factor,
        )
        nd_best = sweep.best_algorithm(NO_DELAY)
        for shape in ("ascending", "descending", "last_delayed", "random"):
            row = sweep.row(shape)
            winner = min(row, key=row.get)
            if winner != nd_best:
                flips += 1
                best_rel = min(best_rel, row[winner] / row[nd_best])
    return flips, best_rel


def bench_skew_factor_ablation(sim_config: ExperimentConfig, run_once):
    bench = sim_config.make_bench(machine="simcluster", noise_profile="none")

    def sweep_all():
        return {factor: _flip_score(bench, factor) for factor in SKEW_FACTORS}

    scores = run_once(sweep_all)
    print("factor -> (winner flips, strongest relative win):", scores)
    flips = [scores[f][0] for f in SKEW_FACTORS]
    wins = [scores[f][1] for f in SKEW_FACTORS]
    # More skew, at least as many flips and at least as strong a win.
    assert flips[0] <= flips[-1]
    assert wins[-1] <= wins[0] + 1e-9
    assert flips[-1] > 0
