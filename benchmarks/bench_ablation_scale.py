"""Ablation: stability of the qualitative findings across simulation scales.

DESIGN.md argues the paper's claims are structural and survive scaling the
1024-rank experiments down.  This bench runs the Fig. 4 Reduce analysis at
two scales and checks the headline outcome (pattern-dependent winners with
sizable wins) holds at both.
"""

from __future__ import annotations

from repro.experiments import fig4_simulation
from repro.experiments.common import ExperimentConfig


def _mismatch_summary(nodes: int, cores: int) -> tuple[int, float]:
    config = ExperimentConfig(
        machine="simcluster", nodes=nodes, cores_per_node=cores, fast=True
    )
    result = fig4_simulation.run(config, collective="reduce")
    mismatches = result.mismatch_cells()
    best = min((rel for *_x, rel in mismatches), default=1.0)
    return len(mismatches), best


def bench_scale_stability(run_once):
    def sweep():
        return {p: _mismatch_summary(nodes, cores)
                for p, (nodes, cores) in {16: (4, 4), 64: (16, 4)}.items()}

    out = run_once(sweep)
    print("ranks -> (winner flips, strongest relative win):", out)
    for p, (flips, best) in out.items():
        assert flips > 0, f"no pattern sensitivity at {p} ranks"
        assert best < 0.9, f"weak wins at {p} ranks: {best:.2f}"
