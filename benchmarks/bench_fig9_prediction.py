"""Bench: regenerate Fig. 9 — actual vs. projected FT runtime.

Shape claims: projections exceed pure compute; both projection styles land
within sane bounds; and for the skew-sensitive algorithm the paper singles
out (pairwise / Algorithm 2), the pattern-average projection is at least as
accurate as the No-delay projection.
"""

from __future__ import annotations

from repro.experiments import fig9_prediction


def bench_fig9(bench_config, run_once):
    result = run_once(fig9_prediction.run, bench_config)
    print(fig9_prediction.report(result))
    assert result.compute_time > 0
    nd_err = result.error(result.predicted_no_delay)
    avg_err = result.error(result.predicted_average)
    for algo in result.actual:
        assert result.predicted_no_delay[algo] > result.compute_time
        assert nd_err[algo] < 1.0 and avg_err[algo] < 1.0
    assert avg_err["pairwise"] <= nd_err["pairwise"] * 1.25
