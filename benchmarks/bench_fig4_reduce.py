"""Bench: regenerate Fig. 4a — simulated Reduce, best algorithm per pattern x size.

Shape claims checked: the No-delay winner is not globally optimal; under at
least one arrival pattern a different algorithm wins by a sizable margin
(the paper's headline example: in-order-binary-style trees absorb a delayed
last rank that breaks binomial's first round).
"""

from __future__ import annotations

from repro.experiments import fig4_simulation
from repro.patterns.shapes import NO_DELAY


def bench_fig4_reduce(full_sim_config, run_once):
    result = run_once(fig4_simulation.run, full_sim_config, "reduce")
    print(fig4_simulation.report(result))
    mismatches = result.mismatch_cells()
    assert len(mismatches) > 0, "Reduce must be arrival-pattern sensitive"
    best_gain = min(rel for *_x, rel in mismatches)
    assert best_gain < 0.8, f"expected a >20% win somewhere, best was {best_gain:.2f}"
    # The winner changes across message sizes even in the No-delay row.
    nd_winners = {result.sweeps[s].best_algorithm(NO_DELAY) for s in result.msg_sizes}
    assert len(nd_winners) >= 2
