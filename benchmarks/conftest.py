"""Shared configuration for the benchmark harness.

Every ``bench_figN_*`` benchmark regenerates one of the paper's figures at a
reduced-but-representative scale and *asserts its shape-level claim* — so a
green benchmark run doubles as a reproduction check.  Experiment drivers are
deterministic, so one round suffices; ``run_once`` wraps
``benchmark.pedantic`` accordingly.

Sweep cells run through :mod:`repro.bench.executor`, so setting
``REPRO_CACHE_DIR=<dir>`` makes repeated benchmark runs skip every
already-simulated cell (results are byte-identical either way; see
docs/performance.md).  Leave it unset when the point is to *time* the
simulator rather than re-check the figures' claims.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentConfig

#: The standard benchmark scale: 8 nodes x 4 cores = 32 ranks.
BENCH_NODES = 8
BENCH_CORES = 4


@pytest.fixture
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(nodes=BENCH_NODES, cores_per_node=BENCH_CORES, fast=True)


@pytest.fixture
def sim_config() -> ExperimentConfig:
    return ExperimentConfig(
        machine="simcluster", nodes=BENCH_NODES, cores_per_node=BENCH_CORES, fast=True
    )


@pytest.fixture
def full_sim_config() -> ExperimentConfig:
    """All 8 shapes and the full size sweep (slower; used by the fig4 benches)."""
    return ExperimentConfig(
        machine="simcluster", nodes=BENCH_NODES, cores_per_node=BENCH_CORES, fast=False
    )


@pytest.fixture
def run_once(benchmark):
    """Run a deterministic experiment exactly once under pytest-benchmark."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
