#!/usr/bin/env python
"""Soft gate for observability overhead (``bench_obs.py`` results).

Two checks on a fresh ``pytest-benchmark --benchmark-json`` run:

* **Overhead pairs.**  For each traced/untraced pair the enabled-mode
  overhead ``linked_median / untraced_median - 1`` must stay within the
  budget (default 10%).  Exceeding it emits a GitHub Actions
  ``::warning::`` — never a hard failure, because CI wall clocks are
  noisy — but the annotation makes a creeping hot-path regression
  visible on every run.
* **Coverage.**  A bench present in the fresh run but missing from the
  committed ``BENCH_obs.json`` baseline (or vice versa) is a hard
  failure, exactly like ``check_engine_regression.py``: silent coverage
  rot is worse than noise.

Usage::

    python benchmarks/check_obs_overhead.py fresh.json
    python benchmarks/check_obs_overhead.py --budget 0.15 fresh.json
    python benchmarks/check_obs_overhead.py --subset fresh.json
    python benchmarks/check_obs_overhead.py --update fresh.json  # rewrite baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_obs.json"

#: linked bench -> its untraced counterpart.
PAIRS = {
    "bench_obs_alltoall64_exact_linked": "bench_obs_alltoall64_exact_untraced",
    "bench_obs_alltoall64_hybrid_linked": "bench_obs_alltoall64_hybrid_untraced",
}


def load_medians(benchmark_json: Path) -> dict[str, float]:
    """Extract {benchmark name: median seconds} from pytest-benchmark output."""
    data = json.loads(benchmark_json.read_text())
    return {b["name"]: float(b["stats"]["median"]) for b in data["benchmarks"]}


def load_baseline(path: Path = BASELINE_PATH) -> dict[str, float]:
    return {k: float(v) for k, v in json.loads(path.read_text())["medians"].items()}


def write_baseline(medians: dict[str, float], path: Path = BASELINE_PATH) -> None:
    out = {
        "_comment": (
            "Median wall-clock seconds per observability benchmark (see "
            "check_obs_overhead.py). The linked/untraced pairs bound the "
            "enabled-mode recording overhead. Regenerate with: python "
            "benchmarks/check_obs_overhead.py --update <pytest-benchmark json>"
        ),
        "medians": {k: round(v, 6) for k, v in sorted(medians.items())},
    }
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")


def check(fresh: dict[str, float], baseline: dict[str, float],
          budget: float, subset: bool = False) -> tuple[list[str], list[str]]:
    """Return (hard errors, soft warnings) for a fresh run."""
    errors = []
    warnings = []
    for name in sorted(fresh):
        if name not in baseline:
            errors.append(
                f"::error::obs benchmark '{name}' has no baseline entry — "
                f"run check_obs_overhead.py --update to record it in "
                f"BENCH_obs.json"
            )
    for name in sorted(baseline):
        if name not in fresh and not subset:
            errors.append(
                f"::error::obs benchmark '{name}' is in the baseline but was "
                f"not run (renamed or removed? update BENCH_obs.json, or "
                f"pass --subset for partial runs)"
            )
    for linked, untraced in sorted(PAIRS.items()):
        if linked not in fresh or untraced not in fresh:
            continue
        base = fresh[untraced]
        if base <= 0:
            continue
        overhead = fresh[linked] / base - 1.0
        if overhead > budget:
            warnings.append(
                f"::warning::link recording overhead on "
                f"'{linked.removeprefix('bench_obs_')}' is "
                f"{overhead * 100:.0f}% (budget {budget * 100:.0f}%): "
                f"{base * 1e3:.2f} ms untraced -> "
                f"{fresh[linked] * 1e3:.2f} ms linked"
            )
        else:
            print(f"{linked.removeprefix('bench_obs_')}: overhead "
                  f"{overhead * 100:+.1f}% (budget {budget * 100:.0f}%)")
    return errors, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmark_json", type=Path,
                        help="pytest-benchmark --benchmark-json output file")
    parser.add_argument("--budget", type=float, default=0.10,
                        help="allowed fractional traced-vs-untraced overhead "
                             "(default 0.10)")
    parser.add_argument("--subset", action="store_true",
                        help="tolerate baseline benches that were not run")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline from this run")
    args = parser.parse_args(argv)

    fresh = load_medians(args.benchmark_json)
    if args.update:
        write_baseline(fresh)
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    errors, warnings = check(fresh, load_baseline(), args.budget,
                             subset=args.subset)
    for line in errors + warnings:
        print(line)
    print(f"obs benchmarks checked: {len(fresh)} run, "
          f"{len(errors)} error(s), {len(warnings)} warning(s), "
          f"budget {args.budget * 100:.0f}%")
    # Coverage drift blocks; wall-clock noise only annotates.
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
