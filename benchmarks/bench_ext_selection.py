"""Bench: the extension experiment — four selection regimes on the FT proxy.

Shape claims: measurement-based tuning (either flavour) beats the library's
fixed decision rules, and the paper's robustness-tuned pick is never far
from the best regime — it is the *safe* choice even when the No-delay pick
happens to win on a particular machine/seed.
"""

from __future__ import annotations

from repro.experiments import ext_selection_comparison


def bench_ext_selection(bench_config, run_once):
    result = run_once(ext_selection_comparison.run, bench_config)
    print(ext_selection_comparison.report(result))
    runtimes = {regime: rt for regime, (_a, rt) in result.regimes.items()}
    robust = runtimes["robust tuned (paper)"]
    default = runtimes["library default (fixed rules)"]
    best = min(runtimes.values())
    assert robust <= default * 1.02, "robust tuning should not lose to the fixed rules"
    assert robust <= best * 1.15, "robust tuning should stay near the best regime"
    assert len(result.regimes) == 4
