"""Bench: clock-sync accuracy extension (the paper's sub-microsecond claim)."""

from __future__ import annotations

from repro.experiments import ext_clock_accuracy


def bench_ext_clock_accuracy(bench_config, run_once):
    result = run_once(ext_clock_accuracy.run, bench_config)
    print(ext_clock_accuracy.report(result))
    assert result.worst_benchmark_error() < 1e-6
    assert result.worst_initial_error() < result.worst_aged_error()
