"""Bench: regenerate Fig. 5 — per-pattern runtimes with 5%-of-best classification.

One bench per collective (the paper's Fig. 5a/b/c).  Shape claims: for
Reduce the good-set changes across patterns; for Allreduce it is far more
stable (the paper's robustness finding).
"""

from __future__ import annotations

from repro.bench.robustness import good_algorithms
from repro.experiments import fig5_runtimes
from repro.patterns.shapes import NO_DELAY


def _good_sets(result):
    sets = {}
    for size in result.msg_sizes:
        sweep = result.sweeps[size]
        for pattern in [NO_DELAY] + result.shapes:
            sets[(size, pattern)] = frozenset(good_algorithms(sweep.row(pattern)))
    return sets


def bench_fig5_reduce(bench_config, run_once):
    result = run_once(fig5_runtimes.run, bench_config, "reduce")
    print(fig5_runtimes.report(result))
    sets = _good_sets(result)
    # The set of good algorithms is pattern-dependent for some size.
    assert any(
        sets[(size, NO_DELAY)] != sets[(size, shape)]
        for size in result.msg_sizes
        for shape in result.shapes
    )


def bench_fig5_allreduce(bench_config, run_once):
    result = run_once(fig5_runtimes.run, bench_config, "allreduce")
    print(fig5_runtimes.report(result))
    # Robustness: the No-delay fastest stays good under most patterns.
    stable = 0
    total = 0
    for size in result.msg_sizes:
        sweep = result.sweeps[size]
        nd_best = sweep.best_algorithm(NO_DELAY)
        for shape in result.shapes:
            total += 1
            if nd_best in good_algorithms(sweep.row(shape), tolerance=0.25):
                stable += 1
    assert stable >= total // 2, f"allreduce unstable: {stable}/{total}"


def bench_fig5_alltoall(bench_config, run_once):
    result = run_once(fig5_runtimes.run, bench_config, "alltoall")
    print(fig5_runtimes.report(result))
    sets = _good_sets(result)
    assert len(set(sets.values())) > 1  # classification varies somewhere
