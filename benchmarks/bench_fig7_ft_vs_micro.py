"""Bench: regenerate Fig. 7 — FT runtime vs. the No-delay Alltoall micro-benchmark.

Shape claims (the paper's): runtime *ratios* between algorithms compress
inside the application relative to the micro-benchmark, and on at least one
machine the micro-benchmark ranking disagrees with the FT ranking.
"""

from __future__ import annotations

from repro.experiments import fig7_ft_vs_micro


def bench_fig7(bench_config, run_once):
    result = run_once(
        fig7_ft_vs_micro.run, bench_config,
        ("hydra", "galileo100", "discoverer"), 1,
    )
    print(fig7_ft_vs_micro.report(result))
    disagreements = sum(
        not mres.rankings_agree for mres in result.machines.values()
    )
    assert disagreements >= 1, "expected a micro-vs-FT ranking flip on some machine"
    # Ratio compression: micro spread exceeds in-app spread on every machine.
    for mres in result.machines.values():
        micro_spread = max(mres.micro_delay.values()) / min(mres.micro_delay.values())
        ft_spread = max(mres.ft_runtime.values()) / min(mres.ft_runtime.values())
        assert ft_spread < micro_spread
