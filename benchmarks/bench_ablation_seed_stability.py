"""Ablation: how do the application-study conclusions vary with the noise seed?

Fig. 8's selection story depends on stochastic machine noise (via the FT
trace).  This ablation reruns the galileo100 analysis for several seeds and
records, per seed, how far each strategy's pick is from the scenario-best
d^.  The assertable facts at this scale:

* neither strategy is ever catastrophic (both stay within 30 % of the
  oracle for every seed), and
* the paper's phenomenon — the No-delay pick losing while the robust pick
  is scenario-optimal — occurs for some seeds (it is machine- and
  seed-dependent, exactly as the paper observes across its three machines).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig8_normalized
from repro.experiments.common import ExperimentConfig
from repro.experiments.fig8_normalized import FT_SCENARIO

SEEDS = (0, 1, 2, 3)


def bench_seed_stability(run_once):
    def sweep_seeds():
        out = {}
        for seed in SEEDS:
            # Full shape set: the strategy's averaging needs all 8 patterns.
            config = ExperimentConfig(nodes=8, cores_per_node=4, seed=seed)
            result = fig8_normalized.run(config, machines=("galileo100",))
            mres = result.machines["galileo100"]
            row = mres.sweep.row(FT_SCENARIO)
            best = min(row.values())
            out[seed] = {
                "robust_rel": row[mres.predicted_best()] / best,
                "no_delay_rel": row[mres.sweep.best_algorithm("no_delay")] / best,
            }
        return out

    outcomes = run_once(sweep_seeds)
    print("seed -> {robust_rel, no_delay_rel} (1.0 = scenario-optimal):")
    for seed, vals in outcomes.items():
        print(f"  seed {seed}: robust {vals['robust_rel']:.3f}  "
              f"no-delay {vals['no_delay_rel']:.3f}")
    robust = [v["robust_rel"] for v in outcomes.values()]
    no_delay = [v["no_delay_rel"] for v in outcomes.values()]
    assert max(robust) <= 1.30, "robust pick must never be a bad choice"
    assert max(no_delay) <= 1.30, "no-delay pick must never be a bad choice"
    paper_phenomenon = sum(
        1 for v in outcomes.values()
        if v["no_delay_rel"] > 1.04 and v["robust_rel"] <= 1.01
    )
    assert paper_phenomenon >= 1, (
        "at least one seed must show the paper's story: No-delay misses "
        "while the robust pick is scenario-optimal"
    )
