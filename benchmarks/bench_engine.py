"""Micro-benchmarks of the simulation substrate itself.

These track the engine's throughput (simulated messages per second of wall
time) and the cost of the clock-sync stack — useful when tuning the DES hot
paths, and a regression guard for the experiment suite's overall runtime.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.clocks import ClockSet
from repro.clocks.sync import sync_clocks
from repro.collectives import CollArgs, make_input, run_collective
from repro.sim.flow import FlowConfig
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform

# Aligned entries (single collective from t=0), no payload materialization:
# the scale benches time the engine, not result building.
_HYBRID = FlowConfig(mode="hybrid", declared_spread=0.0, payloads=False)

scale_only = pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_SCALE") != "1",
    reason="set REPRO_BENCH_SCALE=1 for the largest-scale engine benches",
)


def _flow_collective_job(plat, collective, algorithm, args, flow):
    """A zero-copy collective runner: one shared zeros input for all ranks.

    With ``payloads=False`` the flow path never materializes results, so a
    single shared input array serves every rank without O(p^2) memory.
    """
    p = plat.num_ranks
    shape = (p, args.count) if collective == "alltoall" else (args.count,)
    data = np.zeros(shape)

    def prog(ctx):
        yield from run_collective(ctx, collective, algorithm, args, data)

    def job():
        return run_processes(plat, prog, flow=flow)

    return job


def bench_engine_alltoall_throughput(benchmark):
    """Simulate a 64-rank linear Alltoall (~4k messages) repeatedly."""
    plat = Platform("t", nodes=16, cores_per_node=4)
    p = plat.num_ranks
    args = CollArgs(count=8, msg_bytes=1024.0)
    inputs = [make_input("alltoall", r, p, 8) for r in range(p)]

    def prog(ctx):
        yield from run_collective(ctx, "alltoall", "basic_linear", args, inputs[ctx.rank])

    def job():
        return run_processes(plat, prog)

    result = benchmark(job)
    assert result.events_processed > p * (p - 1)


def bench_engine_tree_collective_throughput(benchmark):
    """A 256-rank binomial broadcast — deep-tree scheduling pressure."""
    plat = Platform("t", nodes=32, cores_per_node=8)
    p = plat.num_ranks
    args = CollArgs(count=4, msg_bytes=8.0)
    inputs = [make_input("bcast", r, p, 4) for r in range(p)]

    def prog(ctx):
        yield from run_collective(ctx, "bcast", "binomial", args, inputs[ctx.rank])

    def job():
        return run_processes(plat, prog)

    result = benchmark(job)
    assert result.final_time > 0


def bench_engine_alltoall_1024(benchmark):
    """The old scale ceiling: a 1024-rank linear Alltoall (~1M messages),
    routed through the hybrid flow engine.  The aligned single-collective
    program is provably flow-eligible, so the whole exchange collapses to
    one analytic batch — bit-identical exit times at a fraction of the
    exact engine's ~9 s (see BENCH_engine.json history)."""
    plat = Platform("t", nodes=128, cores_per_node=8)
    p = plat.num_ranks
    args = CollArgs(count=4, msg_bytes=1024.0)
    job = _flow_collective_job(plat, "alltoall", "basic_linear", args, _HYBRID)

    result = benchmark.pedantic(job, rounds=1, iterations=1)
    # Flow engagement: only start/resume events remain, not ~p^2 deliveries.
    assert 0 < result.events_processed <= 4 * p
    assert result.final_time > 0


def bench_engine_alltoall_4096(benchmark):
    """A 4096-rank pairwise Alltoall (~16.8M messages) through the hybrid
    flow engine — the CI scale smoke target.  Single-core nodes keep every
    port single-owner, so the stepped replay is bit-exact at any skew and
    memory stays O(p) per step."""
    plat = Platform("t", nodes=4096, cores_per_node=1)
    p = plat.num_ranks
    args = CollArgs(count=4, msg_bytes=1024.0)
    job = _flow_collective_job(plat, "alltoall", "pairwise", args, _HYBRID)

    result = benchmark.pedantic(job, rounds=1, iterations=1)
    assert 0 < result.events_processed <= 4 * p
    assert result.final_time > 0


def bench_engine_alltoall_8192(benchmark):
    """An 8192-rank pairwise Alltoall (~67M messages) through the hybrid
    engine.  Single-core nodes keep every port single-owner, so the stepped
    replay is bit-exact at any skew; memory stays O(p) per step."""
    plat = Platform("t", nodes=8192, cores_per_node=1)
    p = plat.num_ranks
    args = CollArgs(count=4, msg_bytes=1024.0)
    job = _flow_collective_job(plat, "alltoall", "pairwise", args, _HYBRID)

    result = benchmark.pedantic(job, rounds=1, iterations=1)
    assert 0 < result.events_processed <= 4 * p
    assert result.final_time > 0


def bench_engine_allreduce_4096(benchmark):
    """A 4096-rank ring Allreduce (reduce-scatter + allgather, ~33.5M
    messages) through the hybrid engine on an SMP platform."""
    plat = Platform("t", nodes=512, cores_per_node=8)
    p = plat.num_ranks
    args = CollArgs(count=p, msg_bytes=float(8 * p))
    job = _flow_collective_job(plat, "allreduce", "ring", args, _HYBRID)

    result = benchmark.pedantic(job, rounds=1, iterations=1)
    assert 0 < result.events_processed <= 4 * p
    assert result.final_time > 0


def bench_engine_allreduce_8192(benchmark):
    """An 8192-rank ring Allreduce (~134M messages) through the hybrid
    engine."""
    plat = Platform("t", nodes=1024, cores_per_node=8)
    p = plat.num_ranks
    args = CollArgs(count=p, msg_bytes=float(8 * p))
    job = _flow_collective_job(plat, "allreduce", "ring", args, _HYBRID)

    result = benchmark.pedantic(job, rounds=1, iterations=1)
    assert 0 < result.events_processed <= 4 * p
    assert result.final_time > 0


@scale_only
def bench_engine_alltoall_16384_flow(benchmark):
    """A 16384-rank pairwise Alltoall (~268M messages) in forced flow mode —
    the new scale ceiling.  Exact simulation at this size is out of reach
    (hundreds of millions of events); flow mode costs p-1 vectorized
    steps."""
    plat = Platform("t", nodes=16384, cores_per_node=1)
    p = plat.num_ranks
    args = CollArgs(count=4, msg_bytes=1024.0)
    flow = FlowConfig(mode="flow", payloads=False)
    job = _flow_collective_job(plat, "alltoall", "pairwise", args, flow)

    result = benchmark.pedantic(job, rounds=1, iterations=1)
    assert 0 < result.events_processed <= 4 * p
    assert result.final_time > 0


def bench_engine_bcast_1024(benchmark):
    """A 1024-rank binomial broadcast — resume-dominated deep-tree scheduling
    at scale (few messages per rank, long dependency chains)."""
    plat = Platform("t", nodes=128, cores_per_node=8)
    p = plat.num_ranks
    args = CollArgs(count=4, msg_bytes=8.0)
    inputs = [make_input("bcast", r, p, 4) for r in range(p)]

    def prog(ctx):
        yield from run_collective(ctx, "bcast", "binomial", args, inputs[ctx.rank])

    def job():
        return run_processes(plat, prog)

    result = benchmark.pedantic(job, rounds=3, iterations=1)
    assert result.final_time > 0


def bench_clock_sync_cost(benchmark):
    """Full hierarchical clock sync on 32 ranks."""
    plat = Platform("t", nodes=8, cores_per_node=4)
    clockset = ClockSet(plat.num_ranks, seed=1)

    def prog(ctx):
        corr = yield from sync_clocks(ctx, clockset[ctx.rank])
        return corr

    def job():
        return run_processes(plat, prog)

    result = benchmark(job)
    assert all(c is not None for c in result.rank_results)
