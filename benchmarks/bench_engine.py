"""Micro-benchmarks of the simulation substrate itself.

These track the engine's throughput (simulated messages per second of wall
time) and the cost of the clock-sync stack — useful when tuning the DES hot
paths, and a regression guard for the experiment suite's overall runtime.
"""

from __future__ import annotations

from repro.clocks import ClockSet
from repro.clocks.sync import sync_clocks
from repro.collectives import CollArgs, make_input, run_collective
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform


def bench_engine_alltoall_throughput(benchmark):
    """Simulate a 64-rank linear Alltoall (~4k messages) repeatedly."""
    plat = Platform("t", nodes=16, cores_per_node=4)
    p = plat.num_ranks
    args = CollArgs(count=8, msg_bytes=1024.0)
    inputs = [make_input("alltoall", r, p, 8) for r in range(p)]

    def prog(ctx):
        yield from run_collective(ctx, "alltoall", "basic_linear", args, inputs[ctx.rank])

    def job():
        return run_processes(plat, prog)

    result = benchmark(job)
    assert result.events_processed > p * (p - 1)


def bench_engine_tree_collective_throughput(benchmark):
    """A 256-rank binomial broadcast — deep-tree scheduling pressure."""
    plat = Platform("t", nodes=32, cores_per_node=8)
    p = plat.num_ranks
    args = CollArgs(count=4, msg_bytes=8.0)
    inputs = [make_input("bcast", r, p, 4) for r in range(p)]

    def prog(ctx):
        yield from run_collective(ctx, "bcast", "binomial", args, inputs[ctx.rank])

    def job():
        return run_processes(plat, prog)

    result = benchmark(job)
    assert result.final_time > 0


def bench_engine_alltoall_1024(benchmark):
    """The scale ceiling: a 1024-rank linear Alltoall (~1M messages, ~1M-deep
    event backlog).  One round — this is a seconds-scale single run that
    exercises the O(1) matching, per-port event chains, and countdown waits
    at full memory pressure."""
    plat = Platform("t", nodes=128, cores_per_node=8)
    p = plat.num_ranks
    args = CollArgs(count=4, msg_bytes=1024.0)
    inputs = [make_input("alltoall", r, p, 4) for r in range(p)]

    def prog(ctx):
        yield from run_collective(ctx, "alltoall", "basic_linear", args, inputs[ctx.rank])

    def job():
        return run_processes(plat, prog)

    result = benchmark.pedantic(job, rounds=1, iterations=1)
    assert result.events_processed > p * (p - 1)


def bench_engine_bcast_1024(benchmark):
    """A 1024-rank binomial broadcast — resume-dominated deep-tree scheduling
    at scale (few messages per rank, long dependency chains)."""
    plat = Platform("t", nodes=128, cores_per_node=8)
    p = plat.num_ranks
    args = CollArgs(count=4, msg_bytes=8.0)
    inputs = [make_input("bcast", r, p, 4) for r in range(p)]

    def prog(ctx):
        yield from run_collective(ctx, "bcast", "binomial", args, inputs[ctx.rank])

    def job():
        return run_processes(plat, prog)

    result = benchmark.pedantic(job, rounds=3, iterations=1)
    assert result.final_time > 0


def bench_clock_sync_cost(benchmark):
    """Full hierarchical clock sync on 32 ranks."""
    plat = Platform("t", nodes=8, cores_per_node=4)
    clockset = ClockSet(plat.num_ranks, seed=1)

    def prog(ctx):
        corr = yield from sync_clocks(ctx, clockset[ctx.rank])
        return corr

    def job():
        return run_processes(plat, prog)

    result = benchmark(job)
    assert all(c is not None for c in result.rank_results)
