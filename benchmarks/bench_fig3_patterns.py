"""Bench: regenerate Fig. 3 — the eight artificial arrival-pattern shapes."""

from __future__ import annotations

from repro.experiments import fig3_patterns


def bench_fig3(bench_config, run_once):
    result = run_once(fig3_patterns.run, bench_config)
    print(fig3_patterns.report(result))
    assert len(result.patterns) == 8
    for shape, skews in result.patterns.items():
        assert skews.max() == result.max_skew, shape
        assert (skews >= 0).all()
