"""Bench: regenerate Fig. 6 — robustness heatmaps with +-25% classification.

Shape claims: for Reduce, many algorithms *absorb* skew (green cells
dominate red, the paper's "most MPI_Reduce algorithms are robust"); the
classification spans more than one class overall.
"""

from __future__ import annotations

from repro.experiments import fig6_robustness


def bench_fig6_reduce(bench_config, run_once):
    result = run_once(fig6_robustness.run, bench_config, "reduce")
    print(fig6_robustness.report(result))
    greens = sum(result.counts(s)["faster"] for s in result.msg_sizes)
    reds = sum(result.counts(s)["slower"] for s in result.msg_sizes)
    assert greens >= reds, f"expected absorption to dominate: G={greens} R={reds}"


def bench_fig6_allreduce(bench_config, run_once):
    result = run_once(fig6_robustness.run, bench_config, "allreduce")
    print(fig6_robustness.report(result))
    # Values are sane: d^ never negative -> normalized > -1.
    for size in result.msg_sizes:
        for shape in result.shapes:
            for algo in result.algorithms:
                assert result.normalized(size, shape, algo) > -1.0


def bench_fig6_alltoall(bench_config, run_once):
    result = run_once(fig6_robustness.run, bench_config, "alltoall")
    print(fig6_robustness.report(result))
    counts = {k: sum(result.counts(s)[k] for s in result.msg_sizes)
              for k in ("faster", "neutral", "slower")}
    assert sum(counts.values()) > 0
    assert counts["neutral"] < sum(counts.values()), (
        "alltoall should show significant pattern effects at some size"
    )
