"""Bench: regenerate Tables I and II."""

from __future__ import annotations

from repro.experiments import tables


def bench_table1(run_once):
    text = run_once(tables.table1)
    print(text)
    for machine in ("hydra", "galileo100", "discoverer", "simcluster"):
        assert machine in text


def bench_table2(run_once):
    text = run_once(tables.table2)
    print(text)
    # Spot-check paper Table II IDs.
    assert "alltoall    3   bruck" in text.replace("  ", "  ") or "bruck" in text
    assert "in_order_binary" in text
    assert "rabenseifner" in text
