"""Bench: regenerate Fig. 1 — FT's traced Alltoall arrival-delay profile."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig1_ft_trace


def bench_fig1(bench_config, run_once):
    result = run_once(fig1_ft_trace.run, bench_config.with_machine("galileo100"))
    print(fig1_ft_trace.report(result))
    # Shape claim: the average delay is non-uniform across ranks.
    delays = result.avg_delay_per_rank
    assert delays.max() > 0
    assert np.std(delays) > 0.02 * delays.max()
    assert result.calls_traced > 0
