"""Ablation: eager/rendezvous threshold vs. skew propagation.

With a late receiver, eager senders fire and forget while rendezvous
senders stall on the handshake.  Sweeping the threshold across the message
size verifies the first-order mechanism: the *sender's* completion time
under a delayed receiver jumps once the protocol switches to rendezvous.
"""

from __future__ import annotations

import dataclasses

from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.platform import Platform

_MSG = 16384
_DELAY = 10e-3


def _sender_finish(eager_threshold: int) -> float:
    plat = Platform("t", nodes=2, cores_per_node=2)
    params = dataclasses.replace(NetworkParams(), eager_threshold=eager_threshold)

    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(2, nbytes=_MSG)  # inter-node
            return ctx.time()
        if ctx.rank == 2:
            yield ctx.sleep(_DELAY)
            yield from ctx.recv(0)
        return None

    return run_processes(plat, prog, params=params).rank_results[0]


def bench_eager_threshold_ablation(run_once):
    thresholds = [1024, 8192, 16384, 65536]

    def sweep():
        return {t: _sender_finish(t) for t in thresholds}

    finishes = run_once(sweep)
    print("eager_threshold -> sender completion time:", finishes)
    # Below the message size: rendezvous, sender stalls ~the receiver delay.
    assert finishes[1024] >= _DELAY
    assert finishes[8192] >= _DELAY
    # At/above the message size: eager, sender finishes immediately.
    assert finishes[16384] < _DELAY / 100
    assert finishes[65536] < _DELAY / 100
