"""Bench: the non-blocking-collectives extension (Widener-style question).

Shape claims: overlap yields a clear benefit for the bandwidth-bound
workload, and runtimes grow with the noise level in the blocking variant.
"""

from __future__ import annotations

from repro.experiments import ext_nonblocking


def bench_ext_nonblocking(bench_config, run_once):
    result = run_once(ext_nonblocking.run, bench_config)
    print(ext_nonblocking.report(result))
    assert result.benefit("large_alltoall", "none") > 0.05
    # Noise slows the blocking variant monotonically (none <= mod <= noisy).
    blocking = [result.cells[("large_alltoall", n)][0]
                for n in ext_nonblocking.NOISE_LEVELS]
    assert blocking[0] <= blocking[1] <= blocking[2]
