"""Bench: regenerate Fig. 4b — simulated Allreduce under arrival patterns.

Shape claim: Allreduce is robust — its reduction step synchronizes, so the
No-delay winner stays (near-)optimal under most patterns (the paper finds
only limited absorption at medium sizes).
"""

from __future__ import annotations

from repro.experiments import fig4_simulation


def bench_fig4_allreduce(full_sim_config, run_once):
    result = run_once(fig4_simulation.run, full_sim_config, "allreduce")
    print(fig4_simulation.report(result))
    cells = len(result.msg_sizes) * len(result.shapes)
    mismatches = result.mismatch_cells()
    assert len(mismatches) <= cells // 4, (
        f"Allreduce should be mostly robust; {len(mismatches)}/{cells} cells flipped"
    )
