#!/usr/bin/env python
"""Regression gate for the selection-service load-generator benchmarks.

Compares a fresh ``python -m repro.bench.loadgen`` payload against the
committed baseline (``BENCH_service.json``).  Mirrors the engine gate's
philosophy (``check_engine_regression.py``):

* **Coverage drift is a hard failure.**  A workload present in the fresh
  run but missing from the baseline (or vice versa) exits non-zero — a
  workload was added, renamed, or silently dropped without updating the
  committed baseline.  Any fresh workload reporting ``errors > 0`` is
  also a hard failure: the load mix contains only valid queries, so a
  single error means the service misbehaved under load.
* **Performance drift is a soft warning.**  A QPS drop or a p99 latency
  rise beyond the threshold (default 40% — thread-scheduling noise on
  shared CI runners dwarfs the engine benches') emits a GitHub Actions
  ``::warning::`` annotation but never fails the run.

Usage::

    python benchmarks/check_service_regression.py fresh.json
    python benchmarks/check_service_regression.py --threshold 0.6 fresh.json
    python benchmarks/check_service_regression.py --update fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_service.json"


def load_workloads(path: Path) -> dict[str, dict]:
    return json.loads(path.read_text())["workloads"]


def write_baseline(payload: dict, path: Path = BASELINE_PATH) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def compare(fresh: dict[str, dict], baseline: dict[str, dict],
            threshold: float) -> tuple[list[str], list[str]]:
    """Return (hard errors, soft warnings) for a fresh run vs the baseline."""
    errors = []
    warnings = []
    for name in sorted(fresh):
        if name not in baseline:
            errors.append(
                f"::error::service workload '{name}' has no baseline entry — "
                f"run check_service_regression.py --update to record it in "
                f"BENCH_service.json"
            )
    for name, base in sorted(baseline.items()):
        row = fresh.get(name)
        if row is None:
            errors.append(
                f"::error::service workload '{name}' is in the baseline but "
                f"was not run (renamed or removed? update BENCH_service.json)"
            )
            continue
        if row.get("errors", 0) > 0:
            errors.append(
                f"::error::service workload '{name}' reported "
                f"{row['errors']} query error(s) — the load mix is all-valid, "
                f"so any error is a service bug"
            )
        if base["qps"] > 0 and row["qps"] < base["qps"] * (1.0 - threshold):
            warnings.append(
                f"::warning::service workload '{name}' QPS regressed "
                f"{(1.0 - row['qps'] / base['qps']) * 100:.0f}% "
                f"({base['qps']:,.0f} -> {row['qps']:,.0f} q/s, "
                f"threshold {threshold * 100:.0f}%)"
            )
        if base["p99_us"] > 0 and row["p99_us"] > base["p99_us"] * (1.0 + threshold):
            warnings.append(
                f"::warning::service workload '{name}' p99 latency regressed "
                f"{(row['p99_us'] / base['p99_us'] - 1.0) * 100:.0f}% "
                f"({base['p99_us']:.1f} us -> {row['p99_us']:.1f} us, "
                f"threshold {threshold * 100:.0f}%)"
            )
    return errors, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", type=Path,
                        help="fresh repro.bench.loadgen output file")
    parser.add_argument("--threshold", type=float, default=0.4,
                        help="allowed fractional QPS/p99 drift (default 0.4)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline from this run")
    args = parser.parse_args(argv)

    if args.update:
        write_baseline(json.loads(args.bench_json.read_text()))
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    fresh = load_workloads(args.bench_json)
    errors, warnings = compare(fresh, load_workloads(BASELINE_PATH),
                               args.threshold)
    for line in errors + warnings:
        print(line)
    print(f"service workloads checked: {len(fresh)} run, "
          f"{len(errors)} error(s), {len(warnings)} warning(s), "
          f"threshold {args.threshold * 100:.0f}%")
    # Coverage drift and query errors block; wall-clock noise only annotates.
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
