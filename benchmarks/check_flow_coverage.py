#!/usr/bin/env python
"""CI coverage gate: the hybrid engine must actually collapse flow batches.

Runs a small flow-eligible cell (an aligned 4096-rank pairwise Alltoall on
single-core nodes) through the hybrid engine and fails (exit 1) unless the
flow path engaged: ``flow.batches`` > 0 both on the runtime's own counters
and in the obs metrics registry, and the event count collapsed to the O(p)
start/resume skeleton instead of the O(p^2) per-message schedule.

This protects the scale benchmarks from silently regressing into exact-mode
dispatch (e.g. a descriptor rename or an eligibility-rule change): the wall
clock of an accidental exact run at 4096 ranks would still *finish* inside
the CI budget, so only an explicit engagement check catches it.

Usage::

    PYTHONPATH=src python benchmarks/check_flow_coverage.py [--ranks 4096]
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import obs
from repro.collectives import CollArgs, run_collective
from repro.sim.flow import FlowConfig
from repro.sim.mpi import build_engine
from repro.sim.platform import Platform


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ranks", type=int, default=4096,
                        help="job size for the probe cell (default 4096)")
    args_ns = parser.parse_args(argv)

    plat = Platform("probe", nodes=args_ns.ranks, cores_per_node=1)
    p = plat.num_ranks
    args = CollArgs(count=4, msg_bytes=1024.0)
    data = np.zeros((p, args.count))

    def prog(ctx):
        yield from run_collective(ctx, "alltoall", "pairwise", args, data)

    flow = FlowConfig(mode="hybrid", declared_spread=0.0, payloads=False)
    with obs.session(meta={"check": "flow_coverage", "ranks": p}) as octx:
        engine, contexts = build_engine(plat, flow=flow)
        for rank, ctx in enumerate(contexts):
            engine.set_process(rank, prog(ctx))
        engine.run()
        counters = {
            name: m["value"]
            for name, m in octx.metrics.snapshot().items()
            if m.get("kind") == "counter" and name.startswith("flow.")
        }

    rt = engine.flow_runtime
    events = engine.events_processed
    print(f"flow coverage probe: {p} ranks, events_processed={events}, "
          f"runtime batches={rt.batches} fallback_calls={rt.fallback_calls}, "
          f"obs counters={counters}")

    failures = []
    if rt.batches <= 0:
        failures.append("flow_runtime.batches is 0 — hybrid dispatch never "
                        "collapsed a phase")
    if counters.get("flow.batches", 0) <= 0:
        failures.append("obs counter 'flow.batches' is 0 — metrics were not "
                        "recorded for the flow path")
    if rt.fallback_calls > 0:
        failures.append(f"flow_runtime.fallback_calls={rt.fallback_calls} — "
                        f"the probe cell should be fully flow-eligible")
    if not 0 < events <= 4 * p:
        failures.append(f"events_processed={events} outside the O(p) skeleton "
                        f"bound {4 * p} — a per-message schedule leaked through")
    for msg in failures:
        print(f"::error::flow coverage: {msg}")
    if not failures:
        print("flow coverage OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
