"""Ablation: shared per-node NIC vs. private per-rank ports.

The shared NIC is the model ingredient that produces realistic Alltoall
contention (DESIGN.md section 5).  This ablation shows (a) it slows
inter-node-heavy collectives, and (b) it is what makes Alltoall's pattern
sensitivity visible — with private ports the algorithms' last-delay barely
reacts to skew.
"""

from __future__ import annotations

import dataclasses

from repro.bench.micro import MicroBenchmark
from repro.bench.runner import sweep_shared_skew
from repro.patterns.shapes import NO_DELAY
from repro.sim.network import NetworkParams
from repro.sim.platform import get_machine


def _make_bench(shared: bool) -> MicroBenchmark:
    spec = get_machine("hydra")
    params = NetworkParams(**spec.network)
    params = dataclasses.replace(params, shared_node_nic=shared)
    plat = spec.platform.scaled(8, 4)
    return MicroBenchmark(platform=plat, params=params, nrep=1,
                          machine_name=f"hydra(shared={shared})")


def _sensitivity(bench: MicroBenchmark) -> tuple[float, float]:
    """(no-delay d^, max relative change of any algorithm under any pattern)."""
    sweep = sweep_shared_skew(
        bench, "alltoall", ["basic_linear", "pairwise"], 32768,
        ["first_delayed", "last_delayed"], skew_factor=1.0,
    )
    nd = sweep.row(NO_DELAY)
    worst = 0.0
    for shape in ("first_delayed", "last_delayed"):
        for algo, t in sweep.row(shape).items():
            worst = max(worst, abs(t / nd[algo] - 1.0))
    return min(nd.values()), worst


def bench_shared_nic_ablation(run_once):
    def compare():
        return {shared: _sensitivity(_make_bench(shared)) for shared in (True, False)}

    result = run_once(compare)
    print("shared_nic -> (no-delay d^, max pattern-induced change):", result)
    shared_nd, shared_sens = result[True]
    private_nd, private_sens = result[False]
    assert shared_nd > private_nd, "shared NIC must add contention cost"
    assert shared_sens > private_sens, (
        "pattern sensitivity should come from NIC contention"
    )
