#!/usr/bin/env python
"""Regression gate for the engine micro-benchmarks.

Compares the medians of a fresh ``pytest-benchmark --benchmark-json`` run
against the committed baseline (``BENCH_engine.json``).  Two kinds of drift
are treated differently:

* **Coverage drift is a hard failure.**  A benchmark present in the fresh run
  but missing from the baseline (or vice versa) exits non-zero: it means a
  bench was added, renamed, or silently dropped without updating the
  committed baseline, which would let scale coverage rot unnoticed.  Runs
  that intentionally execute only a subset of the suite (the default CI bench
  job skips the ``REPRO_BENCH_SCALE``-gated benches) pass ``--subset``, which
  tolerates baseline entries that were not run — fresh benches missing from
  the baseline still fail.
* **Slowdowns are soft warnings.**  A median regressed beyond the threshold
  (default 25%) emits a GitHub Actions ``::warning::`` annotation but never
  fails the run — CI machines are noisy enough that a hard wall-clock gate
  would flake.

Usage::

    python benchmarks/check_engine_regression.py fresh.json
    python benchmarks/check_engine_regression.py --subset fresh.json
    python benchmarks/check_engine_regression.py --threshold 0.5 fresh.json
    python benchmarks/check_engine_regression.py --update fresh.json  # rewrite baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"


def load_medians(benchmark_json: Path) -> dict[str, float]:
    """Extract {benchmark name: median seconds} from pytest-benchmark output."""
    data = json.loads(benchmark_json.read_text())
    return {b["name"]: float(b["stats"]["median"]) for b in data["benchmarks"]}


def load_baseline(path: Path = BASELINE_PATH) -> dict[str, float]:
    return {k: float(v) for k, v in json.loads(path.read_text())["medians"].items()}


def write_baseline(medians: dict[str, float], path: Path = BASELINE_PATH) -> None:
    out = {
        "_comment": (
            "Median wall-clock seconds per engine benchmark (see "
            "check_engine_regression.py). Regenerate with: python "
            "benchmarks/check_engine_regression.py --update <pytest-benchmark json>"
        ),
        "medians": {k: round(v, 6) for k, v in sorted(medians.items())},
    }
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")


def compare(fresh: dict[str, float], baseline: dict[str, float],
            threshold: float, subset: bool = False) -> tuple[list[str], list[str]]:
    """Return (hard errors, soft warnings) for a fresh run vs the baseline."""
    errors = []
    warnings = []
    for name in sorted(fresh):
        if name not in baseline:
            errors.append(
                f"::error::engine benchmark '{name}' has no baseline entry — "
                f"run check_engine_regression.py --update to record it in "
                f"BENCH_engine.json"
            )
    for name, base in sorted(baseline.items()):
        if name not in fresh:
            if subset:
                continue
            errors.append(
                f"::error::engine benchmark '{name}' is in the baseline but "
                f"was not run (renamed or removed? update BENCH_engine.json, "
                f"or pass --subset for partial runs)"
            )
            continue
        now = fresh[name]
        if base > 0 and now > base * (1.0 + threshold):
            warnings.append(
                f"::warning::engine benchmark '{name}' median regressed "
                f"{(now / base - 1.0) * 100:.0f}% "
                f"({base * 1e3:.2f} ms -> {now * 1e3:.2f} ms, "
                f"threshold {threshold * 100:.0f}%)"
            )
    return errors, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmark_json", type=Path,
                        help="pytest-benchmark --benchmark-json output file")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional median slowdown (default 0.25)")
    parser.add_argument("--subset", action="store_true",
                        help="tolerate baseline benches that were not run "
                             "(for runs that skip the scale-gated benches)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline from this run")
    args = parser.parse_args(argv)

    fresh = load_medians(args.benchmark_json)
    if args.update:
        write_baseline(fresh)
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    errors, warnings = compare(fresh, load_baseline(), args.threshold,
                               subset=args.subset)
    for line in errors + warnings:
        print(line)
    print(f"engine benchmarks checked: {len(fresh)} run, "
          f"{len(errors)} error(s), {len(warnings)} warning(s), "
          f"threshold {args.threshold * 100:.0f}%")
    # Coverage drift blocks; wall-clock noise only annotates.
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
