"""Observability overhead benchmarks: traced vs. untraced engine runs.

Each pair runs a 64-rank Alltoall — once with no observability session
and once inside a ``record_links=True`` session — in the regime its
engine targets:

* **exact pair** — a 64 KiB-per-peer Alltoall with consistent payloads
  (``count = msg_bytes / 8``), the bandwidth-bound rendezvous regime
  where per-link contention analysis is actually used.  Recording costs
  one ~0.5 µs tuple append per port claim, amortized over the rendezvous
  handshake's event work.  (A latency-bound eager microbenchmark pays
  the same per-claim cost against far less baseline work per message —
  the regime the hybrid engine exists to collapse; see below and
  ``docs/observability.md``.)
* **hybrid pair** — the largest-eager Alltoall (4 KiB messages), the
  bulk-phase regime the flow engine accelerates.  Recording there is one
  vectorized aggregate pass per batch, not per message.

``check_obs_overhead.py`` compares the pair medians and warns when the
enabled-mode overhead exceeds its budget (10%), and diffs both against
the committed ``BENCH_obs.json`` baseline.

The session opens *inside* the timed job so every iteration pays the
full lifecycle (fresh ring, recording, teardown) — the honest cost a
``repro-mpi profile --links`` user sees.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.collectives import CollArgs, run_collective
from repro.sim.flow import FlowConfig
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform

_PLAT = Platform("t", nodes=16, cores_per_node=4)
#: Exact pair: rendezvous-size messages (64 KiB > eager threshold) with
#: payload rows sized to match the wire bytes.
_EXACT_ARGS = CollArgs(count=8192, msg_bytes=float(8 * 8192))
#: Hybrid pair: the largest eager message (the flow engine's linear
#: alltoall plan only covers the eager regime).
_HYBRID_ARGS = CollArgs(count=512, msg_bytes=float(8 * 512))
_HYBRID = FlowConfig(mode="hybrid", declared_spread=0.0, payloads=False)


def _alltoall_job(args, flow, linked: bool, max_links: int | None = None):
    """A 64-rank linear Alltoall (~4k messages exact; 1 batch hybrid)."""
    p = _PLAT.num_ranks
    data = np.zeros((p, args.count))

    def prog(ctx):
        yield from run_collective(ctx, "alltoall", "basic_linear", args, data)

    if not linked:
        def job():
            return run_processes(_PLAT, prog, flow=flow)
    else:
        def job():
            with obs.session(record_spans=False, record_links=True) as octx:
                result = run_processes(_PLAT, prog, flow=flow)
            assert len(octx.links) > 0
            if max_links is not None:
                # Guard: the run stayed on the flow write-back path
                # (per-batch aggregates), not a silent fallback to exact.
                assert len(octx.links) < max_links
            return result

    return job


def bench_obs_alltoall64_exact_untraced(benchmark):
    """Baseline: exact engine, no observability session."""
    result = benchmark(_alltoall_job(_EXACT_ARGS, None, linked=False))
    assert result.final_time > 0


def bench_obs_alltoall64_exact_linked(benchmark):
    """Exact engine inside a link-recording session — one record per
    port claim (~8k on this cell).  Must stay within 10% of untraced."""
    result = benchmark(_alltoall_job(_EXACT_ARGS, None, linked=True))
    assert result.final_time > 0


def bench_obs_alltoall64_hybrid_untraced(benchmark):
    """Baseline: hybrid flow engine, no observability session."""
    result = benchmark(_alltoall_job(_HYBRID_ARGS, _HYBRID, linked=False))
    assert result.final_time > 0


def bench_obs_alltoall64_hybrid_linked(benchmark):
    """Hybrid flow engine inside a link-recording session — one
    vectorized aggregate pass per batch, not per message."""
    result = benchmark(
        _alltoall_job(_HYBRID_ARGS, _HYBRID, linked=True, max_links=1000))
    assert result.final_time > 0
