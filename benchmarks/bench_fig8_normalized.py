"""Bench: regenerate Fig. 8 — normalized Alltoall runtimes incl. the FT-Scenario.

Shape claims: the per-row normalized grid is well-formed (row minima at
1.0); the robustness-average pick is a near-optimal choice under the traced
FT-Scenario on *every* machine (within 15 % of the scenario-best); and the
grid genuinely varies with the pattern (some algorithm swings by more than
50 % across rows), so No-delay tuning is not a safe proxy.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig8_normalized
from repro.experiments.fig8_normalized import FT_SCENARIO


def bench_fig8(bench_config, run_once):
    result = run_once(
        fig8_normalized.run, bench_config, ("hydra", "galileo100", "discoverer")
    )
    print(fig8_normalized.report(result))
    for machine, mres in result.machines.items():
        for row in mres.normalized.values():
            assert abs(min(row.values()) - 1.0) < 1e-9
        # The robust pick must be near-optimal under the real traced pattern.
        scenario_row = mres.sweep.row(FT_SCENARIO)
        robust_pick = mres.predicted_best()
        best = min(scenario_row.values())
        assert scenario_row[robust_pick] <= best * 1.15, (
            f"{machine}: robust pick {robust_pick} is "
            f"{scenario_row[robust_pick] / best:.2f}x off the scenario best"
        )
        # Patterns genuinely move algorithms around (the paper's premise).
        swings = []
        for algo in mres.sweep.algorithms:
            series = [mres.sweep.row(p)[algo] for p in mres.sweep.patterns]
            swings.append(max(series) / min(series))
        assert max(swings) > 1.5, f"{machine}: no pattern sensitivity visible"
