"""Bench: the all-families sensitivity extension.

Shape claim (paper Section III): rooted collectives are on average more
arrival-pattern sensitive than non-rooted ones, with Reduce the most
sensitive and Allreduce (fully synchronizing reduction) the most robust.
"""

from __future__ import annotations

from repro.experiments import ext_all_families
from repro.experiments.common import ExperimentConfig


def bench_ext_all_families(run_once):
    config = ExperimentConfig(machine="simcluster", nodes=8, cores_per_node=4)
    result = run_once(ext_all_families.run, config)
    print(ext_all_families.report(result))
    assert result.rooted_mean_flip_fraction() > result.nonrooted_mean_flip_fraction()
    assert result.families["allreduce"].flip_fraction == 0.0
    assert result.families["reduce"].flip_fraction == max(
        f.flip_fraction for f in result.families.values()
    )
