"""Ablation: rank-level vs node-correlated arrival patterns.

Related work (Parsons & Pai) distinguishes intra- vs inter-node imbalance.
With shared node NICs, a whole *node* arriving late behaves differently
from the same total skew scattered across ranks: the late node's NIC sits
idle and then becomes the single bottleneck.  This ablation quantifies the
difference for Alltoall.
"""

from __future__ import annotations

from repro.bench.micro import MicroBenchmark
from repro.patterns import generate_node_pattern, generate_pattern
from repro.sim.platform import get_machine


def bench_node_vs_rank_patterns(run_once):
    bench = MicroBenchmark.from_machine(
        get_machine("hydra"), nodes=8, cores_per_node=4, nrep=1
    )
    skew = 3e-4

    def compare():
        out = {}
        for algo in ("basic_linear", "pairwise"):
            rank_pat = generate_pattern("last_delayed", bench.num_ranks, skew)
            node_pat = generate_node_pattern("last_delayed", bench.platform, skew)
            out[algo] = (
                bench.run("alltoall", algo, 32768, pattern=rank_pat).last_delay,
                bench.run("alltoall", algo, 32768, pattern=node_pat).last_delay,
            )
        return out

    results = run_once(compare)
    print("algo -> (one late rank d^, one late node d^):", results)
    for algo, (rank_delay, node_delay) in results.items():
        assert rank_delay > 0 and node_delay > 0
        # A whole late node and a single late rank are genuinely different
        # regimes for at least one algorithm.
    spread = max(
        abs(node / rank - 1.0) for rank, node in results.values()
    )
    assert spread > 0.05, "node- vs rank-level imbalance should be distinguishable"
