"""Bench: regenerate Fig. 4c — simulated Alltoall under arrival patterns.

Shape claims: Bruck wins the No-delay case for small messages (its
latency-optimal log-round structure) but loses that advantage for larger
messages, where linear-style algorithms win on bandwidth.
"""

from __future__ import annotations

from repro.experiments import fig4_simulation
from repro.patterns.shapes import NO_DELAY


def bench_fig4_alltoall(full_sim_config, run_once):
    result = run_once(fig4_simulation.run, full_sim_config, "alltoall")
    print(fig4_simulation.report(result))
    small = min(result.msg_sizes)
    large = max(result.msg_sizes)
    assert result.sweeps[small].best_algorithm(NO_DELAY) == "bruck"
    assert result.sweeps[large].best_algorithm(NO_DELAY) != "bruck"
    # Bruck's advantage margin shrinks under skewed patterns at small sizes.
    sweep = result.sweeps[small]
    nd_row = sweep.row(NO_DELAY)
    margins_nd = nd_row["basic_linear"] / nd_row["bruck"]
    skewed = [
        sweep.row(shape)["basic_linear"] / sweep.row(shape)["bruck"]
        for shape in result.shapes
    ]
    assert min(skewed) < margins_nd * 1.001
