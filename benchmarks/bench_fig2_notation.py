"""Bench: regenerate Fig. 2 — arrival/exit notation example and the two metrics."""

from __future__ import annotations

from repro.experiments import fig2_notation


def bench_fig2(bench_config, run_once):
    result = run_once(fig2_notation.run, bench_config)
    print(fig2_notation.report(result))
    timing = result.timing
    # d* includes the externally imposed skew; d^ does not.
    assert timing.total_delay >= timing.last_delay
    assert timing.arrival_spread > 0
