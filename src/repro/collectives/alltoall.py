"""Alltoall algorithms (paper Table II IDs 1-4).

All algorithms take ``(ctx, args, data)`` where ``data`` has shape
``(p, count)`` — row ``j`` is the block this rank sends to rank ``j`` — and
return the received ``(p, count)`` matrix, row ``i`` being the block from
rank ``i``.  ``args.msg_bytes`` is the modeled wire size of **one block**
(the per-pair message size, as in the paper's Alltoall experiments).
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import (
    FlowPlan,
    as_matrix,
    ceil_log2,
    phase_descriptor,
    register,
)
from repro.sim.mpi import ProcContext


@register("alltoall", "basic_linear", ompi_id=1, aliases=("linear", "lin"),
          description="Post every receive and every send at once, then wait for all.")
def alltoall_basic_linear(ctx, args, data):
    p, me = ctx.size, ctx.rank
    send = as_matrix(data, p, args.count, "alltoall data")
    out = np.empty_like(send)
    out[me] = send[me]
    if p == 1:
        return out
    # Open MPI's basic linear: irecv from everyone, isend to everyone,
    # single waitall.  Sends fan out from (me+1) to balance port pressure.
    recv_reqs = {src: ctx.irecv(src, args.tag) for src in range(p) if src != me}
    send_reqs = [
        ctx.isend((me + off) % p, args.msg_bytes, args.tag, payload=send[(me + off) % p])
        for off in range(1, p)
    ]
    yield ctx.waitall(list(recv_reqs.values()) + send_reqs)
    for src, req in recv_reqs.items():
        out[src] = req.payload
    return out


@register("alltoall", "pairwise", ompi_id=2, aliases=("pair",),
          description="p-1 rounds of sendrecv with partners (rank+step, rank-step).")
def alltoall_pairwise(ctx, args, data):
    p, me = ctx.size, ctx.rank
    send = as_matrix(data, p, args.count, "alltoall data")
    out = np.empty_like(send)
    out[me] = send[me]
    for step in range(1, p):
        dst = (me + step) % p
        src = (me - step) % p
        sreq = ctx.isend(dst, args.msg_bytes, args.tag, payload=send[dst])
        rreq = ctx.irecv(src, args.tag)
        yield ctx.waitall(sreq, rreq)
        out[src] = rreq.payload
    return out


@register("alltoall", "bruck", ompi_id=3, aliases=("modified_bruck", "m_bruck"),
          description="ceil(log2 p) rounds shipping grouped blocks (latency-optimal for small messages).")
def alltoall_bruck(ctx, args, data):
    """Modified Bruck algorithm.

    Round ``k`` ships every staged block whose index has bit ``k`` set to
    rank ``me + 2^k``, receiving the symmetric set from ``me - 2^k``.  Blocks
    travel multiple hops, trading bandwidth (each block moves up to
    ``log2 p`` times) for latency (only ``ceil(log2 p)`` rounds).
    """
    p, me = ctx.size, ctx.rank
    send = as_matrix(data, p, args.count, "alltoall data")
    out = np.empty_like(send)
    out[me] = send[me]
    if p == 1:
        return out
    # Phase 1 — local rotation: staged[j] = block destined to rank (me + j) % p.
    staged = np.empty_like(send)
    for j in range(p):
        staged[j] = send[(me + j) % p]
    # Phase 2 — log rounds.  After all rounds, staged[j] holds the block
    # *from* rank (me - j) % p destined to me.
    for k in range(ceil_log2(p) + 1):
        pow2 = 1 << k
        if pow2 >= p:
            break
        idx = [j for j in range(p) if j & pow2]
        dst = (me + pow2) % p
        src = (me - pow2) % p
        payload = staged[idx].copy()
        sreq = ctx.isend(dst, args.msg_bytes * len(idx), args.tag, payload=payload)
        rreq = ctx.irecv(src, args.tag)
        yield ctx.waitall(sreq, rreq)
        staged[idx] = rreq.payload
    # Phase 3 — inverse rotation.
    for j in range(1, p):
        out[(me - j) % p] = staged[j]
    return out


@register("alltoall", "linear_sync", ompi_id=4, aliases=("linear_with_sync", "l_sync"),
          description="Linear exchange with synchronous sends, sliding window of outstanding pairs.")
def alltoall_linear_sync(ctx, args, data, window: int = 4):
    """Open MPI's ``linear_sync``: a *sliding* window of ``window``
    outstanding irecv/issend pairs, refilled via waitany as operations
    complete.  The synchronous sends mean no send completes before its
    receiver arrives, which is what makes this algorithm degrade when a
    late receiver pins window slots (e.g. the First-delayed pattern) while
    staying competitive otherwise.
    """
    p, me = ctx.size, ctx.rank
    send = as_matrix(data, p, args.count, "alltoall data")
    out = np.empty_like(send)
    out[me] = send[me]
    if p == 1:
        return out
    send_peers = [(me + off) % p for off in range(1, p)]
    recv_peers = [(me - off) % p for off in range(1, p)]
    recv_of: dict[int, object] = {}

    outstanding: list = []  # request objects, send and recv interleaved
    next_send = next_recv = 0

    def fill():
        nonlocal next_send, next_recv
        while next_recv < len(recv_peers) and _count_recv() < window:
            src = recv_peers[next_recv]
            rreq = ctx.irecv(src, args.tag)
            recv_of[src] = rreq
            outstanding.append(rreq)
            next_recv += 1
        while next_send < len(send_peers) and _count_send() < window:
            dst = send_peers[next_send]
            outstanding.append(
                ctx.isend(dst, args.msg_bytes, args.tag, payload=send[dst], sync=True)
            )
            next_send += 1

    def _count_recv():
        return sum(1 for r in outstanding if r.kind == 1)

    def _count_send():
        return sum(1 for r in outstanding if r.kind == 0)

    fill()
    while outstanding:
        index = yield ctx.waitany(outstanding)
        outstanding.pop(index)
        fill()
    for src, rreq in recv_of.items():
        out[src] = rreq.payload  # type: ignore[attr-defined]
    return out


# --------------------------------------------------------------------- #
# Flow-phase descriptors (repro.sim.flow)
# --------------------------------------------------------------------- #


@phase_descriptor("alltoall", "basic_linear")
def _basic_linear_flow(p, args, net):
    # The post-everything-then-wait shape is only phase-regular under the
    # eager protocol; rendezvous handshakes reorder against post order, so
    # large messages keep exact per-message simulation.
    if args.msg_bytes > net.eager_max:
        return None
    return FlowPlan(
        kind="linear",
        collective="alltoall",
        algorithm="basic_linear",
        hetero_ok=True,
        est_messages=p * (p - 1),
        msg_bytes=float(args.msg_bytes),
    )


@phase_descriptor("alltoall", "pairwise")
def _pairwise_flow(p, args, net):
    msg_bytes = float(args.msg_bytes)

    def steps():
        idx = np.arange(p, dtype=np.int64)
        sbytes = np.full(p, msg_bytes)
        for step in range(1, p):
            yield (idx + step) % p, (idx - step) % p, sbytes

    return FlowPlan(
        kind="stepped",
        collective="alltoall",
        algorithm="pairwise",
        hetero_ok=True,
        est_messages=p * (p - 1),
        num_steps=p - 1,
        steps=steps,
    )
