"""Barrier algorithms.

All algorithms take ``(ctx, args, data=None)`` and return ``None``.  Barrier
messages are modeled as single-byte control messages; ``args.count`` and
``args.msg_bytes`` are ignored.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import (
    FlowPlan,
    binomial_tree,
    ceil_log2,
    largest_power_of_two_leq,
    phase_descriptor,
    register,
)
from repro.sim.mpi import ProcContext

_B = 1  # modeled bytes of a barrier token


@register("barrier", "linear", ompi_id=1, aliases=("basic_linear",),
          description="Fan-in to rank 0, then fan-out release.")
def barrier_linear(ctx, args, data=None):
    p, me = ctx.size, ctx.rank
    if p == 1:
        return None
    if me == 0:
        reqs = [ctx.irecv(src, args.tag) for src in range(1, p)]
        yield ctx.waitall(reqs)
        rel = [ctx.isend(dst, _B, args.tag + 1) for dst in range(1, p)]
        yield ctx.waitall(rel)
    else:
        yield from ctx.send(0, _B, args.tag)
        yield from ctx.recv(0, args.tag + 1)
    return None


@register("barrier", "double_ring", ompi_id=2,
          description="A token circulates the ring twice.")
def barrier_double_ring(ctx, args, data=None):
    p, me = ctx.size, ctx.rank
    if p == 1:
        return None
    left = (me - 1) % p
    right = (me + 1) % p
    for _round in range(2):
        if me == 0:
            yield from ctx.send(right, _B, args.tag + _round)
            yield from ctx.recv(left, args.tag + _round)
        else:
            yield from ctx.recv(left, args.tag + _round)
            yield from ctx.send(right, _B, args.tag + _round)
    return None


@register("barrier", "recursive_doubling", ompi_id=3, aliases=("rdb",),
          description="log2(p) pairwise exchange rounds; extras fold in/out.")
def barrier_recursive_doubling(ctx, args, data=None):
    p, me = ctx.size, ctx.rank
    if p == 1:
        return None
    pof2 = largest_power_of_two_leq(p)
    rem = p - pof2
    if me < 2 * rem:
        if me % 2 == 0:
            yield from ctx.send(me + 1, _B, args.tag)
            newrank = -1
        else:
            yield from ctx.recv(me - 1, args.tag)
            newrank = me // 2
    else:
        newrank = me - rem
    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_nr = newrank ^ mask
            partner = partner_nr * 2 + 1 if partner_nr < rem else partner_nr + rem
            yield from ctx.sendrecv(partner, partner, _B, tag=args.tag + 1)
            mask <<= 1
    if me < 2 * rem:
        if me % 2 == 0:
            yield from ctx.recv(me + 1, args.tag + 2)
        else:
            yield from ctx.send(me - 1, _B, args.tag + 2)
    return None


@register("barrier", "bruck", ompi_id=4, aliases=("dissemination",),
          description="ceil(log2 p) dissemination rounds with ring-offset partners.")
def barrier_bruck(ctx, args, data=None):
    p, me = ctx.size, ctx.rank
    distance = 1
    round_no = 0
    while distance < p:
        dst = (me + distance) % p
        src = (me - distance) % p
        yield from ctx.sendrecv(dst, src, _B, tag=args.tag + round_no)
        distance <<= 1
        round_no += 1
    return None


@register("barrier", "tree", ompi_id=6, aliases=("bmtree",),
          description="Binomial fan-in, then binomial fan-out.")
def barrier_tree(ctx, args, data=None):
    p, me = ctx.size, ctx.rank
    if p == 1:
        return None
    parent, children = binomial_tree(me, p, 0)
    for child in children:
        yield from ctx.recv(child, args.tag)
    if parent is not None:
        yield from ctx.send(parent, _B, args.tag)
        yield from ctx.recv(parent, args.tag + 1)
    for child in children:
        yield from ctx.send(child, _B, args.tag + 1)
    return None


# --------------------------------------------------------------------- #
# Flow-phase descriptors (repro.sim.flow)
# --------------------------------------------------------------------- #


@phase_descriptor("barrier", "bruck")
def _bruck_flow(p, args, net):
    rounds = ceil_log2(p)

    def steps():
        idx = np.arange(p, dtype=np.int64)
        sbytes = np.full(p, float(_B))
        distance = 1
        while distance < p:
            yield (idx + distance) % p, (idx - distance) % p, sbytes
            distance <<= 1

    return FlowPlan(
        kind="stepped",
        collective="barrier",
        algorithm="bruck",
        hetero_ok=True,
        est_messages=p * rounds,
        num_steps=rounds,
        steps=steps,
    )
