"""Vector (irregular) collectives: Alltoallv, Allgatherv, Gatherv, Scatterv.

Irregular collectives carry a different item count per rank (or per rank
pair), which is how real applications with uneven domain decompositions
communicate.  Counts are described by a :class:`VectorArgs`:

* ``counts`` — for Allgatherv/Gatherv/Scatterv: one entry per rank; for
  Alltoallv: a ``(p, p)`` matrix, ``counts[i][j]`` items from rank *i* to
  rank *j* (every rank knows the full matrix, as in workloads where counts
  derive from a shared decomposition).
* ``item_bytes`` — modeled wire bytes per item.

Data conventions:

* Alltoallv: ``data`` is a list of ``p`` 1-D arrays (row ``j`` destined to
  rank ``j`` with ``counts[me][j]`` items); the result is a list of ``p``
  arrays (entry ``i`` from rank ``i``, ``counts[i][me]`` items).
* Allgatherv: ``data`` is this rank's ``counts[me]``-item array; the result
  is a list of ``p`` arrays.
* Gatherv: like Allgatherv but only the root returns the list.
* Scatterv: the root passes the list; every rank returns its own array.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.collectives.base import register
from repro.sim.mpi import TAG_COLLECTIVE, ProcContext


@dataclass(frozen=True)
class VectorArgs:
    """Invocation parameters for vector collectives."""

    counts: tuple = ()
    item_bytes: float = 8.0
    root: int = 0
    tag: int = TAG_COLLECTIVE + 500

    def __post_init__(self) -> None:
        if self.item_bytes < 0:
            raise ConfigurationError("item_bytes must be non-negative")

    def matrix(self, p: int) -> np.ndarray:
        """Validated (p, p) count matrix for Alltoallv."""
        arr = np.asarray(self.counts, dtype=int)
        if arr.shape != (p, p):
            raise ConfigurationError(
                f"alltoallv counts must be ({p}, {p}), got {arr.shape}"
            )
        if (arr < 0).any():
            raise ConfigurationError("counts must be non-negative")
        return arr

    def vector(self, p: int) -> np.ndarray:
        """Validated length-p count vector."""
        arr = np.asarray(self.counts, dtype=int)
        if arr.shape != (p,):
            raise ConfigurationError(f"counts must have length {p}, got {arr.shape}")
        if (arr < 0).any():
            raise ConfigurationError("counts must be non-negative")
        return arr

    def bytes_for(self, items: int) -> float:
        return float(items) * self.item_bytes

    @property
    def msg_bytes(self) -> float:
        """Mean modeled block size — the size coordinate for tuning rows.

        Vector collectives have no single message size; selection tables,
        cell specs, and trace spans index on the mean per-block wire bytes
        so skewed and uniform schedules with equal volume land on the same
        row.
        """
        arr = np.asarray(self.counts, dtype=float)
        if arr.size == 0:
            return 0.0
        return float(arr.mean()) * self.item_bytes

    @property
    def total_items(self) -> int:
        arr = np.asarray(self.counts, dtype=int)
        return int(arr.sum()) if arr.size else 0


def _check_blocks(data, counts_row, name: str) -> list[np.ndarray]:
    if len(data) != len(counts_row):
        raise ConfigurationError(f"{name}: expected {len(counts_row)} blocks")
    blocks = []
    for j, block in enumerate(data):
        arr = np.asarray(block)
        if arr.ndim != 1 or arr.shape[0] != counts_row[j]:
            raise ConfigurationError(
                f"{name}: block {j} must have {counts_row[j]} items, got {arr.shape}"
            )
        blocks.append(arr)
    return blocks


@register("alltoallv", "basic_linear", ompi_id=1, aliases=("linear",),
          description="Post every receive and send at once (skips zero-count pairs).")
def alltoallv_basic_linear(ctx, args: VectorArgs, data):
    p, me = ctx.size, ctx.rank
    counts = args.matrix(p)
    blocks = _check_blocks(data, counts[me], "alltoallv data")
    out: list[np.ndarray | None] = [None] * p
    out[me] = blocks[me].copy()
    recv_reqs = {
        src: ctx.irecv(src, args.tag)
        for src in range(p)
        if src != me and counts[src][me] > 0
    }
    send_reqs = [
        ctx.isend((me + off) % p, args.bytes_for(counts[me][(me + off) % p]),
                  args.tag, payload=blocks[(me + off) % p])
        for off in range(1, p)
        if counts[me][(me + off) % p] > 0
    ]
    pending = list(recv_reqs.values()) + send_reqs
    if pending:
        yield ctx.waitall(pending)
    for src, req in recv_reqs.items():
        out[src] = np.asarray(req.payload)
    for src in range(p):
        if out[src] is None:
            out[src] = np.empty(0, dtype=blocks[me].dtype)
    return out


@register("alltoallv", "pairwise", ompi_id=2,
          description="p-1 sendrecv rounds with ring-offset partners (skips empty exchanges).")
def alltoallv_pairwise(ctx, args: VectorArgs, data):
    p, me = ctx.size, ctx.rank
    counts = args.matrix(p)
    blocks = _check_blocks(data, counts[me], "alltoallv data")
    out: list[np.ndarray | None] = [None] * p
    out[me] = blocks[me].copy()
    for step in range(1, p):
        dst = (me + step) % p
        src = (me - step) % p
        reqs = []
        rreq = None
        if counts[me][dst] > 0:
            reqs.append(ctx.isend(dst, args.bytes_for(counts[me][dst]),
                                  args.tag, payload=blocks[dst]))
        if counts[src][me] > 0:
            rreq = ctx.irecv(src, args.tag)
            reqs.append(rreq)
        if reqs:
            yield ctx.waitall(reqs)
        out[src] = (
            np.asarray(rreq.payload) if rreq is not None
            else np.empty(0, dtype=blocks[me].dtype)
        )
    return out


@register("allgatherv", "linear", ompi_id=1,
          description="Everyone sends its block to everyone else (skips empty blocks).")
def allgatherv_linear(ctx, args: VectorArgs, data):
    p, me = ctx.size, ctx.rank
    counts = args.vector(p)
    own = np.asarray(data)
    if own.shape != (counts[me],):
        raise ConfigurationError(
            f"allgatherv data must have {counts[me]} items, got {own.shape}"
        )
    out: list[np.ndarray | None] = [None] * p
    out[me] = own.copy()
    recv_reqs = {
        src: ctx.irecv(src, args.tag)
        for src in range(p) if src != me and counts[src] > 0
    }
    send_reqs = [
        ctx.isend((me + off) % p, args.bytes_for(counts[me]), args.tag, payload=own)
        for off in range(1, p)
        if counts[me] > 0
    ]
    pending = list(recv_reqs.values()) + send_reqs
    if pending:
        yield ctx.waitall(pending)
    for src, req in recv_reqs.items():
        out[src] = np.asarray(req.payload)
    for src in range(p):
        if out[src] is None:
            out[src] = np.empty(0, dtype=own.dtype)
    return out


@register("allgatherv", "ring", ompi_id=2,
          description="p-1 ring steps forwarding variable-size blocks.")
def allgatherv_ring(ctx, args: VectorArgs, data):
    p, me = ctx.size, ctx.rank
    counts = args.vector(p)
    own = np.asarray(data)
    if own.shape != (counts[me],):
        raise ConfigurationError(
            f"allgatherv data must have {counts[me]} items, got {own.shape}"
        )
    out: list[np.ndarray] = [np.empty(0, dtype=own.dtype)] * p
    out[me] = own.copy()
    right = (me + 1) % p
    left = (me - 1) % p
    for step in range(p - 1):
        send_i = (me - step) % p
        recv_i = (me - step - 1) % p
        sreq = ctx.isend(right, args.bytes_for(counts[send_i]), args.tag,
                         payload=out[send_i])
        rreq = ctx.irecv(left, args.tag)
        yield ctx.waitall(sreq, rreq)
        out[recv_i] = (
            np.asarray(rreq.payload) if rreq.payload is not None
            else np.empty(0, dtype=own.dtype)
        )
    return out


@register("gatherv", "linear", ompi_id=1,
          description="Every rank sends its variable block to the root.")
def gatherv_linear(ctx, args: VectorArgs, data):
    p, me = ctx.size, ctx.rank
    counts = args.vector(p)
    own = np.asarray(data)
    if own.shape != (counts[me],):
        raise ConfigurationError(
            f"gatherv data must have {counts[me]} items, got {own.shape}"
        )
    if me != args.root:
        if counts[me] > 0:
            yield from ctx.send(args.root, args.bytes_for(counts[me]),
                                args.tag, payload=own)
        return None
    out: list[np.ndarray] = [np.empty(0, dtype=own.dtype)] * p
    out[me] = own.copy()
    reqs = {src: ctx.irecv(src, args.tag)
            for src in range(p) if src != me and counts[src] > 0}
    if reqs:
        yield ctx.waitall(list(reqs.values()))
    for src, req in reqs.items():
        out[src] = np.asarray(req.payload)
    return out


@register("scatterv", "linear", ompi_id=1,
          description="The root sends each rank its variable block.")
def scatterv_linear(ctx, args: VectorArgs, data):
    p, me = ctx.size, ctx.rank
    counts = args.vector(p)
    if me == args.root:
        blocks = _check_blocks(data, counts, "scatterv data")
        reqs = [
            ctx.isend(dst, args.bytes_for(counts[dst]), args.tag, payload=blocks[dst])
            for dst in range(p)
            if dst != me and counts[dst] > 0
        ]
        if reqs:
            yield ctx.waitall(reqs)
        return blocks[me].copy()
    if counts[me] == 0:
        return np.empty(0)
    req = yield from ctx.recv(args.root, args.tag)
    return np.asarray(req.payload)


__all__ = ["VectorArgs"]
