"""Allgather algorithms.

All algorithms take ``(ctx, args, data)`` where ``data`` is this rank's
contribution (1-D, ``args.count`` items) and return a ``(p, count)`` matrix,
row ``i`` holding rank ``i``'s contribution.  ``args.msg_bytes`` models one
contribution's wire size.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import (
    FlowPlan,
    as_array,
    ceil_log2,
    phase_descriptor,
    register,
)
from repro.sim.mpi import ProcContext


def _out(ctx: ProcContext, args, own: np.ndarray) -> np.ndarray:
    out = np.empty((ctx.size, args.count), dtype=own.dtype)
    out[ctx.rank] = own
    return out


@register("allgather", "linear", ompi_id=1, aliases=("basic_linear",),
          description="Everyone sends its block to everyone else directly.")
def allgather_linear(ctx, args, data):
    p, me = ctx.size, ctx.rank
    own = as_array(data, args.count, "allgather data")
    out = _out(ctx, args, own)
    if p == 1:
        return out
    recv_reqs = {src: ctx.irecv(src, args.tag) for src in range(p) if src != me}
    send_reqs = [
        ctx.isend((me + off) % p, args.msg_bytes, args.tag, payload=own)
        for off in range(1, p)
    ]
    yield ctx.waitall(list(recv_reqs.values()) + send_reqs)
    for src, req in recv_reqs.items():
        out[src] = req.payload
    return out


@register("allgather", "bruck", ompi_id=2,
          description="ceil(log2 p) rounds, doubling the shipped block set each round.")
def allgather_bruck(ctx, args, data):
    p, me = ctx.size, ctx.rank
    own = as_array(data, args.count, "allgather data")
    out = _out(ctx, args, own)
    if p == 1:
        return out
    # staged[j] = contribution of rank (me + j) % p; grows from 1 to p rows.
    staged = np.empty((p, args.count), dtype=own.dtype)
    staged[0] = own
    have = 1
    for k in range(ceil_log2(p) + 1):
        pow2 = 1 << k
        if have >= p:
            break
        dst = (me - pow2) % p
        src = (me + pow2) % p
        ship = min(have, p - have)
        sreq = ctx.isend(dst, args.msg_bytes * ship, args.tag, payload=staged[:ship].copy())
        rreq = ctx.irecv(src, args.tag)
        yield ctx.waitall(sreq, rreq)
        staged[have : have + ship] = rreq.payload
        have += ship
    for j in range(p):
        out[(me + j) % p] = staged[j]
    return out


@register("allgather", "recursive_doubling", ompi_id=3, aliases=("rdb",),
          description="log2(p) exchange rounds (power-of-two ranks; otherwise falls back to Bruck).")
def allgather_recursive_doubling(ctx, args, data):
    p, me = ctx.size, ctx.rank
    if p & (p - 1):
        return (yield from allgather_bruck(ctx, args, data))
    own = as_array(data, args.count, "allgather data")
    out = _out(ctx, args, own)
    mask = 1
    while mask < p:
        partner = me ^ mask
        block_lo = (me // mask) * mask
        rows = out[block_lo : block_lo + mask].copy()
        sreq = ctx.isend(partner, args.msg_bytes * mask, args.tag, payload=rows)
        rreq = ctx.irecv(partner, args.tag)
        yield ctx.waitall(sreq, rreq)
        other_lo = (partner // mask) * mask
        out[other_lo : other_lo + mask] = rreq.payload
        mask <<= 1
    return out


@register("allgather", "ring", ompi_id=4,
          description="p-1 steps passing blocks around the ring.")
def allgather_ring(ctx, args, data):
    p, me = ctx.size, ctx.rank
    own = as_array(data, args.count, "allgather data")
    out = _out(ctx, args, own)
    right = (me + 1) % p
    left = (me - 1) % p
    for step in range(p - 1):
        send_i = (me - step) % p
        recv_i = (me - step - 1) % p
        sreq = ctx.isend(right, args.msg_bytes, args.tag, payload=out[send_i])
        rreq = ctx.irecv(left, args.tag)
        yield ctx.waitall(sreq, rreq)
        out[recv_i] = rreq.payload
    return out


@register("allgather", "neighbor_exchange", ompi_id=5, aliases=("neighbor",),
          description="p/2 rounds exchanging growing pairs with alternating neighbours (even p).")
def allgather_neighbor_exchange(ctx, args, data):
    """Neighbor-exchange allgather (Chen et al.); requires even p, else ring.

    Round 0 exchanges single blocks with one neighbour; subsequent rounds
    exchange the two most recently acquired blocks with alternating left and
    right neighbours.
    """
    p, me = ctx.size, ctx.rank
    if p % 2:
        return (yield from allgather_ring(ctx, args, data))
    own = as_array(data, args.count, "allgather data")
    out = _out(ctx, args, own)
    if p == 1:
        return out
    even = me % 2 == 0
    # Open MPI's bookkeeping: two alternating neighbours and, per parity, a
    # sliding even-aligned pair index the next receive lands at.
    if even:
        neighbor = [(me + 1) % p, (me - 1) % p]
        recv_from = [me, me]
        offset_at = [+2, -2]
    else:
        neighbor = [(me - 1) % p, (me + 1) % p]
        recv_from = [(me - 1) % p, (me - 1) % p]
        offset_at = [-2, +2]
    # Step 0: exchange own blocks with neighbor[0].
    rreq = yield from ctx.sendrecv(neighbor[0], neighbor[0], args.msg_bytes, payload=out[me])
    out[neighbor[0]] = rreq.payload
    send_from = me if even else recv_from[0]
    for i in range(1, p // 2):
        parity = i % 2
        recv_from[parity] = (recv_from[parity] + offset_at[parity]) % p
        lo = recv_from[parity]
        payload = out[send_from : send_from + 2].copy()
        rreq = yield from ctx.sendrecv(
            neighbor[parity], neighbor[parity], 2 * args.msg_bytes, payload=payload
        )
        arrived = np.asarray(rreq.payload)
        out[lo] = arrived[0]
        out[lo + 1] = arrived[1]
        send_from = lo
    return out


# --------------------------------------------------------------------- #
# Flow-phase descriptors (repro.sim.flow)
# --------------------------------------------------------------------- #


@phase_descriptor("allgather", "ring")
def _ring_flow(p, args, net):
    msg_bytes = float(args.msg_bytes)

    def steps():
        idx = np.arange(p, dtype=np.int64)
        right = (idx + 1) % p
        left = (idx - 1) % p
        sbytes = np.full(p, msg_bytes)
        for step in range(p - 1):
            yield right, left, sbytes

    return FlowPlan(
        kind="stepped",
        collective="allgather",
        algorithm="ring",
        hetero_ok=True,
        est_messages=p * (p - 1),
        num_steps=p - 1,
        steps=steps,
    )
