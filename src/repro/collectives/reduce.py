"""Reduce algorithms (paper Table II: IDs 1-7).

All algorithms take ``(ctx, args, data)`` where ``data`` is this rank's
contribution (1-D, ``args.count`` items) and return the reduced buffer on
``args.root`` (``None`` elsewhere).

Combine-order discipline: tree algorithms that mix subtree contributions in
rank-arbitrary order require a commutative operator and raise otherwise;
``linear`` and ``in_order_binary`` combine strictly in ascending rank order
and therefore accept non-commutative operators, mirroring MPI's rules.
"""

from __future__ import annotations

from typing import Callable, Generator

import numpy as np

from repro.errors import ConfigurationError
from repro.collectives.base import (
    CollArgs,
    as_array,
    binary_tree,
    binomial_tree,
    chain_tree,
    in_order_binary_tree,
    in_order_tree_root,
    knomial_tree,
    largest_power_of_two_leq,
    register,
)
from repro.sim.mpi import ProcContext


def _require_commutative(args: CollArgs, algo: str) -> None:
    if not args.op.commutative:
        raise ConfigurationError(
            f"reduce/{algo} combines in tree order and needs a commutative op; "
            f"use 'linear' or 'in_order_binary' for {args.op.name!r}"
        )


def _tree_reduce(
    ctx: ProcContext,
    args: CollArgs,
    data: np.ndarray,
    tree: Callable[[int, int, int], tuple[int | None, list[int]]],
    ordered: bool = False,
) -> Generator[tuple, None, np.ndarray | None]:
    """Segmented reduction up an arbitrary tree.

    For every segment each rank receives its children's partial results,
    combines them with its own contribution, and forwards the partial up the
    tree; segments pipeline through the tree.  With ``ordered=True`` the
    children tuple is interpreted as ``(left, right)`` of an in-order binary
    tree and contributions combine as ``left op (own op right)``, which keeps
    ascending rank order for non-commutative operators.
    """
    parent, children = tree(ctx.rank, ctx.size, args.root)
    own = as_array(data, args.count, "reduce data")
    segs = args.segments()
    # Pre-post all child receives (children send segments in order; FIFO
    # matching per (src, tag) keeps them straight).
    child_reqs = {child: [ctx.irecv(child, args.tag) for _ in segs] for child in children}
    send_reqs = []
    out = np.empty_like(own) if parent is None else None
    for si, (off, n) in enumerate(segs):
        acc = own[off : off + n]
        if ordered and len(children) == 2:
            left, right = children
            lreq, rreq = child_reqs[left][si], child_reqs[right][si]
            yield ctx.waitall(lreq, rreq)
            acc = args.op(np.asarray(lreq.payload), args.op(acc, np.asarray(rreq.payload)))
        elif ordered and len(children) == 1:
            (child,) = children
            creq = child_reqs[child][si]
            yield ctx.waitall(creq)
            contrib = np.asarray(creq.payload)
            acc = args.op(contrib, acc) if child < ctx.rank else args.op(acc, contrib)
        else:
            for child in children:
                creq = child_reqs[child][si]
                yield ctx.waitall(creq)
                acc = args.op(acc, np.asarray(creq.payload))
        if parent is not None:
            send_reqs.append(ctx.isend(parent, args.bytes_for(n), args.tag, payload=acc))
        else:
            out[off : off + n] = acc
    if send_reqs:
        yield ctx.waitall(send_reqs)
    return out


@register("reduce", "linear", ompi_id=1, aliases=("basic_linear",),
          description="Every rank sends to the root; the root combines in rank order.")
def reduce_linear(ctx, args, data):
    own = as_array(data, args.count, "reduce data")
    if ctx.rank != args.root:
        yield from ctx.send(args.root, args.msg_bytes, args.tag, payload=own)
        return None
    reqs = {src: ctx.irecv(src, args.tag) for src in range(ctx.size) if src != args.root}
    if reqs:
        yield ctx.waitall(list(reqs.values()))
    acc: np.ndarray | None = None
    for src in range(ctx.size):
        contrib = own if src == args.root else np.asarray(reqs[src].payload)
        acc = contrib.copy() if acc is None else args.op(acc, contrib)
    return acc


@register("reduce", "chain", ompi_id=2,
          description="Segmented reduction up parallel chains (fanout 4).")
def reduce_chain(ctx, args, data):
    _require_commutative(args, "chain")
    tree = lambda r, s, root: chain_tree(r, s, root, fanout=4)  # noqa: E731
    return (yield from _tree_reduce(ctx, args, data, tree))


@register("reduce", "pipeline", ompi_id=3,
          description="Segmented reduction up a single chain.")
def reduce_pipeline(ctx, args, data):
    _require_commutative(args, "pipeline")
    tree = lambda r, s, root: chain_tree(r, s, root, fanout=1)  # noqa: E731
    return (yield from _tree_reduce(ctx, args, data, tree))


@register("reduce", "binary", ompi_id=4, aliases=("bintree",),
          description="Segmented reduction up a complete binary tree.")
def reduce_binary(ctx, args, data):
    _require_commutative(args, "binary")
    return (yield from _tree_reduce(ctx, args, data, binary_tree))


@register("reduce", "binomial", ompi_id=5, aliases=("ompi_binomial",),
          description="Segmented reduction up a binomial tree.")
def reduce_binomial(ctx, args, data):
    _require_commutative(args, "binomial")
    return (yield from _tree_reduce(ctx, args, data, binomial_tree))


@register("reduce", "knomial", aliases=("k_nomial",),
          description="Segmented reduction up a radix-4 k-nomial tree (shallower than binomial).")
def reduce_knomial(ctx, args, data):
    _require_commutative(args, "knomial")
    tree = lambda r, s, root: knomial_tree(r, s, root, radix=4)  # noqa: E731
    return (yield from _tree_reduce(ctx, args, data, tree))


@register("reduce", "in_order_binary", ompi_id=6, aliases=("ompi_in_order_binary",),
          description="Reduction up an in-order binary tree (valid for non-commutative ops).")
def reduce_in_order_binary(ctx, args, data):
    head = in_order_tree_root(ctx.size)
    result = yield from _tree_reduce(ctx, args, data, in_order_binary_tree, ordered=True)
    if head == args.root:
        return result
    # The tree head is fixed by the topology; ship the result to the root.
    if ctx.rank == head:
        yield from ctx.send(args.root, args.msg_bytes, args.tag + 1, payload=result)
        return None
    if ctx.rank == args.root:
        req = yield from ctx.recv(head, args.tag + 1)
        return np.asarray(req.payload)
    return None


@register("reduce", "rabenseifner", ompi_id=7, aliases=("raben", "scatter_gather"),
          description="Recursive-halving reduce-scatter, then binomial gather to the root.")
def reduce_rabenseifner(ctx, args, data):
    """Rabenseifner's algorithm; bandwidth-optimal for large messages.

    Non-power-of-two rank counts fold the first ``2*(p - pof2)`` ranks into
    half as many survivors before the recursive halving, the standard MPICH
    construction.  Falls back to binomial for tiny item counts where the
    scatter cannot split.
    """
    _require_commutative(args, "rabenseifner")
    p, me = ctx.size, ctx.rank
    pof2 = largest_power_of_two_leq(p)
    if args.count < pof2 or p == 1 or pof2 == 1:
        return (yield from _tree_reduce(ctx, args, data, binomial_tree))
    own = as_array(data, args.count, "reduce data").copy()
    rem = p - pof2

    # --- fold phase: 2*rem front ranks collapse into rem survivors. ---
    if me < 2 * rem:
        if me % 2 != 0:  # odd: hand everything to the left neighbour, retire
            yield from ctx.send(me - 1, args.msg_bytes, args.tag, payload=own)
            newrank = -1
        else:
            req = yield from ctx.recv(me + 1, args.tag)
            own = args.op(own, np.asarray(req.payload))
            newrank = me // 2
    else:
        newrank = me - rem

    bounds = np.linspace(0, args.count, pof2 + 1).astype(int)

    def real(nr: int) -> int:
        """Survivor's real rank from its compacted rank."""
        return nr * 2 if nr < rem else nr + rem

    def compacted(rank: int) -> int:
        """Compacted rank of the survivor acting for ``rank``."""
        if rank < 2 * rem:
            return rank // 2  # odd front ranks are represented by their even partner
        return rank - rem

    acting_nr = compacted(args.root)
    acting_real = real(acting_nr)

    if newrank != -1:
        # --- recursive halving reduce-scatter over pof2 survivors. ---
        lo, hi = 0, pof2
        while hi - lo > 1:
            mid = lo + (hi - lo) // 2
            in_low = newrank < mid
            partner = newrank + (hi - lo) // 2 if in_low else newrank - (hi - lo) // 2
            keep_lo, keep_hi = (lo, mid) if in_low else (mid, hi)
            send_lo, send_hi = (mid, hi) if in_low else (lo, mid)
            s0, s1 = int(bounds[send_lo]), int(bounds[send_hi])
            k0, k1 = int(bounds[keep_lo]), int(bounds[keep_hi])
            sreq = ctx.isend(real(partner), args.bytes_for(s1 - s0), args.tag, payload=own[s0:s1])
            rreq = ctx.irecv(real(partner), args.tag)
            yield ctx.waitall(sreq, rreq)
            own[k0:k1] = args.op(own[k0:k1], np.asarray(rreq.payload))
            lo, hi = keep_lo, keep_hi
        # Survivor ``newrank`` now owns the reduced block ``newrank``.
        assert lo == newrank

        # --- binomial gather of virtual blocks to the acting root. ---
        # Virtual block index of real block b is (b - acting_nr) % pof2; the
        # blocks a rank accumulates are contiguous in virtual space, so no
        # per-block metadata is needed on the wire.
        vr = (newrank - acting_nr) % pof2

        def vblock_len(vb: int) -> int:
            b = (vb + acting_nr) % pof2
            return int(bounds[b + 1] - bounds[b])

        vbuf: dict[int, np.ndarray] = {vr: own[int(bounds[lo]) : int(bounds[lo + 1])]}
        mask = 1
        while mask < pof2:
            if vr & mask:
                dst = (vr - mask + acting_nr) % pof2
                payload = np.concatenate([vbuf[vb] for vb in range(vr, vr + mask)])
                yield from ctx.send(
                    real(dst), args.bytes_for(payload.shape[0]), args.tag, payload=payload
                )
                break
            src_vr = vr + mask
            if src_vr < pof2:
                req = yield from ctx.recv(real((src_vr + acting_nr) % pof2), args.tag)
                payload = np.asarray(req.payload)
                offset = 0
                for vb in range(src_vr, src_vr + mask):
                    n = vblock_len(vb)
                    vbuf[vb] = payload[offset : offset + n]
                    offset += n
            mask <<= 1
        if newrank == acting_nr:
            out = np.empty_like(own)
            for vb, seg in vbuf.items():
                b = (vb + acting_nr) % pof2
                out[int(bounds[b]) : int(bounds[b + 1])] = seg
            if acting_real == args.root:
                return out
            yield from ctx.send(args.root, args.msg_bytes, args.tag + 1, payload=out)
            return None
    # A retired odd front rank can still be the root: its acting survivor
    # ships it the final result.
    if me == args.root and acting_real != args.root:
        req = yield from ctx.recv(acting_real, args.tag + 1)
        return np.asarray(req.payload)
    return None
