"""Allreduce algorithms (paper Table II IDs 1-6 plus the SimGrid names of Fig. 4b).

All algorithms take ``(ctx, args, data)`` where ``data`` is this rank's
contribution (1-D, ``args.count`` items) and return the fully reduced buffer
on every rank.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.collectives import bcast as _bcast
from repro.collectives import reduce as _reduce
from repro.collectives.base import (
    CollArgs,
    FlowPlan,
    as_array,
    largest_power_of_two_leq,
    phase_descriptor,
    register,
)
from repro.sim.mpi import ProcContext


def _require_commutative(args: CollArgs, algo: str) -> None:
    if not args.op.commutative:
        raise ConfigurationError(
            f"allreduce/{algo} needs a commutative op; got {args.op.name!r}"
        )


@register("allreduce", "basic_linear", ompi_id=1, aliases=("linear",),
          description="Linear reduce to rank 0, then linear broadcast.")
def allreduce_basic_linear(ctx, args, data):
    root_args = args.with_root(0)
    reduced = yield from _reduce.reduce_linear(ctx, root_args, data)
    return (yield from _bcast.bcast_linear(ctx, root_args, reduced))


@register("allreduce", "nonoverlapping", ompi_id=2,
          aliases=("non_overlapping", "redbcast"),
          description="Tuned reduce (binomial) to rank 0 followed by tuned broadcast.")
def allreduce_nonoverlapping(ctx, args, data):
    _require_commutative(args, "nonoverlapping")
    root_args = args.with_root(0)
    reduced = yield from _reduce.reduce_binomial(ctx, root_args, data)
    return (yield from _bcast.bcast_binomial(ctx, root_args, reduced))


@register("allreduce", "recursive_doubling", ompi_id=3, aliases=("rdb",),
          description="log2(p) full-buffer exchange rounds; extras fold in/out for non-power-of-two.")
def allreduce_recursive_doubling(ctx, args, data):
    _require_commutative(args, "recursive_doubling")
    p, me = ctx.size, ctx.rank
    own = as_array(data, args.count, "allreduce data").copy()
    pof2 = largest_power_of_two_leq(p)
    rem = p - pof2
    # Fold: the first 2*rem ranks collapse, odd ones retire for the core phase.
    if me < 2 * rem:
        if me % 2 == 0:
            yield from ctx.send(me + 1, args.msg_bytes, args.tag, payload=own)
            newrank = -1
        else:
            req = yield from ctx.recv(me - 1, args.tag)
            own = args.op(np.asarray(req.payload), own)
            newrank = me // 2
    else:
        newrank = me - rem

    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_nr = newrank ^ mask
            partner = partner_nr * 2 + 1 if partner_nr < rem else partner_nr + rem
            sreq = ctx.isend(partner, args.msg_bytes, args.tag, payload=own)
            rreq = ctx.irecv(partner, args.tag)
            yield ctx.waitall(sreq, rreq)
            own = args.op(own, np.asarray(rreq.payload))
            mask <<= 1

    # Unfold: survivors ship the result back to the retired even ranks.
    if me < 2 * rem:
        if me % 2 == 0:
            req = yield from ctx.recv(me + 1, args.tag)
            own = np.asarray(req.payload)
        else:
            yield from ctx.send(me - 1, args.msg_bytes, args.tag, payload=own)
    return own


def _ring_exchange(ctx, args, own, bounds, tag):
    """Ring reduce-scatter followed by ring allgather over ``p`` blocks.

    ``own`` is modified in place and returned fully reduced.
    """
    p, me = ctx.size, ctx.rank
    right = (me + 1) % p
    left = (me - 1) % p

    def blk(i: int) -> slice:
        i %= p
        return slice(int(bounds[i]), int(bounds[i + 1]))

    def blen(i: int) -> int:
        i %= p
        return int(bounds[i + 1] - bounds[i])

    # Reduce-scatter: after p-1 steps rank me owns reduced block (me+1) % p.
    for step in range(p - 1):
        send_i = (me - step) % p
        recv_i = (me - step - 1) % p
        sreq = ctx.isend(right, args.bytes_for(blen(send_i)), tag, payload=own[blk(send_i)])
        rreq = ctx.irecv(left, tag)
        yield ctx.waitall(sreq, rreq)
        own[blk(recv_i)] = args.op(own[blk(recv_i)], np.asarray(rreq.payload))
    # Allgather: circulate the reduced blocks.
    for step in range(p - 1):
        send_i = (me + 1 - step) % p
        recv_i = (me - step) % p
        sreq = ctx.isend(right, args.bytes_for(blen(send_i)), tag, payload=own[blk(send_i)])
        rreq = ctx.irecv(left, tag)
        yield ctx.waitall(sreq, rreq)
        own[blk(recv_i)] = np.asarray(rreq.payload)
    return own


@register("allreduce", "ring", ompi_id=4, aliases=("lr",),
          description="Ring reduce-scatter then ring allgather (the 'lr' algorithm).")
def allreduce_ring(ctx, args, data):
    _require_commutative(args, "ring")
    p = ctx.size
    own = as_array(data, args.count, "allreduce data").copy()
    if p == 1:
        return own
    if args.count < p:
        return (yield from allreduce_recursive_doubling(ctx, args, data))
    bounds = np.linspace(0, args.count, p + 1).astype(int)
    return (yield from _ring_exchange(ctx, args, own, bounds, args.tag))


@register("allreduce", "segmented_ring", ompi_id=5,
          aliases=("ring_segmented", "ompi_ring_segmented"),
          description="Ring allreduce applied per segment (pipelines very large messages).")
def allreduce_segmented_ring(ctx, args, data):
    _require_commutative(args, "segmented_ring")
    p = ctx.size
    own = as_array(data, args.count, "allreduce data").copy()
    if p == 1:
        return own
    segs = args.segments()
    if args.count < p or len(segs) == 1:
        return (yield from allreduce_ring(ctx, args, data))
    for off, n in segs:
        if n < p:
            # Tiny trailing segment: fold it with recursive doubling.
            seg_args = CollArgs(
                count=n, msg_bytes=args.bytes_for(n), op=args.op, tag=args.tag + 1
            )
            own[off : off + n] = yield from allreduce_recursive_doubling(
                ctx, seg_args, own[off : off + n]
            )
            continue
        bounds = off + np.linspace(0, n, p + 1).astype(int)
        # _ring_exchange slices ``own`` with these absolute bounds.
        yield from _ring_exchange(ctx, args, own, bounds, args.tag)
    return own


@register("allreduce", "allgather_reduce", aliases=("smp_rsag_lr",),
          description="Allgather all contributions, reduce locally (latency-optimal for tiny p).")
def allreduce_allgather_reduce(ctx, args, data):
    """Gather every contribution to every rank, then reduce locally.

    Used by several libraries for tiny communicators/messages: one
    communication phase, no reduction on the critical path.  The local
    fold runs in ascending rank order, so non-commutative (associative)
    operators are safe.
    """
    from repro.collectives import allgather as _allgather

    own = as_array(data, args.count, "allreduce data")
    gathered = yield from _allgather.allgather_bruck(ctx, args, own)
    acc = np.asarray(gathered[0]).copy()
    for src in range(1, ctx.size):
        acc = args.op(acc, np.asarray(gathered[src]))
    return acc


@register("allreduce", "rabenseifner", ompi_id=6, aliases=("raben", "rab_rdb"),
          description="Recursive-halving reduce-scatter, then recursive-doubling allgather.")
def allreduce_rabenseifner(ctx, args, data):
    _require_commutative(args, "rabenseifner")
    p, me = ctx.size, ctx.rank
    own = as_array(data, args.count, "allreduce data").copy()
    pof2 = largest_power_of_two_leq(p)
    if p == 1:
        return own
    if args.count < pof2 or pof2 == 1:
        return (yield from allreduce_recursive_doubling(ctx, args, data))
    rem = p - pof2

    if me < 2 * rem:
        if me % 2 == 0:
            yield from ctx.send(me + 1, args.msg_bytes, args.tag, payload=own)
            newrank = -1
        else:
            req = yield from ctx.recv(me - 1, args.tag)
            own = args.op(np.asarray(req.payload), own)
            newrank = me // 2
    else:
        newrank = me - rem

    def real(nr: int) -> int:
        return nr * 2 + 1 if nr < rem else nr + rem

    bounds = np.linspace(0, args.count, pof2 + 1).astype(int)
    if newrank != -1:
        # Recursive-halving reduce-scatter.
        lo, hi = 0, pof2
        while hi - lo > 1:
            mid = lo + (hi - lo) // 2
            in_low = newrank < mid
            partner = newrank + (hi - lo) // 2 if in_low else newrank - (hi - lo) // 2
            keep_lo, keep_hi = (lo, mid) if in_low else (mid, hi)
            send_lo, send_hi = (mid, hi) if in_low else (lo, mid)
            s0, s1 = int(bounds[send_lo]), int(bounds[send_hi])
            k0, k1 = int(bounds[keep_lo]), int(bounds[keep_hi])
            sreq = ctx.isend(real(partner), args.bytes_for(s1 - s0), args.tag, payload=own[s0:s1])
            rreq = ctx.irecv(real(partner), args.tag)
            yield ctx.waitall(sreq, rreq)
            own[k0:k1] = args.op(own[k0:k1], np.asarray(rreq.payload))
            lo, hi = keep_lo, keep_hi
        # Recursive-doubling allgather, mirroring the halving in reverse.
        span = 1
        while span < pof2:
            block_lo = (newrank // span) * span
            if (newrank // span) % 2 == 0:
                partner = newrank + span
                other_lo = block_lo + span
            else:
                partner = newrank - span
                other_lo = block_lo - span
            s0, s1 = int(bounds[block_lo]), int(bounds[block_lo + span])
            o0, o1 = int(bounds[other_lo]), int(bounds[other_lo + span])
            sreq = ctx.isend(real(partner), args.bytes_for(s1 - s0), args.tag, payload=own[s0:s1])
            rreq = ctx.irecv(real(partner), args.tag)
            yield ctx.waitall(sreq, rreq)
            own[o0:o1] = np.asarray(rreq.payload)
            span *= 2

    # Unfold to the retired even front ranks.
    if me < 2 * rem:
        if me % 2 == 0:
            req = yield from ctx.recv(me + 1, args.tag)
            own = np.asarray(req.payload)
        else:
            yield from ctx.send(me - 1, args.msg_bytes, args.tag, payload=own)
    return own


# --------------------------------------------------------------------- #
# Flow-phase descriptors (repro.sim.flow)
# --------------------------------------------------------------------- #


@phase_descriptor("allreduce", "recursive_doubling")
def _recursive_doubling_flow(p, args, net):
    # Regular only at powers of two: the fold/unfold rounds for leftover
    # ranks break the lockstep-exchange shape.
    if p & (p - 1):
        return None
    rounds = p.bit_length() - 1
    msg_bytes = float(args.msg_bytes)

    def steps():
        idx = np.arange(p, dtype=np.int64)
        sbytes = np.full(p, msg_bytes)
        mask = 1
        while mask < p:
            partner = idx ^ mask
            yield partner, partner, sbytes
            mask <<= 1

    return FlowPlan(
        kind="stepped",
        collective="allreduce",
        algorithm="recursive_doubling",
        hetero_ok=True,
        est_messages=p * rounds,
        num_steps=rounds,
        steps=steps,
    )


@phase_descriptor("allreduce", "ring")
def _ring_flow(p, args, net):
    # count < p delegates to recursive doubling inside the algorithm — a
    # different schedule; let the exact path (or its own descriptor via a
    # direct call) handle it.
    if args.count < p:
        return None
    bounds = np.linspace(0, args.count, p + 1).astype(int)
    blen = np.diff(bounds)

    def steps():
        idx = np.arange(p, dtype=np.int64)
        right = (idx + 1) % p
        left = (idx - 1) % p
        # Reduce-scatter rounds, then allgather rounds, exactly as
        # _ring_exchange schedules them; per-rank wire bytes replicate
        # args.bytes_for(blen(send_i)) operation-for-operation.
        for step in range(p - 1):
            send_i = (idx - step) % p
            yield right, left, args.msg_bytes * (blen[send_i] / args.count)
        for step in range(p - 1):
            send_i = (idx + 1 - step) % p
            yield right, left, args.msg_bytes * (blen[send_i] / args.count)

    return FlowPlan(
        kind="stepped",
        collective="allreduce",
        algorithm="ring",
        hetero_ok=True,
        est_messages=2 * p * (p - 1),
        num_steps=2 * (p - 1),
        steps=steps,
    )
