"""Convenience layer: build inputs, run algorithms, compute reference results.

These helpers give the benchmark harness, the applications, and the test
suite one uniform way to drive any registered collective:

* :func:`make_input` — deterministic per-rank input of the right shape,
* :func:`run_collective` — dispatch by (family, algorithm-name),
* :func:`reference_result` — the semantically defined result, computed
  directly from all inputs (what MPI guarantees, independent of algorithm).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.collectives.base import CollArgs, get_algorithm
from repro.collectives.vector import VectorArgs
from repro.obs.context import current as _obs_current
from repro.sim.mpi import ProcContext

#: Families taking :class:`VectorArgs` (irregular counts) instead of CollArgs.
VECTOR_FAMILIES = ("alltoallv", "allgatherv", "gatherv", "scatterv")


def make_input(
    collective: str, rank: int, size: int, count: int, dtype=np.int64
) -> np.ndarray:
    """Deterministic input for ``rank`` with the family's expected shape.

    Values are small distinct integers so reductions are exact and block
    provenance is recognizable in failures (value encodes rank and index).
    """
    if collective in ("reduce", "allreduce", "allgather", "gather", "scan", "exscan"):
        return (np.arange(count) + 1000 * rank + 1).astype(dtype)
    if collective in ("alltoall", "scatter"):
        base = np.arange(size * count).reshape(size, count)
        return (base + 100_000 * rank + 1).astype(dtype)
    if collective == "reduce_scatter":
        return (np.arange(size * count) + 1000 * rank + 1).astype(dtype)
    if collective == "bcast":
        return (np.arange(count) + 7).astype(dtype)
    if collective == "barrier":
        return np.zeros(0, dtype=dtype)
    raise ConfigurationError(f"unknown collective family {collective!r}")


def make_vector_input(
    collective: str, rank: int, size: int, args: VectorArgs, dtype=np.int64
):
    """Deterministic input for a vector collective following its data convention.

    Values encode ``(source rank, destination block, index)`` so misplaced
    blocks are recognizable in failures, mirroring :func:`make_input`.
    """
    if collective == "alltoallv":
        counts = args.matrix(size)
        return [
            (np.arange(counts[rank][dst]) + 100_000 * rank + 1000 * dst + 1)
            .astype(dtype)
            for dst in range(size)
        ]
    if collective in ("allgatherv", "gatherv"):
        counts = args.vector(size)
        return (np.arange(counts[rank]) + 1000 * rank + 1).astype(dtype)
    if collective == "scatterv":
        counts = args.vector(size)
        if rank != args.root:
            return None
        return [
            (np.arange(counts[dst]) + 1000 * dst + 1).astype(dtype)
            for dst in range(size)
        ]
    raise ConfigurationError(f"unknown vector collective family {collective!r}")


def run_collective(ctx: ProcContext, collective: str, algorithm: str, args: CollArgs,
                   data, label: str | None = None):
    """Generator: run one collective algorithm on this rank; returns its result.

    When an observability session is open this is the canonical
    instrumentation point: it counts the call and records one
    arrival-to-exit span on the rank's virtual-time track — which is what
    makes process arrival patterns readable straight off the trace.

    When the engine carries a flow runtime (``--engine-mode hybrid|flow``,
    see :mod:`repro.sim.flow`) and the schedule declares a phase plan
    eligible under the dispatch rules, the call is collapsed into one flow
    batch instead of per-message simulation; the span/counter semantics are
    identical either way.

    ``label`` overrides the activity string attached to fabric link records
    (default ``"{collective}/{algorithm}"``); multi-job runs use it to keep
    per-job traffic apart in link attribution.  The span name is always the
    plain ``"{collective}/{algorithm}"`` so call reconstruction is uniform.
    """
    info = get_algorithm(collective, algorithm)
    engine = ctx.engine
    activity = label if label is not None else f"{collective}/{algorithm}"
    engine.activity = activity
    fiber = getattr(ctx, "_fiber", None)
    prev_activity = fiber.activity if fiber is not None else None
    if fiber is not None:
        fiber.activity = activity
    try:
        body = None
        runtime = engine.flow_runtime
        if runtime is not None:
            body = runtime.dispatch(
                ctx, collective, algorithm, args, data,
                _flow_result_fn(collective, args),
            )
        if body is None:
            body = info.fn(ctx, args, data)
        octx = _obs_current()
        if not octx.enabled:
            return (yield from body)
        octx.metrics.counter(f"collective.calls.{collective}.{algorithm}").inc()
        if not octx.record_spans:
            return (yield from body)
        arrival = ctx.time()
        result = yield from body
        octx.record_rank_span(
            f"{collective}/{algorithm}", getattr(ctx, "obs_rank", ctx.rank),
            arrival, ctx.time(), args={"msg_bytes": args.msg_bytes},
        )
        return result
    finally:
        if fiber is not None:
            fiber.activity = prev_activity
            engine.activity = prev_activity


def _flow_result_fn(collective: str, args: CollArgs):
    """Per-rank result builder for flow-batched collectives.

    The gate collects every rank's input; the batch resolver calls this
    once with the full input list and distributes ``out[rank]`` as each
    rank's collective result — :func:`reference_result` by construction,
    which every exact algorithm is already validated against.
    """

    def result_fn(inputs):
        return [
            reference_result(collective, inputs, args, rank)
            for rank in range(len(inputs))
        ]

    return result_fn


def reference_result(
    collective: str, inputs: Sequence[np.ndarray], args: CollArgs, rank: int
):
    """The MPI-semantics result of ``collective`` for ``rank``.

    ``inputs`` holds every rank's input (index = rank).  Used by the test
    suite to validate every algorithm against the standard's definition.
    """
    size = len(inputs)
    if collective == "bcast":
        return np.asarray(inputs[args.root])
    if collective == "reduce":
        if rank != args.root:
            return None
        acc = np.asarray(inputs[0]).copy()
        for contrib in inputs[1:]:
            acc = args.op(acc, np.asarray(contrib))
        return acc
    if collective == "allreduce":
        acc = np.asarray(inputs[0]).copy()
        for contrib in inputs[1:]:
            acc = args.op(acc, np.asarray(contrib))
        return acc
    if collective == "alltoall":
        return np.stack([np.asarray(inputs[src])[rank] for src in range(size)])
    if collective == "allgather":
        return np.stack([np.asarray(inputs[src]) for src in range(size)])
    if collective == "gather":
        if rank != args.root:
            return None
        return np.stack([np.asarray(inputs[src]) for src in range(size)])
    if collective == "scatter":
        return np.asarray(inputs[args.root])[rank]
    if collective == "reduce_scatter":
        total = np.asarray(inputs[0]).copy()
        for contrib in inputs[1:]:
            total = args.op(total, np.asarray(contrib))
        return total[rank * args.count : (rank + 1) * args.count]
    if collective == "scan":
        acc = np.asarray(inputs[0]).copy()
        for contrib in inputs[1 : rank + 1]:
            acc = args.op(acc, np.asarray(contrib))
        return acc
    if collective == "exscan":
        if rank == 0:
            return None
        acc = np.asarray(inputs[0]).copy()
        for contrib in inputs[1:rank]:
            acc = args.op(acc, np.asarray(contrib))
        return acc
    if collective == "barrier":
        return None
    if collective == "alltoallv":
        return [np.asarray(inputs[src][rank]) for src in range(size)]
    if collective == "allgatherv":
        return [np.asarray(inputs[src]) for src in range(size)]
    if collective == "gatherv":
        if rank != args.root:
            return None
        return [np.asarray(inputs[src]) for src in range(size)]
    if collective == "scatterv":
        return np.asarray(inputs[args.root][rank])
    raise ConfigurationError(f"unknown collective family {collective!r}")


__all__ = [
    "VECTOR_FAMILIES",
    "make_input",
    "make_vector_input",
    "run_collective",
    "reference_result",
]
