"""Reduce_scatter (block-regular) algorithms.

All algorithms take ``(ctx, args, data)`` where ``data`` is this rank's full
contribution of ``p * count`` items (``count`` items destined to each rank's
result block) and return this rank's reduced ``count``-item block.
``args.msg_bytes`` models the wire size of **one block**.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.collectives.base import largest_power_of_two_leq, register
from repro.sim.mpi import ProcContext


def _check(ctx, args, data) -> np.ndarray:
    arr = np.asarray(data)
    expected = ctx.size * args.count
    if arr.ndim != 1 or arr.shape[0] != expected:
        raise ConfigurationError(
            f"reduce_scatter data must be 1-D with {expected} items, got {arr.shape}"
        )
    if not args.op.commutative:
        raise ConfigurationError("reduce_scatter algorithms require a commutative op")
    return arr


@register("reduce_scatter", "pairwise", ompi_id=2,
          description="p-1 rounds; each round ships one pre-reduced block to its owner.")
def reduce_scatter_pairwise(ctx, args, data):
    p, me = ctx.size, ctx.rank
    arr = _check(ctx, args, data)
    acc = arr[me * args.count : (me + 1) * args.count].copy()
    for step in range(1, p):
        dst = (me + step) % p
        src = (me - step) % p
        block = arr[dst * args.count : (dst + 1) * args.count]
        sreq = ctx.isend(dst, args.msg_bytes, args.tag, payload=block)
        rreq = ctx.irecv(src, args.tag)
        yield ctx.waitall(sreq, rreq)
        acc = args.op(acc, np.asarray(rreq.payload))
    return acc


@register("reduce_scatter", "recursive_halving", ompi_id=1, aliases=("rec_halving",),
          description="log2(p) halving rounds, each shipping half the remaining buffer.")
def reduce_scatter_recursive_halving(ctx, args, data):
    p, me = ctx.size, ctx.rank
    arr = _check(ctx, args, data).copy()
    if p == 1:
        return arr[: args.count]
    pof2 = largest_power_of_two_leq(p)
    rem = p - pof2
    # Fold non-power-of-two ranks: odd front ranks retire after combining.
    if me < 2 * rem:
        if me % 2 != 0:
            yield from ctx.send(me - 1, args.msg_bytes * p, args.tag, payload=arr)
            newrank = -1
        else:
            req = yield from ctx.recv(me + 1, args.tag)
            arr = args.op(arr, np.asarray(req.payload))
            newrank = me // 2
    else:
        newrank = me - rem

    def real(nr: int) -> int:
        return nr * 2 if nr < rem else nr + rem

    result: np.ndarray | None = None
    if newrank != -1:
        lo, hi = 0, pof2
        while hi - lo > 1:
            mid = lo + (hi - lo) // 2
            in_low = newrank < mid
            partner = newrank + (hi - lo) // 2 if in_low else newrank - (hi - lo) // 2
            keep_lo, keep_hi = (lo, mid) if in_low else (mid, hi)
            send_lo, send_hi = (mid, hi) if in_low else (lo, mid)

            def rng(nr_lo: int, nr_hi: int) -> slice:
                # Compacted rank nr covers the real blocks of real(nr).
                items = []
                for nr in range(nr_lo, nr_hi):
                    r = real(nr)
                    items.append((r * args.count, (r + 1) * args.count))
                    if nr < rem:  # survivor also owns its retired partner's block
                        items.append(((r + 1) * args.count, (r + 2) * args.count))
                return items

            send_items = rng(send_lo, send_hi)
            keep_items = rng(keep_lo, keep_hi)
            payload = np.concatenate([arr[a:b] for a, b in send_items])
            nbytes = args.msg_bytes * sum((b - a) for a, b in send_items) / args.count
            sreq = ctx.isend(real(partner), nbytes, args.tag, payload=payload)
            rreq = ctx.irecv(real(partner), args.tag)
            yield ctx.waitall(sreq, rreq)
            arrived = np.asarray(rreq.payload)
            offset = 0
            for a, b in keep_items:
                arr[a:b] = args.op(arr[a:b], arrived[offset : offset + (b - a)])
                offset += b - a
            lo, hi = keep_lo, keep_hi
        r = real(newrank)
        result = arr[r * args.count : (r + 1) * args.count]
        # Survivors ship their retired partner's reduced block back.
        if newrank < rem:
            partner_block = arr[(r + 1) * args.count : (r + 2) * args.count]
            yield from ctx.send(r + 1, args.msg_bytes, args.tag + 1, payload=partner_block)
    if me < 2 * rem and me % 2 != 0:
        req = yield from ctx.recv(me - 1, args.tag + 1)
        result = np.asarray(req.payload)
    assert result is not None
    return result
