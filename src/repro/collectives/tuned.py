"""Fixed decision logic — an approximation of Open MPI's ``coll_tuned`` defaults.

When no dynamic rules file is loaded, Open MPI picks algorithms with
hard-coded message-size / communicator-size thresholds
(``ompi_coll_tuned_*_intra_dec_fixed``).  This module reproduces that
logic's *shape* for the collectives we implement, so experiments can
compare three selection regimes:

1. this fixed library default,
2. No-delay-tuned tables (classic micro-benchmark tuning),
3. the paper's robustness-average tables.

The thresholds follow Open MPI 4.1's decision functions approximately; the
point is a realistic baseline, not a byte-exact port.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.collectives.base import get_algorithm


def fixed_decision(collective: str, comm_size: int, msg_bytes: float) -> str:
    """Algorithm Open MPI's fixed decision logic would (approximately) pick."""
    if comm_size <= 0 or msg_bytes < 0:
        raise ConfigurationError("invalid decision inputs")
    if collective == "alltoall":
        if comm_size >= 12 and msg_bytes <= 256:
            return "bruck"
        if msg_bytes <= 3000:
            return "basic_linear"
        return "pairwise"
    if collective == "allreduce":
        if msg_bytes <= 10_000 or comm_size < 4:
            return "recursive_doubling"
        if msg_bytes <= 100_000:
            return "rabenseifner"
        return "ring"
    if collective == "reduce":
        if msg_bytes <= 12_288:
            return "binomial"
        if msg_bytes <= 128 * 1024:
            return "binary"
        if comm_size >= 8:
            return "rabenseifner"
        return "pipeline"
    if collective == "bcast":
        if msg_bytes <= 2048 or comm_size <= 4:
            return "binomial"
        if msg_bytes <= 128 * 1024:
            return "binary"
        return "pipeline" if comm_size < 8 else "scatter_allgather"
    if collective == "allgather":
        if comm_size <= 2:
            return "linear"
        if msg_bytes <= 512:
            return "bruck"
        if msg_bytes <= 128 * 1024:
            return "recursive_doubling"
        return "ring" if comm_size % 2 else "neighbor_exchange"
    if collective == "gather":
        return "binomial" if msg_bytes <= 6000 else "linear"
    if collective == "scatter":
        return "binomial" if msg_bytes <= 6000 else "linear"
    if collective == "reduce_scatter":
        return "recursive_halving" if msg_bytes <= 64 * 1024 else "pairwise"
    if collective == "barrier":
        if comm_size <= 2:
            return "linear"
        return "bruck" if comm_size <= 64 else "recursive_doubling"
    if collective in ("scan", "exscan"):
        return "recursive_doubling" if comm_size > 4 else "linear"
    if collective == "alltoallv":
        # OMPI's dec_fixed uses basic_linear for small communicators and
        # pairwise otherwise; msg_bytes here is the mean per-block size.
        return "basic_linear" if comm_size <= 8 or msg_bytes <= 3000 else "pairwise"
    if collective == "allgatherv":
        if comm_size <= 2 or msg_bytes <= 8192:
            return "linear"
        return "ring"
    if collective in ("gatherv", "scatterv"):
        return "linear"
    raise ConfigurationError(f"no fixed decision logic for {collective!r}")


def validate_fixed_decisions(comm_sizes=(2, 4, 13, 32, 64, 128),
                             sizes=(1, 256, 4096, 65536, 1 << 20, 1 << 24)) -> None:
    """Assert every decision resolves to a registered algorithm (self-check)."""
    for coll in ("alltoall", "allreduce", "reduce", "bcast", "allgather",
                 "gather", "scatter", "reduce_scatter", "barrier", "scan",
                 "exscan", "alltoallv", "allgatherv", "gatherv", "scatterv"):
        for p in comm_sizes:
            for m in sizes:
                get_algorithm(coll, fixed_decision(coll, p, m))


__all__ = ["fixed_decision", "validate_fixed_decisions"]
