"""Self-check harness: validate every registered algorithm against MPI semantics.

Intended for users extending the library with new algorithms: one call
sweeps every registered algorithm over a grid of rank counts (including
awkward non-powers-of-two), roots, and segmentation settings, comparing the
produced data against :func:`repro.collectives.api.reference_result`.
Exposed on the CLI as ``repro-mpi selfcheck``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.collectives.api import make_input, reference_result
from repro.collectives.base import CollArgs, get_algorithm, list_algorithms, list_collectives
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform

#: Families with data semantics to validate (barrier has none).
DATA_FAMILIES = (
    "bcast", "reduce", "allreduce", "alltoall", "allgather",
    "gather", "scatter", "reduce_scatter", "scan", "exscan",
)
ROOTED = ("bcast", "reduce", "gather", "scatter")


@dataclass
class ValidationReport:
    """Outcome of a self-check sweep."""

    cases_run: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        lines = [f"self-check: {self.cases_run} cases — {status}"]
        lines.extend(f"  FAIL {failure}" for failure in self.failures[:20])
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


def _check_one(collective: str, algorithm: str, size: int, count: int,
               root: int, segment_bytes: float | None) -> str | None:
    """Run one case; return a failure description or None."""
    nodes = max(1, (size + 3) // 4)
    platform = Platform("selfcheck", nodes=nodes, cores_per_node=4)
    args = CollArgs(
        count=count,
        msg_bytes=float(1 << 20) if segment_bytes else float(count * 8),
        root=root,
        segment_bytes=segment_bytes,
    )
    inputs = [make_input(collective, r, size, count) for r in range(size)]
    info = get_algorithm(collective, algorithm)

    def prog(ctx):
        result = yield from info.fn(ctx, args, inputs[ctx.rank])
        return result

    try:
        run = run_processes(platform, prog, num_ranks=size)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        return (f"{collective}/{algorithm} p={size} root={root} "
                f"seg={segment_bytes}: raised {type(exc).__name__}: {exc}")
    for rank in range(size):
        expected = reference_result(collective, inputs, args, rank)
        got = run.rank_results[rank]
        if expected is None:
            if got is not None:
                return (f"{collective}/{algorithm} p={size} rank={rank}: "
                        f"expected None, got data")
        elif got is None or not np.array_equal(np.asarray(got), expected):
            return (f"{collective}/{algorithm} p={size} root={root} "
                    f"seg={segment_bytes} rank={rank}: wrong data")
    return None


def validate_all(
    sizes: tuple[int, ...] = (1, 2, 3, 5, 8, 13),
    count: int = 16,
    quick: bool = False,
) -> ValidationReport:
    """Validate every registered data-moving algorithm; returns a report."""
    report = ValidationReport()
    sizes = sizes[:3] if quick else sizes
    for collective in list_collectives():
        if collective not in DATA_FAMILIES:
            continue
        for algorithm in list_algorithms(collective):
            for size in sizes:
                roots = (0, size - 1) if collective in ROOTED and size > 1 else (0,)
                for root in roots:
                    for segment_bytes in (None, float(1 << 17)):
                        report.cases_run += 1
                        failure = _check_one(
                            collective, algorithm, size, count, root, segment_bytes
                        )
                        if failure:
                            report.failures.append(failure)
    return report


__all__ = ["ValidationReport", "validate_all"]
