"""Common infrastructure for collective algorithms.

Data vs. modeled size
---------------------
Algorithms carry real numpy payloads so correctness is testable, but the
*modeled* wire size is supplied separately: :class:`CollArgs` has ``count``
(items in one rank's contribution — or one block, for Alltoall/Allgather)
and ``msg_bytes`` (the bytes the simulator should charge for that
contribution).  ``bytes_for(items)`` scales proportionally, so a segmented
algorithm sending half its items is charged half the bytes.  This lets a
timing study model a 1 MiB message while moving a 64-element test payload.

Virtual topologies
------------------
The tree builders (binomial, binary, in-order binary, chain) return a
``(parent, children)`` pair per rank using *virtual ranks* rotated so that
the requested root is virtual rank 0 — the same trick Open MPI's ``coll
tuned`` component uses.

Registry
--------
Algorithms self-register with the :func:`register` decorator, keyed by
collective family and algorithm name, optionally carrying the Open MPI
algorithm ID from the paper's Table II and any aliases (e.g. the SimGrid
names used in Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigurationError, UnknownAlgorithmError
from repro.collectives.ops import SUM, ReduceOp
# Re-exported so family modules declare flow-phase regularity alongside
# their algorithm registrations (see repro.sim.flow for the dispatch rules).
from repro.sim.flow import FlowPlan, phase_descriptor
from repro.sim.mpi import TAG_COLLECTIVE, ProcContext

#: Default segment size (bytes) for segmented/pipelined algorithms, matching
#: the order of magnitude of Open MPI's tuned defaults.
DEFAULT_SEGMENT_BYTES = 64 * 1024


@dataclass(frozen=True)
class CollArgs:
    """Invocation parameters shared by all collective algorithms.

    Parameters
    ----------
    count:
        Number of payload items in one rank's contribution (one *block* for
        Alltoall/Allgather-family collectives).
    msg_bytes:
        Modeled size in bytes of that contribution/block on the wire.
    root:
        Root rank for rooted collectives (ignored otherwise).
    op:
        Reduction operator for reducing collectives (ignored otherwise).
    segment_bytes:
        Segment size for pipelined algorithms; ``None`` selects
        :data:`DEFAULT_SEGMENT_BYTES`.
    tag:
        Base message tag; distinct concurrent collectives need distinct tags.
    """

    count: int
    msg_bytes: float
    root: int = 0
    op: ReduceOp = SUM
    segment_bytes: float | None = None
    tag: int = TAG_COLLECTIVE

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ConfigurationError(f"count must be positive, got {self.count}")
        if self.msg_bytes < 0:
            raise ConfigurationError(f"msg_bytes must be non-negative, got {self.msg_bytes}")
        if self.segment_bytes is not None and self.segment_bytes <= 0:
            raise ConfigurationError("segment_bytes must be positive")

    def bytes_for(self, items: int) -> float:
        """Modeled wire bytes of a message carrying ``items`` payload items."""
        return self.msg_bytes * (items / self.count)

    def segments(self) -> list[tuple[int, int]]:
        """Split the contribution into ``(offset, items)`` segments.

        The number of segments is ``ceil(msg_bytes / segment_bytes)``, capped
        by ``count`` (a segment carries at least one item).
        """
        seg_bytes = self.segment_bytes if self.segment_bytes is not None else DEFAULT_SEGMENT_BYTES
        if self.msg_bytes <= 0:
            return [(0, self.count)]
        nseg = int(np.ceil(self.msg_bytes / seg_bytes))
        nseg = max(1, min(nseg, self.count))
        bounds = np.linspace(0, self.count, nseg + 1).astype(int)
        return [
            (int(bounds[i]), int(bounds[i + 1] - bounds[i]))
            for i in range(nseg)
            if bounds[i + 1] > bounds[i]
        ]

    def with_root(self, root: int) -> "CollArgs":
        return replace(self, root=root)


# --------------------------------------------------------------------- #
# Virtual topologies
# --------------------------------------------------------------------- #


def vrank(rank: int, size: int, root: int) -> int:
    """Virtual rank with the root rotated to 0."""
    return (rank - root) % size


def rrank(virtual: int, size: int, root: int) -> int:
    """Inverse of :func:`vrank`."""
    return (virtual + root) % size


def binomial_tree(rank: int, size: int, root: int = 0) -> tuple[int | None, list[int]]:
    """Binomial tree rooted at ``root``: returns (parent, children) in real ranks.

    Children are ordered nearest-first (distance 1, 2, 4, ...), the order a
    binomial broadcast sends in.
    """
    v = vrank(rank, size, root)
    parent: int | None = None
    lsb = size  # acts as +infinity for the root (v == 0)
    mask = 1
    while mask < size:
        if v & mask:
            parent = rrank(v ^ mask, size, root)
            lsb = mask
            break
        mask <<= 1
    children: list[int] = []
    mask = 1
    while mask < lsb and mask < size:
        child = v | mask
        if child < size:
            children.append(rrank(child, size, root))
        mask <<= 1
    return parent, children


def binary_tree(rank: int, size: int, root: int = 0) -> tuple[int | None, list[int]]:
    """Complete binary tree in virtual-rank heap order (children 2v+1, 2v+2)."""
    v = vrank(rank, size, root)
    parent = None if v == 0 else rrank((v - 1) // 2, size, root)
    children = [rrank(c, size, root) for c in (2 * v + 1, 2 * v + 2) if c < size]
    return parent, children


@lru_cache(maxsize=64)
def _in_order_table(size: int) -> tuple[tuple[int | None, tuple[int, ...]], ...]:
    table: list[tuple[int | None, tuple[int, ...]]] = [(None, ())] * size

    def build(lo: int, hi: int, parent: int | None) -> int | None:
        if lo > hi:
            return None
        # Balanced midpoint split; the in-order traversal of the result
        # visits ranks in ascending order.
        mid = (lo + hi + 1) // 2
        left = build(lo, mid - 1, mid)
        right = build(mid + 1, hi, mid)
        table[mid] = (parent, tuple(c for c in (left, right) if c is not None))
        return mid

    build(0, size - 1, None)
    return tuple(table)


def in_order_binary_tree(rank: int, size: int, root: int | None = None) -> tuple[int | None, list[int]]:
    """In-order binary tree over ranks ``0..size-1``.

    The tree's in-order traversal visits ranks in ascending order, which is
    what makes reductions over it valid for non-commutative operators.  The
    topology is root-independent; rooted collectives using it move the final
    result from the tree head to the requested root with one extra message,
    as Open MPI does.  ``root`` is accepted for interface symmetry.
    """
    parent, children = _in_order_table(size)[rank]
    return parent, list(children)


def in_order_tree_root(size: int) -> int:
    """Rank at the top of the in-order binary tree of :func:`in_order_binary_tree`."""
    return (size) // 2 if size > 1 else 0


def knomial_tree(rank: int, size: int, root: int = 0, radix: int = 4) -> tuple[int | None, list[int]]:
    """k-nomial tree: the radix-``radix`` generalization of the binomial tree.

    At round ``r`` (digit position ``radix**r``), each node already holding
    the data serves up to ``radix - 1`` children at offsets
    ``d * radix**r``.  ``radix=2`` reduces exactly to the binomial tree.
    Parent: clear the lowest non-zero base-``radix`` digit of the virtual
    rank; children: set one lower digit position to a non-zero value.
    """
    if radix < 2:
        raise ConfigurationError(f"radix must be >= 2, got {radix}")
    v = vrank(rank, size, root)
    parent: int | None = None
    lowest = size  # position value of v's lowest non-zero digit (inf for root)
    place = 1
    vv = v
    while vv:
        digit = vv % radix
        if digit:
            parent = rrank(v - digit * place, size, root)
            lowest = place
            break
        vv //= radix
        place *= radix
    children: list[int] = []
    place = 1
    while place < lowest and place < size:
        for digit in range(1, radix):
            child = v + digit * place
            if child < size:
                children.append(rrank(child, size, root))
        place *= radix
    return parent, children


def knomial_parent(v: int, radix: int) -> int | None:
    """Virtual parent in a k-nomial tree (None for the root)."""
    place = 1
    vv = v
    while vv:
        digit = vv % radix
        if digit:
            return v - digit * place
        vv //= radix
        place *= radix
    return None


def chain_tree(rank: int, size: int, root: int = 0, fanout: int = 1) -> tuple[int | None, list[int]]:
    """``fanout`` parallel chains hanging off the root.

    Virtual ranks ``1..size-1`` are split into ``fanout`` contiguous chains;
    the head of each chain is a direct child of the root.
    """
    if fanout < 1:
        raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
    v = vrank(rank, size, root)
    if size == 1:
        return None, []
    rest = size - 1
    fanout = min(fanout, rest)
    base, extra = divmod(rest, fanout)
    # Chain c covers virtual ranks [starts[c]+1, starts[c+1]] (1-based body).
    starts = [0]
    for c in range(fanout):
        starts.append(starts[-1] + base + (1 if c < extra else 0))
    if v == 0:
        children = [rrank(s + 1, size, root) for s in starts[:-1]]
        return None, children
    chain = next(c for c in range(fanout) if starts[c] < v <= starts[c + 1])
    first = starts[chain] + 1
    parent_v = 0 if v == first else v - 1
    child_v = v + 1 if v + 1 <= starts[chain + 1] else None
    parent = rrank(parent_v, size, root)
    children = [] if child_v is None else [rrank(child_v, size, root)]
    return parent, children


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

#: Signature of a collective algorithm generator: (ctx, args, data) -> result.
AlgorithmFn = Callable[..., Iterator]


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry entry for one collective algorithm."""

    collective: str
    name: str
    fn: AlgorithmFn = field(repr=False)
    ompi_id: int | None = None
    aliases: tuple[str, ...] = ()
    description: str = ""

    @property
    def label(self) -> str:
        """Short display label, e.g. ``reduce/binomial (ID 5)``."""
        suffix = f" (ID {self.ompi_id})" if self.ompi_id is not None else ""
        return f"{self.collective}/{self.name}{suffix}"


_REGISTRY: dict[str, dict[str, AlgorithmInfo]] = {}
_ALIASES: dict[str, dict[str, str]] = {}


def register(
    collective: str,
    name: str,
    ompi_id: int | None = None,
    aliases: tuple[str, ...] = (),
    description: str = "",
) -> Callable[[AlgorithmFn], AlgorithmFn]:
    """Class-level decorator registering a collective algorithm generator."""

    def deco(fn: AlgorithmFn) -> AlgorithmFn:
        family = _REGISTRY.setdefault(collective, {})
        alias_map = _ALIASES.setdefault(collective, {})
        if name in family or name in alias_map:
            raise ConfigurationError(f"duplicate algorithm {collective}/{name}")
        info = AlgorithmInfo(collective, name, fn, ompi_id, tuple(aliases), description)
        family[name] = info
        for alias in aliases:
            if alias in alias_map or alias in family:
                raise ConfigurationError(f"duplicate alias {collective}/{alias}")
            alias_map[alias] = name
        return fn

    return deco


def list_collectives() -> list[str]:
    """Names of all collective families with registered algorithms."""
    return sorted(_REGISTRY)


def list_algorithms(collective: str) -> list[str]:
    """Canonical algorithm names for a family, sorted by Open MPI ID then name."""
    try:
        family = _REGISTRY[collective]
    except KeyError:
        raise UnknownAlgorithmError(collective, "*", []) from None
    return [
        info.name
        for info in sorted(
            family.values(), key=lambda i: (i.ompi_id is None, i.ompi_id or 0, i.name)
        )
    ]


def get_algorithm(collective: str, name: str) -> AlgorithmInfo:
    """Look up an algorithm by canonical name or alias."""
    family = _REGISTRY.get(collective)
    if family is None:
        raise UnknownAlgorithmError(collective, name, [])
    info = family.get(name)
    if info is None:
        canonical = _ALIASES.get(collective, {}).get(name)
        if canonical is not None:
            info = family[canonical]
    if info is None:
        raise UnknownAlgorithmError(collective, name, list(family))
    return info


def get_algorithm_by_id(collective: str, ompi_id: int) -> AlgorithmInfo:
    """Look up an algorithm by its Open MPI algorithm ID (paper Table II)."""
    family = _REGISTRY.get(collective)
    if family is None:
        raise UnknownAlgorithmError(collective, str(ompi_id), [])
    for info in family.values():
        if info.ompi_id == ompi_id:
            return info
    raise UnknownAlgorithmError(collective, f"id:{ompi_id}", list(family))


# --------------------------------------------------------------------- #
# Small shared helpers for the algorithm modules
# --------------------------------------------------------------------- #


def as_array(data: np.ndarray, count: int, name: str) -> np.ndarray:
    """Validate a 1-D contribution buffer of ``count`` items."""
    arr = np.asarray(data)
    if arr.ndim != 1 or arr.shape[0] != count:
        raise ConfigurationError(f"{name} must be 1-D with {count} items, got shape {arr.shape}")
    return arr


def as_matrix(data: np.ndarray, rows: int, count: int, name: str) -> np.ndarray:
    """Validate a 2-D (rows x count) buffer (Alltoall/Allgather family)."""
    arr = np.asarray(data)
    if arr.shape != (rows, count):
        raise ConfigurationError(f"{name} must have shape ({rows}, {count}), got {arr.shape}")
    return arr


def ceil_log2(n: int) -> int:
    return int(np.ceil(np.log2(n))) if n > 1 else 0


def largest_power_of_two_leq(n: int) -> int:
    p = 1
    while p * 2 <= n:
        p *= 2
    return p


__all__ = [
    "AlgorithmFn",
    "AlgorithmInfo",
    "CollArgs",
    "DEFAULT_SEGMENT_BYTES",
    "FlowPlan",
    "phase_descriptor",
    "register",
    "get_algorithm",
    "get_algorithm_by_id",
    "list_algorithms",
    "list_collectives",
    "vrank",
    "rrank",
    "binomial_tree",
    "binary_tree",
    "in_order_binary_tree",
    "in_order_tree_root",
    "chain_tree",
    "knomial_tree",
    "knomial_parent",
    "as_array",
    "as_matrix",
    "ceil_log2",
    "largest_power_of_two_leq",
    "ProcContext",
]
