"""Non-blocking collectives: start a collective, overlap compute, wait.

MPI-3 non-blocking collectives (``MPI_Iallreduce``, ``MPI_Ialltoall``, ...)
let the communication progress while the host computes.  Whether that helps
under system noise is exactly the question of Widener et al. [IJHPCA'16],
which the paper cites; this module makes the experiment possible in our
simulator.

The implementation runs the collective's schedule on a separate *fiber* of
each rank (see :meth:`repro.sim.mpi.ProcContext.start_fiber`): the fiber
shares the rank's NIC ports — so communication still contends with nothing
the host does, but the host's compute does not stall the schedule.  This
models a perfectly progressing MPI (hardware offload / progress thread),
the idealized model Widener et al. analyze.

Usage::

    handle = icollective(ctx, "allreduce", "ring", args, data, tag_offset=1)
    yield ctx.compute(work_seconds)          # overlapped
    result = yield from wait_collective(ctx, handle)

Each concurrently outstanding non-blocking collective on a communicator
must use a distinct ``tag_offset`` (MPI makes the same demand via operation
ordering).
"""

from __future__ import annotations

from dataclasses import replace

from repro.collectives.base import CollArgs, get_algorithm
from repro.sim.mpi import ProcContext


def icollective(
    ctx: ProcContext,
    collective: str,
    algorithm: str,
    args: CollArgs,
    data,
    tag_offset: int = 0,
):
    """Start ``collective`` on a progress fiber; returns a waitable handle.

    The handle's ``result`` attribute holds the collective's return value
    once joined via :func:`wait_collective`.
    """
    info = get_algorithm(collective, algorithm)
    run_args = replace(args, tag=args.tag + 101 * tag_offset)

    def fiber_fn(fiber_ctx: ProcContext):
        result = yield from info.fn(fiber_ctx, run_args, data)
        return result

    return ctx.start_fiber(fiber_fn)


def wait_collective(ctx: ProcContext, handle):
    """Generator: join a non-blocking collective; returns its result."""
    yield ctx.waitall(handle)
    return handle.result


__all__ = ["icollective", "wait_collective"]
