"""Scatter algorithms.

All algorithms take ``(ctx, args, data)`` where ``data`` is the root's
``(p, count)`` matrix (row ``i`` destined to rank ``i``; ignored elsewhere)
and return this rank's ``count``-item block.  ``args.msg_bytes`` models one
block's wire size.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import as_matrix, register, rrank, vrank
from repro.sim.mpi import ProcContext


@register("scatter", "linear", ompi_id=1, aliases=("basic_linear",),
          description="The root sends each rank its block directly.")
def scatter_linear(ctx, args, data):
    p, me = ctx.size, ctx.rank
    if me == args.root:
        send = as_matrix(data, p, args.count, "scatter data")
        reqs = [
            ctx.isend(dst, args.msg_bytes, args.tag, payload=send[dst])
            for dst in range(p)
            if dst != me
        ]
        if reqs:
            yield ctx.waitall(reqs)
        return send[me].copy()
    req = yield from ctx.recv(args.root, args.tag)
    return np.asarray(req.payload)


@register("scatter", "binomial", ompi_id=2, aliases=("bmtree",),
          description="Blocks split down a binomial tree, halving the batch each level.")
def scatter_binomial(ctx, args, data):
    p, me = ctx.size, ctx.rank
    v = vrank(me, p, args.root)
    # Determine the subtree extent: the root covers all of [0, p), a node
    # with lowest set bit m covers [v, v + m) clipped at p.
    if v == 0:
        rows: dict[int, np.ndarray] = {}
        send = as_matrix(data, p, args.count, "scatter data")
        for vb in range(p):
            rows[vb] = send[rrank(vb, p, args.root)]
        extent = 1
        while extent < p:
            extent <<= 1
    else:
        mask = 1
        while not (v & mask):
            mask <<= 1
        parent = rrank(v ^ mask, p, args.root)
        req = yield from ctx.recv(parent, args.tag)
        arrived = np.asarray(req.payload)
        rows = {v + i: arrived[i] for i in range(arrived.shape[0])}
        extent = mask
    send_reqs = []
    half = extent >> 1
    while half >= 1:
        child_v = v + half
        if child_v < p:
            span = [vb for vb in range(child_v, min(child_v + half, p))]
            payload = np.stack([rows.pop(vb) for vb in span])
            send_reqs.append(
                ctx.isend(
                    rrank(child_v, p, args.root),
                    args.msg_bytes * len(span),
                    args.tag,
                    payload=payload,
                )
            )
        half >>= 1
    if send_reqs:
        yield ctx.waitall(send_reqs)
    return np.asarray(rows[v])
