"""Gather algorithms.

All algorithms take ``(ctx, args, data)`` where ``data`` is this rank's
contribution (1-D, ``args.count`` items).  The root returns a ``(p, count)``
matrix (row ``i`` from rank ``i``); other ranks return ``None``.
``args.msg_bytes`` models one contribution's wire size.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import as_array, binomial_tree, register, rrank, vrank
from repro.sim.mpi import ProcContext


@register("gather", "linear", ompi_id=1, aliases=("basic_linear",),
          description="Every rank sends its block to the root directly.")
def gather_linear(ctx, args, data):
    p, me = ctx.size, ctx.rank
    own = as_array(data, args.count, "gather data")
    if me != args.root:
        yield from ctx.send(args.root, args.msg_bytes, args.tag, payload=own)
        return None
    out = np.empty((p, args.count), dtype=own.dtype)
    out[me] = own
    reqs = {src: ctx.irecv(src, args.tag) for src in range(p) if src != me}
    if reqs:
        yield ctx.waitall(list(reqs.values()))
    for src, req in reqs.items():
        out[src] = req.payload
    return out


@register("gather", "binomial", ompi_id=2, aliases=("bmtree",),
          description="Subtree contributions merge up a binomial tree.")
def gather_binomial(ctx, args, data):
    """Binomial gather: each node forwards its whole subtree's rows at once.

    Rows travel keyed by virtual rank; a node owning virtual ranks
    ``[v, v + 2^k)`` ships them as one message of ``2^k`` blocks.
    """
    p, me = ctx.size, ctx.rank
    own = as_array(data, args.count, "gather data")
    parent, children = binomial_tree(me, p, args.root)
    v = vrank(me, p, args.root)
    # Collect rows from children; keys are virtual ranks.
    rows: dict[int, np.ndarray] = {v: own}
    for child in children:
        req = yield from ctx.recv(child, args.tag)
        cv = vrank(child, p, args.root)
        arrived = np.asarray(req.payload)
        for i in range(arrived.shape[0]):
            rows[cv + i] = arrived[i]
    if parent is not None:
        span = max(rows) - v + 1
        payload = np.stack([rows[v + i] for i in range(span)])
        yield from ctx.send(parent, args.msg_bytes * span, args.tag, payload=payload)
        return None
    out = np.empty((p, args.count), dtype=own.dtype)
    for vb, row in rows.items():
        out[rrank(vb, p, args.root)] = row
    return out
