"""SMP-aware (hierarchical, node-leader) collective algorithms.

Production MPI libraries exploit the node hierarchy: combine contributions
*inside* each node first (cheap shared-memory traffic), run the inter-node
phase only among node leaders (one NIC user per node), then fan out
intra-node.  These algorithms are the natural response to shared node NICs
and node-correlated arrival skew, so they complete this library's story:
the machinery that *mitigates* what the paper measures.

The implementations derive the node layout from the engine's network model
(each rank knows its node peers), so they work on any platform without a
sub-communicator abstraction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.collectives.base import as_array, binomial_tree, register
from repro.sim.mpi import ProcContext


def _node_layout(ctx: ProcContext) -> tuple[list[int], list[int]]:
    """(my node's ranks ascending, all node-leader ranks ascending)."""
    node_of = ctx.engine.network.node_of
    me_node = node_of[ctx.rank]
    peers = [r for r in range(ctx.size) if node_of[r] == me_node]
    leaders_seen: dict[int, int] = {}
    for rank in range(ctx.size):
        leaders_seen.setdefault(node_of[rank], rank)
    leaders = sorted(leaders_seen.values())
    return peers, leaders


@register("allreduce", "smp", aliases=("hierarchical", "smp_rdb"),
          description="Node-local reduce to leaders, recursive doubling among leaders, node-local bcast.")
def allreduce_smp(ctx, args, data):
    """Hierarchical allreduce (the MVAPICH/HAN-style SMP scheme).

    Phase 1: every rank sends its contribution to its node leader, which
    folds them in rank order (ascending, so associative non-commutative
    operators are safe).  Phase 2: the leaders allreduce among themselves
    with recursive doubling over leader *indices* (any leader count).
    Phase 3: leaders broadcast the result to their node peers.
    """
    if not args.op.commutative:
        raise ConfigurationError(
            "allreduce/smp's leader exchange reorders contributions; "
            "it needs a commutative op"
        )
    own = as_array(data, args.count, "allreduce data")
    peers, leaders = _node_layout(ctx)
    leader = peers[0]
    me = ctx.rank

    # --- phase 1: intra-node fold at the leader. ------------------------
    if me != leader:
        yield from ctx.send(leader, args.msg_bytes, args.tag, payload=own)
        req = yield from ctx.recv(leader, args.tag + 2)
        return np.asarray(req.payload)

    acc = own.copy()
    for peer in peers[1:]:
        req = yield from ctx.recv(peer, args.tag)
        acc = args.op(acc, np.asarray(req.payload))

    # --- phase 2: recursive doubling among the leaders. -----------------
    idx = leaders.index(me)
    n = len(leaders)
    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2
    if idx < 2 * rem:
        if idx % 2 == 0:
            yield from ctx.send(leaders[idx + 1], args.msg_bytes, args.tag + 1,
                                payload=acc)
            newidx = -1
        else:
            req = yield from ctx.recv(leaders[idx - 1], args.tag + 1)
            acc = args.op(np.asarray(req.payload), acc)
            newidx = idx // 2
    else:
        newidx = idx - rem

    def real(ni: int) -> int:
        return leaders[ni * 2 + 1] if ni < rem else leaders[ni + rem]

    if newidx != -1:
        mask = 1
        while mask < pof2:
            partner = real(newidx ^ mask)
            sreq = ctx.isend(partner, args.msg_bytes, args.tag + 1, payload=acc)
            rreq = ctx.irecv(partner, args.tag + 1)
            yield ctx.waitall(sreq, rreq)
            acc = args.op(acc, np.asarray(rreq.payload))
            mask <<= 1
    if idx < 2 * rem:
        if idx % 2 == 0:
            req = yield from ctx.recv(leaders[idx + 1], args.tag + 1)
            acc = np.asarray(req.payload)
        else:
            yield from ctx.send(leaders[idx - 1], args.msg_bytes, args.tag + 1,
                                payload=acc)

    # --- phase 3: intra-node broadcast from the leader. ------------------
    reqs = [ctx.isend(peer, args.msg_bytes, args.tag + 2, payload=acc)
            for peer in peers[1:]]
    if reqs:
        yield ctx.waitall(reqs)
    return acc


@register("bcast", "smp", aliases=("hierarchical",),
          description="Binomial broadcast among node leaders, then linear fan-out inside each node.")
def bcast_smp(ctx, args, data):
    """Hierarchical broadcast: leaders relay inter-node, peers fan out locally.

    The root first hands the buffer to its node leader (if it is not one),
    the leaders run a binomial broadcast rooted at the root's leader, and
    every leader serves its node peers directly.
    """
    peers, leaders = _node_layout(ctx)
    leader = peers[0]
    me = ctx.rank
    node_of = ctx.engine.network.node_of
    root_leader = min(
        r for r in range(ctx.size) if node_of[r] == node_of[args.root]
    )

    buf = None
    if me == args.root:
        buf = as_array(data, args.count, "bcast data").copy()
        if me != root_leader:
            yield from ctx.send(root_leader, args.msg_bytes, args.tag, payload=buf)

    if me == leader:
        if me == root_leader:
            if me != args.root:
                req = yield from ctx.recv(args.root, args.tag)
                buf = np.asarray(req.payload)
        # Binomial broadcast over leader indices, rooted at root_leader.
        li = leaders.index(me)
        root_li = leaders.index(root_leader)
        n = len(leaders)
        parent, children = binomial_tree(li, n, root_li)
        if parent is not None:
            req = yield from ctx.recv(leaders[parent], args.tag + 1)
            buf = np.asarray(req.payload)
        reqs = [ctx.isend(leaders[c], args.msg_bytes, args.tag + 1, payload=buf)
                for c in reversed(children)]
        # Serve node peers (skip the root, which already has the data).
        reqs += [ctx.isend(peer, args.msg_bytes, args.tag + 2, payload=buf)
                 for peer in peers[1:] if peer != args.root]
        if reqs:
            yield ctx.waitall(reqs)
        return buf

    if me != args.root:
        req = yield from ctx.recv(leader, args.tag + 2)
        return np.asarray(req.payload)
    return buf
