"""Reduction operators for Reduce/Allreduce/Reduce_scatter.

A :class:`ReduceOp` wraps an elementwise binary ufunc plus the metadata the
algorithms need: whether the operator is commutative (non-commutative
operators restrict the usable algorithms to in-order trees, mirroring MPI's
rules for user ops) and its name for reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ReduceOp:
    """An MPI reduction operator."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    commutative: bool = True

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Combine two contributions; ``a`` is the earlier-ranked one."""
        return self.fn(a, b)

    def __repr__(self) -> str:
        return f"ReduceOp({self.name})"


SUM = ReduceOp("sum", np.add)
PROD = ReduceOp("prod", np.multiply)
MAX = ReduceOp("max", np.maximum)
MIN = ReduceOp("min", np.minimum)

_BUILTIN = {op.name: op for op in (SUM, PROD, MAX, MIN)}


def get_op(name: str) -> ReduceOp:
    """Look up a built-in reduction operator by name."""
    try:
        return _BUILTIN[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown reduction op {name!r}; available: {sorted(_BUILTIN)}"
        ) from None


__all__ = ["ReduceOp", "SUM", "PROD", "MAX", "MIN", "get_op"]
