"""Broadcast algorithms.

All algorithms take ``(ctx, args, data)`` where ``data`` is the root's send
buffer (1-D, ``args.count`` items; ignored on non-roots) and return the
broadcast buffer on every rank.  Tree algorithms are segmented/pipelined
(see :meth:`CollArgs.segments`); with one segment they degenerate to the
plain tree algorithm.
"""

from __future__ import annotations

from typing import Callable, Generator

import numpy as np

from repro.collectives.base import (
    CollArgs,
    as_array,
    binary_tree,
    binomial_tree,
    chain_tree,
    knomial_tree,
    largest_power_of_two_leq,
    register,
    rrank,
    vrank,
)
from repro.sim.mpi import ProcContext


def _tree_bcast(
    ctx: ProcContext,
    args: CollArgs,
    data: np.ndarray | None,
    tree: Callable[[int, int, int], tuple[int | None, list[int]]],
) -> Generator[tuple, None, np.ndarray]:
    """Segmented broadcast down an arbitrary tree.

    Each rank pre-posts one receive per segment from its parent, then for
    every segment forwards to its children as soon as the segment lands —
    the standard pipelining that lets deep trees stream large messages.
    """
    parent, children = tree(ctx.rank, ctx.size, args.root)
    segs = args.segments()
    if ctx.rank == args.root:
        buf = as_array(data, args.count, "bcast data").copy()
        recv_reqs = None
    else:
        buf = np.empty(args.count, dtype=np.asarray(data).dtype if data is not None else float)
        recv_reqs = [ctx.irecv(parent, args.tag) for _ in segs]
    send_reqs = []
    for si, (off, n) in enumerate(segs):
        if recv_reqs is not None:
            yield ctx.waitall(recv_reqs[si])
            buf[off : off + n] = recv_reqs[si].payload
        nbytes = args.bytes_for(n)
        # Farthest child first: it heads the largest subtree.
        for child in reversed(children):
            send_reqs.append(ctx.isend(child, nbytes, args.tag, payload=buf[off : off + n]))
    if send_reqs:
        yield ctx.waitall(send_reqs)
    return buf


@register("bcast", "linear", ompi_id=1, aliases=("basic_linear",),
          description="Root sends the full message to every rank directly.")
def bcast_linear(ctx, args, data):
    if ctx.rank == args.root:
        buf = as_array(data, args.count, "bcast data").copy()
        reqs = [
            ctx.isend(dst, args.msg_bytes, args.tag, payload=buf)
            for dst in range(ctx.size)
            if dst != args.root
        ]
        if reqs:
            yield ctx.waitall(reqs)
        return buf
    req = yield from ctx.recv(args.root, args.tag)
    return np.asarray(req.payload)


@register("bcast", "chain", ompi_id=2,
          description="Segmented broadcast down parallel chains (fanout 4).")
def bcast_chain(ctx, args, data):
    tree = lambda r, s, root: chain_tree(r, s, root, fanout=4)  # noqa: E731
    return (yield from _tree_bcast(ctx, args, data, tree))


@register("bcast", "pipeline", ompi_id=3,
          description="Segmented broadcast down a single chain.")
def bcast_pipeline(ctx, args, data):
    tree = lambda r, s, root: chain_tree(r, s, root, fanout=1)  # noqa: E731
    return (yield from _tree_bcast(ctx, args, data, tree))


@register("bcast", "binary", ompi_id=5, aliases=("bintree",),
          description="Segmented broadcast down a complete binary tree.")
def bcast_binary(ctx, args, data):
    return (yield from _tree_bcast(ctx, args, data, binary_tree))


@register("bcast", "binomial", ompi_id=6, aliases=("ompi_binomial", "bmtree"),
          description="Segmented broadcast down a binomial tree.")
def bcast_binomial(ctx, args, data):
    return (yield from _tree_bcast(ctx, args, data, binomial_tree))


@register("bcast", "knomial", ompi_id=7, aliases=("k_nomial",),
          description="Segmented broadcast down a radix-4 k-nomial tree (shallower than binomial).")
def bcast_knomial(ctx, args, data):
    tree = lambda r, s, root: knomial_tree(r, s, root, radix=4)  # noqa: E731
    return (yield from _tree_bcast(ctx, args, data, tree))


@register("bcast", "split_binary", ompi_id=4,
          description="Message halves travel down the two root subtrees; opposite-subtree pairs swap halves.")
def bcast_split_binary(ctx, args, data):
    """Split-binary broadcast (Open MPI algorithm 4).

    The root pushes the first message half down its left binary subtree and
    the second half down the right subtree (each link carries only half the
    bytes), then every rank swaps its half with a partner from the opposite
    subtree.  Ranks without an opposite-subtree partner (unbalanced trees)
    fetch the missing half from the root.  Falls back to binomial for
    fewer than four ranks or messages too small to split.
    """
    p, me = ctx.size, ctx.rank
    if p < 4 or args.count < 2:
        return (yield from _tree_bcast(ctx, args, data, binomial_tree))
    v = vrank(me, p, args.root)
    half_items = args.count // 2
    spans = {0: (0, half_items), 1: (half_items, args.count)}

    def side_of(virtual: int) -> int:
        """0 = left subtree of the (virtual) heap root, 1 = right, -1 = root."""
        if virtual == 0:
            return -1
        node = virtual
        while node not in (1, 2):
            node = (node - 1) // 2
        return 0 if node == 1 else 1

    parent, children = binary_tree(me, p, args.root)
    my_side = side_of(v)
    if me == args.root:
        buf = as_array(data, args.count, "bcast data").copy()
    else:
        buf = np.empty(args.count, dtype=np.asarray(data).dtype if data is not None else float)

    # --- phase 1: each subtree pipelines its own half. -------------------
    if my_side == -1:
        send_reqs = []
        for child in children:
            lo, hi = spans[side_of(vrank(child, p, args.root))]
            send_reqs.append(
                ctx.isend(child, args.bytes_for(hi - lo), args.tag, payload=buf[lo:hi])
            )
        if send_reqs:
            yield ctx.waitall(send_reqs)
    else:
        lo, hi = spans[my_side]
        req = yield from ctx.recv(parent, args.tag)
        buf[lo:hi] = req.payload
        send_reqs = [
            ctx.isend(child, args.bytes_for(hi - lo), args.tag, payload=buf[lo:hi])
            for child in children
        ]
        if send_reqs:
            yield ctx.waitall(send_reqs)

        # --- phase 2: swap halves with the opposite subtree. -------------
        left = sorted(u for u in range(1, p) if side_of(u) == 0)
        right = sorted(u for u in range(1, p) if side_of(u) == 1)
        mine = left if my_side == 0 else right
        other = right if my_side == 0 else left
        idx = mine.index(v)
        olo, ohi = spans[1 - my_side]
        if idx < len(other):
            partner = rrank(other[idx], p, args.root)
            rreq = yield from ctx.sendrecv(
                partner, partner, args.bytes_for(hi - lo), tag=args.tag + 1,
                payload=buf[lo:hi],
            )
            buf[olo:ohi] = rreq.payload
        else:
            # No opposite partner: the root supplies the missing half.
            req = yield from ctx.recv(args.root, args.tag + 1)
            buf[olo:ohi] = req.payload
    if me == args.root:
        # Serve unbalanced-tree leftovers their missing halves.
        left = sorted(u for u in range(1, p) if side_of(u) == 0)
        right = sorted(u for u in range(1, p) if side_of(u) == 1)
        leftovers: list[tuple[int, int]] = []
        if len(left) > len(right):
            leftovers = [(u, 1) for u in left[len(right):]]
        elif len(right) > len(left):
            leftovers = [(u, 0) for u in right[len(left):]]
        reqs = []
        for u, missing_side in leftovers:
            lo2, hi2 = spans[missing_side]
            reqs.append(
                ctx.isend(rrank(u, p, args.root), args.bytes_for(hi2 - lo2),
                          args.tag + 1, payload=buf[lo2:hi2])
            )
        if reqs:
            yield ctx.waitall(reqs)
    return buf


@register("bcast", "scatter_allgather", ompi_id=8, aliases=("van_de_geijn",),
          description="Binomial scatter of blocks, then ring allgather.")
def bcast_scatter_allgather(ctx, args, data):
    """Van de Geijn broadcast: bandwidth-optimal for large messages.

    Phase 1 scatters ``p`` blocks down a binomial tree (each subtree receives
    only the blocks it owns); phase 2 re-assembles with a ring allgather.
    Falls back to binomial broadcast when the message has fewer items than
    ranks (the scatter would be pointless).
    """
    p, me = ctx.size, ctx.rank
    if args.count < p or p == 1:
        return (yield from _tree_bcast(ctx, args, data, binomial_tree))
    v = vrank(me, p, args.root)
    bounds = np.linspace(0, args.count, p + 1).astype(int)

    def span(vlo: int, vhi: int) -> tuple[int, int]:
        """Item range owned by virtual ranks [vlo, vhi)."""
        return int(bounds[vlo]), int(bounds[min(vhi, p)])

    if me == args.root:
        buf = as_array(data, args.count, "bcast data").copy()
    else:
        buf = np.empty(args.count, dtype=np.asarray(data).dtype if data is not None else float)

    # --- binomial scatter: each node forwards the halves of its span. ---
    # Virtual rank v is responsible for span [v, v + 2^k) at the moment it
    # has received its data, where 2^k is its subtree extent.
    extent = largest_power_of_two_leq(p - 1) * 2 if p > 1 else 1
    if v != 0:
        # Receive own span from the parent.
        mask = 1
        while not (v & mask):
            mask <<= 1
        lo, hi = span(v, v + mask)
        req = yield from ctx.recv(rrank(v ^ mask, p, args.root), args.tag)
        buf[lo:hi] = req.payload
        subtree = mask
    else:
        subtree = extent
    send_reqs = []
    mask = subtree >> 1
    while mask >= 1:
        child = v + mask
        if child < p:
            lo, hi = span(child, child + mask)
            if hi > lo:
                send_reqs.append(
                    ctx.isend(
                        rrank(child, p, args.root),
                        args.bytes_for(hi - lo),
                        args.tag,
                        payload=buf[lo:hi],
                    )
                )
        mask >>= 1
    if send_reqs:
        yield ctx.waitall(send_reqs)

    # --- ring allgather of the p blocks (virtual-rank order). ---
    right = rrank((v + 1) % p, p, args.root)
    left = rrank((v - 1) % p, p, args.root)
    for step in range(p - 1):
        send_block = (v - step) % p
        recv_block = (v - step - 1) % p
        slo, shi = span(send_block, send_block + 1)
        rlo, rhi = span(recv_block, recv_block + 1)
        sreq = ctx.isend(right, args.bytes_for(shi - slo), args.tag + 1, payload=buf[slo:shi])
        rreq = ctx.irecv(left, args.tag + 1)
        yield ctx.waitall(sreq, rreq)
        buf[rlo:rhi] = rreq.payload
    return buf
