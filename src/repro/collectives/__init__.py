"""MPI collective algorithms over the simulated point-to-point layer.

Every algorithm the paper exercises (Table II plus the SimGrid/SMPI-specific
Allreduce variants of Fig. 4b) is implemented from scratch as a generator
operating on a :class:`~repro.sim.mpi.ProcContext`.  Algorithms move real
numpy payloads, so their semantics are testable, while the *modeled* wire
size is decoupled from the payload length (see :class:`CollArgs`).

Use the registry to enumerate or look up algorithms::

    from repro.collectives import get_algorithm, list_algorithms
    list_algorithms("alltoall")          # ['basic_linear', 'bruck', ...]
    algo = get_algorithm("reduce", "binomial")

Importing this package registers all built-in algorithms.
"""

from repro.collectives.base import (
    AlgorithmInfo,
    CollArgs,
    get_algorithm,
    get_algorithm_by_id,
    list_algorithms,
    list_collectives,
    register,
)
from repro.collectives.ops import MAX, MIN, PROD, SUM, ReduceOp
from repro.collectives.api import (
    VECTOR_FAMILIES,
    make_input,
    make_vector_input,
    reference_result,
    run_collective,
)

# Importing the algorithm modules populates the registry.
from repro.collectives import (  # noqa: E402,F401  (import-for-side-effect)
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    reduce_scatter,
    scan,
    scatter,
    smp,
    vector,
)
from repro.collectives.vector import VectorArgs

__all__ = [
    "AlgorithmInfo",
    "CollArgs",
    "ReduceOp",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "register",
    "get_algorithm",
    "get_algorithm_by_id",
    "list_algorithms",
    "list_collectives",
    "make_input",
    "make_vector_input",
    "reference_result",
    "run_collective",
    "VECTOR_FAMILIES",
    "VectorArgs",
]
