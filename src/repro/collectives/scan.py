"""Scan (inclusive) and Exscan (exclusive) prefix-reduction algorithms.

All algorithms take ``(ctx, args, data)`` where ``data`` is this rank's
contribution.  Scan returns ``op(in_0, ..., in_rank)`` on every rank; Exscan
returns ``op(in_0, ..., in_{rank-1})`` (``None`` on rank 0, mirroring MPI's
undefined recvbuf there).

Both the O(p) linear chain and the O(log p) Hillis-Steele-style recursive
doubling variants are provided; the latter requires only associativity, and
the combine order is rank-ascending, so non-commutative operators are safe
in all of them.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import as_array, register
from repro.sim.mpi import ProcContext


@register("scan", "linear", ompi_id=1,
          description="Chain: receive the prefix from rank-1, combine, forward.")
def scan_linear(ctx, args, data):
    me, p = ctx.rank, ctx.size
    own = as_array(data, args.count, "scan data").copy()
    if me > 0:
        req = yield from ctx.recv(me - 1, args.tag)
        own = args.op(np.asarray(req.payload), own)
    if me < p - 1:
        yield from ctx.send(me + 1, args.msg_bytes, args.tag, payload=own)
    return own


@register("scan", "recursive_doubling", ompi_id=2, aliases=("rdb",),
          description="log2(p) rounds; rank exchanges partial prefixes at doubling distances.")
def scan_recursive_doubling(ctx, args, data):
    me, p = ctx.rank, ctx.size
    result = as_array(data, args.count, "scan data").copy()  # prefix so far
    partial = result.copy()  # reduction of the contiguous block seen so far
    distance = 1
    while distance < p:
        dst = me + distance
        src = me - distance
        reqs = []
        if dst < p:
            reqs.append(ctx.isend(dst, args.msg_bytes, args.tag, payload=partial))
        rreq = None
        if src >= 0:
            rreq = ctx.irecv(src, args.tag)
            reqs.append(rreq)
        if reqs:
            yield ctx.waitall(reqs)
        if rreq is not None:
            arrived = np.asarray(rreq.payload)
            # arrived covers ranks [src-distance+1 .. src], all below me.
            result = args.op(arrived, result)
            partial = args.op(arrived, partial)
        distance <<= 1
    return result


@register("exscan", "linear", ompi_id=1,
          description="Chain exclusive prefix: forward op(prefix, own) downstream.")
def exscan_linear(ctx, args, data):
    me, p = ctx.rank, ctx.size
    own = as_array(data, args.count, "exscan data")
    prefix = None
    if me > 0:
        req = yield from ctx.recv(me - 1, args.tag)
        prefix = np.asarray(req.payload)
    if me < p - 1:
        outgoing = own.copy() if prefix is None else args.op(prefix, own)
        yield from ctx.send(me + 1, args.msg_bytes, args.tag, payload=outgoing)
    return prefix


@register("exscan", "recursive_doubling", ompi_id=2, aliases=("rdb",),
          description="Recursive-doubling exclusive prefix (log2(p) rounds).")
def exscan_recursive_doubling(ctx, args, data):
    me, p = ctx.rank, ctx.size
    own = as_array(data, args.count, "exscan data")
    partial = own.copy()
    prefix: np.ndarray | None = None
    distance = 1
    while distance < p:
        dst = me + distance
        src = me - distance
        reqs = []
        if dst < p:
            reqs.append(ctx.isend(dst, args.msg_bytes, args.tag, payload=partial))
        rreq = None
        if src >= 0:
            rreq = ctx.irecv(src, args.tag)
            reqs.append(rreq)
        if reqs:
            yield ctx.waitall(reqs)
        if rreq is not None:
            arrived = np.asarray(rreq.payload)
            prefix = arrived.copy() if prefix is None else args.op(arrived, prefix)
            partial = args.op(arrived, partial)
        distance <<= 1
    return prefix
