"""Deterministic random-number seeding.

Every stochastic component (noise models, random arrival patterns, clock
drift) takes a seed and derives independent per-rank streams so that runs are
reproducible bit-for-bit and adding a rank does not perturb the streams of
the others.
"""

from __future__ import annotations

import numpy as np


def derive_seed(base_seed: int, *components: int | str) -> int:
    """Derive a child seed from a base seed and a path of components.

    Uses :class:`numpy.random.SeedSequence` entropy spawning semantics:
    string components are hashed stably (not with Python's randomized
    ``hash``) so the derivation is reproducible across interpreter runs.
    """
    keys: list[int] = [int(base_seed) & 0xFFFFFFFF]
    for comp in components:
        if isinstance(comp, str):
            acc = 2166136261
            for byte in comp.encode("utf-8"):
                acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
            keys.append(acc)
        else:
            keys.append(int(comp) & 0xFFFFFFFF)
    seq = np.random.SeedSequence(keys)
    return int(seq.generate_state(1, dtype=np.uint32)[0])


def spawn_rng(base_seed: int, *components: int | str) -> np.random.Generator:
    """Create an independent :class:`numpy.random.Generator` for a component."""
    return np.random.default_rng(derive_seed(base_seed, *components))
