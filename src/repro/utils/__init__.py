"""Shared helpers: byte-size parsing/formatting, seeding, validation."""

from repro.utils.units import (
    format_bytes,
    format_time,
    parse_bytes,
    MICROSECOND,
    MILLISECOND,
    KIB,
    MIB,
    GIB,
)
from repro.utils.seeding import spawn_rng, derive_seed

__all__ = [
    "format_bytes",
    "format_time",
    "parse_bytes",
    "spawn_rng",
    "derive_seed",
    "MICROSECOND",
    "MILLISECOND",
    "KIB",
    "MIB",
    "GIB",
]
