"""Byte-size and time unit helpers.

Times inside the simulator are plain floats in **seconds**; message sizes are
integers in **bytes**.  These helpers convert between human-readable strings
("32KiB", "2.5ms") and the internal representation, and format values for the
experiment reports.
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError

MICROSECOND = 1e-6
MILLISECOND = 1e-3

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

_BYTE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KIB,
    "kb": KIB,
    "kib": KIB,
    "m": MIB,
    "mb": MIB,
    "mib": MIB,
    "g": GIB,
    "gb": GIB,
    "gib": GIB,
}

_BYTES_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def parse_bytes(value: int | float | str) -> int:
    """Parse a byte count from an int, float, or string like ``"32KiB"``.

    Raises :class:`ConfigurationError` for negative sizes or unknown units.
    """
    if isinstance(value, bool):
        raise ConfigurationError(f"invalid byte size: {value!r}")
    if isinstance(value, (int, float)):
        if value < 0 or value != int(value):
            raise ConfigurationError(f"invalid byte size: {value!r}")
        return int(value)
    match = _BYTES_RE.match(value)
    if match is None:
        raise ConfigurationError(f"cannot parse byte size {value!r}")
    number, suffix = match.groups()
    factor = _BYTE_SUFFIXES.get(suffix.lower())
    if factor is None:
        raise ConfigurationError(f"unknown byte-size suffix {suffix!r} in {value!r}")
    result = float(number) * factor
    if result != int(result):
        raise ConfigurationError(f"byte size {value!r} is not an integer number of bytes")
    return int(result)


def format_bytes(nbytes: int) -> str:
    """Render a byte count the way the paper's axes do (2B ... 1MiB)."""
    if nbytes < 0:
        raise ConfigurationError(f"negative byte size: {nbytes}")
    for factor, suffix in ((GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if nbytes >= factor and nbytes % factor == 0:
            return f"{nbytes // factor}{suffix}"
    return f"{nbytes}B"


def format_time(seconds: float) -> str:
    """Render a duration with an auto-selected unit (s, ms, us, ns)."""
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.3f}s"
    if magnitude >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    if magnitude >= 1e-6:
        return f"{seconds * 1e6:.3f}us"
    return f"{seconds * 1e9:.1f}ns"
