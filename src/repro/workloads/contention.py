"""Multi-job fabric contention: interleaved workloads on one platform.

Real clusters rarely run one job per fabric.  :func:`run_contended` places
several workloads on a single simulated platform — ranks interleave
round-robin across jobs, so co-located jobs share node NICs and their
traffic contends under the existing shared-NIC model — and runs them
concurrently in one engine.  Each job's collective calls are labeled
``"{job}:{collective}/{algorithm}"``, so link attribution
(:meth:`~repro.obs.analysis.TraceAnalysis.link_attribution`) splits port
wait time between the jobs that caused it.

Jobs see a private communicator through :class:`GroupContext`, a
rank-translating proxy over :class:`~repro.sim.mpi.ProcContext`: every
collective algorithm runs unmodified on local ranks ``0..size-1`` while
messages travel between the underlying global ranks.  Contended runs use
the exact engine only (flow plans assume a single job owns the fabric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.bench.micro import MicroBenchmark
from repro.obs.analysis import TraceAnalysis
from repro.obs.context import current as _obs_current
from repro.selection.table import SelectionTable
from repro.sim.mpi import TAG_BARRIER, TAG_P2P, run_processes
from repro.workloads.runner import resolve_algorithm
from repro.workloads.spec import WorkloadSpec, build_plan, iteration_body


class GroupContext:
    """A job-local communicator view over a global :class:`ProcContext`.

    Local ranks ``0..size-1`` map onto the job's global rank set; all
    messaging translates peers and delegates to the wrapped context, so the
    collective algorithms (which only see ``rank``/``size`` and the p2p
    surface) run unchanged inside a sub-job.  ``obs_rank`` stays global so
    trace rank tracks never collide between jobs.
    """

    __slots__ = ("_ctx", "_ranks", "rank", "size", "obs_rank", "user")

    def __init__(self, ctx, ranks: Sequence[int]) -> None:
        self._ctx = ctx
        self._ranks = tuple(int(r) for r in ranks)
        self.size = len(self._ranks)
        self.rank = self._ranks.index(ctx.rank)
        self.obs_rank = ctx.rank
        self.user: dict[str, Any] = ctx.user

    # -- delegation ------------------------------------------------------ #

    @property
    def engine(self):
        return self._ctx.engine

    @property
    def noise(self):
        return self._ctx.noise

    @property
    def _fiber(self):
        return self._ctx._fiber

    def time(self) -> float:
        return self._ctx.time()

    def sleep(self, seconds: float) -> tuple:
        return self._ctx.sleep(seconds)

    def wait_until(self, when: float) -> tuple:
        return self._ctx.wait_until(when)

    def compute(self, seconds: float) -> tuple:
        return self._ctx.compute(seconds)

    def waitall(self, *requests) -> tuple:
        return self._ctx.waitall(*requests)

    wait = waitall

    def waitany(self, *requests) -> tuple:
        return self._ctx.waitany(*requests)

    def start_fiber(self, fn):
        ranks = self._ranks
        return self._ctx.start_fiber(lambda inner: fn(GroupContext(inner, ranks)))

    # -- translated messaging -------------------------------------------- #

    def _global(self, local: int) -> int:
        if not (0 <= local < self.size):
            raise ProtocolError(
                f"peer {local} outside group of {self.size} ranks "
                "(wildcards are unsupported in GroupContext)"
            )
        return self._ranks[local]

    def isend(self, dst: int, nbytes: int, tag: int = TAG_P2P,
              payload=None, sync: bool = False):
        return self._ctx.isend(self._global(dst), nbytes, tag, payload,
                               sync=sync)

    def irecv(self, src: int, tag: int = TAG_P2P, nbytes: int = 0):
        return self._ctx.irecv(self._global(src), tag, nbytes)

    def send(self, dst: int, nbytes: int, tag: int = TAG_P2P, payload=None):
        req = self.isend(dst, nbytes, tag, payload)
        yield self.waitall(req)
        return req

    def recv(self, src: int, tag: int = TAG_P2P, nbytes: int = 0):
        req = self.irecv(src, tag, nbytes)
        yield self.waitall(req)
        return req

    def sendrecv(self, dst: int, src: int, nbytes: int,
                 recv_nbytes: int | None = None, tag: int = TAG_P2P,
                 payload=None):
        sreq = self.isend(dst, nbytes, tag, payload)
        rreq = self.irecv(src, tag,
                          recv_nbytes if recv_nbytes is not None else nbytes)
        yield self.waitall(sreq, rreq)
        return rreq

    def barrier(self, tag: int = TAG_BARRIER):
        """Dissemination barrier over the *group's* ranks."""
        p, me = self.size, self.rank
        if p == 1:
            return
        distance = 1
        round_no = 0
        while distance < p:
            dst = (me + distance) % p
            src = (me - distance) % p
            yield from self.sendrecv(dst, src, nbytes=1, tag=tag + round_no)
            distance *= 2
            round_no += 1


@dataclass
class JobResult:
    """One job's outcome inside a contended run."""

    label: str
    spec: WorkloadSpec
    ranks: tuple[int, ...]
    runtime: float
    resolved: dict[str, str] = field(default_factory=dict)
    phase_mpi_time: dict[str, float] = field(default_factory=dict)


@dataclass
class ContentionResult:
    """Outcome of a multi-job contended run."""

    jobs: list[JobResult]
    final_time: float
    #: ``link_attribution()`` rows when the session recorded link telemetry
    #: (empty otherwise).  Activities carry the per-job labels.
    attribution: list[dict] = field(default_factory=list)

    def activities(self) -> set[str]:
        return {row["activity"] for row in self.attribution}

    def wait_by_job(self) -> dict[str, float]:
        """Total attributed port wait per job label (from activity prefixes)."""
        out: dict[str, float] = {}
        for row in self.attribution:
            activity = row["activity"]
            job = activity.split(":", 1)[0] if ":" in activity else activity
            out[job] = out.get(job, 0.0) + row["wait"]
        return out


def run_contended(
    workloads: Sequence[WorkloadSpec],
    bench: MicroBenchmark,
    labels: Sequence[str] | None = None,
    table: SelectionTable | None = None,
) -> ContentionResult:
    """Run several workloads concurrently on ``bench``'s platform.

    Global ranks interleave round-robin across jobs (job *j* of *n* owns
    ranks ``j, j+n, j+2n, ...``), so every node hosts ranks of every job
    and inter-node traffic of all jobs contends on the shared node NICs.
    """
    njobs = len(workloads)
    if njobs < 2:
        raise ConfigurationError("contended runs need at least 2 workloads")
    p_total = bench.num_ranks
    if p_total < 2 * njobs:
        raise ConfigurationError(
            f"{p_total} ranks cannot host {njobs} jobs of >= 2 ranks each"
        )
    if labels is None:
        labels = [f"job{j}-{spec.name}" for j, spec in enumerate(workloads)]
    if len(labels) != njobs or len(set(labels)) != njobs:
        raise ConfigurationError("labels must be distinct, one per workload")
    progs: list = [None] * p_total
    rank_sets = [tuple(range(j, p_total, njobs)) for j in range(njobs)]
    for spec, label, ranks in zip(workloads, labels, rank_sets):
        gp = len(ranks)
        plan = build_plan(spec.phases, gp,
                          lambda ph, gp=gp: resolve_algorithm(ph, gp, table))

        def make_prog(spec=spec, label=label, ranks=ranks, plan=plan):
            def prog(ctx):
                g = GroupContext(ctx, ranks)
                my_plan = [(key, coll, algo, args, inputs[g.rank])
                           for key, coll, algo, args, inputs in plan]
                phase_time = {key: 0.0 for key, *_ in plan}
                yield from g.barrier()
                start = g.time()
                for _it in range(spec.warmup + spec.iterations):
                    yield from iteration_body(g, my_plan, spec.compute,
                                              spec.overlap, phase_time,
                                              label_prefix=label)
                return g.time() - start, phase_time

            return prog

        for r in ranks:
            progs[r] = make_prog()
    octx = _obs_current()
    with octx.wall_span("workload.contend", track="workload",
                        args={"jobs": list(labels), "ranks": p_total}):
        run = run_processes(bench.platform, progs, params=bench.params)
    jobs = []
    for spec, label, ranks in zip(workloads, labels, rank_sets):
        results = [run.rank_results[r] for r in ranks]
        plan_keys = list(results[0][1])
        jobs.append(JobResult(
            label=label, spec=spec, ranks=ranks,
            runtime=float(max(r[0] for r in results)),
            phase_mpi_time={
                key: float(np.mean([r[1][key] for r in results]))
                for key in plan_keys
            },
        ))
    # Resolved algorithms are recomputed cheaply (build_plan already did the
    # lookups; redoing them avoids threading tuples through the closures).
    for job in jobs:
        gp = len(job.ranks)
        job.resolved = {
            ph.key: resolve_algorithm(ph, gp, table) for ph in job.spec.phases
        }
    attribution: list[dict] = []
    if octx.enabled and getattr(octx, "links", None) is not None:
        attribution = TraceAnalysis.from_context(octx).link_attribution()
    return ContentionResult(
        jobs=jobs,
        final_time=float(run.final_time),
        attribution=attribution,
    )


__all__ = ["GroupContext", "JobResult", "ContentionResult", "run_contended"]
