"""Run a :class:`WorkloadSpec`: application loop + per-phase tuning cells.

A workload run has two halves:

1. **Loop simulation** — the whole workload (warmup + measured iterations,
   compute, overlap mode, optional arrival-pattern skew) runs as one
   simulated program per rank, producing the end-to-end runtime, per-phase
   MPI time, and — under an observability session — the trace that the
   replay frontend can later reconstruct.
2. **Cell fan-out** — every phase becomes a :class:`~repro.bench.executor.CellSpec`
   executed through the shared :class:`~repro.bench.executor.CellExecutor`,
   so workload runs hit the same cache, obs-session merge, and tuning-store
   ingest as campaign sweeps.  This is how the zoo grows the store's
   scenario coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.bench.executor import CellExecutor, CellSpec
from repro.bench.micro import MicroBenchmark
from repro.bench.results import BenchResult
from repro.collectives.tuned import fixed_decision
from repro.obs.context import current as _obs_current
from repro.patterns.generator import ArrivalPattern
from repro.selection.table import SelectionTable
from repro.sim.mpi import run_processes
from repro.sim.noise import NoiseModel
from repro.workloads.spec import WorkloadSpec, build_plan, iteration_body


def resolve_algorithm(phase, num_ranks: int,
                      table: SelectionTable | None = None) -> str:
    """Priority: explicit phase algorithm → selection table → fixed rules."""
    if phase.algorithm is not None:
        return phase.algorithm
    if table is not None:
        try:
            return table.lookup(phase.collective, num_ranks,
                                phase.effective_msg_bytes)
        except ConfigurationError:
            pass  # no rules for this collective/comm size: fall through
    return fixed_decision(phase.collective, num_ranks,
                          phase.effective_msg_bytes)


@dataclass
class WorkloadRunResult:
    """Everything one workload run produced."""

    spec: WorkloadSpec
    runtime: float
    resolved: dict[str, str] = field(default_factory=dict)
    phase_mpi_time: dict[str, float] = field(default_factory=dict)
    cell_specs: list[CellSpec] = field(default_factory=list)
    cell_results: list[BenchResult] = field(default_factory=list)

    @property
    def dominant_phase(self) -> str:
        return max(self.phase_mpi_time, key=self.phase_mpi_time.get)

    def to_dict(self) -> dict:
        return {
            "workload": self.spec.name,
            "runtime": self.runtime,
            "resolved": self.resolved,
            "phase_mpi_time": self.phase_mpi_time,
            "cells": [r.to_dict() for r in self.cell_results],
        }


def run_workload(
    spec: WorkloadSpec,
    bench: MicroBenchmark,
    table: SelectionTable | None = None,
    executor: CellExecutor | None = None,
    pattern: ArrivalPattern | None = None,
    label: str | None = None,
    cells: bool = True,
) -> WorkloadRunResult:
    """Execute ``spec`` on ``bench``'s platform; see the module docstring.

    ``pattern`` overrides the spec's embedded arrival pattern.  ``label``
    namespaces link attribution (used by the contention runner).  With
    ``cells=False`` only the loop simulation runs (no executor fan-out).
    """
    p = bench.num_ranks
    if pattern is None and spec.pattern is not None:
        pattern = spec.pattern.build()
    if pattern is not None and pattern.num_ranks != p:
        raise ConfigurationError(
            f"workload pattern has {pattern.num_ranks} ranks, platform has {p}"
        )
    plan = build_plan(spec.phases, p, lambda ph: resolve_algorithm(ph, p, table))
    resolved = {key: algorithm for key, _c, algorithm, _a, _i in plan}
    noise = (NoiseModel(bench.noise_profile, p, seed=bench.seed)
             if bench.noise_profile != "none" else None)
    skews = pattern.skews if pattern is not None else None
    warmup, measured = spec.warmup, spec.iterations
    compute, overlap = spec.compute, spec.overlap
    octx = _obs_current()

    def prog(ctx):
        me = ctx.rank
        my_plan = [(key, coll, algo, args, inputs[me])
                   for key, coll, algo, args, inputs in plan]
        phase_time = {key: 0.0 for key, *_ in plan}
        yield from ctx.barrier()
        for _it in range(warmup):
            yield from iteration_body(ctx, my_plan, compute, overlap,
                                      None, label_prefix=label)
        yield from ctx.barrier()
        # The arrival pattern skews each rank's entry into the measured
        # loop; the precise per-pattern measurement happens in the phase
        # cells below, where MicroBenchmark imposes skews per repetition.
        if skews is not None:
            yield ctx.sleep(float(skews[me]))
        start = ctx.time()
        for _it in range(measured):
            yield from iteration_body(ctx, my_plan, compute, overlap,
                                      phase_time, label_prefix=label)
        return ctx.time() - start, phase_time

    with octx.wall_span(
        "workload.run", track="workload",
        args={"workload": spec.name, "phases": len(spec.phases),
              "iterations": measured, "overlap": overlap},
    ):
        run = run_processes(bench.platform, prog, params=bench.params,
                            noise=noise)
    if octx.enabled:
        octx.metrics.counter("workload.runs", {"workload": spec.name}).inc()
    runtime = float(max(r[0] for r in run.rank_results))
    phase_mpi = {
        key: float(np.mean([r[1][key] for r in run.rank_results]))
        for key, *_ in plan
    }

    result = WorkloadRunResult(
        spec=spec, runtime=runtime, resolved=resolved,
        phase_mpi_time=phase_mpi,
    )
    if not cells:
        return result
    for ph, (key, collective, algorithm, _args, _inputs) in zip(spec.phases, plan):
        if ph.is_vector:
            kwargs = {"counts": ph.counts, "item_bytes": ph.item_bytes}
        else:
            from repro.collectives.ops import get_op

            kwargs = {"op": get_op(ph.op)}
        result.cell_specs.append(CellSpec.from_bench(
            bench, collective, algorithm, ph.effective_msg_bytes, pattern,
            **kwargs,
        ))
    own_executor = executor is None
    if own_executor:
        executor = CellExecutor.from_env()
    try:
        result.cell_results = executor.run_cells(result.cell_specs)
    finally:
        if own_executor:
            executor.close()
    return result


__all__ = ["WorkloadRunResult", "resolve_algorithm", "run_workload"]
