"""Trace-driven replay: turn a recorded obs trace back into a workload.

Any trace written by an observability session (JSONL or Perfetto — both
load through :class:`~repro.obs.analysis.TraceAnalysis`) contains, on the
rank tracks, one ``{collective}/{algorithm}`` span per collective call with
its ``msg_bytes`` argument.  This module reconstructs from those spans:

* the *phase sequence* — the per-iteration cycle of collective calls,
* the *arrival pattern* — per-rank mean delay versus first arrival
  (Section V-A of the paper), embedded into the spec as its pattern,

so a measured run becomes a replayable benchmark scenario: feed the
returned :class:`~repro.workloads.spec.WorkloadSpec` to
:func:`~repro.workloads.runner.run_workload` and the phase cells re-measure
under the *recorded* arrival pattern.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import TraceFormatError
from repro.bench.executor import PatternSpec
from repro.collectives import VECTOR_FAMILIES
from repro.obs.analysis import TraceAnalysis, _is_rank_track
from repro.patterns.generator import ArrivalPattern
from repro.workloads.spec import CollectivePhase, WorkloadSpec


def load_analysis(source) -> TraceAnalysis:
    """Coerce a path or an existing analysis into a :class:`TraceAnalysis`."""
    if isinstance(source, TraceAnalysis):
        return source
    return TraceAnalysis.from_file(Path(source))


def pattern_from_trace(source, collective: str | None = None,
                       name: str = "replayed") -> ArrivalPattern:
    """The recorded arrival pattern (per-rank mean delay vs first arrival)."""
    return load_analysis(source).arrival_pattern(collective, name=name)


def _phase_sequence(ana: TraceAnalysis) -> tuple[list[tuple[str, float]], int]:
    """The per-iteration phase cycle and the iteration count.

    Reads the lowest rank's time-ordered collective spans as
    ``(name, msg_bytes)`` tuples and factors the sequence into
    ``cycle × iterations``.  Phases duplicated verbatim inside one
    iteration factor into extra iterations instead — an acceptable
    degeneracy, since the replayed workload runs the same calls either way.
    """
    per_rank: dict[int, list[tuple[float, str, float]]] = {}
    for s in ana.spans:
        track = s["track"]
        if not _is_rank_track(track) or "/" not in s["name"]:
            continue
        args = s.get("args") or {}
        per_rank.setdefault(int(track[5:]), []).append(
            (float(s["start"]), s["name"], float(args.get("msg_bytes", 0.0)))
        )
    if not per_rank:
        raise TraceFormatError("trace contains no collective spans to replay")
    ref = sorted(per_rank[min(per_rank)])
    seq = [(name, msg_bytes) for _start, name, msg_bytes in ref]
    iterations = seq.count(seq[0])
    if iterations == 0 or len(seq) % iterations != 0:
        return seq, 1
    cycle = seq[: len(seq) // iterations]
    if cycle * iterations != seq:
        return seq, 1
    return cycle, iterations


def workload_from_trace(source, name: str | None = None,
                        max_iterations: int | None = None) -> WorkloadSpec:
    """Reconstruct a replayable :class:`WorkloadSpec` from a recorded trace.

    The spec carries the recorded arrival pattern; vector-collective phases
    get a uniform count schedule matching the recorded mean block size
    (per-pair skew is not recoverable from span-level data).
    """
    ana = load_analysis(source)
    cycle, iterations = _phase_sequence(ana)
    pattern = ana.arrival_pattern(name=f"replay:{name or 'trace'}")
    p = pattern.num_ranks
    phases = []
    for span_name, msg_bytes in cycle:
        collective, algorithm = span_name.split("/", 1)
        if collective in VECTOR_FAMILIES:
            items = max(1, int(round(msg_bytes / 8.0)))
            counts = (tuple(tuple(0 if i == j else items for j in range(p))
                            for i in range(p))
                      if collective == "alltoallv"
                      else tuple(items for _ in range(p)))
            phases.append(CollectivePhase(collective, algorithm=algorithm,
                                          counts=counts, item_bytes=8.0))
        else:
            phases.append(CollectivePhase(collective, msg_bytes=msg_bytes,
                                          algorithm=algorithm))
    if max_iterations is not None:
        iterations = min(iterations, max_iterations)
    return WorkloadSpec(
        name=name or "replay",
        phases=tuple(phases),
        iterations=iterations,
        warmup=0,
        compute=0.0,
        overlap="sequential",
        pattern=PatternSpec.from_pattern(pattern),
        description=f"replayed from trace: {len(cycle)} phase(s) x "
                    f"{iterations} iteration(s), {p} ranks",
    )


__all__ = ["load_analysis", "pattern_from_trace", "workload_from_trace"]
