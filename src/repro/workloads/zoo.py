"""Registry of built-in workload generators — the scenario zoo.

Each generator builds a :class:`~repro.workloads.spec.WorkloadSpec` for a
given rank count.  Generators are deterministic in ``seed`` and shrink
under ``fast=True`` (CI smoke budgets).  Register new ones with
:func:`register_workload`; the CLI (``repro-mpi workload list``) and the
smoke tests enumerate this registry.

The built-ins cover the structures the selection literature calls out as
workload-dependent: PARAM-style size sweeps, DLRM embedding-exchange
``alltoallv`` with skewed per-pair count matrices, data-parallel allreduce
bucket schedules, ragged ``allgatherv``, and the mixed compute+collective
timestep generalizing :mod:`repro.apps`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.spec import CollectivePhase, WorkloadSpec


@dataclass(frozen=True)
class WorkloadInfo:
    """Registry entry: a named workload builder."""

    name: str
    builder: Callable[..., WorkloadSpec]
    description: str


_ZOO: dict[str, WorkloadInfo] = {}


def register_workload(name: str, description: str = ""):
    """Decorator registering ``fn(num_ranks, fast=False, seed=0)`` under ``name``."""

    def deco(fn):
        if name in _ZOO:
            raise ConfigurationError(f"workload {name!r} already registered")
        _ZOO[name] = WorkloadInfo(name=name, builder=fn, description=description)
        return fn

    return deco


def list_workloads() -> list[WorkloadInfo]:
    """Every registered workload, sorted by name."""
    return [_ZOO[name] for name in sorted(_ZOO)]


def get_workload(name: str) -> WorkloadInfo:
    info = _ZOO.get(name)
    if info is None:
        known = ", ".join(sorted(_ZOO)) or "none"
        raise ConfigurationError(f"unknown workload {name!r}; registered: {known}")
    return info


def build_workload(name: str, num_ranks: int, fast: bool = False,
                   seed: int = 0) -> WorkloadSpec:
    """Instantiate a registered workload for ``num_ranks`` ranks."""
    if num_ranks < 2:
        raise ConfigurationError("workloads need at least 2 ranks")
    return get_workload(name).builder(num_ranks, fast=fast, seed=seed)


# --------------------------------------------------------------------------- #
# Built-in generators
# --------------------------------------------------------------------------- #

@register_workload(
    "param_sweep",
    "PARAM-comms-style allreduce size sweep (begin/end/factor schedule)",
)
def param_sweep(num_ranks: int, fast: bool = False, seed: int = 0) -> WorkloadSpec:
    """Geometric size sweep, one phase per size — PARAM's ``--b/--e/--f``."""
    begin, end, factor = (64, 1024, 4) if fast else (64, 65536, 4)
    sizes = []
    size = begin
    while size <= end:
        sizes.append(size)
        size *= factor
    return WorkloadSpec(
        name="param_sweep",
        phases=tuple(CollectivePhase("allreduce", float(s), count=16)
                     for s in sizes),
        iterations=2 if fast else 4,
        warmup=1,
        compute=0.0,
        overlap="sequential",
        description=f"allreduce sweep {begin}B..{end}B x{factor} "
                    f"({len(sizes)} sizes)",
    )


@register_workload(
    "dlrm_embedding",
    "DLRM-style embedding exchange: skewed alltoallv + dense allreduce",
)
def dlrm_embedding(num_ranks: int, fast: bool = False, seed: int = 0) -> WorkloadSpec:
    """Embedding-table alltoallv with hot ranks, then a dense-layer allreduce.

    The per-pair count matrix is drawn once (deterministically from
    ``seed``) and a few destination ranks are made "hot" — the table-size
    imbalance that makes DLRM exchanges skewed in practice.
    """
    p = num_ranks
    rng = np.random.default_rng(seed)
    base = 16 if fast else 64
    counts = rng.integers(base // 2, base + base // 2, size=(p, p))
    hot = rng.choice(p, size=max(1, p // 8), replace=False)
    counts[:, hot] *= 4
    np.fill_diagonal(counts, 0)
    return WorkloadSpec(
        name="dlrm_embedding",
        phases=(
            CollectivePhase("alltoallv", counts=tuple(map(tuple, counts.tolist())),
                            item_bytes=8.0),
            CollectivePhase("allreduce", 4096.0 if fast else 16384.0, count=16),
        ),
        iterations=2 if fast else 4,
        warmup=1,
        compute=1e-4,
        overlap="sequential",
        description=f"skewed (p,p) embedding exchange, {len(hot)} hot ranks, "
                    "plus dense-gradient allreduce",
    )


@register_workload(
    "ddp_buckets",
    "data-parallel gradient buckets: split compute + descending allreduces",
)
def ddp_buckets(num_ranks: int, fast: bool = False, seed: int = 0) -> WorkloadSpec:
    """Bucketed gradient allreduce, compute sliced between buckets.

    Buckets fire largest-last (backward-pass order reversed into launch
    order), with the compute budget split across them — the pipelining a
    DDP trainer gets from overlapping backward with gradient reduction.
    """
    sizes = (8192.0, 4096.0, 2048.0) if fast else (262144.0, 131072.0, 65536.0, 32768.0)
    return WorkloadSpec(
        name="ddp_buckets",
        phases=tuple(CollectivePhase("allreduce", s, count=32) for s in sizes),
        iterations=2 if fast else 4,
        warmup=1,
        compute=5e-4 if fast else 2e-3,
        overlap="split",
        description=f"{len(sizes)} gradient buckets, compute split per bucket",
    )


@register_workload(
    "halo_mix",
    "mixed timestep: alltoall halo + residual allreduce + control bcast",
)
def halo_mix(num_ranks: int, fast: bool = False, seed: int = 0) -> WorkloadSpec:
    """The :mod:`repro.apps` mixed proxy generalized into a workload spec."""
    halo = 8192.0 if fast else 32768.0
    return WorkloadSpec(
        name="halo_mix",
        phases=(
            CollectivePhase("alltoall", halo, count=16),
            CollectivePhase("allreduce", 8.0, count=8),
            CollectivePhase("bcast", 1024.0, count=16),
        ),
        iterations=3 if fast else 6,
        warmup=1,
        compute=5e-4,
        overlap="sequential",
        description="CFD-ish timestep: halo exchange, residual reduce, control bcast",
    )


@register_workload(
    "allgatherv_ragged",
    "ragged allgatherv: linearly growing per-rank blocks",
)
def allgatherv_ragged(num_ranks: int, fast: bool = False, seed: int = 0) -> WorkloadSpec:
    """Uneven-decomposition allgatherv: block i holds ``base*(i+1)`` items."""
    p = num_ranks
    base = 4 if fast else 16
    counts = tuple(base * (i + 1) for i in range(p))
    return WorkloadSpec(
        name="allgatherv_ragged",
        phases=(CollectivePhase("allgatherv", counts=counts, item_bytes=8.0),),
        iterations=2 if fast else 4,
        warmup=1,
        compute=0.0,
        overlap="sequential",
        description=f"per-rank blocks ramp {base}..{base * p} items",
    )


__all__ = [
    "WorkloadInfo",
    "register_workload",
    "list_workloads",
    "get_workload",
    "build_workload",
]
