"""Declarative workload model: phases, schedules, and overlap modes.

A :class:`WorkloadSpec` describes a communication workload the way PARAM's
comms benchmark describes one (SNIPPETS.md Snippet 2): an iterated loop of
collective *phases* — each with its own size/count schedule and optionally
its own algorithm — separated by per-rank compute, with warmup iterations
excluded from measurement.  Three comm/compute *overlap modes* cover the
structures real applications exhibit:

* ``"sequential"`` — one compute block, then the phases back to back (the
  classic bulk-synchronous timestep; what :mod:`repro.apps.mixed` models).
* ``"split"`` — the compute budget is divided evenly and a slice runs
  before each phase (gradient-bucket pipelining in data-parallel training).
* ``"interleaved"`` — every phase runs on its own fiber concurrently with
  the compute block and the iteration joins at the end (non-blocking
  collectives progressed by hardware offload).

Specs are value objects: ``to_dict``/``from_dict`` round-trip exactly, so
workloads serialize into run manifests and replay files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.bench.executor import PatternSpec
from repro.bench.micro import freeze_counts
from repro.collectives import (
    VECTOR_FAMILIES,
    CollArgs,
    VectorArgs,
    make_input,
    make_vector_input,
    run_collective,
)
from repro.collectives.ops import get_op
from repro.sim.mpi import TAG_COLLECTIVE

OVERLAP_MODES = ("sequential", "split", "interleaved")


@dataclass(frozen=True)
class CollectivePhase:
    """One collective call site of a workload iteration.

    Regular collectives use ``msg_bytes``/``count``; vector collectives
    (:data:`~repro.collectives.VECTOR_FAMILIES`) use ``counts`` — a
    length-p schedule, or a (p, p) per-pair matrix for alltoallv — plus
    ``item_bytes``.  ``algorithm=None`` defers selection to the resolver
    (selection table, then fixed decision logic).
    """

    collective: str
    msg_bytes: float = 0.0
    count: int = 32
    algorithm: str | None = None
    counts: tuple | None = None
    item_bytes: float = 8.0
    op: str = "sum"

    def __post_init__(self) -> None:
        if self.msg_bytes < 0 or self.count <= 0:
            raise ConfigurationError("invalid phase parameters")
        if self.counts is not None:
            object.__setattr__(self, "counts", freeze_counts(self.counts))
            if self.collective not in VECTOR_FAMILIES:
                raise ConfigurationError(
                    f"counts given but {self.collective!r} is not a vector "
                    f"collective {VECTOR_FAMILIES}"
                )
        elif self.collective in VECTOR_FAMILIES:
            raise ConfigurationError(
                f"vector collective {self.collective!r} needs a counts schedule"
            )

    @property
    def is_vector(self) -> bool:
        return self.counts is not None

    @property
    def effective_msg_bytes(self) -> float:
        """The size coordinate: mean per-block wire bytes for vector phases."""
        if self.is_vector:
            return VectorArgs(counts=self.counts,
                              item_bytes=self.item_bytes).msg_bytes
        return self.msg_bytes

    @property
    def key(self) -> str:
        return f"{self.collective}@{int(self.effective_msg_bytes)}B"

    def to_dict(self) -> dict:
        d = {
            "collective": self.collective,
            "msg_bytes": self.msg_bytes,
            "count": self.count,
            "algorithm": self.algorithm,
            "op": self.op,
        }
        if self.counts is not None:
            d["counts"] = ([list(row) for row in self.counts]
                           if isinstance(self.counts[0], tuple)
                           else list(self.counts))
            d["item_bytes"] = self.item_bytes
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "CollectivePhase":
        return cls(
            collective=d["collective"],
            msg_bytes=float(d.get("msg_bytes", 0.0)),
            count=int(d.get("count", 32)),
            algorithm=d.get("algorithm"),
            counts=(freeze_counts(d["counts"])
                    if d.get("counts") is not None else None),
            item_bytes=float(d.get("item_bytes", 8.0)),
            op=d.get("op", "sum"),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete declarative workload: phases × iterations under a pattern."""

    name: str
    phases: tuple[CollectivePhase, ...] = ()
    iterations: int = 4
    warmup: int = 1
    compute: float = 0.0
    overlap: str = "sequential"
    pattern: PatternSpec | None = None
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(self.phases))
        if not self.phases:
            raise ConfigurationError("workload needs at least one phase")
        if self.iterations <= 0 or self.warmup < 0:
            raise ConfigurationError("iterations must be > 0, warmup >= 0")
        if self.compute < 0:
            raise ConfigurationError("compute must be non-negative")
        if self.overlap not in OVERLAP_MODES:
            raise ConfigurationError(
                f"unknown overlap mode {self.overlap!r}; "
                f"expected one of {OVERLAP_MODES}"
            )

    @property
    def collectives(self) -> tuple[str, ...]:
        """Distinct collective families, in phase order."""
        seen: list[str] = []
        for ph in self.phases:
            if ph.collective not in seen:
                seen.append(ph.collective)
        return tuple(seen)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "iterations": self.iterations,
            "warmup": self.warmup,
            "compute": self.compute,
            "overlap": self.overlap,
            "pattern": self.pattern.to_dict() if self.pattern else None,
            "phases": [ph.to_dict() for ph in self.phases],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WorkloadSpec":
        raw_pattern = d.get("pattern")
        pattern = (PatternSpec(name=raw_pattern["name"],
                               skews=tuple(float(s)
                                           for s in raw_pattern["skews"]))
                   if raw_pattern else None)
        return cls(
            name=d["name"],
            phases=tuple(CollectivePhase.from_dict(p) for p in d["phases"]),
            iterations=int(d.get("iterations", 4)),
            warmup=int(d.get("warmup", 1)),
            compute=float(d.get("compute", 0.0)),
            overlap=d.get("overlap", "sequential"),
            pattern=pattern,
            description=d.get("description", ""),
        )


# --------------------------------------------------------------------------- #
# Execution plan + shared iteration body
# --------------------------------------------------------------------------- #

def build_plan(phases, p: int, resolve) -> list[tuple]:
    """Resolve phases into ``(key, collective, algorithm, args, inputs)``.

    ``resolve(phase)`` supplies the algorithm when the phase leaves it open.
    Each phase gets its own tag stride so interleaved phases never
    cross-match; ``inputs`` holds every rank's deterministic input.
    Duplicate phase keys (same collective and size twice) are suffixed with
    their index so accounting dictionaries stay per-phase.
    """
    plan = []
    seen: set[str] = set()
    for idx, ph in enumerate(phases):
        algorithm = ph.algorithm if ph.algorithm is not None else resolve(ph)
        if ph.is_vector:
            args = VectorArgs(counts=ph.counts, item_bytes=ph.item_bytes,
                              tag=TAG_COLLECTIVE + 500 + 97 * idx)
            inputs = [make_vector_input(ph.collective, r, p, args)
                      for r in range(p)]
        else:
            args = CollArgs(count=ph.count, msg_bytes=ph.msg_bytes,
                            op=get_op(ph.op), tag=TAG_COLLECTIVE + 97 * idx)
            inputs = [make_input(ph.collective, r, p, ph.count)
                      for r in range(p)]
        key = ph.key
        if key in seen:
            key = f"{key}#{idx}"
        seen.add(key)
        plan.append((key, ph.collective, algorithm, args, inputs))
    return plan


def _phase_label(prefix: str | None, collective: str, algorithm: str):
    return f"{prefix}:{collective}/{algorithm}" if prefix else None


def iteration_body(ctx, plan, compute: float, overlap: str,
                   phase_time: dict | None = None,
                   label_prefix: str | None = None):
    """Generator: one workload iteration on one rank.

    ``plan`` entries are ``(key, collective, algorithm, args, data)`` with
    ``data`` already this rank's input.  ``phase_time`` (when given)
    accumulates per-phase MPI seconds; ``label_prefix`` namespaces link
    attribution (multi-job runs).  This is the single implementation of the
    overlap modes — :class:`repro.apps.mixed.MixedProxyApp` and the
    workload runner both route through it.
    """
    if overlap == "sequential":
        if compute > 0:
            yield ctx.compute(compute)
        for key, collective, algorithm, args, data in plan:
            before = ctx.time()
            yield from run_collective(
                ctx, collective, algorithm, args, data,
                label=_phase_label(label_prefix, collective, algorithm),
            )
            if phase_time is not None:
                phase_time[key] += ctx.time() - before
    elif overlap == "split":
        chunk = compute / len(plan)
        for key, collective, algorithm, args, data in plan:
            if chunk > 0:
                yield ctx.compute(chunk)
            before = ctx.time()
            yield from run_collective(
                ctx, collective, algorithm, args, data,
                label=_phase_label(label_prefix, collective, algorithm),
            )
            if phase_time is not None:
                phase_time[key] += ctx.time() - before
    else:  # interleaved
        handles = []
        for entry in plan:
            def comm(cctx, entry=entry):
                key, collective, algorithm, args, data = entry
                before = cctx.time()
                yield from run_collective(
                    cctx, collective, algorithm, args, data,
                    label=_phase_label(label_prefix, collective, algorithm),
                )
                return key, cctx.time() - before

            handles.append(ctx.start_fiber(comm))
        if compute > 0:
            yield ctx.compute(compute)
        yield ctx.waitall(handles)
        if phase_time is not None:
            for handle in handles:
                key, elapsed = handle.result
                phase_time[key] += elapsed


__all__ = [
    "OVERLAP_MODES",
    "CollectivePhase",
    "WorkloadSpec",
    "build_plan",
    "iteration_body",
]
