"""Workload zoo and trace-driven replay — scenarios beyond the NAS FT point.

This package turns the single-scenario evaluation of the paper into a
scenario *zoo*:

* :mod:`repro.workloads.spec` — the declarative :class:`WorkloadSpec` model
  (phases, schedules, compute, warmup, overlap modes) and the shared
  iteration body every runner uses.
* :mod:`repro.workloads.zoo` — registered built-in generators (PARAM-style
  sweeps, DLRM embedding alltoallv, DDP buckets, ragged allgatherv, the
  mixed timestep).
* :mod:`repro.workloads.runner` — executes a spec: loop simulation plus
  per-phase cells through the executor/cache/store pipeline.
* :mod:`repro.workloads.replay` — reconstructs a workload + arrival pattern
  from any recorded obs trace.
* :mod:`repro.workloads.contention` — multi-job runs on one fabric with
  per-job link attribution.

Driven by ``repro-mpi workload {list,describe,run,replay,contend}``.
"""

from repro.workloads.spec import (
    OVERLAP_MODES,
    CollectivePhase,
    WorkloadSpec,
    build_plan,
    iteration_body,
)
from repro.workloads.zoo import (
    WorkloadInfo,
    build_workload,
    get_workload,
    list_workloads,
    register_workload,
)
from repro.workloads.runner import WorkloadRunResult, resolve_algorithm, run_workload
from repro.workloads.replay import (
    load_analysis,
    pattern_from_trace,
    workload_from_trace,
)
from repro.workloads.contention import (
    ContentionResult,
    GroupContext,
    JobResult,
    run_contended,
)

__all__ = [
    "OVERLAP_MODES",
    "CollectivePhase",
    "WorkloadSpec",
    "build_plan",
    "iteration_body",
    "WorkloadInfo",
    "register_workload",
    "list_workloads",
    "get_workload",
    "build_workload",
    "WorkloadRunResult",
    "resolve_algorithm",
    "run_workload",
    "load_analysis",
    "pattern_from_trace",
    "workload_from_trace",
    "GroupContext",
    "JobResult",
    "ContentionResult",
    "run_contended",
]
