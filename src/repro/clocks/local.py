"""Drifting local clock model.

Each rank's clock is modeled as ``local(t) = offset + (1 + drift) * t``
with optional zero-mean Gaussian read jitter (granularity / interpolation
error of the hardware counter).  Typical commodity parameters: offsets up
to seconds (boot times differ), drift in the 1e-6..1e-5 range (ppm), read
jitter of a few nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.seeding import spawn_rng


@dataclass
class LocalClock:
    """One rank's clock: ``local(t) = offset + (1 + drift) * t`` (+ jitter)."""

    offset: float
    drift: float
    read_jitter: float = 0.0
    _rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if self.drift <= -1.0:
            raise ConfigurationError("drift must be > -1")
        if self.read_jitter < 0:
            raise ConfigurationError("read_jitter must be non-negative")

    def read(self, true_time: float) -> float:
        """The clock's value at true time ``true_time``."""
        value = self.offset + (1.0 + self.drift) * true_time
        if self.read_jitter > 0 and self._rng is not None:
            value += float(self._rng.normal(0.0, self.read_jitter))
        return value

    def true_from_local(self, local_time: float) -> float:
        """Invert the (jitter-free) clock model."""
        return (local_time - self.offset) / (1.0 + self.drift)


class ClockSet:
    """A family of per-rank drifting clocks for one simulation job."""

    def __init__(
        self,
        num_ranks: int,
        seed: int = 0,
        max_offset: float = 0.1,
        drift_ppm: float = 10.0,
        read_jitter: float = 5e-9,
    ) -> None:
        if num_ranks <= 0:
            raise ConfigurationError("num_ranks must be positive")
        if max_offset < 0 or drift_ppm < 0:
            raise ConfigurationError("max_offset and drift_ppm must be non-negative")
        self.num_ranks = num_ranks
        self.seed = seed
        rng = spawn_rng(seed, "clocks")
        offsets = rng.uniform(-max_offset, max_offset, size=num_ranks)
        drifts = rng.uniform(-drift_ppm, drift_ppm, size=num_ranks) * 1e-6
        self.clocks = [
            LocalClock(
                offset=float(offsets[r]),
                drift=float(drifts[r]),
                read_jitter=read_jitter,
                _rng=spawn_rng(seed, "clock-jitter", r),
            )
            for r in range(num_ranks)
        ]

    def __getitem__(self, rank: int) -> LocalClock:
        return self.clocks[rank]

    def read(self, rank: int, true_time: float) -> float:
        return self.clocks[rank].read(true_time)


__all__ = ["LocalClock", "ClockSet"]
