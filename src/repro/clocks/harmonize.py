"""MPIX_Harmonize analogue: start all ranks at an agreed global instant.

The paper's micro-benchmarks (Listing 1) synchronize processes *in time*
before applying an arrival pattern: ``MPIX_Harmonize()`` agrees on a common
future start time, each rank busy-waits until its (synchronized) clock
reaches it, then applies its pattern skew.  This module provides the same
operation over the simulated clock stack.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import ConfigurationError
from repro.clocks.local import LocalClock
from repro.clocks.sync import LinearCorrection
from repro.collectives.base import binomial_tree
from repro.sim.mpi import TAG_CLOCK, ProcContext

_MSG_BYTES = 16
_TAG = TAG_CLOCK + 50


def harmonize(
    ctx: ProcContext,
    clock: LocalClock | None = None,
    correction: LinearCorrection | None = None,
    slack: float = 500e-6,
    tag: int = _TAG,
) -> Generator[tuple, None, tuple[float, bool]]:
    """Agree on a common start instant and wait for it.

    The ranks' current global-clock readings reduce (max) up a binomial
    tree; rank 0 proposes ``max + slack``; the target propagates back down;
    every rank then waits until its own corrected clock reads the target.
    Returns ``(target, ok)`` where ``ok`` is False if this rank only reached
    the target after it had passed (the MPIX_Harmonize failure flag — retry
    with more slack).

    With ``clock``/``correction`` omitted the rank uses the simulator's
    perfect global clock, which is the paper's ``#ifdef SIMULATOR`` branch.
    """
    if slack <= 0:
        raise ConfigurationError(f"slack must be positive, got {slack}")
    parent, children = binomial_tree(ctx.rank, ctx.size, 0)

    def now_global() -> float:
        if clock is None:
            return ctx.time()
        corr = correction if correction is not None else LinearCorrection()
        return corr.apply(clock.read(ctx.time()))

    # Fan-in: max of every rank's current global-clock reading.
    latest = now_global()
    for child in children:
        req = yield from ctx.recv(child, tag)
        latest = max(latest, float(req.payload))
    if parent is None:
        target = latest + slack
    else:
        yield from ctx.send(parent, _MSG_BYTES, tag, payload=latest)
        req = yield from ctx.recv(parent, tag + 1)
        target = float(req.payload)
    for child in reversed(children):
        yield from ctx.send(child, _MSG_BYTES, tag + 1, payload=target)

    arrived = now_global()
    ok = arrived <= target
    if clock is None:
        yield ctx.wait_until(target)
    else:
        corr = correction if correction is not None else LinearCorrection()
        true_target = clock.true_from_local(corr.local_for_global(target))
        yield ctx.wait_until(true_target)
    return target, ok


__all__ = ["harmonize"]
