"""Hierarchical clock synchronization (HCA3 analogue).

The protocol builds, for every rank, a linear correction mapping its local
clock onto the *logical global clock* (defined as rank 0's local clock):

1. Ranks are arranged in a binomial tree rooted at 0 (log2(p) levels, the
   "hierarchical" part of HCA).
2. Each child runs ``exchanges`` ping-pongs against its parent, spread over
   a measurement window, yielding (local midpoint, offset) samples; a
   least-squares line through them estimates both offset and relative drift
   (the "two point / linear model" part).
3. Samples with inflated round-trip times (parent busy, queueing) are
   discarded by an RTT filter — the standard SKaMPI-style cleanup.
4. Corrections compose down the tree: the parent ships its own correction
   to the child, which chains it after its child->parent model.

Accuracy with default parameters is well under a microsecond over a typical
benchmark horizon, matching the paper's stated HCA3 accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.errors import ConfigurationError
from repro.clocks.local import ClockSet, LocalClock
from repro.collectives.base import binomial_tree
from repro.sim.mpi import TAG_CLOCK, ProcContext


@dataclass(frozen=True)
class LinearCorrection:
    """Maps a local clock reading onto the logical global clock: ``g = a*l + b``."""

    a: float = 1.0
    b: float = 0.0

    def apply(self, local_time: float) -> float:
        return self.a * local_time + self.b

    def local_for_global(self, global_time: float) -> float:
        """Invert: the local reading at which the global clock shows ``global_time``."""
        return (global_time - self.b) / self.a

    def compose(self, inner_a: float, inner_b: float) -> "LinearCorrection":
        """Correction for ``g = self(inner(l))`` where ``inner(l) = inner_a*l + inner_b``."""
        return LinearCorrection(self.a * inner_a, self.a * inner_b + self.b)


IDENTITY = LinearCorrection()

#: Control message size (bytes) for sync pings; small enough to stay eager.
_PING_BYTES = 16


def sync_clocks(
    ctx: ProcContext,
    clock: LocalClock,
    exchanges: int = 24,
    gap: float = 400e-6,
    rtt_factor: float = 1.5,
    tag: int = TAG_CLOCK,
) -> Generator[tuple, None, LinearCorrection]:
    """Run the hierarchical sync protocol on this rank; returns its correction.

    Must be invoked by *every* rank of the communicator (it is itself a
    collective).  ``clock`` is this rank's :class:`LocalClock`.
    """
    if exchanges < 4:
        raise ConfigurationError("need at least 4 exchanges for a drift fit")
    me, p = ctx.rank, ctx.size
    parent, children = binomial_tree(me, p, 0)

    if parent is None:
        correction = IDENTITY
    else:
        mids: list[float] = []
        diffs: list[float] = []
        rtts: list[float] = []
        for _ in range(exchanges):
            t1 = clock.read(ctx.time())
            yield from ctx.send(parent, _PING_BYTES, tag)
            req = yield from ctx.recv(parent, tag)
            t2 = clock.read(ctx.time())
            ts = float(req.payload)
            mids.append((t1 + t2) / 2.0)
            diffs.append(ts - (t1 + t2) / 2.0)
            rtts.append(t2 - t1)
            yield ctx.sleep(gap)
        mids_a = np.asarray(mids)
        diffs_a = np.asarray(diffs)
        rtts_a = np.asarray(rtts)
        # Drop exchanges whose round trip was inflated by a busy parent.
        keep = rtts_a <= rtt_factor * rtts_a.min()
        if keep.sum() < 2:
            keep = np.argsort(rtts_a)[:2]
        mids_a, diffs_a = mids_a[keep], diffs_a[keep]
        centre = mids_a.mean()
        if np.ptp(mids_a) > 0:
            alpha, beta0 = np.polyfit(mids_a - centre, diffs_a, 1)
        else:  # degenerate window; offset-only model
            alpha, beta0 = 0.0, float(diffs_a.mean())
        beta = beta0 - alpha * centre
        # child_local -> parent_local: l + alpha*l + beta
        req = yield from ctx.recv(parent, tag + 1)
        pa, pb = req.payload
        correction = LinearCorrection(pa, pb).compose(1.0 + alpha, beta)

    for child in children:
        for _ in range(exchanges):
            yield from ctx.recv(child, tag)
            ts = clock.read(ctx.time())
            yield from ctx.send(child, _PING_BYTES, tag, payload=ts)
        yield from ctx.send(
            child, _PING_BYTES, tag + 1, payload=(correction.a, correction.b)
        )
    return correction


class SyncedClocks:
    """All ranks' clocks plus their corrections — the logical global clock."""

    def __init__(self, clockset: ClockSet, corrections: list[LinearCorrection]) -> None:
        if len(corrections) != clockset.num_ranks:
            raise ConfigurationError("one correction per rank required")
        self.clockset = clockset
        self.corrections = list(corrections)

    def global_time(self, rank: int, true_time: float) -> float:
        """The logical global clock as seen by ``rank`` at ``true_time``."""
        return self.corrections[rank].apply(self.clockset.read(rank, true_time))

    def true_time_for_global(self, rank: int, global_time: float) -> float:
        """True instant at which ``rank``'s corrected clock reads ``global_time``."""
        local = self.corrections[rank].local_for_global(global_time)
        return self.clockset[rank].true_from_local(local)

    def max_error(self, true_time: float) -> float:
        """Worst-case disagreement with rank 0's view at one true instant."""
        reference = self.global_time(0, true_time)
        return max(
            abs(self.global_time(r, true_time) - reference)
            for r in range(self.clockset.num_ranks)
        )


__all__ = ["LinearCorrection", "IDENTITY", "sync_clocks", "SyncedClocks"]
