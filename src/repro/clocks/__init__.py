"""Clock substrate: drifting local clocks, HCA-style sync, MPIX_Harmonize.

On a real cluster each node's clock drifts, and NTP-grade synchronization is
far too coarse for microsecond-scale collective measurements.  The paper
therefore uses HCA3 [Hunold & Carpen-Amarie, CLUSTER'18] to build a logical
global clock with sub-microsecond accuracy, and MPIX_Harmonize [Schuchart et
al., EuroMPI'23] to start all ranks at an agreed global instant.

This package simulates the whole stack: :class:`LocalClock` models per-rank
offset+drift clocks, :func:`sync_clocks` runs a hierarchical two-point
offset/drift estimation over the simulated network (log2(p) levels of
ping-pong exchanges composed down a binomial tree), and
:func:`harmonize` implements the agreed-future-start-time operation used by
the micro-benchmark harness (paper Listing 1).
"""

from repro.clocks.local import ClockSet, LocalClock
from repro.clocks.sync import LinearCorrection, SyncedClocks, sync_clocks
from repro.clocks.harmonize import harmonize

__all__ = [
    "LocalClock",
    "ClockSet",
    "LinearCorrection",
    "SyncedClocks",
    "sync_clocks",
    "harmonize",
]
