"""Inline-SVG renderers: span timelines and matrix heatmaps.

Standard-library only; both functions return a complete ``<svg>`` element
as a string, sized by content, safe to embed directly in an HTML document
(all labels are escaped).  The HTML report (:mod:`repro.obs.report`) is
the primary consumer: the timeline is the graphical analogue of
:func:`repro.reporting.timeline.render_timeline`, the heatmap renders
comm-volume matrices from :mod:`repro.obs.analysis`.
"""

from __future__ import annotations

from typing import Sequence
from xml.sax.saxutils import escape

from repro.errors import ConfigurationError
from repro.utils.units import format_time

#: Fill colors assigned to span names in first-seen order (cycled).
PALETTE = (
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)

_LABEL_W = 110          # left gutter for track / row labels (px)
_ROW_H = 18             # timeline row height (px)
_AXIS_H = 22            # bottom axis strip (px)
_LEGEND_H = 16          # per-legend-row height (px)


def _color_for(name: str, seen: dict[str, str]) -> str:
    if name not in seen:
        seen[name] = PALETTE[len(seen) % len(PALETTE)]
    return seen[name]


def svg_timeline(
    tracks: Sequence[tuple[str, Sequence[tuple[float, float, str]]]],
    width: int = 960,
    title: str = "",
) -> str:
    """A Gantt-style timeline: one row per track, one rect per interval.

    ``tracks`` is ``[(label, [(start, end, name), ...]), ...]``; rows render
    top to bottom in the given order, intervals are colored by name
    (first-seen palette order) with a legend below the axis.  Times are
    seconds (formatted with engineering units on the axis).
    """
    if width < 200:
        raise ConfigurationError(f"timeline width must be >= 200, got {width}")
    points = [t for _label, ivs in tracks for iv in ivs for t in iv[:2]]
    t0 = min(points) if points else 0.0
    t1 = max(points) if points else 1.0
    span = (t1 - t0) or 1.0
    plot_w = width - _LABEL_W - 10
    colors: dict[str, str] = {}
    body: list[str] = []
    for row, (label, intervals) in enumerate(tracks):
        y = row * _ROW_H
        body.append(
            f'<text x="{_LABEL_W - 6}" y="{y + _ROW_H - 5}" '
            f'text-anchor="end" class="lbl">{escape(str(label))}</text>'
        )
        body.append(
            f'<line x1="{_LABEL_W}" y1="{y + _ROW_H - 0.5}" '
            f'x2="{width - 10}" y2="{y + _ROW_H - 0.5}" class="grid"/>'
        )
        for start, end, name in intervals:
            x = _LABEL_W + (start - t0) / span * plot_w
            w = max((end - start) / span * plot_w, 0.5)
            fill = _color_for(name, colors)
            tip = (f"{name}: {format_time(end - start)} "
                   f"[{format_time(start - t0)} .. {format_time(end - t0)}]")
            body.append(
                f'<rect x="{x:.2f}" y="{y + 2}" width="{w:.2f}" '
                f'height="{_ROW_H - 5}" fill="{fill}">'
                f"<title>{escape(tip)}</title></rect>"
            )
    rows_h = len(tracks) * _ROW_H
    axis_y = rows_h + 14
    body.append(
        f'<text x="{_LABEL_W}" y="{axis_y}" class="lbl">'
        f"{escape(format_time(0.0))}</text>"
    )
    body.append(
        f'<text x="{width - 10}" y="{axis_y}" text-anchor="end" class="lbl">'
        f"{escape(format_time(span))}</text>"
    )
    legend_y = rows_h + _AXIS_H
    for i, (name, fill) in enumerate(colors.items()):
        y = legend_y + i * _LEGEND_H
        body.append(f'<rect x="{_LABEL_W}" y="{y}" width="10" height="10" '
                    f'fill="{fill}"/>')
        body.append(f'<text x="{_LABEL_W + 16}" y="{y + 9}" class="lbl">'
                    f"{escape(name)}</text>")
    height = legend_y + len(colors) * _LEGEND_H + 6
    head = ""
    if title:
        head = (f'<text x="{_LABEL_W}" y="-6" class="ttl">'
                f"{escape(title)}</text>")
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height + (20 if title else 0)}" '
        f'viewBox="0 {-20 if title else 0} {width} '
        f'{height + (20 if title else 0)}">'
        "<style>.lbl{font:11px monospace;fill:#333}"
        ".ttl{font:bold 12px monospace;fill:#111}"
        ".grid{stroke:#eee;stroke-width:1}</style>"
        f"{head}{''.join(body)}</svg>"
    )


def svg_heatmap(
    values: Sequence[Sequence[float]],
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: str = "",
    cell: int = 26,
) -> str:
    """A labelled matrix heatmap (white → deep blue, scaled to the max).

    ``values[i][j]`` colors the cell at row ``i``, column ``j``; every cell
    carries a hover tooltip with its exact value.
    """
    if len(values) != len(row_labels):
        raise ConfigurationError(
            f"{len(values)} rows but {len(row_labels)} row labels"
        )
    for row in values:
        if len(row) != len(col_labels):
            raise ConfigurationError(
                f"row width {len(row)} != {len(col_labels)} column labels"
            )
    vmax = max((v for row in values for v in row), default=0.0)
    left, top = 70, 34 if title else 18
    body: list[str] = []
    if title:
        body.append(f'<text x="0" y="12" class="ttl">{escape(title)}</text>')
    for j, lab in enumerate(col_labels):
        body.append(
            f'<text x="{left + j * cell + cell / 2:.1f}" y="{top - 4}" '
            f'text-anchor="middle" class="lbl">{escape(str(lab))}</text>'
        )
    for i, (lab, row) in enumerate(zip(row_labels, values)):
        y = top + i * cell
        body.append(
            f'<text x="{left - 6}" y="{y + cell / 2 + 4:.1f}" '
            f'text-anchor="end" class="lbl">{escape(str(lab))}</text>'
        )
        for j, v in enumerate(row):
            frac = (v / vmax) if vmax > 0 else 0.0
            # white (255,255,255) -> deep blue (32,74,135)
            r = round(255 - frac * (255 - 32))
            g = round(255 - frac * (255 - 74))
            b = round(255 - frac * (255 - 135))
            body.append(
                f'<rect x="{left + j * cell}" y="{y}" width="{cell - 1}" '
                f'height="{cell - 1}" fill="rgb({r},{g},{b})" '
                f'stroke="#ddd" stroke-width="0.5">'
                f"<title>{escape(f'{row_labels[i]} -> {col_labels[j]}: {v:g}')}"
                "</title></rect>"
            )
    width = left + len(col_labels) * cell + 10
    height = top + len(row_labels) * cell + 8
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        "<style>.lbl{font:11px monospace;fill:#333}"
        ".ttl{font:bold 12px monospace;fill:#111}</style>"
        f"{''.join(body)}</svg>"
    )


__all__ = ["PALETTE", "svg_timeline", "svg_heatmap"]
