"""The network weather map: per-link utilization over time, in ASCII.

One row per fabric link (a ``(port, class, direction)`` FIFO of the cost
model), one column per time bin, one shade character per cell — darker
means a busier link in that slice of virtual time.  The data comes from
:meth:`repro.obs.analysis.TraceAnalysis.link_timeline`, so exact and
hybrid traces of the same case paint the same map.

Reading it: a uniformly dark row is a saturated link (raise its budget or
spread its traffic); a dark *column* is a phase where many links were hot
at once (a bursty exchange step); dark cells with a high ``wait`` column
in the accompanying table are the contention hotspots the paper's
algorithm selection is trying to route around.
"""

from __future__ import annotations

from repro.utils.units import format_time

#: Shade ramp, lightest to darkest; index = utilization * (len - 1).
_SHADES = " .:-=+*#%@"


def _shade(fraction: float) -> str:
    if fraction <= 0.0:
        return _SHADES[0]
    if fraction >= 1.0:
        return _SHADES[-1]
    # Any nonzero activity gets at least the first visible shade.
    return _SHADES[max(1, int(fraction * (len(_SHADES) - 1) + 0.5))]


def render_weather_map(timeline: dict, usage: list[dict] | None = None,
                       max_rows: int = 40, title: str = "") -> str:
    """Render one link-utilization timeline as an ASCII weather map.

    ``timeline`` is :meth:`TraceAnalysis.link_timeline` output; ``usage``
    (optional, :meth:`TraceAnalysis.link_usage` rows) appends per-row busy
    and wait totals and orders the rows hottest-wait first.  At most
    ``max_rows`` links are shown (the hottest ones when ``usage`` is
    given, the first by key otherwise); a trailer says what was cut.
    """
    rows = timeline["rows"]
    if not rows:
        return (title + "\n" if title else "") + "(no link records)"
    totals = None
    if usage is not None:
        totals = {(u["port"], u["cls"], u["direction"]): u for u in usage}
        rows = sorted(rows, key=lambda r: (
            -totals.get((r["port"], r["cls"], r["direction"]),
                        {"wait": 0.0, "busy": 0.0})["wait"],
            -totals.get((r["port"], r["cls"], r["direction"]),
                        {"wait": 0.0, "busy": 0.0})["busy"],
            r["port"], r["cls"], r["direction"],
        ))
    cut = len(rows) - max_rows
    rows = rows[:max_rows]
    width = max(len(r["link"]) for r in rows)
    lines: list[str] = []
    if title:
        lines.append(title)
    span = format_time(timeline["t1"] - timeline["t0"])
    lines.append(
        f"{'link'.ljust(width)}  |{'time →'.ljust(timeline['bins'])}| "
        f"({span} across {timeline['bins']} bins; shade = busy fraction)"
    )
    for r in rows:
        cells = "".join(_shade(min(b, 1.0)) for b in r["busy"])
        line = f"{r['link'].ljust(width)}  |{cells}|"
        if totals is not None:
            u = totals.get((r["port"], r["cls"], r["direction"]))
            if u is not None:
                line += (f" busy {format_time(u['busy'])}"
                         f"  wait {format_time(u['wait'])}")
        lines.append(line)
    if cut > 0:
        lines.append(f"… {cut} cooler links not shown")
    return "\n".join(lines)


__all__ = ["render_weather_map"]
