"""Plain-text rendering of experiment results (tables, grids, bars, timelines)."""

from repro.reporting.ascii import (
    render_bars,
    render_grid,
    render_series,
    render_table,
)
from repro.reporting.export import grid_to_csv, results_to_json, to_jsonable
from repro.reporting.timeline import render_timeline

__all__ = [
    "render_table",
    "render_grid",
    "render_bars",
    "render_series",
    "render_timeline",
    "grid_to_csv",
    "results_to_json",
    "to_jsonable",
]
