"""Rendering of experiment results: ASCII tables/grids/bars/timelines,
the fabric weather map, and inline-SVG timelines/heatmaps for the HTML
report."""

from repro.reporting.ascii import (
    render_bars,
    render_grid,
    render_series,
    render_table,
)
from repro.reporting.export import grid_to_csv, results_to_json, to_jsonable
from repro.reporting.svg import svg_heatmap, svg_timeline
from repro.reporting.timeline import render_timeline
from repro.reporting.weather import render_weather_map

__all__ = [
    "render_table",
    "render_grid",
    "render_bars",
    "render_series",
    "render_timeline",
    "render_weather_map",
    "svg_timeline",
    "svg_heatmap",
    "grid_to_csv",
    "results_to_json",
    "to_jsonable",
]
