"""Machine-readable export of experiment results (JSON / CSV)."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Mapping


def to_jsonable(obj: Any) -> Any:
    """Recursively convert experiment results into JSON-serializable data.

    Preference order: an object's own ``to_dict``, dataclass fields, mappings
    (keys stringified — tuple keys become ``"a|b"``), sequences, numpy, then
    the value itself.
    """
    import dataclasses

    import numpy as np

    if hasattr(obj, "to_dict"):
        return to_jsonable(obj.to_dict())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {
            "|".join(map(str, k)) if isinstance(k, tuple) else str(k): to_jsonable(v)
            for k, v in obj.items()
        }
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    return obj


def results_to_json(path: str | Path, payload: Any) -> None:
    """Dump any JSON-serializable experiment payload with stable formatting."""

    Path(path).write_text(json.dumps(to_jsonable(payload), indent=2))


def grid_to_csv(path: str | Path, grid: Mapping[str, Mapping[str, Any]],
                row_label: str = "row") -> None:
    """Write a row/col grid as CSV with a leading row-label column."""
    cols: list[str] = []
    for row in grid.values():
        for col in row:
            if col not in cols:
                cols.append(col)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([row_label] + cols)
        for row_name, row in grid.items():
            writer.writerow([row_name] + [row.get(col, "") for col in cols])
