"""ASCII per-track timeline (Gantt) rendering of recorded spans.

Turns the span buffer of an observability session into a terminal Gantt
chart: one row per track, one symbol per span name, a shared time axis.
On the virtual-time domain the tracks are simulated ranks, so an arrival
pattern reads straight off the chart — the ASCII analogue of the paper's
Fig. 1::

    virtual timeline  [0 s .. 1.24 ms]  (1 col = 19.4 us)
    rank 0  |===######################################################|
    rank 1  |   ===###################################################|
    rank 2  |      ===################################################|
      = skew_wait
      # alltoall/pairwise

Accepts an :class:`~repro.obs.context.ObsContext`, a
:class:`~repro.obs.spans.SpanRecorder`, or any iterable of
:class:`~repro.obs.spans.Span`.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.obs.spans import VIRTUAL, Span
from repro.utils.units import format_time

#: Symbols assigned to span names in first-seen order (cycled if exhausted).
_PALETTE = "#=*+o%@&$~^!"

_NUM_RE = re.compile(r"(\d+)")


def _natural_key(track: str) -> tuple:
    return tuple(int(p) if p.isdigit() else p for p in _NUM_RE.split(track))


def _spans_of(source) -> list[Span]:
    spans = getattr(source, "spans", source)  # ObsContext -> recorder
    if spans is None:
        return []
    return list(spans)  # SpanRecorder and iterables both iterate Spans


def render_timeline(
    source,
    domain: str = VIRTUAL,
    width: int = 64,
    tracks: Sequence[str] | None = None,
    names: Iterable[str] | None = None,
    title: str = "",
) -> str:
    """Render the spans of ``source`` as an ASCII Gantt chart.

    Parameters
    ----------
    source:
        An ``ObsContext``, a ``SpanRecorder``, or an iterable of ``Span``.
    domain:
        Which clock domain to draw (``"virtual"`` or ``"wall"``).
    width:
        Chart body width in columns.
    tracks:
        Restrict (and order) the rows; default is every track in the
        domain, naturally sorted (``rank 2`` before ``rank 10``).
    names:
        Restrict to these span names (default: all).
    """
    if width < 8:
        raise ConfigurationError(f"width must be >= 8, got {width}")
    wanted = None if names is None else set(names)
    spans = [
        s for s in _spans_of(source)
        if s.domain == domain and (wanted is None or s.name in wanted)
    ]
    if tracks is not None:
        order = list(tracks)
        spans = [s for s in spans if s.track in set(order)]
    else:
        order = sorted({s.track for s in spans}, key=_natural_key)
    header = title or f"{domain} timeline"
    if not spans:
        return f"{header}  (no spans)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    extent = t1 - t0
    scale = extent / width if extent > 0 else 0.0

    symbols: dict[str, str] = {}
    for span in spans:
        if span.name not in symbols:
            symbols[span.name] = _PALETTE[len(symbols) % len(_PALETTE)]

    rows: dict[str, list[str]] = {track: [" "] * width for track in order}
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        cells = rows[span.track]
        if extent > 0:
            c0 = min(width - 1, int((span.start - t0) / extent * width))
            c1 = max(c0 + 1, min(width, round((span.end - t0) / extent * width)))
        else:
            c0, c1 = 0, width
        sym = symbols[span.name]
        for c in range(c0, c1):
            cells[c] = sym

    label_w = max(len(t) for t in order)
    lines = [
        f"{header}  [{format_time(t0)} .. {format_time(t1)}]"
        + (f"  (1 col = {format_time(scale)})" if scale > 0 else "")
    ]
    for track in order:
        lines.append(f"{track.ljust(label_w)}  |{''.join(rows[track])}|")
    for name, sym in symbols.items():
        lines.append(f"  {sym} {name}")
    return "\n".join(lines)


__all__ = ["render_timeline"]
