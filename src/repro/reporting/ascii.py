"""ASCII renderers: aligned tables, labelled grids, horizontal bar charts.

The experiment drivers print the same rows/series the paper's figures show;
these helpers keep that output aligned and uniform.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """A column-aligned table with a header rule."""
    if not headers:
        raise ConfigurationError("need at least one header")
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))).rstrip())
    return "\n".join(lines)


def render_grid(
    grid: Mapping[str, Mapping[str, str]],
    row_order: Sequence[str] | None = None,
    col_order: Sequence[str] | None = None,
    corner: str = "",
    title: str = "",
) -> str:
    """A labelled cell grid: ``grid[row][col] = cell text``."""
    rows = list(row_order) if row_order is not None else list(grid)
    cols: list[str]
    if col_order is not None:
        cols = list(col_order)
    else:
        cols = []
        for row in rows:
            for col in grid.get(row, {}):
                if col not in cols:
                    cols.append(col)
    body = [
        [str(grid.get(row, {}).get(col, "-")) for col in cols]
        for row in rows
    ]
    table_rows = [[row] + body[i] for i, row in enumerate(rows)]
    return render_table([corner] + cols, table_rows, title=title)


def render_bars(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    title: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart, scaled to the maximum value."""
    if not values:
        raise ConfigurationError("nothing to plot")
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(
            f"{key.ljust(label_w)}  {bar.ljust(width)}  {fmt.format(value)}{unit}"
        )
    return "\n".join(lines)


def render_series(
    values: Sequence[float],
    height: int = 8,
    title: str = "",
    y_label: str = "",
) -> str:
    """A crude line plot of a numeric series (used for Fig. 1's delay profile)."""
    if len(values) == 0:
        raise ConfigurationError("nothing to plot")
    peak = max(values)
    lo = min(values)
    span = (peak - lo) or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = lo + span * (level - 0.5) / height
        line = "".join("#" if v >= threshold else " " for v in values)
        prefix = f"{lo + span * level / height:10.3g} |" if level in (height, 1) else "           |"
        rows.append(prefix + line)
    axis = "           +" + "-" * len(values)
    lines = [title] if title else []
    if y_label:
        lines.append(y_label)
    lines.extend(rows)
    lines.append(axis)
    return "\n".join(lines)
