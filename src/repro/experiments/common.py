"""Shared experiment configuration and helpers.

The paper runs 32 nodes x 32 cores = 1024 ranks.  A pure-Python DES cannot
sweep O(p^2)-message algorithms at that scale in reasonable time, so the
default experiment scale is 16 x 4 = 64 ranks (see DESIGN.md's scale
substitution note); ``ExperimentConfig`` exposes the knobs, and ``fast``
shrinks sweeps further for the pytest-benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.bench.executor import CellExecutor
from repro.bench.micro import MicroBenchmark
from repro.sim.platform import get_machine

#: Algorithm sets per collective, matching the paper's Table II (real-machine
#: experiments) — keys are our registry names, order follows the paper's IDs.
TABLE2_ALGORITHMS: dict[str, list[str]] = {
    "allreduce": ["nonoverlapping", "recursive_doubling", "ring",
                  "segmented_ring", "rabenseifner"],
    "alltoall": ["basic_linear", "pairwise", "bruck", "linear_sync"],
    "reduce": ["linear", "chain", "pipeline", "binary", "binomial",
               "in_order_binary", "rabenseifner"],
}

#: Algorithm sets for the SimGrid-based simulation study (Fig. 4); aliases
#: resolve to our implementations.
SIMULATION_ALGORITHMS: dict[str, list[str]] = {
    "reduce": ["linear", "chain", "pipeline", "binary", "binomial",
               "in_order_binary", "rabenseifner"],
    "allreduce": ["ring", "recursive_doubling", "rabenseifner",
                  "segmented_ring", "nonoverlapping"],
    "alltoall": ["basic_linear", "pairwise", "bruck", "linear_sync"],
}

#: The message sizes the paper sweeps (2 B .. 1 MiB).
DEFAULT_MSG_SIZES = [2, 16, 256, 1024, 16384, 262144, 1048576]
FAST_MSG_SIZES = [8, 1024, 65536]

#: Fig. 5's selected sizes.
FIG5_MSG_SIZES = [8, 1024, 1048576]

#: The distinct pattern subset shown in the real-machine figures.
FIG5_SHAPES = ["ascending", "descending", "first_delayed", "last_delayed", "random"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers."""

    machine: str = "hydra"
    nodes: int = 16
    cores_per_node: int = 4
    seed: int = 0
    nrep: int = 1
    skew_factor: float = 1.5
    fast: bool = False
    #: Worker processes for sweep fan-out (1 = serial; results identical).
    jobs: int = 1
    #: On-disk result cache directory (None disables caching).
    cache_dir: str | None = None
    #: Engine dispatch mode: "exact", "hybrid", or "flow" (repro.sim.flow).
    engine_mode: str = "exact"

    def __post_init__(self) -> None:
        if self.nodes <= 0 or self.cores_per_node <= 0:
            raise ConfigurationError("nodes/cores_per_node must be positive")
        if self.nrep <= 0:
            raise ConfigurationError("nrep must be positive")
        if self.jobs <= 0:
            raise ConfigurationError("jobs must be positive")
        get_machine(self.machine)  # validate early

    @property
    def num_ranks(self) -> int:
        return self.nodes * self.cores_per_node

    def with_machine(self, machine: str) -> "ExperimentConfig":
        return replace(self, machine=machine)

    def scaled_down(self) -> "ExperimentConfig":
        """A cheaper variant for the benchmark harness."""
        return replace(self, nodes=min(self.nodes, 8), cores_per_node=min(self.cores_per_node, 4), fast=True)

    def make_bench(self, machine: str | None = None, **kwargs) -> MicroBenchmark:
        spec = get_machine(machine or self.machine)
        kwargs.setdefault("nrep", self.nrep)
        kwargs.setdefault("seed", self.seed)
        kwargs.setdefault("engine_mode", self.engine_mode)
        return MicroBenchmark.from_machine(
            spec, nodes=self.nodes, cores_per_node=self.cores_per_node, **kwargs
        )

    def make_executor(self) -> CellExecutor:
        """One executor per experiment run, so its counters span all sweeps.

        Falls back to the ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` environment
        overrides when the config leaves the defaults, so benchmark re-runs
        can opt into caching without touching driver code.
        """
        return CellExecutor.from_env(
            jobs=self.jobs if self.jobs != 1 else None,
            cache_dir=self.cache_dir,
        )

    def msg_sizes(self) -> list[int]:
        return FAST_MSG_SIZES if self.fast else DEFAULT_MSG_SIZES
