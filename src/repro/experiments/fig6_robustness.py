"""Fig. 6: robustness of collective algorithms against arrival patterns.

The robustness design scales the pattern's maximum skew to each algorithm's
*own* No-delay runtime, then reports the normalized runtime
``d^_k / d^_no_delay - 1`` per (algorithm, pattern): values below -0.25
(green in the paper) mean the algorithm absorbed skew; above +0.25 (red) it
degraded significantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.bench.results import SweepResult
from repro.bench.robustness import classify, normalized_performance
from repro.bench.runner import sweep_per_algorithm_skew
from repro.experiments.common import (
    ExperimentConfig,
    FIG5_MSG_SIZES,
    FIG5_SHAPES,
    TABLE2_ALGORITHMS,
)
from repro.patterns.shapes import NO_DELAY
from repro.reporting.ascii import render_grid
from repro.utils.units import format_bytes

_MARK = {"faster": "G", "neutral": ".", "slower": "R"}


@dataclass
class Fig6Result:
    collective: str
    machine: str
    num_ranks: int
    msg_sizes: list[int]
    shapes: list[str]
    algorithms: list[str]
    sweeps: dict[int, SweepResult] = field(default_factory=dict, repr=False)

    def normalized(self, msg_bytes: int, pattern: str, algorithm: str) -> float:
        sweep = self.sweeps[msg_bytes]
        return normalized_performance(
            sweep.get(pattern, algorithm).last_delay,
            sweep.get(NO_DELAY, algorithm).last_delay,
        )

    def counts(self, msg_bytes: int) -> dict[str, int]:
        """How many cells are green/gray/red at one size."""
        out = {"faster": 0, "neutral": 0, "slower": 0}
        for shape in self.shapes:
            for algo in self.algorithms:
                out[classify(self.normalized(msg_bytes, shape, algo))] += 1
        return out


def run(config: ExperimentConfig | None = None, collective: str = "reduce") -> Fig6Result:
    config = config or ExperimentConfig(machine="hydra")
    if collective not in TABLE2_ALGORITHMS:
        raise ConfigurationError(
            f"fig6 supports {sorted(TABLE2_ALGORITHMS)}, got {collective!r}"
        )
    algorithms = TABLE2_ALGORITHMS[collective]
    shapes = FIG5_SHAPES if not config.fast else ["descending", "last_delayed"]
    msg_sizes = FIG5_MSG_SIZES if not config.fast else [8, 1024]
    bench = config.make_bench()
    result = Fig6Result(
        collective=collective,
        machine=config.machine,
        num_ranks=bench.num_ranks,
        msg_sizes=msg_sizes,
        shapes=shapes,
        algorithms=algorithms,
    )
    executor = config.make_executor()
    for size in msg_sizes:
        result.sweeps[size] = sweep_per_algorithm_skew(
            bench, collective, algorithms, size, shapes, seed=config.seed,
            executor=executor,
        )
    return result


def report(result: Fig6Result) -> str:
    lines = [
        f"Fig. 6 — robustness of {result.collective} algorithms "
        f"({result.machine}, {result.num_ranks} ranks; per-algorithm skew = own "
        f"No-delay runtime)",
        "cell = d^_pattern / d^_no_delay - 1;  G = >25% faster, R = >25% slower, . = within 25%",
    ]
    for size in result.msg_sizes:
        grid: dict[str, dict[str, str]] = {}
        for shape in result.shapes:
            grid[shape] = {}
            for algo in result.algorithms:
                value = result.normalized(size, shape, algo)
                grid[shape][algo] = f"{value:+.3f} {_MARK[classify(value)]}"
        lines.append("")
        lines.append(
            render_grid(
                grid,
                row_order=result.shapes,
                col_order=result.algorithms,
                corner=f"{format_bytes(size)} \\ algo",
            )
        )
        counts = result.counts(size)
        lines.append(
            f"  -> {counts['faster']} green / {counts['neutral']} gray / "
            f"{counts['slower']} red cells"
        )
    return "\n".join(lines)
