"""Fig. 7: FT runtime vs. the No-delay Alltoall micro-benchmark, per machine.

For each machine analogue the driver (a) runs the FT proxy with each
Alltoall algorithm (several seeds, averaged — the paper averages 10 runs)
and (b) runs the plain No-delay Alltoall micro-benchmark at FT's 32768-byte
message size.  The paper's point: the micro-benchmark ranking does not
predict the in-application ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.ft import FT_MSG_BYTES, FTProxy
from repro.experiments.common import ExperimentConfig, TABLE2_ALGORITHMS
from repro.reporting.ascii import render_bars
from repro.sim.platform import get_machine

#: The three machines of the paper's Fig. 7.
FIG7_MACHINES = ("hydra", "galileo100", "discoverer")


@dataclass
class Fig7MachineResult:
    machine: str
    ft_runtime: dict[str, float] = field(default_factory=dict)
    micro_delay: dict[str, float] = field(default_factory=dict)

    def ft_best(self) -> str:
        return min(self.ft_runtime, key=self.ft_runtime.get)

    def micro_best(self) -> str:
        return min(self.micro_delay, key=self.micro_delay.get)

    @property
    def rankings_agree(self) -> bool:
        return self.ft_best() == self.micro_best()


@dataclass
class Fig7Result:
    num_ranks: int
    machines: dict[str, Fig7MachineResult] = field(default_factory=dict)


def run(
    config: ExperimentConfig | None = None,
    machines: tuple[str, ...] = FIG7_MACHINES,
    ft_runs: int = 3,
) -> Fig7Result:
    config = config or ExperimentConfig()
    algorithms = TABLE2_ALGORITHMS["alltoall"]
    if config.fast:
        ft_runs = 1
    result = Fig7Result(num_ranks=config.num_ranks)
    for machine in machines:
        spec = get_machine(machine)
        mres = Fig7MachineResult(machine=machine)
        bench = config.make_bench(machine=machine, nrep=max(config.nrep, 2))
        for algo in algorithms:
            runtimes = []
            for run_idx in range(ft_runs):
                ft = FTProxy.class_d_scaled(
                    spec,
                    nodes=config.nodes,
                    cores_per_node=config.cores_per_node,
                    seed=config.seed + run_idx,
                    algorithm=algo,
                    iterations=5 if config.fast else 20,
                )
                runtimes.append(ft.run().runtime)
            mres.ft_runtime[algo] = float(np.mean(runtimes))
            mres.micro_delay[algo] = bench.run(
                "alltoall", algo, msg_bytes=FT_MSG_BYTES
            ).last_delay
        result.machines[machine] = mres
    return result


def report(result: Fig7Result) -> str:
    lines = [
        f"Fig. 7 — FT runtime vs. No-delay Alltoall micro-benchmark "
        f"({result.num_ranks} ranks, msg = 32768 B)",
    ]
    for machine, mres in result.machines.items():
        lines.append("")
        lines.append(f"--- {machine} ---")
        lines.append(render_bars(
            {a: v * 1e3 for a, v in mres.ft_runtime.items()},
            unit=" ms", title="FT runtime per Alltoall algorithm:",
        ))
        lines.append("")
        lines.append(render_bars(
            {a: v * 1e3 for a, v in mres.micro_delay.items()},
            unit=" ms", title="Alltoall micro-benchmark (No-delay) per algorithm:",
        ))
        agree = "AGREE" if mres.rankings_agree else "DISAGREE"
        lines.append(
            f"micro-benchmark best = {mres.micro_best()}, FT best = {mres.ft_best()} "
            f"-> rankings {agree}"
        )
    return "\n".join(lines)
