"""Fig. 4: simulation study — best algorithm per (arrival pattern, message size).

For each collective the driver sweeps message sizes from 2 B to 1 MiB.  Per
size it measures every algorithm in the No-delay case, derives the shared
maximum skew (``1.5 x`` the mean No-delay runtime — the paper's strongest
factor), exposes every algorithm to each of the eight artificial patterns,
and reports per cell:

* the best algorithm (by mean last delay ``d^``), and
* its runtime relative to the algorithm a No-delay-based decision logic
  would have picked, measured under the *same* pattern — values < 1 mean
  the No-delay choice was wrong by that factor.

The paper runs this on SimGrid with 32 x 32 = 1024 ranks; the default scale
here is 16 x 4 = 64 (see DESIGN.md), on the noise-free ``simcluster``
platform with perfect clocks — exactly the simulator branch of Listing 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.bench.results import SweepResult
from repro.bench.runner import sweep_shared_skew
from repro.experiments.common import (
    ExperimentConfig,
    SIMULATION_ALGORITHMS,
)
from repro.patterns.shapes import NO_DELAY, list_shapes
from repro.reporting.ascii import render_grid
from repro.utils.units import format_bytes


@dataclass
class Fig4Result:
    collective: str
    num_ranks: int
    msg_sizes: list[int]
    shapes: list[str]
    algorithms: list[str]
    #: sweeps[msg_bytes] — the full measurement grid for one size.
    sweeps: dict[int, SweepResult] = field(default_factory=dict, repr=False)

    def best(self, msg_bytes: int, pattern: str) -> tuple[str, float]:
        """(best algorithm, relative d^ vs the No-delay winner under this pattern)."""
        sweep = self.sweeps[msg_bytes]
        row = sweep.row(pattern)
        best_algo = min(row, key=row.get)
        no_delay_choice = sweep.best_algorithm(NO_DELAY)
        relative = row[best_algo] / row[no_delay_choice]
        return best_algo, relative

    def mismatch_cells(self) -> list[tuple[int, str, str, str, float]]:
        """Cells where the pattern-best differs from the No-delay choice."""
        out = []
        for size in self.msg_sizes:
            no_delay_choice = self.sweeps[size].best_algorithm(NO_DELAY)
            for shape in self.shapes:
                best_algo, rel = self.best(size, shape)
                if best_algo != no_delay_choice and rel < 0.999:
                    out.append((size, shape, best_algo, no_delay_choice, rel))
        return out


def run(config: ExperimentConfig | None = None, collective: str = "reduce") -> Fig4Result:
    config = config or ExperimentConfig(machine="simcluster")
    if collective not in SIMULATION_ALGORITHMS:
        raise ConfigurationError(
            f"fig4 supports {sorted(SIMULATION_ALGORITHMS)}, got {collective!r}"
        )
    algorithms = SIMULATION_ALGORITHMS[collective]
    shapes = list_shapes()
    if config.fast:
        shapes = ["ascending", "descending", "last_delayed", "random"]
    bench = config.make_bench(
        machine=config.machine if config.machine != "hydra" else "simcluster",
        noise_profile="none",
    )
    msg_sizes = config.msg_sizes()
    result = Fig4Result(
        collective=collective,
        num_ranks=bench.num_ranks,
        msg_sizes=msg_sizes,
        shapes=shapes,
        algorithms=algorithms,
    )
    executor = config.make_executor()
    for size in msg_sizes:
        result.sweeps[size] = sweep_shared_skew(
            bench, collective, algorithms, size, shapes,
            skew_factor=config.skew_factor, seed=config.seed,
            executor=executor,
        )
    return result


def report(result: Fig4Result) -> str:
    grid: dict[str, dict[str, str]] = {}
    for pattern in [NO_DELAY] + result.shapes:
        grid[pattern] = {}
        for size in result.msg_sizes:
            best_algo, rel = result.best(size, pattern)
            label = format_bytes(size)
            if pattern == NO_DELAY:
                grid[pattern][label] = best_algo
            else:
                grid[pattern][label] = f"{best_algo} ({rel:.2f})"
    lines = [
        f"Fig. 4 — simulation: best {result.collective} algorithm per "
        f"(pattern, message size), {result.num_ranks} ranks, skew = 1.5 x mean "
        f"No-delay runtime",
        "cell = best algorithm (d^ relative to the No-delay winner under the same pattern)",
        "",
        render_grid(grid, row_order=[NO_DELAY] + result.shapes,
                    corner="pattern \\ size"),
    ]
    mismatches = result.mismatch_cells()
    lines.append("")
    lines.append(
        f"{len(mismatches)} cells where the No-delay-tuned choice is suboptimal:"
    )
    for size, shape, best_algo, nd_choice, rel in mismatches[:12]:
        lines.append(
            f"  {format_bytes(size):>7} {shape:<14} best={best_algo:<18} "
            f"no-delay-choice={nd_choice:<18} relative d^ = {rel:.2f}"
        )
    if len(mismatches) > 12:
        lines.append(f"  ... and {len(mismatches) - 12} more")
    return "\n".join(lines)
