"""Fig. 8: normalized Alltoall runtimes under artificial + traced patterns.

Per machine: trace the FT proxy to extract its real arrival pattern (the
FT-Scenario) and the maximum observed skew; generate the eight artificial
patterns with that skew; benchmark every Alltoall algorithm (32768 B) under
No-delay, all artificial patterns, and the FT-Scenario.  Report runtimes
normalized to each row's fastest algorithm plus the per-algorithm *Average*
row — the paper's robustness indicator, which predicts the FT winner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.ft import FT_MSG_BYTES, FTProxy
from repro.bench.results import SweepResult
from repro.bench.robustness import average_normalized, normalize_rows
from repro.bench.runner import sweep_shared_skew
from repro.experiments.common import ExperimentConfig, TABLE2_ALGORITHMS
from repro.experiments.fig7_ft_vs_micro import FIG7_MACHINES
from repro.patterns.shapes import NO_DELAY, list_shapes
from repro.reporting.ascii import render_grid
from repro.sim.platform import get_machine
from repro.tracing import CollectiveTracer, max_observed_skew, pattern_from_trace

FT_SCENARIO = "ft_scenario"


@dataclass
class Fig8MachineResult:
    machine: str
    traced_max_skew: float
    sweep: SweepResult = field(repr=False, default=None)

    @property
    def table(self) -> dict[str, dict[str, float]]:
        return {p: self.sweep.row(p) for p in self.sweep.patterns}

    @property
    def normalized(self) -> dict[str, dict[str, float]]:
        return normalize_rows(self.table)

    def average_row(self, exclude_ft: bool = True) -> dict[str, float]:
        exclude = (FT_SCENARIO,) if exclude_ft else ()
        return average_normalized(self.table, exclude=exclude)

    def predicted_best(self) -> str:
        """Best by the robustness average (no application knowledge)."""
        avg = self.average_row(exclude_ft=True)
        return min(avg, key=avg.get)

    def scenario_best(self) -> str:
        """Best under the traced application pattern (the oracle)."""
        row = self.sweep.row(FT_SCENARIO)
        return min(row, key=row.get)


@dataclass
class Fig8Result:
    num_ranks: int
    msg_bytes: float
    machines: dict[str, Fig8MachineResult] = field(default_factory=dict)


def run(
    config: ExperimentConfig | None = None,
    machines: tuple[str, ...] = FIG7_MACHINES,
) -> Fig8Result:
    config = config or ExperimentConfig()
    algorithms = TABLE2_ALGORITHMS["alltoall"]
    shapes = list_shapes() if not config.fast else ["ascending", "descending",
                                                    "first_delayed", "last_delayed"]
    result = Fig8Result(num_ranks=config.num_ranks, msg_bytes=FT_MSG_BYTES)
    for machine in machines:
        spec = get_machine(machine)
        # 1. Trace FT on this machine to get its real arrival pattern.
        ft = FTProxy.class_d_scaled(
            spec, nodes=config.nodes, cores_per_node=config.cores_per_node,
            seed=config.seed, iterations=5 if config.fast else 20,
        )
        tracer = CollectiveTracer()
        ft.run(tracer)
        scenario = pattern_from_trace(tracer, "alltoall", config.num_ranks,
                                      name=FT_SCENARIO)
        traced_skew = max_observed_skew(tracer, "alltoall", config.num_ranks)
        # 2. Benchmark under artificial patterns at the traced skew + scenario.
        bench = config.make_bench(machine=machine, nrep=max(config.nrep, 2))
        sweep = sweep_shared_skew(
            bench, "alltoall", algorithms, FT_MSG_BYTES, shapes,
            max_skew=traced_skew, seed=config.seed, extra_patterns=[scenario],
        )
        result.machines[machine] = Fig8MachineResult(
            machine=machine, traced_max_skew=traced_skew, sweep=sweep
        )
    return result


def report(result: Fig8Result) -> str:
    lines = [
        f"Fig. 8 — normalized Alltoall runtimes ({result.num_ranks} ranks, "
        f"msg = {int(result.msg_bytes)} B; skew = max traced FT skew)",
        "cell = d^ / row minimum (absolute d^ in ms in parentheses)",
    ]
    for machine, mres in result.machines.items():
        table = mres.table
        normalized = mres.normalized
        patterns = list(table)
        algorithms = list(next(iter(table.values())))
        grid: dict[str, dict[str, str]] = {}
        for pattern in patterns:
            grid[pattern] = {
                algo: f"{normalized[pattern][algo]:.2f} ({table[pattern][algo] * 1e3:.3f})"
                for algo in algorithms
            }
        avg = mres.average_row(exclude_ft=True)
        grid["Average (excl. FT-Sce.)"] = {a: f"{v:.2f}" for a, v in avg.items()}
        lines.append("")
        lines.append(f"--- {machine} (traced max skew "
                     f"{mres.traced_max_skew * 1e6:.1f} us) ---")
        lines.append(render_grid(
            grid,
            row_order=[NO_DELAY] + [p for p in patterns if p not in (NO_DELAY, FT_SCENARIO)]
            + [FT_SCENARIO, "Average (excl. FT-Sce.)"],
            col_order=algorithms,
            corner="pattern \\ algo",
        ))
        lines.append(
            f"robustness-average pick: {mres.predicted_best()}; "
            f"best under traced FT-Scenario: {mres.scenario_best()}; "
            f"No-delay pick: {mres.sweep.best_algorithm(NO_DELAY)}"
        )
    return "\n".join(lines)
