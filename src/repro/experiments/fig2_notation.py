"""Fig. 2: illustration of the arrival/exit notation and the two metrics.

Runs one collective call with an imbalanced arrival pattern on 8 ranks and
prints every rank's arrival ``a_i`` and exit ``e_i`` together with the total
delay ``d*`` and last delay ``d^`` — the example of Section II-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.micro import MicroBenchmark
from repro.bench.metrics import CollectiveTiming
from repro.experiments.common import ExperimentConfig
from repro.patterns import generate_pattern
from repro.reporting.ascii import render_table
from repro.sim.platform import get_machine


@dataclass
class Fig2Result:
    timing: CollectiveTiming = field(repr=False)
    collective: str = "alltoall"
    algorithm: str = "pairwise"
    pattern: str = "random"


def run(config: ExperimentConfig | None = None) -> Fig2Result:
    config = config or ExperimentConfig(nodes=2, cores_per_node=4)
    bench = MicroBenchmark.from_machine(
        get_machine(config.machine), nodes=2, cores_per_node=4, nrep=1,
        seed=config.seed,
    )
    pattern = generate_pattern("random", bench.num_ranks, 2e-4, seed=config.seed)
    result = bench.run("alltoall", "pairwise", msg_bytes=4096, pattern=pattern)
    return Fig2Result(timing=result.timings[0], pattern=pattern.name)


def report(result: Fig2Result) -> str:
    timing = result.timing
    base = timing.arrivals.min()
    rows = [
        [f"P{rank}",
         f"{(timing.arrivals[rank] - base) * 1e6:.2f}",
         f"{(timing.exits[rank] - base) * 1e6:.2f}"]
        for rank in range(timing.num_ranks)
    ]
    lines = [
        f"Fig. 2 — process arrival pattern example "
        f"({result.collective}/{result.algorithm}, pattern={result.pattern})",
        "",
        render_table(["process", "arrival a_i (us)", "exit e_i (us)"], rows),
        "",
        f"total delay d* = max(e) - min(a) = {timing.total_delay * 1e6:.2f} us",
        f"last delay  d^ = max(e) - max(a) = {timing.last_delay * 1e6:.2f} us",
    ]
    return "\n".join(lines)
