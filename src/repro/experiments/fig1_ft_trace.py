"""Fig. 1: average per-rank delay across all MPI_Alltoall calls in FT.

The paper traces FT on Galileo100 with 32 x 32 ranks and plots the mean
arrival delay (relative to each call's first-arriving rank) per rank.  We
run the FT proxy on the ``galileo100`` preset, trace every Alltoall, and
report the same series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.ft import FTProxy
from repro.experiments.common import ExperimentConfig
from repro.reporting.ascii import render_series, render_table
from repro.sim.platform import get_machine
from repro.tracing import CollectiveTracer, average_delay_per_rank, max_observed_skew


@dataclass
class Fig1Result:
    machine: str
    num_ranks: int
    calls_traced: int
    avg_delay_per_rank: np.ndarray = field(repr=False)
    max_skew: float = 0.0
    ft_runtime: float = 0.0


def run(config: ExperimentConfig | None = None) -> Fig1Result:
    config = config or ExperimentConfig(machine="galileo100")
    spec = get_machine(config.machine)
    ft = FTProxy.class_d_scaled(
        spec, nodes=config.nodes, cores_per_node=config.cores_per_node,
        seed=config.seed,
        iterations=5 if config.fast else 20,
    )
    tracer = CollectiveTracer()
    app_result = ft.run(tracer)
    p = config.num_ranks
    return Fig1Result(
        machine=config.machine,
        num_ranks=p,
        calls_traced=tracer.num_calls("alltoall"),
        avg_delay_per_rank=average_delay_per_rank(tracer, "alltoall", p),
        max_skew=max_observed_skew(tracer, "alltoall", p),
        ft_runtime=app_result.runtime,
    )


def report(result: Fig1Result) -> str:
    delays_us = result.avg_delay_per_rank * 1e6
    lines = [
        f"Fig. 1 — Avg. process delay (skew) across all MPI_Alltoall calls in FT "
        f"({result.machine}, {result.num_ranks} ranks, {result.calls_traced} calls)",
        "",
        render_series(
            delays_us.tolist(),
            title="average delay per rank (us), x = rank",
        ),
        "",
        render_table(
            ["statistic", "value"],
            [
                ["mean delay (us)", f"{delays_us.mean():.2f}"],
                ["median delay (us)", f"{np.median(delays_us):.2f}"],
                ["max avg delay (us)", f"{delays_us.max():.2f}"],
                ["max per-call skew (us)", f"{result.max_skew * 1e6:.2f}"],
                ["delay spread (std/max)", f"{delays_us.std() / max(delays_us.max(), 1e-12):.3f}"],
                ["FT runtime (ms)", f"{result.ft_runtime * 1e3:.2f}"],
            ],
        ),
        "",
        "Paper's observation: the average delay is NOT uniformly distributed"
        " across ranks -> optimization potential.",
    ]
    return "\n".join(lines)
