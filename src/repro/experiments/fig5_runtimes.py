"""Fig. 5: impact of arrival patterns on collective runtimes (real-machine mode).

For one collective on the Hydra analogue, at the paper's selected message
sizes (8 B, 1024 B, 1 MiB), each Table II algorithm runs under the No-delay
case plus the distinct pattern subset.  Following the paper, measurement
uses the synchronized-clock harness (drifting clocks + HCA sync +
Harmonize) and machine noise, and per pattern row the algorithms within 5 %
of the fastest are classified "good" (the light-blue boxes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.bench.results import SweepResult
from repro.bench.robustness import good_algorithms
from repro.bench.runner import sweep_shared_skew
from repro.experiments.common import (
    ExperimentConfig,
    FIG5_MSG_SIZES,
    FIG5_SHAPES,
    TABLE2_ALGORITHMS,
)
from repro.patterns.shapes import NO_DELAY
from repro.reporting.ascii import render_grid
from repro.utils.units import format_bytes


@dataclass
class Fig5Result:
    collective: str
    machine: str
    num_ranks: int
    msg_sizes: list[int]
    shapes: list[str]
    algorithms: list[str]
    sweeps: dict[int, SweepResult] = field(default_factory=dict, repr=False)

    def classification(self, msg_bytes: int, pattern: str) -> dict[str, bool]:
        """algorithm -> is within 5% of the row's fastest ("good")."""
        row = self.sweeps[msg_bytes].row(pattern)
        good = good_algorithms(row)
        return {algo: algo in good for algo in row}


def run(config: ExperimentConfig | None = None, collective: str = "reduce") -> Fig5Result:
    config = config or ExperimentConfig(machine="hydra")
    if collective not in TABLE2_ALGORITHMS:
        raise ConfigurationError(
            f"fig5 supports {sorted(TABLE2_ALGORITHMS)}, got {collective!r}"
        )
    algorithms = TABLE2_ALGORITHMS[collective]
    shapes = FIG5_SHAPES if not config.fast else ["descending", "last_delayed"]
    msg_sizes = FIG5_MSG_SIZES if not config.fast else [8, 1024]
    bench = config.make_bench(clock_mode="synced", nrep=max(config.nrep, 2))
    result = Fig5Result(
        collective=collective,
        machine=config.machine,
        num_ranks=bench.num_ranks,
        msg_sizes=msg_sizes,
        shapes=shapes,
        algorithms=algorithms,
    )
    executor = config.make_executor()
    for size in msg_sizes:
        result.sweeps[size] = sweep_shared_skew(
            bench, collective, algorithms, size, shapes,
            skew_factor=1.0,  # Fig. 5 scales skew to the mean No-delay runtime
            seed=config.seed,
            executor=executor,
        )
    return result


def report(result: Fig5Result) -> str:
    lines = [
        f"Fig. 5 — runtimes of {result.collective} algorithms under arrival "
        f"patterns ({result.machine}, {result.num_ranks} ranks)",
        "cell = mean last delay d^ in ms; '*' marks algorithms within 5% of the row's fastest",
    ]
    for size in result.msg_sizes:
        sweep = result.sweeps[size]
        grid: dict[str, dict[str, str]] = {}
        for pattern in [NO_DELAY] + result.shapes:
            row = sweep.row(pattern)
            good = good_algorithms(row)
            grid[pattern] = {
                algo: f"{row[algo] * 1e3:.4f}{'*' if algo in good else ' '}"
                for algo in result.algorithms
            }
        lines.append("")
        lines.append(
            render_grid(
                grid,
                row_order=[NO_DELAY] + result.shapes,
                col_order=result.algorithms,
                corner=f"{format_bytes(size)} \\ algo",
            )
        )
    return "\n".join(lines)
