"""Extension experiment: accuracy of the hierarchical clock synchronization.

The paper's methodology rests on HCA3's sub-microsecond logical global
clock (Section II-B).  This experiment validates our simulated stack
parametrically: for several rank counts and drift magnitudes it runs the
sync protocol, then measures the worst-case disagreement of the corrected
clocks immediately after sync and after an aging horizon — showing both
the achieved accuracy and its decay rate (residual drift).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocks import ClockSet, SyncedClocks
from repro.clocks.sync import sync_clocks
from repro.experiments.common import ExperimentConfig
from repro.reporting.ascii import render_table
from repro.sim.mpi import run_processes
from repro.sim.platform import Platform


@dataclass
class ClockAccuracyResult:
    #: (num_ranks, drift_ppm) -> errors at (sync end, +benchmark horizon,
    #: +aging horizon), in seconds
    cells: dict[tuple[int, float], tuple[float, float, float]] = field(
        default_factory=dict
    )

    def worst_initial_error(self) -> float:
        return max(v[0] for v in self.cells.values())

    def worst_benchmark_error(self) -> float:
        return max(v[1] for v in self.cells.values())

    def worst_aged_error(self) -> float:
        return max(v[2] for v in self.cells.values())


RANK_COUNTS = (4, 16, 32)
DRIFTS_PPM = (1.0, 10.0, 50.0)
#: Horizon of a typical micro-benchmark run after sync (the paper's usage).
BENCHMARK_HORIZON = 0.1
#: Long-horizon aging, showing the residual-drift decay rate.
AGING_HORIZON = 1.0


def run(config: ExperimentConfig | None = None) -> ClockAccuracyResult:
    config = config or ExperimentConfig()
    result = ClockAccuracyResult()
    rank_counts = RANK_COUNTS[:2] if config.fast else RANK_COUNTS
    for p in rank_counts:
        platform = Platform("clocks", nodes=max(1, p // 4), cores_per_node=4)
        for drift_ppm in DRIFTS_PPM:
            clockset = ClockSet(p, seed=config.seed, drift_ppm=drift_ppm)

            def prog(ctx):
                corr = yield from sync_clocks(ctx, clockset[ctx.rank])
                return corr

            run_out = run_processes(platform, prog, num_ranks=p)
            synced = SyncedClocks(clockset, run_out.rank_results)
            t0 = run_out.final_time
            result.cells[(p, drift_ppm)] = (
                synced.max_error(t0),
                synced.max_error(t0 + BENCHMARK_HORIZON),
                synced.max_error(t0 + AGING_HORIZON),
            )
    return result


def report(result: ClockAccuracyResult) -> str:
    rows = [
        [str(p), f"{drift:.0f}", f"{err0 * 1e9:.1f}", f"{err1 * 1e9:.1f}",
         f"{err2 * 1e9:.1f}"]
        for (p, drift), (err0, err1, err2) in sorted(result.cells.items())
    ]
    verdict = (
        "PASS: global clock stays below the paper's 1 us bound over a "
        "benchmark horizon"
        if result.worst_benchmark_error() < 1e-6
        else "WARN: accuracy exceeds 1 us within the benchmark horizon"
    )
    return "\n".join([
        "Extension — hierarchical clock sync accuracy (HCA3 analogue)",
        "",
        render_table(
            ["ranks", "drift (ppm)", "after sync (ns)",
             f"+{BENCHMARK_HORIZON * 1e3:.0f}ms (ns)",
             f"+{AGING_HORIZON:.0f}s (ns)"],
            rows,
        ),
        "",
        verdict,
        "Residual-drift aging (last column) is why real harnesses "
        "re-synchronize periodically, as ReproMPI does.",
    ])
