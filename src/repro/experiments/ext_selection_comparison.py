"""Extension experiment: four selection regimes head-to-head on the FT proxy.

Beyond the paper's figures, this compares end-to-end FT runtime under:

1. **library default** — Open MPI's fixed decision logic
   (:func:`repro.collectives.tuned.fixed_decision`),
2. **no-delay tuned** — classic micro-benchmark tuning,
3. **robust tuned** — the paper's robustness-average selection,
4. **online adaptive** — per-call pattern detection + switching
   (:mod:`repro.selection.online`), including its measurement overhead.

The paper argues 3 beats 2 and needs no application trace; this experiment
also quantifies the library default's gap and whether per-call adaptation
pays for its probing allgather.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.ft import FT_MSG_BYTES, FTProxy
from repro.bench.runner import sweep_shared_skew
from repro.collectives.tuned import fixed_decision
from repro.experiments.common import ExperimentConfig, TABLE2_ALGORITHMS
from repro.patterns.shapes import list_shapes
from repro.reporting.ascii import render_table
from repro.selection import (
    AdaptiveSelector,
    NoDelaySelector,
    RobustAverageSelector,
    run_adaptive_app,
)
from repro.sim.network import NetworkParams
from repro.sim.noise import NoiseModel
from repro.sim.platform import get_machine


@dataclass
class SelectionComparisonResult:
    machine: str
    num_ranks: int
    #: regime -> (picked algorithm or 'adaptive', FT runtime seconds)
    regimes: dict[str, tuple[str, float]] = field(default_factory=dict)
    adaptive_switches: int = 0

    def best_regime(self) -> str:
        return min(self.regimes, key=lambda k: self.regimes[k][1])


def run(config: ExperimentConfig | None = None) -> SelectionComparisonResult:
    config = config or ExperimentConfig(machine="hydra")
    spec = get_machine(config.machine)
    algorithms = TABLE2_ALGORITHMS["alltoall"]
    iterations = 5 if config.fast else 20
    shapes = list_shapes() if not config.fast else ["first_delayed", "last_delayed",
                                                    "ascending", "random"]

    bench = config.make_bench(nrep=max(config.nrep, 2))
    sweep = sweep_shared_skew(
        bench, "alltoall", algorithms, FT_MSG_BYTES, shapes,
        skew_factor=1.0, seed=config.seed,
    )
    picks = {
        "library default (fixed rules)": fixed_decision(
            "alltoall", config.num_ranks, FT_MSG_BYTES
        ),
        "no-delay tuned": NoDelaySelector().select(sweep),
        "robust tuned (paper)": RobustAverageSelector().select(sweep),
    }

    result = SelectionComparisonResult(machine=config.machine,
                                       num_ranks=config.num_ranks)
    for regime, algo in picks.items():
        ft = FTProxy.class_d_scaled(
            spec, nodes=config.nodes, cores_per_node=config.cores_per_node,
            seed=config.seed, algorithm=algo, iterations=iterations,
        )
        result.regimes[regime] = (algo, ft.run().runtime)

    # Online adaptive, with the same iteration structure and noise.
    platform = spec.platform.scaled(config.nodes, config.cores_per_node)
    selector = AdaptiveSelector.from_sweep(sweep, config.num_ranks,
                                           seed=config.seed)
    adaptive = run_adaptive_app(
        platform, selector,
        msg_bytes=FT_MSG_BYTES, iterations=iterations * 2,  # 2 calls/iter in FTProxy
        compute_per_iteration=0.6e-3,
        params=NetworkParams(**spec.network),
        noise=NoiseModel(spec.noise_profile, platform.num_ranks, seed=config.seed),
    )
    result.regimes["online adaptive (extension)"] = ("adaptive", adaptive.runtime)
    result.adaptive_switches = adaptive.switches
    return result


def report(result: SelectionComparisonResult) -> str:
    best = result.best_regime()
    baseline = result.regimes["library default (fixed rules)"][1]
    rows = [
        [regime, algo, f"{runtime * 1e3:.2f}",
         f"{(runtime / baseline - 1) * 100:+.1f}%",
         "<-- best" if regime == best else ""]
        for regime, (algo, runtime) in result.regimes.items()
    ]
    return "\n".join([
        f"Extension — selection regimes on FT ({result.machine}, "
        f"{result.num_ranks} ranks); adaptive switched algorithms "
        f"{result.adaptive_switches}x",
        "",
        render_table(
            ["selection regime", "algorithm", "FT runtime (ms)",
             "vs library default", ""],
            rows,
        ),
    ])
