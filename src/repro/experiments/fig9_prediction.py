"""Fig. 9: actual FT runtime vs. projected runtimes (No-delay vs. pattern-average).

The paper profiles FT (mpisee) to extract its computation time, then
projects the total runtime two ways per Alltoall algorithm:

* ``compute + n_calls x d^_no_delay``  — the classic micro-benchmark
  projection, which misses badly for skew-sensitive algorithms;
* ``compute + n_calls x (avg-normalized expected delay)`` — using the mean
  runtime across arrival patterns (excluding the traced FT-Scenario), which
  tracks the actual runtime closely.

Our compute extraction comes from the proxy app's built-in accounting (the
mpisee analogue).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.ft import FT_MSG_BYTES, FTProxy
from repro.bench.runner import sweep_shared_skew
from repro.experiments.common import ExperimentConfig, TABLE2_ALGORITHMS
from repro.experiments.fig8_normalized import FT_SCENARIO
from repro.patterns.shapes import NO_DELAY, list_shapes
from repro.reporting.ascii import render_table
from repro.sim.platform import get_machine
from repro.tracing import CollectiveTracer, max_observed_skew, pattern_from_trace


@dataclass
class Fig9Result:
    machine: str
    num_ranks: int
    calls: int
    compute_time: float
    actual: dict[str, float] = field(default_factory=dict)
    predicted_no_delay: dict[str, float] = field(default_factory=dict)
    predicted_average: dict[str, float] = field(default_factory=dict)

    def error(self, predictions: dict[str, float]) -> dict[str, float]:
        """Relative prediction error per algorithm."""
        return {
            algo: abs(predictions[algo] - self.actual[algo]) / self.actual[algo]
            for algo in self.actual
        }

    @property
    def no_delay_mean_error(self) -> float:
        return float(np.mean(list(self.error(self.predicted_no_delay).values())))

    @property
    def average_mean_error(self) -> float:
        return float(np.mean(list(self.error(self.predicted_average).values())))


def run(config: ExperimentConfig | None = None) -> Fig9Result:
    config = config or ExperimentConfig(machine="hydra")
    spec = get_machine(config.machine)
    algorithms = TABLE2_ALGORITHMS["alltoall"]
    iterations = 5 if config.fast else 20
    shapes = list_shapes() if not config.fast else ["ascending", "descending",
                                                    "last_delayed", "random"]

    # --- actual FT runs + profile (compute time, call count, trace). ---
    actual: dict[str, float] = {}
    compute = None
    calls = None
    tracer = CollectiveTracer()
    for algo in algorithms:
        ft = FTProxy.class_d_scaled(
            spec, nodes=config.nodes, cores_per_node=config.cores_per_node,
            seed=config.seed, algorithm=algo, iterations=iterations,
        )
        app = ft.run(tracer if algo == algorithms[0] else None)
        actual[algo] = app.runtime
        if algo == algorithms[0]:
            compute = app.compute_time
            calls = app.collective_calls

    # --- micro-benchmark expectations per algorithm. ---
    scenario = pattern_from_trace(tracer, "alltoall", config.num_ranks, name=FT_SCENARIO)
    traced_skew = max_observed_skew(tracer, "alltoall", config.num_ranks)
    bench = config.make_bench(nrep=max(config.nrep, 2))
    sweep = sweep_shared_skew(
        bench, "alltoall", algorithms, FT_MSG_BYTES, shapes,
        max_skew=traced_skew, seed=config.seed, extra_patterns=[scenario],
    )
    result = Fig9Result(
        machine=config.machine, num_ranks=config.num_ranks,
        calls=calls, compute_time=compute, actual=actual,
    )
    patterns_for_avg = [p for p in sweep.patterns if p not in (FT_SCENARIO,)]
    for algo in algorithms:
        d_nodelay = sweep.get(NO_DELAY, algo).last_delay
        d_avg = float(np.mean([sweep.get(p, algo).last_delay for p in patterns_for_avg]))
        result.predicted_no_delay[algo] = compute + calls * d_nodelay
        result.predicted_average[algo] = compute + calls * d_avg
    return result


def report(result: Fig9Result) -> str:
    rows = []
    for algo in result.actual:
        rows.append([
            algo,
            f"{result.actual[algo] * 1e3:.2f}",
            f"{result.predicted_no_delay[algo] * 1e3:.2f}",
            f"{result.predicted_average[algo] * 1e3:.2f}",
            f"{result.error(result.predicted_no_delay)[algo] * 100:.1f}%",
            f"{result.error(result.predicted_average)[algo] * 100:.1f}%",
        ])
    lines = [
        f"Fig. 9 — actual vs. projected FT runtime ({result.machine}, "
        f"{result.num_ranks} ranks, {result.calls} Alltoall calls, "
        f"compute = {result.compute_time * 1e3:.2f} ms)",
        "",
        render_table(
            ["algorithm", "actual (ms)", "proj. No-delay (ms)",
             "proj. Avg (ms)", "err No-delay", "err Avg"],
            rows,
        ),
        "",
        f"mean relative error: No-delay projection {result.no_delay_mean_error * 100:.1f}%, "
        f"pattern-average projection {result.average_mean_error * 100:.1f}%",
    ]
    return "\n".join(lines)
