"""Experiment drivers — one module per paper figure/table.

Every driver exposes ``run(config) -> <result dataclass>`` plus a
``report(result) -> str`` renderer printing the same rows/series the paper's
figure shows.  The CLI (:mod:`repro.cli`) and the benchmark suite
(``benchmarks/``) are thin wrappers over these.

| Paper item | Module |
|---|---|
| Fig. 1  | :mod:`repro.experiments.fig1_ft_trace` |
| Fig. 2  | :mod:`repro.experiments.fig2_notation` |
| Fig. 3  | :mod:`repro.experiments.fig3_patterns` |
| Fig. 4  | :mod:`repro.experiments.fig4_simulation` |
| Fig. 5  | :mod:`repro.experiments.fig5_runtimes` |
| Fig. 6  | :mod:`repro.experiments.fig6_robustness` |
| Fig. 7  | :mod:`repro.experiments.fig7_ft_vs_micro` |
| Fig. 8  | :mod:`repro.experiments.fig8_normalized` |
| Fig. 9  | :mod:`repro.experiments.fig9_prediction` |
| Tab. I/II | :mod:`repro.experiments.tables` |
"""

from repro.experiments.common import ExperimentConfig

__all__ = ["ExperimentConfig"]
