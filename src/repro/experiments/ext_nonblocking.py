"""Extension experiment: do non-blocking collectives absorb arrival skew?

Widener et al. [IJHPCA'16], cited by the paper, used an idealized model of
non-blocking collectives to ask whether overlap mitigates noise-induced
imbalance.  With the simulator's progress fibers we can run the experiment
directly: an iterative application executes, per iteration,

* **blocking**:     compute  ->  collective
* **non-blocking**: start collective(previous data) -> compute -> wait

under increasing noise intensity, for a latency-bound (small Allreduce) and
a bandwidth-bound (large Alltoall) collective.  Reported per configuration:
runtime of both variants and the overlap benefit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.collectives import CollArgs, make_input, run_collective
from repro.collectives.nonblocking import icollective, wait_collective
from repro.experiments.common import ExperimentConfig
from repro.reporting.ascii import render_table
from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.noise import NoiseModel
from repro.sim.platform import get_machine


@dataclass
class NonblockingResult:
    machine: str
    num_ranks: int
    #: (workload, noise) -> (blocking runtime, non-blocking runtime)
    cells: dict[tuple[str, str], tuple[float, float]] = field(default_factory=dict)

    def benefit(self, workload: str, noise: str) -> float:
        blocking, nonblocking = self.cells[(workload, noise)]
        return 1.0 - nonblocking / blocking


WORKLOADS = {
    # (collective, algorithm, msg_bytes, count, compute seconds/iteration)
    "small_allreduce": ("allreduce", "recursive_doubling", 8.0, 8, 0.4e-3),
    "large_alltoall": ("alltoall", "pairwise", 32768.0, 16, 1.2e-3),
}
NOISE_LEVELS = ("none", "moderate", "noisy")


def _run_variant(platform, params, noise, workload_key: str, iterations: int,
                 nonblocking: bool) -> float:
    collective, algorithm, msg_bytes, count, compute = WORKLOADS[workload_key]
    p = platform.num_ranks
    args = CollArgs(count=count, msg_bytes=msg_bytes)
    inputs = [make_input(collective, r, p, count) for r in range(p)]

    def prog(ctx):
        me = ctx.rank
        yield from ctx.barrier()
        start = ctx.time()
        if nonblocking:
            handle = None
            for _it in range(iterations):
                next_handle = icollective(
                    ctx, collective, algorithm, args, inputs[me],
                    tag_offset=_it % 2,
                )
                yield ctx.compute(compute)
                if handle is not None:
                    yield from wait_collective(ctx, handle)
                handle = next_handle
            yield from wait_collective(ctx, handle)
        else:
            for _it in range(iterations):
                yield ctx.compute(compute)
                yield from run_collective(ctx, collective, algorithm, args, inputs[me])
        return ctx.time() - start

    run = run_processes(platform, prog, params=params, noise=noise)
    return float(max(run.rank_results))


def run(config: ExperimentConfig | None = None) -> NonblockingResult:
    config = config or ExperimentConfig(machine="hydra")
    spec = get_machine(config.machine)
    platform = spec.platform.scaled(config.nodes, config.cores_per_node)
    params = NetworkParams(**spec.network)
    iterations = 5 if config.fast else 15
    result = NonblockingResult(machine=config.machine, num_ranks=platform.num_ranks)
    for workload in WORKLOADS:
        for noise_name in NOISE_LEVELS:
            noise = (
                NoiseModel(noise_name, platform.num_ranks, seed=config.seed)
                if noise_name != "none" else None
            )
            blocking = _run_variant(platform, params, noise, workload,
                                    iterations, nonblocking=False)
            nonblocking = _run_variant(platform, params, noise, workload,
                                       iterations, nonblocking=True)
            result.cells[(workload, noise_name)] = (blocking, nonblocking)
    return result


def report(result: NonblockingResult) -> str:
    rows = []
    for (workload, noise_name), (blocking, nonblocking) in result.cells.items():
        rows.append([
            workload,
            noise_name,
            f"{blocking * 1e3:.2f}",
            f"{nonblocking * 1e3:.2f}",
            f"{result.benefit(workload, noise_name) * 100:+.1f}%",
        ])
    return "\n".join([
        f"Extension — blocking vs non-blocking collectives under noise "
        f"({result.machine}, {result.num_ranks} ranks)",
        "",
        render_table(
            ["workload", "noise", "blocking (ms)", "non-blocking (ms)",
             "overlap benefit"],
            rows,
        ),
        "",
        "Reading: overlap hides the collective behind compute (the",
        "bandwidth-bound row's steady ~25% benefit), and the one-iteration",
        "pipelining also absorbs part of the noise-induced arrival skew —",
        "matching Widener et al.'s finding that non-blocking collectives",
        "help for some noise regimes without removing imbalance itself.",
    ])
