"""Fig. 3: the shapes of the eight artificial process arrival patterns."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import ExperimentConfig
from repro.patterns import generate_pattern, list_shapes
from repro.reporting.ascii import render_series


@dataclass
class Fig3Result:
    num_ranks: int
    max_skew: float
    patterns: dict[str, np.ndarray] = field(default_factory=dict, repr=False)


def run(config: ExperimentConfig | None = None) -> Fig3Result:
    config = config or ExperimentConfig()
    p = min(config.num_ranks, 64)
    s = 1.0  # shapes are scale-free; use a unit maximum skew
    result = Fig3Result(num_ranks=p, max_skew=s)
    for shape in list_shapes():
        result.patterns[shape] = generate_pattern(shape, p, s, seed=config.seed).skews
    return result


def report(result: Fig3Result) -> str:
    lines = [
        f"Fig. 3 — artificial process arrival pattern shapes "
        f"({result.num_ranks} ranks, max skew s = {result.max_skew})",
    ]
    for shape, skews in result.patterns.items():
        lines.append("")
        lines.append(render_series(skews.tolist(), height=5,
                                   title=f"[{shape}]  y = skew, x = rank"))
    return "\n".join(lines)
