"""Extension experiment: arrival-pattern sensitivity of *every* collective family.

Section III-A: "we simulated several rooted and non-rooted collectives,
anticipating that rooted algorithms would exhibit greater sensitivity to
arrival patterns ... For the sake of conciseness, we only present results
for one rooted (MPI_Reduce) and two non-rooted (MPI_Allreduce,
MPI_Alltoall) collectives."  This experiment runs the Fig. 4 analysis for
the families the paper omitted — Bcast, Allgather, Gather, Scatter,
Reduce_scatter, Scan — and quantifies each family's sensitivity as the
fraction of (pattern, size) cells whose best algorithm beats the
No-delay-tuned choice by more than 10 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.results import SweepResult
from repro.bench.runner import sweep_shared_skew
from repro.collectives.base import list_algorithms
from repro.experiments.common import ExperimentConfig
from repro.patterns.shapes import NO_DELAY, list_shapes
from repro.reporting.ascii import render_table
from repro.utils.units import format_bytes

#: Families to sweep (rooted flag drives the expectation check).
FAMILIES: dict[str, bool] = {
    "bcast": True,
    "gather": True,
    "scatter": True,
    "reduce": True,
    "allgather": False,
    "reduce_scatter": False,
    "allreduce": False,
    "alltoall": False,
    "scan": False,
}

_SIZES = (16, 1024, 65536)
_SIGNIFICANT = 0.10  # a flip counts when the win exceeds 10 %


@dataclass
class FamilySensitivity:
    collective: str
    rooted: bool
    cells: int
    flips: int
    best_win: float  # smallest relative d^ seen (1.0 = never better)

    @property
    def flip_fraction(self) -> float:
        return self.flips / self.cells if self.cells else 0.0


@dataclass
class AllFamiliesResult:
    machine: str
    num_ranks: int
    families: dict[str, FamilySensitivity] = field(default_factory=dict)
    sweeps: dict[tuple[str, int], SweepResult] = field(default_factory=dict, repr=False)

    def rooted_mean_flip_fraction(self) -> float:
        vals = [f.flip_fraction for f in self.families.values() if f.rooted]
        return sum(vals) / len(vals) if vals else 0.0

    def nonrooted_mean_flip_fraction(self) -> float:
        vals = [f.flip_fraction for f in self.families.values() if not f.rooted]
        return sum(vals) / len(vals) if vals else 0.0


def run(config: ExperimentConfig | None = None) -> AllFamiliesResult:
    config = config or ExperimentConfig(machine="simcluster")
    bench = config.make_bench(noise_profile="none")
    shapes = list_shapes() if not config.fast else ["ascending", "descending",
                                                    "first_delayed", "last_delayed"]
    sizes = _SIZES if not config.fast else (16, 65536)
    families = dict(FAMILIES)
    if config.fast:
        families = {k: v for k, v in families.items()
                    if k in ("bcast", "allgather", "reduce", "alltoall")}
    result = AllFamiliesResult(machine=config.machine, num_ranks=config.num_ranks)
    for collective, rooted in families.items():
        algorithms = list_algorithms(collective)
        flips = 0
        cells = 0
        best_win = 1.0
        for size in sizes:
            sweep = sweep_shared_skew(
                bench, collective, algorithms, size, shapes,
                skew_factor=config.skew_factor, seed=config.seed,
            )
            result.sweeps[(collective, size)] = sweep
            nd_choice = sweep.best_algorithm(NO_DELAY)
            for shape in shapes:
                row = sweep.row(shape)
                winner = min(row, key=row.get)
                rel = row[winner] / row[nd_choice]
                cells += 1
                if winner != nd_choice and rel < (1.0 - _SIGNIFICANT):
                    flips += 1
                best_win = min(best_win, rel)
        result.families[collective] = FamilySensitivity(
            collective=collective, rooted=rooted, cells=cells,
            flips=flips, best_win=best_win,
        )
    return result


def report(result: AllFamiliesResult) -> str:
    rows = []
    for name, fam in sorted(result.families.items(),
                            key=lambda kv: -kv[1].flip_fraction):
        rows.append([
            name,
            "rooted" if fam.rooted else "non-rooted",
            f"{fam.flips}/{fam.cells}",
            f"{fam.flip_fraction * 100:.0f}%",
            f"{fam.best_win:.2f}",
        ])
    lines = [
        f"Extension — pattern sensitivity of every collective family "
        f"({result.machine}, {result.num_ranks} ranks, sizes "
        f"{', '.join(format_bytes(s) for s in _SIZES)})",
        "",
        render_table(
            ["collective", "class", "winner flips (>10%)", "flip fraction",
             "strongest relative d^"],
            rows,
        ),
        "",
        f"rooted families flip in {result.rooted_mean_flip_fraction() * 100:.0f}% "
        f"of cells on average vs "
        f"{result.nonrooted_mean_flip_fraction() * 100:.0f}% for non-rooted — "
        "the paper's Section III expectation.",
    ]
    return "\n".join(lines)
