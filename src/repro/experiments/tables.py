"""Tables I and II: the machine registry and the algorithm-ID mapping."""

from __future__ import annotations

import repro.collectives  # noqa: F401 - populate the registry
from repro.collectives.base import get_algorithm, list_algorithms
from repro.experiments.common import TABLE2_ALGORITHMS
from repro.reporting.ascii import render_table
from repro.sim.platform import MACHINES


def table1() -> str:
    """Table I: characteristics of the (simulated analogues of the) machines."""
    rows = []
    for name, spec in MACHINES.items():
        plat = spec.platform
        rows.append([
            name,
            f"{plat.nodes} x {plat.cores_per_node} cores",
            spec.interconnect,
            f"{spec.network['inter_latency'] * 1e6:.1f} us / "
            f"{spec.network['inter_bandwidth'] * 8 / 1e9:.0f} Gbit/s",
            spec.noise_profile,
            spec.mpi_version,
        ])
    return render_table(
        ["Machine", "Scale (default)", "Interconnect",
         "Inter-node lat/bw", "Noise", "MPI analogue"],
        rows,
        title="Table I — simulated machine presets (paper analogues)",
    )


def table2() -> str:
    """Table II: algorithm IDs and names (Open MPI 4.1.x numbering)."""
    rows = []
    for collective in ("allreduce", "alltoall", "reduce"):
        for name in TABLE2_ALGORITHMS[collective]:
            info = get_algorithm(collective, name)
            rows.append([
                collective,
                str(info.ompi_id),
                info.name,
                ", ".join(info.aliases) or "-",
                info.description,
            ])
    return render_table(
        ["Collective", "ID", "Algorithm", "Aliases", "Description"],
        rows,
        title="Table II — algorithm IDs and names in Open MPI 4.1.x",
    )


def full_registry() -> str:
    """Every registered algorithm in every family (beyond Table II)."""
    rows = []
    from repro.collectives.base import list_collectives

    for collective in list_collectives():
        for name in list_algorithms(collective):
            info = get_algorithm(collective, name)
            rows.append([
                collective,
                str(info.ompi_id) if info.ompi_id is not None else "-",
                name,
                info.description,
            ])
    return render_table(
        ["Collective", "ID", "Algorithm", "Description"],
        rows,
        title="Full algorithm registry",
    )
