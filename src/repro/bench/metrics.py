"""The paper's two delay metrics (Section II-A).

For one collective call with per-rank arrival times ``a_i`` and exit times
``e_i``:

* **total delay**  ``d* = max(e_i) - min(a_i)`` — what a synchronized
  micro-benchmark effectively measures; misleading under skew because it
  includes the externally imposed waiting time.
* **last delay**   ``d^ = max(e_i) - max(a_i)`` — time from the *last* rank
  entering to the last rank leaving; the quantity worth minimizing when the
  arrival pattern is outside the algorithm's control.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


def total_delay(arrivals: np.ndarray, exits: np.ndarray) -> float:
    """``d* = max(e_i) - min(a_i)`` (Eq. 1)."""
    arrivals = np.asarray(arrivals, dtype=float)
    exits = np.asarray(exits, dtype=float)
    _validate(arrivals, exits)
    return float(exits.max() - arrivals.min())


def last_delay(arrivals: np.ndarray, exits: np.ndarray) -> float:
    """``d^ = max(e_i) - max(a_i)`` (Eq. 2)."""
    arrivals = np.asarray(arrivals, dtype=float)
    exits = np.asarray(exits, dtype=float)
    _validate(arrivals, exits)
    return float(exits.max() - arrivals.max())


def _validate(arrivals: np.ndarray, exits: np.ndarray) -> None:
    if arrivals.shape != exits.shape or arrivals.ndim != 1 or arrivals.size == 0:
        raise ConfigurationError("arrivals/exits must be equal-length non-empty 1-D arrays")
    if (exits < arrivals).any():
        raise ConfigurationError("every exit time must be >= its arrival time")


@dataclass(frozen=True)
class CollectiveTiming:
    """Per-rank arrival/exit timestamps of one collective call."""

    arrivals: np.ndarray = field(repr=False)
    exits: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        a = np.asarray(self.arrivals, dtype=float)
        e = np.asarray(self.exits, dtype=float)
        _validate(a, e)
        object.__setattr__(self, "arrivals", a)
        object.__setattr__(self, "exits", e)

    @property
    def num_ranks(self) -> int:
        return int(self.arrivals.shape[0])

    @property
    def total_delay(self) -> float:
        return total_delay(self.arrivals, self.exits)

    @property
    def last_delay(self) -> float:
        return last_delay(self.arrivals, self.exits)

    @property
    def arrival_spread(self) -> float:
        """Observed skew: ``max(a_i) - min(a_i)``."""
        return float(self.arrivals.max() - self.arrivals.min())

    def delays_from_first(self) -> np.ndarray:
        """Per-rank arrival delay relative to the first arriving rank (Fig. 1/2)."""
        return self.arrivals - self.arrivals.min()
