"""Concurrent load generator for the selection service.

Drives an in-process :class:`~repro.service.SelectionService` with a
deterministic, seeded mix of queries — collectives x communicator sizes x
message sizes x arrival patterns — from N threads, optionally while a
churn thread hot-reloads the store, and reports **exact** p50/p99 latency
(computed from the raw per-query samples, not the service's bucketed
histograms) plus sustained QPS per workload.

Four standard workloads bound the service's performance envelope:

* ``hot_cache`` — a handful of distinct keys, so nearly every query is an
  LRU hit: the concurrency floor.
* ``cold_mix`` — a key space larger than the cache, so queries keep
  resolving through the store tables: the miss path.
* ``batch`` — the same mix through :meth:`query_batch` in fixed-size
  batches: the amortized-lock path.
* ``reload_churn`` — the hot mix while a churn thread calls
  :meth:`reload` at a fixed cadence: tail latency under generation swaps.

``python -m repro.bench.loadgen --store store.db --out
benchmarks/BENCH_service.json`` writes the committed baseline consumed by
``benchmarks/check_service_regression.py`` (workload coverage is the hard
gate there; wall-clock drift only warns).  The run also cross-checks the
service's own ``service.query_seconds`` histogram: its
:meth:`~repro.obs.metrics.Histogram.quantile` estimates are reported next
to the exact sample percentiles (``hist_p50_us`` / ``hist_p99_us``).
"""

from __future__ import annotations

import json
import random
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError

#: The default query mix axes (collectives the fallback always knows).
DEFAULT_COLLECTIVES = ("alltoall", "allreduce", "bcast", "reduce")
DEFAULT_COMM_SIZES = (4, 8, 16, 32, 64)
DEFAULT_MSG_BYTES = (8.0, 1024.0, 32768.0, 1048576.0)
DEFAULT_PATTERNS = (None, "no_delay", "ascending", "random")

WORKLOADS = ("hot_cache", "cold_mix", "batch", "reload_churn")


@dataclass
class LoadGenConfig:
    """One load-generator run: the mix, the concurrency, the budget."""

    queries: int = 20000
    threads: int = 4
    seed: int = 0
    batch_size: int = 64
    #: Seconds between reloads in the ``reload_churn`` workload.
    reload_interval: float = 0.05
    collectives: tuple = DEFAULT_COLLECTIVES
    comm_sizes: tuple = DEFAULT_COMM_SIZES
    msg_bytes: tuple = DEFAULT_MSG_BYTES
    patterns: tuple = DEFAULT_PATTERNS

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise ConfigurationError("queries must be >= 1")
        if self.threads < 1:
            raise ConfigurationError("threads must be >= 1")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")


def percentile(samples: list[float], q: float) -> float:
    """Exact linear-interpolated quantile of raw samples (numpy-style)."""
    if not samples:
        raise ValueError("no samples")
    xs = sorted(samples)
    rank = q * (len(xs) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(xs) - 1)
    return xs[lo] + (rank - lo) * (xs[hi] - xs[lo])


def build_mix(config: LoadGenConfig, *, distinct: int | None = None) -> list[dict]:
    """The seeded query list: ``queries`` draws from ``distinct`` keys.

    ``distinct=None`` draws from the full cross product (the cold mix);
    a small ``distinct`` first samples that many keys and then draws all
    queries from them (the hot-cache mix).  Same seed, same list — the
    benchmark is reproducible across runs and machines.
    """
    rng = random.Random(config.seed)
    space = [
        {"collective": c, "comm_size": n, "msg_bytes": m, "pattern": p}
        for c in config.collectives
        for n in config.comm_sizes
        for m in config.msg_bytes
        for p in config.patterns
    ]
    if distinct is not None:
        space = rng.sample(space, min(distinct, len(space)))
    return [dict(rng.choice(space)) for _ in range(config.queries)]


@dataclass
class WorkloadResult:
    """Measured outcome of one workload run."""

    name: str
    queries: int
    errors: int
    elapsed: float
    latencies: list[float] = field(repr=False, default_factory=list)
    reloads: int = 0
    hist_p50: float | None = None
    hist_p99: float | None = None

    @property
    def qps(self) -> float:
        return self.queries / self.elapsed if self.elapsed > 0 else 0.0

    def payload(self) -> dict:
        """The JSON-ready row for ``BENCH_service.json``."""
        us = 1e6
        return {
            "queries": self.queries,
            "errors": self.errors,
            "reloads": self.reloads,
            "qps": round(self.qps, 1),
            "p50_us": round(percentile(self.latencies, 0.5) * us, 2),
            "p99_us": round(percentile(self.latencies, 0.99) * us, 2),
            "hist_p50_us": (round(self.hist_p50 * us, 2)
                            if self.hist_p50 is not None else None),
            "hist_p99_us": (round(self.hist_p99 * us, 2)
                            if self.hist_p99 is not None else None),
        }


def _run_threads(service, mix: list[dict], threads: int,
                 batch_size: int = 0) -> tuple[list[float], int, float]:
    """Fan ``mix`` out over ``threads``; returns (latencies, errors, secs).

    With ``batch_size > 0`` each thread issues :meth:`query_batch` calls of
    that size and the recorded latency is per *batch* divided across its
    items (whole-batch pacing still shows in QPS).
    """
    shards = [mix[i::threads] for i in range(threads)]
    lat_shards: list[list[float]] = [[] for _ in range(threads)]
    err_counts = [0] * threads
    start_barrier = threading.Barrier(threads + 1)

    def worker(tid: int) -> None:
        shard, lats = shards[tid], lat_shards[tid]
        start_barrier.wait()
        if batch_size:
            for i in range(0, len(shard), batch_size):
                chunk = shard[i:i + batch_size]
                t0 = time.perf_counter()
                try:
                    service.query_batch(chunk)
                except Exception:  # noqa: BLE001 - counted, not raised
                    err_counts[tid] += len(chunk)
                dt = (time.perf_counter() - t0) / len(chunk)
                lats.extend([dt] * len(chunk))
            return
        for q in shard:
            t0 = time.perf_counter()
            try:
                service.query(**q)
            except Exception:  # noqa: BLE001 - counted, not raised
                err_counts[tid] += 1
            lats.append(time.perf_counter() - t0)

    pool = [threading.Thread(target=worker, args=(t,), daemon=True)
            for t in range(threads)]
    for t in pool:
        t.start()
    start_barrier.wait()
    t0 = time.perf_counter()
    for t in pool:
        t.join()
    elapsed = time.perf_counter() - t0
    return [x for shard in lat_shards for x in shard], sum(err_counts), elapsed


def run_workload(service, name: str, config: LoadGenConfig) -> WorkloadResult:
    """Run one named workload (see :data:`WORKLOADS`) against ``service``."""
    if name == "hot_cache":
        mix, batch, churn = build_mix(config, distinct=8), 0, False
    elif name == "cold_mix":
        mix, batch, churn = build_mix(config), 0, False
    elif name == "batch":
        mix, batch, churn = build_mix(config), config.batch_size, False
    elif name == "reload_churn":
        mix, batch, churn = build_mix(config, distinct=8), 0, True
    else:
        raise ConfigurationError(
            f"unknown workload {name!r}; expected one of {WORKLOADS}")

    hist = service.metrics.histogram("service.query_seconds")
    count_before = hist.count
    reloads = 0
    stop_churn = threading.Event()

    def churner() -> None:
        nonlocal reloads
        while not stop_churn.wait(config.reload_interval):
            service.reload()
            reloads += 1

    churn_thread = None
    if churn:
        churn_thread = threading.Thread(target=churner, daemon=True)
        churn_thread.start()
    try:
        latencies, errors, elapsed = _run_threads(
            service, mix, config.threads, batch_size=batch)
    finally:
        if churn_thread is not None:
            stop_churn.set()
            churn_thread.join(timeout=5)

    result = WorkloadResult(name=name, queries=len(mix), errors=errors,
                            elapsed=elapsed, latencies=latencies,
                            reloads=reloads)
    # Cross-check: the service's own histogram saw every query this
    # workload sent (batch items observe individually — satellite of the
    # batch-latency fix), and its bucketed quantiles should track the
    # exact sample percentiles to within a bucket width.
    if hist.count - count_before != len(mix):
        raise RuntimeError(
            f"workload {name!r}: service histogram grew by "
            f"{hist.count - count_before}, expected {len(mix)}")
    result.hist_p50 = hist.quantile(0.5)
    result.hist_p99 = hist.quantile(0.99)
    return result


def run_suite(store, config: LoadGenConfig,
              workloads: tuple = WORKLOADS, *,
              progress=None) -> dict:
    """Run the workload suite against a fresh service per workload.

    ``store`` is a tuning-store path (or anything
    :class:`~repro.service.SelectionService` accepts).  Returns the
    ``BENCH_service.json`` payload.
    """
    from repro.service import SelectionService

    rows: dict[str, dict] = {}
    for name in workloads:
        with SelectionService(store, reload_interval=0.0) as service:
            result = run_workload(service, name, config)
        rows[name] = result.payload()
        if progress is not None:
            progress(f"{name}: {result.qps:,.0f} q/s, "
                     f"p50 {rows[name]['p50_us']:.1f} us, "
                     f"p99 {rows[name]['p99_us']:.1f} us, "
                     f"{result.errors} errors, {result.reloads} reloads")
    return {
        "_comment": (
            "Selection-service load-generator baseline (see "
            "check_service_regression.py). Regenerate with: python -m "
            "repro.bench.loadgen --store <store.db> --update"
        ),
        "meta": {
            "queries_per_workload": config.queries,
            "threads": config.threads,
            "seed": config.seed,
            "batch_size": config.batch_size,
            "python": sys.version.split()[0],
        },
        "workloads": rows,
    }


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.loadgen",
        description=__doc__.splitlines()[0])
    parser.add_argument("--store", required=True,
                        help="tuning store database to serve from")
    parser.add_argument("--queries", type=int, default=20000,
                        help="queries per workload (default 20000)")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--batch-size", type=int, default=64,
                        dest="batch_size")
    parser.add_argument("--workloads", nargs="+", default=list(WORKLOADS),
                        choices=WORKLOADS, metavar="NAME",
                        help=f"subset to run (default: all of {WORKLOADS})")
    parser.add_argument("--out", type=Path, default=None, metavar="PATH",
                        help="write the JSON payload here")
    parser.add_argument("--update", action="store_true",
                        help="write to the committed benchmarks/"
                             "BENCH_service.json baseline")
    args = parser.parse_args(argv)

    config = LoadGenConfig(queries=args.queries, threads=args.threads,
                           seed=args.seed, batch_size=args.batch_size)
    payload = run_suite(args.store, config, tuple(args.workloads),
                        progress=lambda line: print(line, flush=True))
    out = args.out
    if args.update:
        out = Path(__file__).resolve().parents[3] / "benchmarks" \
            / "BENCH_service.json"
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


__all__ = [
    "LoadGenConfig",
    "WorkloadResult",
    "WORKLOADS",
    "build_mix",
    "percentile",
    "run_workload",
    "run_suite",
    "main",
]


if __name__ == "__main__":
    sys.exit(main())
