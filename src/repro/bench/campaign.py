"""Tuning campaigns: sweep collectives x sizes, build deployable rule tables.

A :class:`TuningCampaign` is the production workflow wrapped around the
paper's methodology (cf. OMPICollTune [Hunold & Steiner, PMBS'22], the
authors' own autotuner):

1. for every requested (collective, message size): benchmark all algorithms
   under the arrival-pattern set,
2. apply a selection strategy per cell (default: the paper's robustness
   average),
3. accumulate a :class:`~repro.selection.table.SelectionTable`,
4. persist everything — raw sweeps (JSON), the table (JSON), and an Open
   MPI ``coll_tuned`` dynamic-rules file ready for deployment.

Campaign cells fan out over a process pool (``jobs``) and reuse a
content-addressed on-disk result cache (``cache_dir``) — see
:mod:`repro.bench.executor`; parallel output is byte-identical to serial.

Exposed on the CLI as ``repro-mpi tune`` (``--jobs``, ``--cache-dir``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.bench.executor import CellExecutor, CellSpec, ExecutorStats
from repro.bench.micro import MicroBenchmark
from repro.bench.results import SweepResult
from repro.collectives.base import list_algorithms
from repro.obs.context import current as _obs_current
from repro.patterns.generator import generate_pattern
from repro.patterns.shapes import NO_DELAY, list_shapes
from repro.patterns.skew import DEFAULT_SKEW_FACTOR, skew_from_mean_runtime
from repro.utils.units import format_bytes, parse_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.selection.strategies import SelectionStrategy
    from repro.selection.table import SelectionTable

#: Collectives the Open MPI rules exporter can serialize (mirror of
#: repro.selection.ompi_rules.OMPI_COLL_IDS; imported lazily to avoid a
#: bench <-> selection import cycle).
_TUNABLE = (
    "allgather", "allgatherv", "allreduce", "alltoall", "alltoallv",
    "alltoallw", "barrier", "bcast", "exscan", "gather", "gatherv",
    "reduce", "reduce_scatter", "reduce_scatter_block", "scan",
    "scatter", "scatterv",
)

#: Default size sweep: 8 B .. 1 MiB in decade-ish steps.
DEFAULT_SIZES = (8, 128, 1024, 8192, 65536, 1048576)


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    table: "SelectionTable"
    sweeps: dict[tuple[str, float], SweepResult] = field(default_factory=dict)
    winners: dict[tuple[str, float], str] = field(default_factory=dict)
    #: Cache-hit and per-cell timing counters from the executor that ran the
    #: campaign (speedup and hit-rate reporting).
    stats: ExecutorStats | None = None
    #: Ingest counters from the tuning store, when the campaign had one
    #: (``{"new_sweeps": N, "rules_written": N}``).
    store_ingest: dict | None = None
    #: Guideline lint report over the campaign's data, when ``lint_after``
    #: was set (a :class:`repro.lint.LintReport`).
    lint_report: object = None

    def summary_rows(self) -> list[list[str]]:
        return [
            [coll, format_bytes(int(size)), winner]
            for (coll, size), winner in sorted(self.winners.items())
        ]


@dataclass
class TuningCampaign:
    """Configured tuning campaign bound to one benchmark harness."""

    bench: MicroBenchmark
    collectives: Sequence[str] = ("alltoall", "allreduce", "reduce")
    msg_sizes: Sequence[int | str] = DEFAULT_SIZES
    shapes: Sequence[str] = ()
    strategy: "SelectionStrategy | None" = None
    #: Shared-skew factor; defaults to the paper's headline 1.5 so a default
    #: campaign tunes under the same conditions as the headline figures (see
    #: repro.patterns.skew.SKEW_FACTORS / DEFAULT_SKEW_FACTOR).
    skew_factor: float = DEFAULT_SKEW_FACTOR
    seed: int = 0
    #: Worker processes for the cell fan-out (1 = in-process serial).
    jobs: int = 1
    #: Enables the on-disk result cache when set (see repro.bench.executor).
    cache_dir: str | Path | None = None
    #: Persistent tuning-store sink (a repro.store.TuningStore or a path).
    #: When set, every cell, sweep, and built rule is ingested into the
    #: store; content addressing makes re-runs idempotent.
    store: object = None
    #: Lint the campaign's data against the repro.lint guidelines after the
    #: run (and after the store ingest, so findings can mark store cells
    #: suspect via ``store.apply_lint``).  The report lands on
    #: ``CampaignResult.lint_report``; it never fails the campaign.
    lint_after: bool = False

    def __post_init__(self) -> None:
        from repro.selection.strategies import RobustAverageSelector

        if self.strategy is None:
            self.strategy = RobustAverageSelector()
        if not self.collectives:
            raise ConfigurationError("campaign needs at least one collective")
        for coll in self.collectives:
            if coll not in _TUNABLE:
                raise ConfigurationError(
                    f"cannot tune {coll!r}: no Open MPI rules id "
                    f"(choose from {sorted(_TUNABLE)})"
                )
            list_algorithms(coll)  # raises for unknown families
        self._sizes = [parse_bytes(s) for s in self.msg_sizes]
        if not self._sizes:
            raise ConfigurationError("campaign needs at least one message size")
        self._shapes = list(self.shapes) or list_shapes()
        self._store_handle = None
        self._owns_store = False

    def _open_store(self):
        """Open (once) the campaign's tuning store; ``None`` when unset."""
        if self.store is None:
            return None
        if self._store_handle is None:
            from repro.store import open_store

            self._store_handle, self._owns_store = open_store(self.store)
        return self._store_handle

    def close(self) -> None:
        """Release the tuning store if this campaign opened it."""
        if self._store_handle is not None and self._owns_store:
            self._store_handle.close()
        self._store_handle = None

    def make_executor(self) -> CellExecutor:
        """The executor this campaign's cells run through.

        Shares the campaign's tuning store (when configured) so per-cell
        results and campaign-level sweeps/rules land in one connection.
        """
        return CellExecutor(jobs=self.jobs, cache_dir=self.cache_dir,
                            store=self._open_store())

    def run(self, progress=None, executor: CellExecutor | None = None) -> CampaignResult:
        """Execute the campaign; ``progress(collective, size)`` is called per cell.

        Two-phase fan-out: the No-delay baselines for *every* campaign cell
        run first (they size each cell's shared skew), then all skewed cells
        across the whole grid fan out in one batch.  With ``jobs > 1`` both
        batches spread over a process pool; results merge back in grid order,
        so the output is identical to a serial run.
        """
        from repro.selection.table import SelectionTable

        if executor is None:
            executor = self.make_executor()
        table = SelectionTable(strategy_name=self.strategy.name)
        result = CampaignResult(table=table, stats=executor.stats)
        machine = self.bench.machine_name or self.bench.platform.name
        shapes = [s for s in self._shapes if s != NO_DELAY]
        grid = [
            (coll, list_algorithms(coll), size)
            for coll in self.collectives
            for size in self._sizes
        ]
        # Phase 1: No-delay baselines for every (collective, size, algorithm).
        base_specs = []
        for coll, algorithms, size in grid:
            if progress is not None:
                progress(coll, size)
            base_specs.extend(
                CellSpec.from_bench(self.bench, coll, algo, size)
                for algo in algorithms
            )
        octx = _obs_current()
        with octx.wall_span("campaign.baselines", track="campaign",
                            args={"cells": len(base_specs)}):
            base_results = iter(executor.run_cells(base_specs))
        # Size each cell's skew from its baselines; build the skewed batch.
        sweeps: list[SweepResult] = []
        skewed_specs = []
        for coll, algorithms, size in grid:
            sweep = SweepResult(
                collective=coll, msg_bytes=float(size),
                num_ranks=self.bench.num_ranks, machine=machine,
            )
            no_delay_runtimes: dict[str, float] = {}
            for algo in algorithms:
                cell = next(base_results)
                sweep.add(cell)
                no_delay_runtimes[algo] = cell.last_delay
            sweep.skew_by_pattern[NO_DELAY] = 0.0
            skew = skew_from_mean_runtime(no_delay_runtimes, self.skew_factor)
            for shape in shapes:
                pattern = generate_pattern(
                    shape, self.bench.num_ranks, skew, seed=self.seed
                )
                sweep.skew_by_pattern[shape] = skew
                skewed_specs.extend(
                    CellSpec.from_bench(self.bench, coll, algo, size, pattern)
                    for algo in algorithms
                )
            sweeps.append(sweep)
        # Phase 2: every skewed cell across the whole campaign fans out.
        with octx.wall_span("campaign.skewed", track="campaign",
                            args={"cells": len(skewed_specs)}):
            skewed_results = iter(executor.run_cells(skewed_specs))
        for (coll, algorithms, size), sweep in zip(grid, sweeps):
            for _shape in shapes:
                for _algo in algorithms:
                    sweep.add(next(skewed_results))
            winner = table.add_sweep(sweep, self.strategy)
            result.sweeps[(coll, float(size))] = sweep
            result.winners[(coll, float(size))] = winner
        store = self._open_store()
        if store is not None:
            from repro.store import harness_hash

            with octx.wall_span("campaign.store_ingest", track="campaign"):
                result.store_ingest = store.ingest_campaign(
                    result,
                    run_id=octx.run_id,
                    params_hash=(harness_hash(base_specs[0])
                                 if base_specs else ""),
                )
        if self.lint_after:
            from repro.lint import lint_store, lint_sweeps

            with octx.wall_span("campaign.lint", track="campaign"):
                if store is not None:
                    result.lint_report = lint_store(store)
                else:
                    result.lint_report = lint_sweeps(result.sweeps.values())
        return result

    def save(self, result: CampaignResult, outdir: str | Path) -> dict[str, Path]:
        """Persist table, rules file, and raw sweeps; returns written paths."""
        from repro.selection.ompi_rules import write_ompi_rules_file

        outdir = Path(outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        paths = {
            "table": outdir / "selection_table.json",
            "rules": outdir / "ompi_dynamic_rules.conf",
            "sweeps": outdir / "sweeps.json",
        }
        result.table.save_json(paths["table"])
        write_ompi_rules_file(paths["rules"], result.table)
        payload = {
            f"{coll}:{int(size)}": sweep.to_dict()
            for (coll, size), sweep in result.sweeps.items()
        }
        paths["sweeps"].write_text(json.dumps(payload, indent=2))
        return paths


__all__ = ["TuningCampaign", "CampaignResult", "DEFAULT_SIZES"]
