"""Tuning campaigns: sweep collectives x sizes, build deployable rule tables.

A :class:`TuningCampaign` is the production workflow wrapped around the
paper's methodology (cf. OMPICollTune [Hunold & Steiner, PMBS'22], the
authors' own autotuner):

1. for every requested (collective, message size): benchmark all algorithms
   under the arrival-pattern set,
2. apply a selection strategy per cell (default: the paper's robustness
   average),
3. accumulate a :class:`~repro.selection.table.SelectionTable`,
4. persist everything — raw sweeps (JSON), the table (JSON), and an Open
   MPI ``coll_tuned`` dynamic-rules file ready for deployment.

Exposed on the CLI as ``repro-mpi tune``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.bench.micro import MicroBenchmark
from repro.bench.results import SweepResult
from repro.bench.runner import sweep_shared_skew
from repro.collectives.base import list_algorithms
from repro.patterns.shapes import list_shapes
from repro.utils.units import format_bytes, parse_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.selection.strategies import SelectionStrategy
    from repro.selection.table import SelectionTable

#: Collectives the Open MPI rules exporter can serialize (mirror of
#: repro.selection.ompi_rules.OMPI_COLL_IDS; imported lazily to avoid a
#: bench <-> selection import cycle).
_TUNABLE = (
    "allgather", "allgatherv", "allreduce", "alltoall", "alltoallv",
    "alltoallw", "barrier", "bcast", "exscan", "gather", "gatherv",
    "reduce", "reduce_scatter", "reduce_scatter_block", "scan",
    "scatter", "scatterv",
)

#: Default size sweep: 8 B .. 1 MiB in decade-ish steps.
DEFAULT_SIZES = (8, 128, 1024, 8192, 65536, 1048576)


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    table: "SelectionTable"
    sweeps: dict[tuple[str, float], SweepResult] = field(default_factory=dict)
    winners: dict[tuple[str, float], str] = field(default_factory=dict)

    def summary_rows(self) -> list[list[str]]:
        return [
            [coll, format_bytes(int(size)), winner]
            for (coll, size), winner in sorted(self.winners.items())
        ]


@dataclass
class TuningCampaign:
    """Configured tuning campaign bound to one benchmark harness."""

    bench: MicroBenchmark
    collectives: Sequence[str] = ("alltoall", "allreduce", "reduce")
    msg_sizes: Sequence[int | str] = DEFAULT_SIZES
    shapes: Sequence[str] = ()
    strategy: "SelectionStrategy | None" = None
    skew_factor: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        from repro.selection.strategies import RobustAverageSelector

        if self.strategy is None:
            self.strategy = RobustAverageSelector()
        if not self.collectives:
            raise ConfigurationError("campaign needs at least one collective")
        for coll in self.collectives:
            if coll not in _TUNABLE:
                raise ConfigurationError(
                    f"cannot tune {coll!r}: no Open MPI rules id "
                    f"(choose from {sorted(_TUNABLE)})"
                )
            list_algorithms(coll)  # raises for unknown families
        self._sizes = [parse_bytes(s) for s in self.msg_sizes]
        if not self._sizes:
            raise ConfigurationError("campaign needs at least one message size")
        self._shapes = list(self.shapes) or list_shapes()

    def run(self, progress=None) -> CampaignResult:
        """Execute the campaign; ``progress(collective, size)`` is called per cell."""
        from repro.selection.table import SelectionTable

        table = SelectionTable(strategy_name=self.strategy.name)
        result = CampaignResult(table=table)
        for coll in self.collectives:
            algorithms = list_algorithms(coll)
            for size in self._sizes:
                if progress is not None:
                    progress(coll, size)
                sweep = sweep_shared_skew(
                    self.bench, coll, algorithms, size, self._shapes,
                    skew_factor=self.skew_factor, seed=self.seed,
                )
                winner = table.add_sweep(sweep, self.strategy)
                result.sweeps[(coll, float(size))] = sweep
                result.winners[(coll, float(size))] = winner
        return result

    def save(self, result: CampaignResult, outdir: str | Path) -> dict[str, Path]:
        """Persist table, rules file, and raw sweeps; returns written paths."""
        from repro.selection.ompi_rules import write_ompi_rules_file

        outdir = Path(outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        paths = {
            "table": outdir / "selection_table.json",
            "rules": outdir / "ompi_dynamic_rules.conf",
            "sweeps": outdir / "sweeps.json",
        }
        result.table.save_json(paths["table"])
        write_ompi_rules_file(paths["rules"], result.table)
        payload = {
            f"{coll}:{int(size)}": sweep.to_dict()
            for (coll, size), sweep in result.sweeps.items()
        }
        paths["sweeps"].write_text(json.dumps(payload, indent=2))
        return paths


__all__ = ["TuningCampaign", "CampaignResult", "DEFAULT_SIZES"]
