"""Robustness analysis of collective algorithms (paper Sections IV-B/IV-C).

Three analyses from the paper:

* **Good-algorithm classification** (Fig. 5): per pattern row, algorithms
  within 5 % of the fastest are "good" (light blue); the rest are not.
* **Robustness normalization** (Fig. 6): ``d^_k / d^_no_delay - 1`` per
  algorithm; values beyond +/-25 % are significantly slower/faster.
* **Average normalized runtime** (Fig. 8, last row): per algorithm, the mean
  of its row-normalized runtimes across patterns — the paper's robustness
  indicator used for selection.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError

#: Fig. 5's "indistinguishable from fastest" tolerance.
GOOD_TOLERANCE = 0.05
#: Fig. 6's significance threshold for the green/gray/red classification.
ROBUSTNESS_THRESHOLD = 0.25


def normalized_performance(delay_pattern: float, delay_no_delay: float) -> float:
    """``d^_k / d^_no_delay - 1``: speedup (<0) or slowdown (>0) under pattern k."""
    if delay_no_delay <= 0:
        raise ConfigurationError("no-delay runtime must be positive")
    return delay_pattern / delay_no_delay - 1.0


def classify(value: float, threshold: float = ROBUSTNESS_THRESHOLD) -> str:
    """Fig. 6 color classes: 'faster' (green), 'neutral' (gray), 'slower' (red)."""
    if threshold <= 0:
        raise ConfigurationError("threshold must be positive")
    if value < -threshold:
        return "faster"
    if value > threshold:
        return "slower"
    return "neutral"


def good_algorithms(
    row: Mapping[str, float], tolerance: float = GOOD_TOLERANCE
) -> set[str]:
    """Fig. 5's light-blue set: within ``tolerance`` of the row's fastest."""
    if not row:
        raise ConfigurationError("empty runtime row")
    if tolerance < 0:
        raise ConfigurationError("tolerance must be non-negative")
    fastest = min(row.values())
    return {algo for algo, t in row.items() if t <= fastest * (1 + tolerance)}


def normalize_rows(
    table: Mapping[str, Mapping[str, float]]
) -> dict[str, dict[str, float]]:
    """Normalize each pattern row to its fastest algorithm (Fig. 8 heatmaps).

    ``table[pattern][algorithm] = runtime`` -> same layout with the row
    minimum mapped to 1.0.
    """
    out: dict[str, dict[str, float]] = {}
    for pattern, row in table.items():
        if not row:
            raise ConfigurationError(f"empty row for pattern {pattern!r}")
        fastest = min(row.values())
        if fastest <= 0:
            raise ConfigurationError(f"non-positive runtime in row {pattern!r}")
        out[pattern] = {algo: t / fastest for algo, t in row.items()}
    return out


def average_normalized(
    table: Mapping[str, Mapping[str, float]],
    exclude: tuple[str, ...] = (),
) -> dict[str, float]:
    """Fig. 8's 'Average' row: per-algorithm mean of row-normalized runtimes.

    ``exclude`` drops rows (e.g. the FT-Scenario, which the paper excludes
    from the average used for prediction to avoid circularity).
    """
    normalized = normalize_rows(
        {p: row for p, row in table.items() if p not in exclude}
    )
    if not normalized:
        raise ConfigurationError("no rows left after exclusion")
    algorithms = next(iter(normalized.values())).keys()
    return {
        algo: float(np.mean([normalized[p][algo] for p in normalized]))
        for algo in algorithms
    }
