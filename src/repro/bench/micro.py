"""The micro-benchmark runner — the paper's Listing 1 measurement loop.

Two clock modes mirror the listing's two branches:

* ``"perfect"`` (the ``#ifdef SIMULATOR`` branch): all ranks share the
  simulator's exact global clock; each repetition harmonizes (cheaply) and
  each rank waits until ``start + skew_i`` before entering the collective.
* ``"synced"`` (the real-machine branch): each rank owns a drifting
  :class:`~repro.clocks.local.LocalClock`; the run starts with a
  hierarchical clock sync; each repetition calls the MPIX_Harmonize
  analogue and busy-waits on its *corrected* clock.  Timestamps are then
  corrected local readings, so measurement error mirrors reality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.bench.metrics import CollectiveTiming
from repro.bench.results import BenchResult
from repro.clocks.harmonize import harmonize
from repro.clocks.local import ClockSet
from repro.clocks.sync import sync_clocks
from repro.collectives import (
    CollArgs,
    VectorArgs,
    make_input,
    make_vector_input,
    run_collective,
)
from repro.collectives.ops import SUM, ReduceOp
from repro.obs.context import current as _obs_current
from repro.patterns.generator import ArrivalPattern, no_delay_pattern
from repro.sim.flow import ENGINE_MODES, FlowConfig
from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.noise import NoiseModel, get_noise_profile
from repro.sim.platform import MachineSpec, Platform


def freeze_counts(counts) -> tuple:
    """Normalize a count schedule to a hashable tuple (of tuples).

    Accepts lists, tuples, or numpy arrays — 1-D (per-rank counts) or 2-D
    (alltoallv per-pair matrix) — and returns the canonical form used by
    :class:`~repro.collectives.VectorArgs` and cell-spec serialization.
    """
    arr = np.asarray(counts, dtype=int)
    if arr.ndim == 1:
        return tuple(int(c) for c in arr)
    if arr.ndim == 2:
        return tuple(tuple(int(c) for c in row) for row in arr)
    raise ConfigurationError(f"counts must be 1-D or 2-D, got shape {arr.shape}")


@dataclass
class MicroBenchmark:
    """Configured micro-benchmark harness bound to one simulated machine.

    Parameters
    ----------
    platform, params:
        The simulated cluster and its network parameters.
    nrep:
        Repetitions per measurement (means are reported).
    clock_mode:
        ``"perfect"`` or ``"synced"`` (see module docstring).
    noise_profile:
        Name of a :mod:`repro.sim.noise` profile perturbing compute phases
        (the skew busy-waits are unaffected; noise matters for apps).
    count:
        Payload items per contribution — decoupled from the modeled
        ``msg_bytes`` (see :class:`~repro.collectives.base.CollArgs`).
    engine_mode:
        ``"exact"`` (per-message simulation), ``"hybrid"`` (flow-level fast
        path where provably bit-exact, exact otherwise), or ``"flow"``
        (always flow — analytic approximation under skew).  See
        :mod:`repro.sim.flow`.
    flow_tolerance:
        Hybrid-mode arrival-spread tolerance in seconds; patterns whose
        declared skew spread exceeds it take the exact path.
    """

    platform: Platform
    params: NetworkParams = field(default_factory=NetworkParams)
    nrep: int = 3
    seed: int = 0
    clock_mode: str = "perfect"
    noise_profile: str = "none"
    count: int = 64
    harmonize_slack: float = 1e-3
    machine_name: str = ""
    engine_mode: str = "exact"
    flow_tolerance: float = 0.0

    def __post_init__(self) -> None:
        if self.nrep <= 0:
            raise ConfigurationError("nrep must be positive")
        if self.clock_mode not in ("perfect", "synced"):
            raise ConfigurationError(f"unknown clock_mode {self.clock_mode!r}")
        if self.count <= 0:
            raise ConfigurationError("count must be positive")
        if self.engine_mode not in ENGINE_MODES:
            raise ConfigurationError(
                f"unknown engine_mode {self.engine_mode!r}; "
                f"expected one of {ENGINE_MODES}"
            )
        if self.flow_tolerance < 0:
            raise ConfigurationError("flow_tolerance must be non-negative")
        get_noise_profile(self.noise_profile)  # validate early

    @classmethod
    def from_machine(
        cls,
        spec: MachineSpec,
        nodes: int | None = None,
        cores_per_node: int | None = None,
        **kwargs,
    ) -> "MicroBenchmark":
        """Build a harness from a machine preset, optionally rescaled."""
        platform = spec.platform.scaled(nodes, cores_per_node)
        params = NetworkParams(**spec.network)
        kwargs.setdefault("noise_profile", spec.noise_profile)
        kwargs.setdefault("machine_name", spec.platform.name)
        return cls(platform=platform, params=params, **kwargs)

    @property
    def num_ranks(self) -> int:
        return self.platform.num_ranks

    # ------------------------------------------------------------------ #

    def run(
        self,
        collective: str,
        algorithm: str,
        msg_bytes: float,
        pattern: ArrivalPattern | None = None,
        op: ReduceOp = SUM,
        segment_bytes: float | None = None,
        counts: tuple | None = None,
        item_bytes: float = 8.0,
    ) -> BenchResult:
        """Benchmark one algorithm under one arrival pattern.

        For vector collectives pass ``counts`` (a length-p vector, or a
        (p, p) matrix for alltoallv) plus ``item_bytes``; the reported
        ``msg_bytes`` coordinate is then the mean per-block wire size
        (``VectorArgs.msg_bytes``) regardless of the value passed.
        """
        p = self.num_ranks
        if pattern is None:
            pattern = no_delay_pattern(p)
        if pattern.num_ranks != p:
            raise ConfigurationError(
                f"pattern has {pattern.num_ranks} ranks, platform has {p}"
            )
        if counts is not None:
            args = VectorArgs(counts=freeze_counts(counts),
                              item_bytes=float(item_bytes))
            inputs = [make_vector_input(collective, r, p, args)
                      for r in range(p)]
            msg_bytes = args.msg_bytes
        else:
            args = CollArgs(
                count=self.count,
                msg_bytes=float(msg_bytes),
                op=op,
                segment_bytes=segment_bytes,
            )
            inputs = [make_input(collective, r, p, self.count) for r in range(p)]
        synced = self.clock_mode == "synced"
        clockset = ClockSet(p, seed=self.seed) if synced else None
        noise = (
            NoiseModel(self.noise_profile, p, seed=self.seed)
            if self.noise_profile != "none"
            else None
        )
        nrep = self.nrep
        slack = self.harmonize_slack
        octx = _obs_current()
        trace_waits = octx.enabled and octx.record_spans

        def prog(ctx):
            me = ctx.rank
            clock = clockset[me] if synced else None
            correction = None
            if synced:
                correction = yield from sync_clocks(ctx, clock)
            skew = pattern.skew_of(me)
            observations = []
            for _rep in range(nrep):
                target, _ok = yield from harmonize(
                    ctx, clock, correction, slack=slack + pattern.max_skew
                )
                wait_from = ctx.time()
                # Busy-wait until the skew target on the measuring clock.
                if synced:
                    true_target = clockset[me].true_from_local(
                        correction.local_for_global(target + skew)
                    )
                    yield ctx.wait_until(true_target)
                    a = correction.apply(clock.read(ctx.time()))
                else:
                    yield ctx.wait_until(target + skew)
                    a = ctx.time()
                if trace_waits:
                    octx.record_rank_span("skew_wait", me, wait_from, ctx.time(),
                                          args={"skew": skew, "rep": _rep})
                yield from run_collective(ctx, collective, algorithm, args, inputs[me])
                if synced:
                    e = correction.apply(clock.read(ctx.time()))
                else:
                    e = ctx.time()
                observations.append((a, e))
            return observations

        flow = None
        if self.engine_mode != "exact":
            # Each repetition harmonizes, so collective entries are aligned
            # up to the pattern's skews: declare that spread so hybrid
            # dispatch can prove (or refuse) flow eligibility.  Synced
            # clocks add drift-dependent wait error on top, which cannot be
            # bounded here — leave the spread undeclared (hybrid then takes
            # the exact path; forced flow still engages).
            declared = (
                float(pattern.skews.max() - pattern.skews.min())
                if not synced
                else None
            )
            flow = FlowConfig(
                mode=self.engine_mode,
                tolerance=self.flow_tolerance,
                declared_spread=declared,
            )
        with octx.wall_span(
            "bench.cell", track="bench",
            args={"collective": collective, "algorithm": algorithm,
                  "msg_bytes": float(msg_bytes), "pattern": pattern.name},
        ):
            run = run_processes(self.platform, prog, params=self.params,
                                noise=noise, flow=flow)
        timings = []
        for rep in range(nrep):
            arrivals = np.array([run.rank_results[r][rep][0] for r in range(p)])
            exits = np.array([run.rank_results[r][rep][1] for r in range(p)])
            timings.append(CollectiveTiming(arrivals, exits))
        return BenchResult(
            collective=collective,
            algorithm=algorithm,
            msg_bytes=float(msg_bytes),
            num_ranks=p,
            pattern_name=pattern.name,
            max_skew=pattern.max_skew,
            timings=timings,
            machine=self.machine_name or self.platform.name,
        )

    def run_many(
        self,
        collective: str,
        algorithms: list[str],
        msg_bytes: float,
        pattern: ArrivalPattern | None = None,
        **kwargs,
    ) -> dict[str, BenchResult]:
        """Benchmark several algorithms under the same pattern."""
        return {
            algo: self.run(collective, algo, msg_bytes, pattern, **kwargs)
            for algo in algorithms
        }
