"""Sweep drivers: benchmark algorithm sets across patterns and skew policies.

Two sweeps match the paper's two experimental designs:

* :func:`sweep_shared_skew` (Figs. 4, 5, 8): measure every algorithm in the
  No-delay case, derive one shared maximum skew (``factor x`` the mean
  No-delay runtime — or an explicit value, e.g. the max skew observed in an
  application trace), then expose every algorithm to the same concrete
  pattern per shape.
* :func:`sweep_per_algorithm_skew` (Fig. 6): each algorithm gets patterns
  scaled to its *own* No-delay runtime.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.bench.micro import MicroBenchmark
from repro.bench.results import SweepResult
from repro.patterns.generator import ArrivalPattern, generate_pattern
from repro.patterns.shapes import NO_DELAY
from repro.patterns.skew import skew_from_mean_runtime


def sweep_shared_skew(
    bench: MicroBenchmark,
    collective: str,
    algorithms: Sequence[str],
    msg_bytes: float,
    shapes: Sequence[str],
    skew_factor: float = 1.5,
    max_skew: float | None = None,
    seed: int = 0,
    extra_patterns: Sequence[ArrivalPattern] = (),
    **run_kwargs,
) -> SweepResult:
    """Benchmark ``algorithms`` under No-delay plus each shape, shared skew.

    ``max_skew`` overrides the mean-runtime policy when given (used for the
    Fig. 8 experiments, where the skew comes from the application trace).
    ``extra_patterns`` appends pre-built patterns such as the FT-Scenario.
    """
    if not algorithms:
        raise ConfigurationError("need at least one algorithm")
    sweep = SweepResult(
        collective=collective,
        msg_bytes=float(msg_bytes),
        num_ranks=bench.num_ranks,
        machine=bench.machine_name or bench.platform.name,
    )
    # Phase 1: the No-delay baseline for every algorithm.
    no_delay_runtimes: dict[str, float] = {}
    for algo in algorithms:
        result = bench.run(collective, algo, msg_bytes, pattern=None, **run_kwargs)
        sweep.add(result)
        no_delay_runtimes[algo] = result.last_delay
    sweep.skew_by_pattern[NO_DELAY] = 0.0
    # Phase 2: one shared skew for all algorithms.
    skew = (
        float(max_skew)
        if max_skew is not None
        else skew_from_mean_runtime(no_delay_runtimes, skew_factor)
    )
    for shape in shapes:
        if shape == NO_DELAY:
            continue
        pattern = generate_pattern(shape, bench.num_ranks, skew, seed=seed)
        sweep.skew_by_pattern[shape] = skew
        for algo in algorithms:
            sweep.add(bench.run(collective, algo, msg_bytes, pattern, **run_kwargs))
    for pattern in extra_patterns:
        sweep.skew_by_pattern[pattern.name] = pattern.max_skew
        for algo in algorithms:
            sweep.add(bench.run(collective, algo, msg_bytes, pattern, **run_kwargs))
    return sweep


def sweep_per_algorithm_skew(
    bench: MicroBenchmark,
    collective: str,
    algorithms: Sequence[str],
    msg_bytes: float,
    shapes: Sequence[str],
    skew_factor: float = 1.0,
    seed: int = 0,
    **run_kwargs,
) -> SweepResult:
    """Fig. 6 robustness design: skew scales with each algorithm's own runtime."""
    if not algorithms:
        raise ConfigurationError("need at least one algorithm")
    sweep = SweepResult(
        collective=collective,
        msg_bytes=float(msg_bytes),
        num_ranks=bench.num_ranks,
        machine=bench.machine_name or bench.platform.name,
    )
    no_delay_runtimes: dict[str, float] = {}
    for algo in algorithms:
        result = bench.run(collective, algo, msg_bytes, pattern=None, **run_kwargs)
        sweep.add(result)
        no_delay_runtimes[algo] = result.last_delay
    sweep.skew_by_pattern[NO_DELAY] = 0.0
    for shape in shapes:
        if shape == NO_DELAY:
            continue
        for algo in algorithms:
            skew = skew_factor * no_delay_runtimes[algo]
            pattern = generate_pattern(shape, bench.num_ranks, skew, seed=seed)
            sweep.add(bench.run(collective, algo, msg_bytes, pattern, **run_kwargs))
    return sweep
