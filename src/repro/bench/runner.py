"""Sweep drivers: benchmark algorithm sets across patterns and skew policies.

Two sweeps match the paper's two experimental designs:

* :func:`sweep_shared_skew` (Figs. 4, 5, 8): measure every algorithm in the
  No-delay case, derive one shared maximum skew (``factor x`` the mean
  No-delay runtime — or an explicit value, e.g. the max skew observed in an
  application trace), then expose every algorithm to the same concrete
  pattern per shape.
* :func:`sweep_per_algorithm_skew` (Fig. 6): each algorithm gets patterns
  scaled to its *own* No-delay runtime.

Both sweeps are two-phase: the No-delay baselines fan out first (they size
the skew), then every skewed cell fans out in one batch.  Cells run through
a :class:`~repro.bench.executor.CellExecutor` — pass one to parallelize
across processes and/or reuse an on-disk result cache; the default executor
honors the ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` environment overrides.
Results are merged back in deterministic cell order, so a parallel sweep is
byte-identical to a serial one.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.bench.executor import CellExecutor, CellSpec
from repro.bench.micro import MicroBenchmark
from repro.bench.results import SweepResult
from repro.obs.context import current as _obs_current
from repro.patterns.generator import ArrivalPattern, generate_pattern
from repro.patterns.shapes import NO_DELAY
from repro.patterns.skew import DEFAULT_SKEW_FACTOR, skew_from_mean_runtime


def _new_sweep(bench: MicroBenchmark, collective: str, msg_bytes: float) -> SweepResult:
    return SweepResult(
        collective=collective,
        msg_bytes=float(msg_bytes),
        num_ranks=bench.num_ranks,
        machine=bench.machine_name or bench.platform.name,
    )


def _no_delay_phase(
    executor: CellExecutor,
    bench: MicroBenchmark,
    sweep: SweepResult,
    collective: str,
    algorithms: Sequence[str],
    msg_bytes: float,
    run_kwargs: dict,
) -> dict[str, float]:
    """Fan out the No-delay baseline for every algorithm; record runtimes."""
    specs = [
        CellSpec.from_bench(bench, collective, algo, msg_bytes, None, **run_kwargs)
        for algo in algorithms
    ]
    no_delay_runtimes: dict[str, float] = {}
    with _obs_current().wall_span(
        "sweep.no_delay_phase", track="sweep",
        args={"collective": collective, "algorithms": len(specs)},
    ):
        results = executor.run_cells(specs)
    for algo, result in zip(algorithms, results):
        sweep.add(result)
        no_delay_runtimes[algo] = result.last_delay
    sweep.skew_by_pattern[NO_DELAY] = 0.0
    return no_delay_runtimes


def _pattern_phase(
    executor: CellExecutor,
    bench: MicroBenchmark,
    sweep: SweepResult,
    collective: str,
    msg_bytes: float,
    cells: Sequence[tuple[ArrivalPattern, str]],
    run_kwargs: dict,
) -> None:
    """Fan out the skewed cells; merge results back in the given order."""
    specs = [
        CellSpec.from_bench(bench, collective, algo, msg_bytes, pattern, **run_kwargs)
        for pattern, algo in cells
    ]
    with _obs_current().wall_span(
        "sweep.pattern_phase", track="sweep",
        args={"collective": collective, "cells": len(specs)},
    ):
        results = executor.run_cells(specs)
    for result in results:
        sweep.add(result)


def sweep_shared_skew(
    bench: MicroBenchmark,
    collective: str,
    algorithms: Sequence[str],
    msg_bytes: float,
    shapes: Sequence[str],
    skew_factor: float = DEFAULT_SKEW_FACTOR,
    max_skew: float | None = None,
    seed: int = 0,
    extra_patterns: Sequence[ArrivalPattern] = (),
    executor: CellExecutor | None = None,
    **run_kwargs,
) -> SweepResult:
    """Benchmark ``algorithms`` under No-delay plus each shape, shared skew.

    ``max_skew`` overrides the mean-runtime policy when given (used for the
    Fig. 8 experiments, where the skew comes from the application trace).
    ``extra_patterns`` appends pre-built patterns such as the FT-Scenario.
    """
    if not algorithms:
        raise ConfigurationError("need at least one algorithm")
    if executor is None:
        executor = CellExecutor.from_env()
    sweep = _new_sweep(bench, collective, msg_bytes)
    # Phase 1: the No-delay baseline for every algorithm.
    no_delay_runtimes = _no_delay_phase(
        executor, bench, sweep, collective, algorithms, msg_bytes, run_kwargs
    )
    # Phase 2: one shared skew for all algorithms.
    skew = (
        float(max_skew)
        if max_skew is not None
        else skew_from_mean_runtime(no_delay_runtimes, skew_factor)
    )
    cells: list[tuple[ArrivalPattern, str]] = []
    for shape in shapes:
        if shape == NO_DELAY:
            continue
        pattern = generate_pattern(shape, bench.num_ranks, skew, seed=seed)
        sweep.skew_by_pattern[shape] = skew
        cells.extend((pattern, algo) for algo in algorithms)
    for pattern in extra_patterns:
        sweep.skew_by_pattern[pattern.name] = pattern.max_skew
        cells.extend((pattern, algo) for algo in algorithms)
    _pattern_phase(executor, bench, sweep, collective, msg_bytes, cells, run_kwargs)
    return sweep


def sweep_per_algorithm_skew(
    bench: MicroBenchmark,
    collective: str,
    algorithms: Sequence[str],
    msg_bytes: float,
    shapes: Sequence[str],
    skew_factor: float = 1.0,
    seed: int = 0,
    executor: CellExecutor | None = None,
    **run_kwargs,
) -> SweepResult:
    """Fig. 6 robustness design: skew scales with each algorithm's own runtime.

    ``skew_factor`` defaults to 1.0 *by design* (unlike the shared-skew
    sweep): the paper gives "an algorithm that requires X ms ... a maximum
    skew of X ms".  Because each algorithm sees its own magnitude, the sweep
    records the full map in ``SweepResult.per_algorithm_skews`` and the
    per-shape mean in ``skew_by_pattern``.
    """
    if not algorithms:
        raise ConfigurationError("need at least one algorithm")
    if executor is None:
        executor = CellExecutor.from_env()
    sweep = _new_sweep(bench, collective, msg_bytes)
    no_delay_runtimes = _no_delay_phase(
        executor, bench, sweep, collective, algorithms, msg_bytes, run_kwargs
    )
    cells: list[tuple[ArrivalPattern, str]] = []
    for shape in shapes:
        if shape == NO_DELAY:
            continue
        skews = {algo: skew_factor * no_delay_runtimes[algo] for algo in algorithms}
        sweep.per_algorithm_skews[shape] = skews
        sweep.skew_by_pattern[shape] = sum(skews.values()) / len(skews)
        for algo in algorithms:
            pattern = generate_pattern(shape, bench.num_ranks, skews[algo], seed=seed)
            cells.append((pattern, algo))
    _pattern_phase(executor, bench, sweep, collective, msg_bytes, cells, run_kwargs)
    return sweep
