"""Micro-benchmark harness (ReproMPI analogue) and robustness analysis.

Implements the paper's measurement methodology (Listing 1): synchronize
ranks in time (MPIX_Harmonize analogue), busy-wait each rank to its
arrival-pattern skew target, run the collective, timestamp entry and exit,
and evaluate the *total delay* ``d* = max(e) - min(a)`` and the *last delay*
``d^ = max(e) - max(a)`` metrics.
"""

from repro.bench.metrics import CollectiveTiming, last_delay, total_delay
from repro.bench.results import BenchResult, SweepResult
from repro.bench.micro import MicroBenchmark
from repro.bench.robustness import (
    average_normalized,
    classify,
    good_algorithms,
    normalized_performance,
    normalize_rows,
)
from repro.bench.runner import sweep_per_algorithm_skew, sweep_shared_skew
from repro.bench.stats import Summary, summarize
from repro.bench.campaign import CampaignResult, TuningCampaign
from repro.bench.executor import (
    CellExecutor,
    CellSpec,
    ExecutorStats,
    PatternSpec,
    ResultCache,
)

__all__ = [
    "CellExecutor",
    "CellSpec",
    "ExecutorStats",
    "PatternSpec",
    "ResultCache",
    "CollectiveTiming",
    "total_delay",
    "last_delay",
    "BenchResult",
    "SweepResult",
    "MicroBenchmark",
    "normalized_performance",
    "classify",
    "good_algorithms",
    "average_normalized",
    "normalize_rows",
    "sweep_shared_skew",
    "sweep_per_algorithm_skew",
    "Summary",
    "summarize",
    "TuningCampaign",
    "CampaignResult",
]
