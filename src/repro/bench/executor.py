"""Parallel sweep-cell execution with a content-addressed result cache.

Every simulation cell — one ``(collective, algorithm, msg_bytes, pattern)``
measurement on one configured harness — is pure and deterministic, so sweeps
are embarrassingly parallel and their results are perfectly cacheable.  This
module supplies the three pieces the sweep drivers build on:

* :class:`CellSpec`: a picklable, JSON-serializable value object capturing
  *everything* that determines a cell's outcome (platform, network
  parameters, harness knobs, collective/algorithm/size, and the concrete
  arrival pattern).  ``CellSpec.run()`` reproduces ``MicroBenchmark.run``
  bit for bit.
* :class:`ResultCache`: an on-disk store of finished cells keyed by the
  SHA-256 of the canonical spec JSON plus the model version — any change to
  the spec *or* to the simulator version misses and re-simulates.
* :class:`CellExecutor`: runs a batch of specs — inline for ``jobs=1``, over
  a :class:`concurrent.futures.ProcessPoolExecutor` otherwise — and always
  returns results in the order the specs were given, so parallel sweeps are
  byte-identical to serial ones.  Per-cell timings and cache hit/miss
  counters accumulate on :class:`ExecutorStats`.

Environment overrides (picked up when a sweep builds its default executor):
``REPRO_JOBS`` sets the worker count, ``REPRO_CACHE_DIR`` enables the
cache, and ``REPRO_STORE`` sinks every finished cell into a persistent
:class:`~repro.store.TuningStore` — so re-runs of ``benchmarks/bench_*.py``
and the experiment drivers can skip already-simulated cells and accumulate
a durable tuning database without any code change.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro._version import __version__
from repro.errors import ConfigurationError, TraceFormatError
from repro.obs.context import current as _obs_current

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.micro import MicroBenchmark
    from repro.bench.results import BenchResult
    from repro.obs.collect import CellTelemetry
    from repro.patterns.generator import ArrivalPattern

#: Version stamp mixed into every cache key.  Bump the package version (or
#: this constant) whenever the simulator's numerics change: every cached
#: record then misses and cells are re-simulated.
MODEL_VERSION = __version__


# --------------------------------------------------------------------------- #
# Cell specification
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class PatternSpec:
    """Picklable description of one concrete arrival pattern.

    The per-rank skews are stored explicitly (not as shape + seed) so traced
    application scenarios and generated shapes serialize identically and the
    cache key covers the exact delays each rank saw.
    """

    name: str
    skews: tuple[float, ...]

    @classmethod
    def from_pattern(cls, pattern: "ArrivalPattern") -> "PatternSpec":
        return cls(name=pattern.name, skews=tuple(float(s) for s in pattern.skews))

    def build(self) -> "ArrivalPattern":
        import numpy as np

        from repro.patterns.generator import ArrivalPattern

        return ArrivalPattern(self.name, np.array(self.skews, dtype=float))

    def to_dict(self) -> dict:
        return {"name": self.name, "skews": list(self.skews)}


@dataclass(frozen=True)
class CellSpec:
    """Everything that determines one benchmark cell's result.

    A spec is self-contained: ``run()`` rebuilds the harness from scratch in
    any process and produces the same :class:`~repro.bench.results.BenchResult`
    the originating :class:`~repro.bench.micro.MicroBenchmark` would.
    """

    # -- harness ------------------------------------------------------- #
    platform_name: str
    nodes: int
    cores_per_node: int
    nodes_per_group: int | None
    network: tuple[tuple[str, object], ...]  # sorted NetworkParams items
    nrep: int
    seed: int
    clock_mode: str
    noise_profile: str
    count: int
    harmonize_slack: float
    machine_name: str
    # -- cell ---------------------------------------------------------- #
    collective: str
    algorithm: str
    msg_bytes: float
    pattern: PatternSpec | None
    op: str = "sum"
    segment_bytes: float | None = None
    engine_mode: str = "exact"
    flow_tolerance: float = 0.0
    # Vector-collective count schedule (None for regular collectives): a
    # length-p tuple, or a (p, p) tuple-of-tuples for alltoallv.
    counts: tuple | None = None
    item_bytes: float = 8.0

    @classmethod
    def from_bench(
        cls,
        bench: "MicroBenchmark",
        collective: str,
        algorithm: str,
        msg_bytes: float,
        pattern: "ArrivalPattern | None" = None,
        **run_kwargs,
    ) -> "CellSpec":
        """Capture one ``bench.run(...)`` call as a value object."""
        from dataclasses import asdict

        unknown = set(run_kwargs) - {"op", "segment_bytes", "counts",
                                     "item_bytes"}
        if unknown:
            raise ConfigurationError(
                f"cannot serialize bench.run kwargs {sorted(unknown)}; "
                "supported: op, segment_bytes, counts, item_bytes"
            )
        op = run_kwargs.get("op")
        segment_bytes = run_kwargs.get("segment_bytes")
        counts = run_kwargs.get("counts")
        if counts is not None:
            from repro.bench.micro import freeze_counts

            counts = freeze_counts(counts)
        return cls(
            platform_name=bench.platform.name,
            nodes=bench.platform.nodes,
            cores_per_node=bench.platform.cores_per_node,
            nodes_per_group=bench.platform.nodes_per_group,
            network=tuple(sorted(asdict(bench.params).items())),
            nrep=bench.nrep,
            seed=bench.seed,
            clock_mode=bench.clock_mode,
            noise_profile=bench.noise_profile,
            count=bench.count,
            harmonize_slack=bench.harmonize_slack,
            machine_name=bench.machine_name,
            collective=collective,
            algorithm=algorithm,
            msg_bytes=float(msg_bytes),
            pattern=PatternSpec.from_pattern(pattern) if pattern is not None else None,
            op=op.name if op is not None else "sum",
            segment_bytes=float(segment_bytes) if segment_bytes is not None else None,
            engine_mode=bench.engine_mode,
            flow_tolerance=bench.flow_tolerance,
            counts=counts,
            item_bytes=float(run_kwargs.get("item_bytes", 8.0)),
        )

    def make_bench(self) -> "MicroBenchmark":
        """Rebuild the harness this spec was captured from (value-equal)."""
        from repro.bench.micro import MicroBenchmark
        from repro.sim.network import NetworkParams
        from repro.sim.platform import Platform

        platform = Platform(
            name=self.platform_name,
            nodes=self.nodes,
            cores_per_node=self.cores_per_node,
            nodes_per_group=self.nodes_per_group,
        )
        return MicroBenchmark(
            platform=platform,
            params=NetworkParams(**dict(self.network)),
            nrep=self.nrep,
            seed=self.seed,
            clock_mode=self.clock_mode,
            noise_profile=self.noise_profile,
            count=self.count,
            harmonize_slack=self.harmonize_slack,
            machine_name=self.machine_name,
            engine_mode=self.engine_mode,
            flow_tolerance=self.flow_tolerance,
        )

    def run(self) -> "BenchResult":
        """Simulate this cell from scratch (the worker-side entry point)."""
        from repro.collectives.ops import get_op

        bench = self.make_bench()
        pattern = self.pattern.build() if self.pattern is not None else None
        return bench.run(
            self.collective,
            self.algorithm,
            self.msg_bytes,
            pattern,
            op=get_op(self.op),
            segment_bytes=self.segment_bytes,
            counts=self.counts,
            item_bytes=self.item_bytes,
        )

    # -- hashing ------------------------------------------------------- #

    def to_dict(self) -> dict:
        d = {
            "platform": {
                "name": self.platform_name,
                "nodes": self.nodes,
                "cores_per_node": self.cores_per_node,
                "nodes_per_group": self.nodes_per_group,
            },
            "network": {k: v for k, v in self.network},
            "nrep": self.nrep,
            "seed": self.seed,
            "clock_mode": self.clock_mode,
            "noise_profile": self.noise_profile,
            "count": self.count,
            "harmonize_slack": self.harmonize_slack,
            "machine_name": self.machine_name,
            "collective": self.collective,
            "algorithm": self.algorithm,
            "msg_bytes": self.msg_bytes,
            "pattern": self.pattern.to_dict() if self.pattern is not None else None,
            "op": self.op,
            "segment_bytes": self.segment_bytes,
        }
        # Emitted only when non-default so exact-mode cache keys (and any
        # results cached before the flow engine existed) stay valid.
        if self.engine_mode != "exact":
            d["engine_mode"] = self.engine_mode
            d["flow_tolerance"] = self.flow_tolerance
        # Same stability rule for vector cells: regular-collective keys are
        # untouched by the counts extension.
        if self.counts is not None:
            d["counts"] = [list(row) for row in self.counts] \
                if self.counts and isinstance(self.counts[0], tuple) \
                else list(self.counts)
            d["item_bytes"] = self.item_bytes
        return d

    def cache_key(self) -> str:
        """SHA-256 over the canonical spec JSON and the model version."""
        payload = {"model_version": MODEL_VERSION, "spec": self.to_dict()}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


def run_cell(spec: CellSpec) -> "BenchResult":
    """Module-level worker function (must stay picklable by reference)."""
    return spec.run()


def _run_cell_job(
    job: tuple[CellSpec, tuple[bool, bool, bool]],
) -> tuple["BenchResult", float, "CellTelemetry | None"]:
    """Run one cell, optionally under a fresh observability session.

    Module-level (picklable by reference); the same function serves the
    inline path and pool workers, so a cell's telemetry payload is
    identical however it executed.  The flags mirror the parent session
    (``collect``, ``record_spans``, ``record_messages``); with ``collect``
    off this is exactly the bare timed run.

    CPU time, not wall time: on an oversubscribed machine a worker's wall
    clock includes time spent descheduled, which would inflate the
    serial-equivalent estimate the speedup counter is based on.
    """
    spec, (collect, record_spans, record_messages) = job
    if not collect:
        started = time.process_time()
        result = run_cell(spec)
        return result, time.process_time() - started, None

    from repro.obs.collect import capture_telemetry
    from repro.obs.context import session
    from repro.obs.runid import make_run_id

    started = time.process_time()
    with session(run_id=make_run_id({"cell": spec.cache_key()}, prefix="cell"),
                 meta={"collective": spec.collective,
                       "algorithm": spec.algorithm},
                 record_spans=record_spans,
                 record_messages=record_messages) as cctx:
        result = run_cell(spec)
        telemetry = capture_telemetry(cctx)
    return result, time.process_time() - started, telemetry


# --------------------------------------------------------------------------- #
# On-disk result cache
# --------------------------------------------------------------------------- #

class ResultCache:
    """Content-addressed store of finished cells under ``cache_dir``.

    Layout: ``<cache_dir>/<key[:2]>/<key>.json`` where ``key`` is
    :meth:`CellSpec.cache_key`.  Each record is self-describing — it embeds
    the model version, the full spec, and the raw per-repetition timestamps —
    so a cache directory doubles as a provenance log.  Records never go
    stale silently: the version is part of the key, so a simulator change
    simply misses.
    """

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        if self.cache_dir.exists() and not self.cache_dir.is_dir():
            raise ConfigurationError(
                f"cache dir {self.cache_dir} exists and is not a directory"
            )

    def path_for(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def get(self, spec: CellSpec) -> "BenchResult | None":
        record = self.get_record(spec)
        return record[0] if record is not None else None

    def get_record(
        self, spec: CellSpec
    ) -> "tuple[BenchResult, CellTelemetry | None] | None":
        """The cached result plus its stored telemetry payload (if the run
        that wrote the record had an observability session open)."""
        from repro.bench.results import BenchResult
        from repro.obs.collect import CellTelemetry

        path = self.path_for(spec.cache_key())
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text())
            if record.get("model_version") != MODEL_VERSION:
                return None
            result = BenchResult.from_dict(record["result"])
            raw = record.get("telemetry")
            telemetry = CellTelemetry.from_dict(raw) if raw is not None else None
        except (ValueError, KeyError, ConfigurationError, TraceFormatError):
            return None  # corrupt record: treat as a miss, re-simulate
        try:
            # Touch on hit: file mtime doubles as the LRU clock for gc().
            os.utime(path)
        except OSError:
            pass
        return result, telemetry

    def put(self, spec: CellSpec, result: "BenchResult",
            telemetry: "CellTelemetry | None" = None) -> Path:
        key = spec.cache_key()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "model_version": MODEL_VERSION,
            "key": key,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
            "telemetry": telemetry.to_dict() if telemetry is not None else None,
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(record))
        tmp.replace(path)  # atomic: concurrent writers race benignly
        return path

    # -- maintenance (repro-mpi cache) ---------------------------------- #

    def record_paths(self) -> list[Path]:
        """Every record file currently in the cache (sorted for stability)."""
        if not self.cache_dir.is_dir():
            return []
        return sorted(self.cache_dir.glob("??/*.json"))

    def stats(self) -> "CacheStats":
        """Entry and byte totals (the ``repro-mpi cache stats`` numbers)."""
        entries = 0
        total = 0
        for path in self.record_paths():
            try:
                total += path.stat().st_size
                entries += 1
            except OSError:
                continue  # racing eviction; skip
        return CacheStats(entries=entries, total_bytes=total)

    def gc(self, max_bytes: int) -> tuple[int, int]:
        """Evict least-recently-used records until the cache fits
        ``max_bytes``; returns ``(evicted_count, freed_bytes)``.

        Recency is file mtime — reads touch records (see
        :meth:`get_record`), so a long campaign's working set survives and
        stale cells go first.
        """
        if max_bytes < 0:
            raise ConfigurationError(f"max_bytes must be >= 0, got {max_bytes}")
        records = []
        total = 0
        for path in self.record_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            records.append((stat.st_mtime, path, stat.st_size))
            total += stat.st_size
        records.sort()  # oldest mtime first
        evicted = 0
        freed = 0
        for _mtime, path, size in records:
            if total - freed <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            evicted += 1
            freed += size
        return evicted, freed


@dataclass(frozen=True)
class CacheStats:
    """Totals returned by :meth:`ResultCache.stats`."""

    entries: int
    total_bytes: int


# --------------------------------------------------------------------------- #
# Executor
# --------------------------------------------------------------------------- #

@dataclass
class ExecutorStats:
    """Cache and timing counters accumulated over one executor's lifetime.

    Population caveat: ``cells`` counts *every* cell (hits included), but
    ``cell_seconds`` / ``sim_seconds`` — and the ``executor.cell_seconds``
    histogram they feed — cover **simulated cells only**: a cache hit never
    runs a simulation, so it contributes no duration.  A hit-heavy run
    therefore shows few-but-honest cell timings, not "fast cells"; read the
    hit count (``hits``, or the ``executor.cache_hit_total`` counter)
    alongside the histogram.
    """

    cells: int = 0
    hits: int = 0
    simulated: int = 0
    #: Summed simulation time of every executed cell (worker-side CPU
    #: seconds — the serial-equivalent cost of the simulated cells).
    sim_seconds: float = 0.0
    #: Wall-clock spent inside ``run_cells`` (parent-side seconds).
    wall_seconds: float = 0.0
    #: Per-cell simulation durations, in completion order (simulated cells
    #: only — cache hits do not appear; see the class docstring).
    cell_seconds: list[float] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.cells if self.cells else 0.0

    @property
    def speedup(self) -> float:
        """Estimated speedup vs. serial uncached execution of the same cells."""
        return self.sim_seconds / self.wall_seconds if self.wall_seconds > 0 else 1.0

    def summary(self) -> str:
        # Floor the percentage: "100%" must mean every cell hit, not 99.6%.
        head = (
            f"{self.cells} cells: {self.simulated} simulated, "
            f"{self.hits} cache hits ({int(self.hit_rate * 100)}% hit rate); "
        )
        if self.simulated == 0:
            return head + f"all served from cache in {self.wall_seconds:.2f}s wall"
        return head + (
            f"cell time {self.sim_seconds:.2f}s in {self.wall_seconds:.2f}s wall "
            f"({self.speedup:.1f}x vs serial uncached)"
        )


class CellExecutor:
    """Runs batches of :class:`CellSpec` with optional parallelism + caching.

    Results always come back in the order the specs were given, regardless
    of the completion order in the pool — the deterministic merge that keeps
    ``--jobs N`` output byte-identical to the serial path.
    """

    def __init__(self, jobs: int = 1, cache_dir: str | Path | None = None,
                 store=None) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.stats = ExecutorStats()
        # Optional persistent sink: a repro.store.TuningStore (or a path to
        # one) that every finished cell — simulated or cache-served — is
        # ingested into.  Ingest is content-addressed, so repeated runs are
        # idempotent.  Lazily imported: the store is an optional layer.
        self.store = None
        self._owns_store = False
        self._store_provenance: int | None = None
        if store is not None:
            from repro.store import open_store

            self.store, self._owns_store = open_store(store)

    @classmethod
    def from_env(cls, jobs: int | None = None,
                 cache_dir: str | Path | None = None,
                 store=None) -> "CellExecutor":
        """Build an executor honoring ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` /
        ``REPRO_STORE``."""
        if jobs is None:
            jobs = int(os.environ.get("REPRO_JOBS", "1"))
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        if store is None:
            store = os.environ.get("REPRO_STORE") or None
        return cls(jobs=jobs, cache_dir=cache_dir, store=store)

    def close(self) -> None:
        """Release the store connection if this executor opened it."""
        if self.store is not None and self._owns_store:
            self.store.close()
            self.store = None

    def run_cells(
        self,
        specs: Sequence[CellSpec],
        progress: Callable[[CellSpec], None] | None = None,
    ) -> list["BenchResult"]:
        """Execute every spec; returns results aligned with ``specs``.

        With an observability session open, every simulated cell — inline
        or in a pool worker — runs under its own fresh session; its
        telemetry payload ships back with the result and merges into the
        parent session in spec order (see :mod:`repro.obs.collect`), and
        cache hits replay the payload stored with the cached record.  The
        merged trace is therefore identical for serial and ``--jobs N``
        runs, and a warm cache run differs only by provenance tags.
        """
        from repro.obs.collect import CACHE_REPLAY, merge_telemetry

        started = time.perf_counter()
        octx = _obs_current()
        collect = octx.enabled
        flags = (collect, octx.record_spans, octx.record_messages)
        # Cell indices stay unique (and deterministic) across batches.
        cell_base = self.stats.cells
        with octx.wall_span("executor.run_cells", track="executor",
                            args={"cells": len(specs), "jobs": self.jobs}):
            results: list["BenchResult | None"] = [None] * len(specs)
            telemetries: list["CellTelemetry | None"] = [None] * len(specs)
            pending: list[int] = []
            for i, spec in enumerate(specs):
                record = (self.cache.get_record(spec)
                          if self.cache is not None else None)
                if record is not None:
                    results[i], stored = record
                    if collect and stored is not None:
                        telemetries[i] = stored.tagged(CACHE_REPLAY)
                    self.stats.hits += 1
                else:
                    pending.append(i)
                if progress is not None:
                    progress(spec)
            if len(pending) > 1 and self.jobs > 1:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    for i, (result, seconds, telemetry) in zip(
                        pending,
                        pool.map(_run_cell_job,
                                 [(specs[i], flags) for i in pending]),
                    ):
                        results[i] = self._record(specs[i], result, seconds,
                                                  telemetry)
                        telemetries[i] = telemetry
            else:
                for i in pending:
                    result, seconds, telemetry = _run_cell_job((specs[i], flags))
                    results[i] = self._record(specs[i], result, seconds,
                                              telemetry)
                    telemetries[i] = telemetry
            if collect:
                # Deterministic merge: spec order, however cells executed.
                for i, telemetry in enumerate(telemetries):
                    if telemetry is None:
                        continue
                    spec = specs[i]
                    merge_telemetry(
                        octx, telemetry, cell=cell_base + i,
                        name=f"{spec.collective}/{spec.algorithm}",
                        args={
                            "msg_bytes": spec.msg_bytes,
                            "pattern": (spec.pattern.name
                                        if spec.pattern is not None
                                        else "no_delay"),
                        },
                    )
            if self.store is not None and specs:
                self._sink(specs, results)
            self.stats.cells += len(specs)
            self.stats.wall_seconds += time.perf_counter() - started
        if collect:
            m = octx.metrics
            m.counter("executor.cells").inc(len(specs))
            m.counter("executor.cache_hit_total").inc(len(specs) - len(pending))
            m.counter("executor.simulated").inc(len(pending))
        return results  # type: ignore[return-value]

    def _sink(self, specs: Sequence[CellSpec],
              results: Sequence["BenchResult | None"]) -> None:
        """Ingest every finished cell of one batch into the tuning store.

        Cache hits are ingested too (the store should be complete even on a
        warm run); content addressing makes re-ingest a no-op.
        """
        from repro.store import harness_hash

        if self._store_provenance is None:
            self._store_provenance = self.store.ensure_provenance(
                run_id=_obs_current().run_id,
                params_hash=harness_hash(specs[0]),
            )
        n = 0
        for result in results:
            if result is None:  # pragma: no cover - defensive
                continue
            _id, inserted = self.store.ingest_result(
                result, provenance_id=self._store_provenance)
            n += inserted
        _obs_current().metrics.counter("executor.store_ingest_total").inc(n)

    def _record(self, spec: CellSpec, result: "BenchResult", seconds: float,
                telemetry: "CellTelemetry | None" = None) -> "BenchResult":
        if self.cache is not None:
            self.cache.put(spec, result, telemetry)
        self.stats.simulated += 1
        self.stats.sim_seconds += seconds
        # Simulated cells only: a cache hit has no simulation duration to
        # observe (see ExecutorStats docstring).
        self.stats.cell_seconds.append(seconds)
        _obs_current().metrics.histogram("executor.cell_seconds").observe(seconds)
        return result


__all__ = [
    "MODEL_VERSION",
    "PatternSpec",
    "CellSpec",
    "run_cell",
    "ResultCache",
    "CacheStats",
    "ExecutorStats",
    "CellExecutor",
]
