"""Result containers for micro-benchmark runs and sweeps, with JSON/CSV export."""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.bench.metrics import CollectiveTiming


@dataclass
class BenchResult:
    """Outcome of benchmarking one (collective, algorithm, size, pattern) cell."""

    collective: str
    algorithm: str
    msg_bytes: float
    num_ranks: int
    pattern_name: str
    max_skew: float
    timings: list[CollectiveTiming] = field(repr=False)
    machine: str = ""

    def __post_init__(self) -> None:
        if not self.timings:
            raise ConfigurationError("BenchResult needs at least one repetition")

    @property
    def nrep(self) -> int:
        return len(self.timings)

    @property
    def last_delays(self) -> np.ndarray:
        return np.array([t.last_delay for t in self.timings])

    @property
    def total_delays(self) -> np.ndarray:
        return np.array([t.total_delay for t in self.timings])

    @property
    def last_delay(self) -> float:
        """Headline number: mean last delay over repetitions."""
        return float(self.last_delays.mean())

    @property
    def total_delay(self) -> float:
        return float(self.total_delays.mean())

    @property
    def median_last_delay(self) -> float:
        return float(np.median(self.last_delays))

    @property
    def arrival_spreads(self) -> np.ndarray:
        """Observed per-repetition arrival spread ``omega = max(a) - min(a)``."""
        return np.array([t.arrival_spread for t in self.timings])

    @property
    def arrival_spread(self) -> float:
        """Mean observed arrival spread over repetitions."""
        return float(self.arrival_spreads.mean())

    @property
    def imbalance_factor(self) -> float:
        """Mean per-repetition ``omega / d_hat`` — how large the arrival
        imbalance is relative to the completion time the last arriver pays
        (0 for a balanced pattern; matches
        :meth:`repro.obs.analysis.TraceAnalysis.imbalance`)."""
        ratios = [t.arrival_spread / t.last_delay
                  for t in self.timings if t.last_delay > 0]
        return float(np.mean(ratios)) if ratios else 0.0

    def summary(self, warmup: int = 0, winsor_fraction: float = 0.0,
                confidence: float = 0.95):
        """ReproMPI-style robust summary of the last-delay series."""
        from repro.bench.stats import summarize

        return summarize(self.last_delays, warmup=warmup,
                         winsor_fraction=winsor_fraction, confidence=confidence)

    def to_dict(self) -> dict:
        return {
            "collective": self.collective,
            "algorithm": self.algorithm,
            "msg_bytes": self.msg_bytes,
            "num_ranks": self.num_ranks,
            "pattern": self.pattern_name,
            "max_skew": self.max_skew,
            "machine": self.machine,
            "nrep": self.nrep,
            "last_delays": self.last_delays.tolist(),
            "total_delays": self.total_delays.tolist(),
            "timings": [
                {"arrivals": t.arrivals.tolist(), "exits": t.exits.tolist()}
                for t in self.timings
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchResult":
        """Rebuild a result from :meth:`to_dict` output (exact round trip)."""
        try:
            timings = [
                CollectiveTiming(np.array(t["arrivals"], dtype=float),
                                 np.array(t["exits"], dtype=float))
                for t in data["timings"]
            ]
            return cls(
                collective=data["collective"],
                algorithm=data["algorithm"],
                msg_bytes=float(data["msg_bytes"]),
                num_ranks=int(data["num_ranks"]),
                pattern_name=data["pattern"],
                max_skew=float(data["max_skew"]),
                timings=timings,
                machine=data.get("machine", ""),
            )
        except KeyError as exc:
            raise ConfigurationError(f"BenchResult dict missing {exc}") from None


@dataclass
class SweepResult:
    """A grid of bench results keyed by ``(pattern, algorithm)``.

    One SweepResult covers one (collective, message size) slice — the layout
    of the paper's per-size heatmaps.
    """

    collective: str
    msg_bytes: float
    num_ranks: int
    cells: dict[tuple[str, str], BenchResult] = field(default_factory=dict)
    skew_by_pattern: dict[str, float] = field(default_factory=dict)
    #: Fig. 6 sweeps scale the skew to each algorithm's own runtime, so one
    #: pattern has *per-algorithm* magnitudes: ``{pattern: {algorithm: skew}}``
    #: (``skew_by_pattern`` then carries the per-pattern mean).  Shared-skew
    #: sweeps leave this empty.
    per_algorithm_skews: dict[str, dict[str, float]] = field(default_factory=dict)
    machine: str = ""

    def add(self, result: BenchResult) -> None:
        self.cells[(result.pattern_name, result.algorithm)] = result

    def get(self, pattern: str, algorithm: str) -> BenchResult:
        try:
            return self.cells[(pattern, algorithm)]
        except KeyError:
            raise ConfigurationError(
                f"no result for pattern={pattern!r} algorithm={algorithm!r}"
            ) from None

    @property
    def patterns(self) -> list[str]:
        seen: list[str] = []
        for pattern, _ in self.cells:
            if pattern not in seen:
                seen.append(pattern)
        return seen

    @property
    def algorithms(self) -> list[str]:
        seen: list[str] = []
        for _, algo in self.cells:
            if algo not in seen:
                seen.append(algo)
        return seen

    def row(self, pattern: str) -> dict[str, float]:
        """Mean last delay per algorithm for one arrival pattern."""
        return {
            algo: self.get(pattern, algo).last_delay for algo in self.algorithms
            if (pattern, algo) in self.cells
        }

    def best_algorithm(self, pattern: str) -> str:
        row = self.row(pattern)
        if not row:
            raise ConfigurationError(f"no results for pattern {pattern!r}")
        return min(row, key=row.get)

    # -- persistence ---------------------------------------------------- #

    def to_dict(self) -> dict:
        return {
            "collective": self.collective,
            "msg_bytes": self.msg_bytes,
            "num_ranks": self.num_ranks,
            "machine": self.machine,
            "skew_by_pattern": self.skew_by_pattern,
            "per_algorithm_skews": self.per_algorithm_skews,
            "cells": [r.to_dict() for r in self.cells.values()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        """Rebuild a sweep from :meth:`to_dict` output (cell order preserved)."""
        try:
            sweep = cls(
                collective=data["collective"],
                msg_bytes=float(data["msg_bytes"]),
                num_ranks=int(data["num_ranks"]),
                machine=data.get("machine", ""),
                skew_by_pattern=dict(data["skew_by_pattern"]),
                per_algorithm_skews={
                    pattern: dict(skews)
                    for pattern, skews in data.get("per_algorithm_skews", {}).items()
                },
            )
            for cell in data["cells"]:
                sweep.add(BenchResult.from_dict(cell))
        except KeyError as exc:
            raise ConfigurationError(f"SweepResult dict missing {exc}") from None
        return sweep

    def save_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    def save_csv(self, path: str | Path) -> None:
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["collective", "msg_bytes", "pattern", "algorithm",
                 "mean_last_delay", "median_last_delay", "mean_total_delay", "nrep"]
            )
            for (pattern, algo), r in sorted(self.cells.items()):
                writer.writerow(
                    [self.collective, self.msg_bytes, pattern, algo,
                     f"{r.last_delay:.9g}", f"{r.median_last_delay:.9g}",
                     f"{r.total_delay:.9g}", r.nrep]
                )
