"""Robust summary statistics for repeated measurements (ReproMPI-style).

Micro-benchmark repetitions on real systems carry warmup transients and
long-tail outliers; ReproMPI's methodology [Hunold & Carpen-Amarie, TPDS'16]
therefore reports medians with nonparametric confidence intervals and
supports dropping warmup repetitions and winsorizing tails.  The simulator
is deterministic unless noise/synced clocks are active, but the harness
exposes the same statistics so downstream analysis code is portable to real
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Summary of one measurement series."""

    n: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def relative_spread(self) -> float:
        """(max - min) / median — a quick stability indicator."""
        return (self.maximum - self.minimum) / self.median if self.median else 0.0


def drop_warmup(values: np.ndarray, warmup: int) -> np.ndarray:
    """Drop the first ``warmup`` repetitions (must leave at least one)."""
    values = np.asarray(values, dtype=float)
    if warmup < 0:
        raise ConfigurationError("warmup must be non-negative")
    if warmup >= values.size:
        raise ConfigurationError(
            f"warmup={warmup} leaves no measurements out of {values.size}"
        )
    return values[warmup:]


def winsorize(values: np.ndarray, fraction: float = 0.05) -> np.ndarray:
    """Clamp the top/bottom ``fraction`` of values to the remaining extremes."""
    values = np.asarray(values, dtype=float)
    if not (0.0 <= fraction < 0.5):
        raise ConfigurationError("winsorize fraction must be in [0, 0.5)")
    if values.size == 0:
        raise ConfigurationError("empty measurement series")
    lo, hi = np.quantile(values, [fraction, 1.0 - fraction])
    return np.clip(values, lo, hi)


def median_ci(values: np.ndarray, confidence: float = 0.95) -> tuple[float, float]:
    """Nonparametric (order-statistic) confidence interval for the median.

    Standard binomial construction [Conover, Practical Nonparametric
    Statistics]: with ``B ~ Binom(n, 1/2)`` counting observations below the
    median, the interval is ``(x_(l), x_(u))`` in 1-based order statistics
    with ``l = binom.ppf(alpha/2, n, 1/2)`` and
    ``u = binom.ppf(1 - alpha/2, n, 1/2) + 1``.  Its exact coverage is
    ``P(l <= B <= u-1) = cdf(u-1) - cdf(l-1) >= confidence``.  For tiny
    samples the interval degenerates to (min, max).
    """
    values = np.sort(np.asarray(values, dtype=float))
    n = values.size
    if n == 0:
        raise ConfigurationError("empty measurement series")
    if not (0.0 < confidence < 1.0):
        raise ConfigurationError("confidence must be in (0, 1)")
    if n < 3:
        return float(values[0]), float(values[-1])
    alpha = 1.0 - confidence
    lower_stat = int(sps.binom.ppf(alpha / 2, n, 0.5))        # l, 1-based
    upper_stat = int(sps.binom.ppf(1 - alpha / 2, n, 0.5)) + 1  # u, 1-based
    lower = max(0, min(lower_stat - 1, n - 1))  # 0-based indices
    upper = max(0, min(upper_stat - 1, n - 1))
    return float(values[lower]), float(values[upper])


def summarize(
    values,
    warmup: int = 0,
    winsor_fraction: float = 0.0,
    confidence: float = 0.95,
) -> Summary:
    """Full summary with optional warmup dropping and winsorization."""
    series = np.asarray(values, dtype=float)
    if series.ndim != 1 or series.size == 0:
        raise ConfigurationError("measurements must be a non-empty 1-D series")
    if warmup:
        series = drop_warmup(series, warmup)
    if winsor_fraction:
        series = winsorize(series, winsor_fraction)
    ci_low, ci_high = median_ci(series, confidence)
    return Summary(
        n=int(series.size),
        mean=float(series.mean()),
        median=float(np.median(series)),
        std=float(series.std(ddof=1)) if series.size > 1 else 0.0,
        minimum=float(series.min()),
        maximum=float(series.max()),
        ci_low=ci_low,
        ci_high=ci_high,
        confidence=confidence,
    )


__all__ = ["Summary", "summarize", "drop_warmup", "winsorize", "median_ci"]
