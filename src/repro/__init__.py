"""repro — arrival-pattern-aware MPI collective algorithm selection.

A from-scratch Python reproduction of

    Salimi Beni, Cosenza, Hunold:
    "MPI Collective Algorithm Selection in the Presence of Process Arrival
    Patterns", IEEE CLUSTER 2024.

The package bundles a discrete-event MPI simulator (:mod:`repro.sim`), a
library of collective algorithms (:mod:`repro.collectives`), arrival-pattern
generation (:mod:`repro.patterns`), a clock-synchronized micro-benchmark
harness (:mod:`repro.bench`), application tracing (:mod:`repro.tracing`),
algorithm-selection strategies (:mod:`repro.selection`), proxy applications
(:mod:`repro.apps`), and one experiment driver per paper figure/table
(:mod:`repro.experiments`).
"""

from repro._version import __version__
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    ProtocolError,
    ReproError,
    SimulationError,
    TraceFormatError,
    UnknownAlgorithmError,
)

__all__ = [
    "__version__",
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "ProtocolError",
    "ConfigurationError",
    "UnknownAlgorithmError",
    "TraceFormatError",
]
