"""Structured lint findings and the report that carries them.

A :class:`LintFinding` records one guideline violation against one store
cell: which guideline, how badly (the *margin*), at what severity, and —
crucially — the **content hash** of the suspect cell, so verdicts survive
re-ingests, store copies, and schema migrations (content addressing is the
store's identity; see :mod:`repro.store.tuning_store`).  ``witnesses``
carries the hashes of the cells that *established* the violated bound
(e.g. the best ``reduce`` and ``bcast`` cells a composition guideline
summed), so a finding is auditable without re-running the lint.

A :class:`LintReport` aggregates findings with severity accounting, JSON
round-trips for the CI artifact, a text renderer for the CLI, and the
``--fail-on`` exit-code policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Severity levels, mildest first.  ``error`` findings mark cells suspect
#: by default (see :meth:`repro.store.TuningStore.apply_lint`).
SEVERITIES = ("info", "warning", "error")

_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity name (higher = worse)."""
    try:
        return _RANK[severity]
    except KeyError:
        raise ConfigurationError(
            f"unknown severity {severity!r}; expected one of {SEVERITIES}"
        ) from None


def _finite(value: float) -> float | None:
    """JSON-safe float: ``None`` for NaN/Infinity (strict JSON has neither)."""
    value = float(value)
    return value if math.isfinite(value) else None


@dataclass(frozen=True)
class LintFinding:
    """One guideline violation against one benchmark cell."""

    guideline: str
    severity: str
    collective: str
    algorithm: str
    comm_size: int
    msg_bytes: float
    pattern: str
    #: SHA-256 content hash of the suspect cell ('' when the record was
    #: built from data that never passed through a store).
    content_hash: str
    #: Relative violation size.  For "x must be <= bound" guidelines this is
    #: ``x / bound - 1`` (unbounded above); for "x must be >= bound" (the
    #: analytical floor) it is ``(bound - x) / bound`` (in ``(0, 1]``).
    margin: float
    measured: float
    bound: float
    detail: str = ""
    #: Content hashes of the cells that established ``bound``.
    witnesses: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        severity_rank(self.severity)  # validates the name

    def coordinate(self) -> str:
        """Human-readable cell coordinate for reports and error text."""
        where = (f"{self.collective}/{self.algorithm} @ p={self.comm_size}, "
                 f"{self.msg_bytes:g} B")
        if self.pattern:
            where += f", pattern {self.pattern}"
        return where

    def to_dict(self) -> dict:
        return {
            "guideline": self.guideline,
            "severity": self.severity,
            "collective": self.collective,
            "algorithm": self.algorithm,
            "comm_size": int(self.comm_size),
            "msg_bytes": float(self.msg_bytes),
            "pattern": self.pattern,
            "content_hash": self.content_hash,
            "margin": _finite(self.margin),
            "measured": _finite(self.measured),
            "bound": _finite(self.bound),
            "detail": self.detail,
            "witnesses": list(self.witnesses),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LintFinding":
        try:
            return cls(
                guideline=data["guideline"],
                severity=data["severity"],
                collective=data["collective"],
                algorithm=data["algorithm"],
                comm_size=int(data["comm_size"]),
                msg_bytes=float(data["msg_bytes"]),
                pattern=data.get("pattern", ""),
                content_hash=data.get("content_hash", ""),
                margin=float(data["margin"] if data["margin"] is not None
                             else math.nan),
                measured=float(data["measured"] if data["measured"] is not None
                               else math.nan),
                bound=float(data["bound"] if data["bound"] is not None
                            else math.nan),
                detail=data.get("detail", ""),
                witnesses=tuple(data.get("witnesses", ())),
            )
        except KeyError as exc:
            raise ConfigurationError(f"lint finding dict missing {exc}") from None


@dataclass
class LintReport:
    """Every finding of one lint run, plus coverage accounting."""

    findings: list[LintFinding] = field(default_factory=list)
    #: Number of cell records the run evaluated.
    cells_checked: int = 0
    #: Names of the guidelines that ran.
    guidelines: tuple[str, ...] = ()

    def counts(self) -> dict[str, int]:
        """Finding count per severity (every severity key always present)."""
        out = {name: 0 for name in SEVERITIES}
        for finding in self.findings:
            out[finding.severity] += 1
        return out

    def max_severity(self) -> str | None:
        """Worst severity present, or ``None`` for a clean report."""
        worst = None
        for finding in self.findings:
            if worst is None or severity_rank(finding.severity) > severity_rank(worst):
                worst = finding.severity
        return worst

    def findings_at_least(self, severity: str) -> list[LintFinding]:
        floor = severity_rank(severity)
        return [f for f in self.findings if severity_rank(f.severity) >= floor]

    def suspect_hashes(self, min_severity: str = "error") -> set[str]:
        """Content hashes of cells with a finding at or above ``min_severity``."""
        return {f.content_hash for f in self.findings_at_least(min_severity)
                if f.content_hash}

    def fails(self, fail_on: str) -> bool:
        """The ``--fail-on`` policy: does this report warrant a non-zero exit?

        ``fail_on`` is ``"error"``, ``"warning"``, or ``"never"``.
        """
        if fail_on == "never":
            return False
        return bool(self.findings_at_least(fail_on))

    def to_dict(self) -> dict:
        counts = self.counts()
        return {
            "cells_checked": int(self.cells_checked),
            "guidelines": list(self.guidelines),
            "counts": counts,
            "max_severity": self.max_severity(),
            "findings": [f.to_dict() for f in
                         sorted(self.findings,
                                key=lambda f: (-severity_rank(f.severity),
                                               f.guideline, f.collective,
                                               f.algorithm, f.msg_bytes))],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LintReport":
        return cls(
            findings=[LintFinding.from_dict(f) for f in data.get("findings", [])],
            cells_checked=int(data.get("cells_checked", 0)),
            guidelines=tuple(data.get("guidelines", ())),
        )

    def render_text(self, limit: int | None = None) -> str:
        """Multi-line CLI rendering: summary line, then findings worst-first."""
        counts = self.counts()
        head = (f"store lint: {self.cells_checked} cells, "
                f"{len(self.guidelines)} guidelines; "
                f"{counts['error']} error(s), {counts['warning']} warning(s)")
        if not self.findings:
            return head + " - clean"
        lines = [head]
        ordered = sorted(self.findings,
                         key=lambda f: (-severity_rank(f.severity), f.guideline,
                                        f.collective, f.algorithm, f.msg_bytes))
        shown = ordered if limit is None else ordered[:limit]
        for f in shown:
            margin = (f"{f.margin:+.1%}" if math.isfinite(f.margin) else "n/a")
            cell = f.content_hash[:12] or "<unhashed>"
            lines.append(f"  [{f.severity}] {f.guideline}: {f.coordinate()}")
            lines.append(f"      measured {f.measured:.4g} s vs bound "
                         f"{f.bound:.4g} s (margin {margin}); cell {cell}")
            if f.detail:
                lines.append(f"      {f.detail}")
        if limit is not None and len(ordered) > limit:
            lines.append(f"  ... {len(ordered) - limit} more finding(s)")
        return "\n".join(lines)


__all__ = ["SEVERITIES", "severity_rank", "LintFinding", "LintReport"]
