"""The guideline catalogue: checkable relations self-consistent tuning data obeys.

Hunold & Carpen-Amarie's *performance guidelines* (arXiv 1707.09965) give a
principled detector for suspect measurements: some relations between
collective runtimes must hold for any sane MPI library, because one side of
the relation is a *mock-up implementation* of the other.  An ``allreduce``
can always be implemented as ``reduce`` followed by ``bcast``, so a
measured allreduce that is much slower than the measured
``reduce + bcast`` sum at the same coordinate is suspect **by
construction** — either the cell is corrupted (noise spike, mis-configured
harness) or the algorithm implementation is pathological; either way it is
bad tuning data to derive production rules from.

Four guideline families are declared here (evaluation lives in
:mod:`repro.lint.engine`):

* **Composition** (`allreduce <= reduce + bcast` and friends): the mock-up
  relations above, joined per ``(comm_size, msg_bytes, pattern, harness)``.
  The bound sums the *best* measured time of each part, which is generous —
  each part's time includes its own arrival-skew wait, so the composed
  bound double-counts skew and a legitimate cell has ample slack.
* **Monotony**: per (algorithm, pattern, harness), runtime must not
  *decrease* when ``msg_bytes`` or ``comm_size`` grows.  Mild inversions
  are measurement noise (warning); a large-margin inversion means the
  faster cell is implausibly fast (error).
* **Sanity**: timings must be finite and non-negative.
* **Analytical floor**: Nuriyev & Lastovetsky's analytical models
  (arXiv 2004.11062) bound any collective from below; the weakest such
  bound — the zero-latency bandwidth term ``msg_bytes / max_bandwidth`` on
  the machine's fastest link — needs no model fitting and no cell may beat
  it.  A cell below the floor is physically impossible, hence corrupt.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompositionGuideline:
    """``composite <= sum(parts)`` at one (comm_size, msg_bytes, pattern) join.

    ``tolerance`` is the relative slack before a cell is flagged at all;
    a flagged cell whose margin exceeds ``error_margin`` escalates from
    ``warning`` to ``error`` (margin 1.0 = twice the composed bound).
    """

    name: str
    composite: str
    parts: tuple[str, ...]
    tolerance: float = 0.10
    error_margin: float = 1.0
    description: str = ""


@dataclass(frozen=True)
class MonotonyGuideline:
    """Runtime must be non-decreasing along ``axis`` for one algorithm/pattern.

    ``axis`` is ``"msg_bytes"`` or ``"comm_size"``.  The *faster* cell of an
    inverted pair (the one at the larger coordinate) is the suspect — an
    implausibly fast cell is the corruption mode selection actually
    mis-learns from, since strategies pick minima.
    """

    name: str
    axis: str
    tolerance: float = 0.25
    error_margin: float = 0.9
    description: str = ""


@dataclass(frozen=True)
class SanityGuideline:
    """Timings must be finite and non-negative."""

    name: str = "finite_non_negative"
    description: str = ("every recorded delay must be a finite, "
                        "non-negative number")


@dataclass(frozen=True)
class FloorGuideline:
    """No cell may beat the zero-latency bandwidth bound of its machine.

    ``tolerance`` absorbs floating-point slack; the check only runs for
    cells whose ``machine`` matches a known preset (the bound needs the
    link bandwidth).
    """

    name: str = "bandwidth_floor"
    tolerance: float = 0.05
    description: str = ("total wall time must be >= the per-collective "
                        "share of msg_bytes over the fastest link, at zero "
                        "latency")


#: Fraction of ``msg_bytes`` that must, at minimum, cross one link for the
#: floor guideline.  1.0 where a full contribution/block demonstrably
#: traverses a link; 0.5 where only per-rank result blocks do
#: (reduce_scatter delivers ``(p-1)/p`` of a contribution, >= 1/2 for
#: p >= 2); 0.0 disables the check (barrier moves no payload).
FLOOR_BYTE_FACTORS: dict[str, float] = {
    "barrier": 0.0,
    "reduce_scatter": 0.5,
    "reduce_scatter_block": 0.5,
}


#: Hunold-style mock-up composition guidelines.
COMPOSITION_GUIDELINES: tuple[CompositionGuideline, ...] = (
    CompositionGuideline(
        "allreduce_le_reduce_bcast", "allreduce", ("reduce", "bcast"),
        description="allreduce is implementable as reduce followed by bcast",
    ),
    CompositionGuideline(
        "allgather_le_gather_bcast", "allgather", ("gather", "bcast"),
        description="allgather is implementable as gather followed by bcast",
    ),
    CompositionGuideline(
        "alltoall_le_gather_scatter", "alltoall", ("gather", "scatter"),
        description="alltoall is implementable as gather followed by "
        "p scatters (bound is generous: one scatter is charged)",
    ),
    CompositionGuideline(
        "reduce_scatter_le_reduce_scatter", "reduce_scatter",
        ("reduce", "scatter"),
        description="reduce_scatter is implementable as reduce followed "
        "by scatter",
    ),
)

#: Monotony along both sweep axes.
MONOTONY_GUIDELINES: tuple[MonotonyGuideline, ...] = (
    MonotonyGuideline(
        "monotone_msg_bytes", "msg_bytes",
        description="per algorithm and pattern, runtime must not shrink "
        "as the message grows",
    ),
    MonotonyGuideline(
        "monotone_comm_size", "comm_size",
        description="per algorithm and pattern, runtime must not shrink "
        "as the communicator grows",
    ),
)

#: The default guideline set ``lint_store``/``lint-store`` runs.
DEFAULT_GUIDELINES: tuple = (
    SanityGuideline(),
    FloorGuideline(),
    *COMPOSITION_GUIDELINES,
    *MONOTONY_GUIDELINES,
)


__all__ = [
    "CompositionGuideline",
    "MonotonyGuideline",
    "SanityGuideline",
    "FloorGuideline",
    "COMPOSITION_GUIDELINES",
    "MONOTONY_GUIDELINES",
    "DEFAULT_GUIDELINES",
    "FLOOR_BYTE_FACTORS",
]
