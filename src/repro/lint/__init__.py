"""Guideline-based linting of tuning data (self-verifying stores).

See :mod:`repro.lint.guidelines` for the catalogue of checkable relations,
:mod:`repro.lint.engine` for the runner, and :mod:`repro.lint.report` for
the findings structures.  ``docs/store-linting.md`` is the user-facing
guide; the CLI entry point is ``repro-mpi lint-store``.
"""

from repro.lint.engine import (
    CellRecord,
    floor_seconds,
    lint_records,
    lint_store,
    lint_sweeps,
    record_from_payload,
    record_from_result,
    records_from_sweep,
)
from repro.lint.guidelines import (
    COMPOSITION_GUIDELINES,
    DEFAULT_GUIDELINES,
    FLOOR_BYTE_FACTORS,
    MONOTONY_GUIDELINES,
    CompositionGuideline,
    FloorGuideline,
    MonotonyGuideline,
    SanityGuideline,
)
from repro.lint.report import SEVERITIES, LintFinding, LintReport, severity_rank

__all__ = [
    "CellRecord",
    "CompositionGuideline",
    "MonotonyGuideline",
    "SanityGuideline",
    "FloorGuideline",
    "COMPOSITION_GUIDELINES",
    "MONOTONY_GUIDELINES",
    "DEFAULT_GUIDELINES",
    "FLOOR_BYTE_FACTORS",
    "LintFinding",
    "LintReport",
    "SEVERITIES",
    "severity_rank",
    "floor_seconds",
    "lint_records",
    "lint_store",
    "lint_sweeps",
    "record_from_payload",
    "record_from_result",
    "records_from_sweep",
]
