"""The lint runner: evaluate guidelines over stores or in-memory sweeps.

The evaluation unit is a :class:`CellRecord` — one benchmark cell reduced
to its lint-relevant coordinates and timing summaries, carrying the same
SHA-256 content hash the tuning store keys the cell by (so a finding made
here can be marked persistent there).  Records are tolerant of *corrupt*
payloads on purpose: a cell with NaN timings must still produce a record
(with ``finite=False``) so the sanity guideline can flag it, rather than
crashing the lint.

Joining: composition guidelines compare cells sharing
``(comm_size, msg_bytes, pattern, harness)``; monotony guidelines walk one
axis with everything else (including the harness) fixed.  The *harness*
key is the provenance ``params_hash`` for store cells (platform + network
parameters — comparing timings measured under different harnesses proves
nothing) and a caller-supplied tag for in-memory sweeps.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.lint.guidelines import (
    DEFAULT_GUIDELINES,
    FLOOR_BYTE_FACTORS,
    CompositionGuideline,
    FloorGuideline,
    MonotonyGuideline,
    SanityGuideline,
)
from repro.lint.report import LintFinding, LintReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.results import BenchResult, SweepResult
    from repro.store import TuningStore


@dataclass(frozen=True)
class CellRecord:
    """One benchmark cell, reduced to what the guidelines need."""

    collective: str
    algorithm: str
    comm_size: int
    msg_bytes: float
    pattern: str
    machine: str
    #: Join key for cross-cell guidelines: provenance params hash for store
    #: cells, caller-supplied tag otherwise.
    harness: str
    #: SHA-256 of the cell's canonical JSON ('' when unavailable).
    content_hash: str
    #: Headline time: mean last delay over repetitions (what selection uses).
    time: float
    #: Fastest repetition's *total* delay — the wall time the analytical
    #: floor bounds (d* includes the skew wait, so the bound stays valid
    #: under any arrival pattern).
    min_total: float
    #: Smallest raw delay value seen anywhere in the cell (sanity check).
    min_value: float
    #: False when any recorded delay is NaN/Infinity.
    finite: bool


def _tolerant_hash(payload: dict) -> str:
    """Content hash matching the store's, even for non-finite payloads.

    The store's :func:`~repro.store.content_hash` now refuses NaN/Infinity;
    cells ingested by older code may still carry them, hashed with Python's
    permissive encoder — reproduce that encoding so findings against legacy
    rows reference the hash the row is actually keyed by.
    """
    from repro.store import content_hash

    try:
        return content_hash(payload)
    except ConfigurationError:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def record_from_payload(payload: dict, *, content_hash: str = "",
                        harness: str = "") -> CellRecord:
    """Build a record from a stored ``BenchResult.to_dict`` payload.

    Never raises on corrupt timing values — those become a record with
    ``finite=False`` for the sanity guideline to report.
    """
    def _series(key: str) -> list[float]:
        values = payload.get(key) or []
        out = []
        for v in values:
            try:
                out.append(float(v))
            except (TypeError, ValueError):
                out.append(math.nan)
        return out

    last = _series("last_delays")
    total = _series("total_delays") or last
    everything = last + total
    finite = bool(everything) and all(math.isfinite(v) for v in everything)
    if last and finite:
        time = math.fsum(last) / len(last)
    else:
        time = math.nan
    min_total = min(total) if total and finite else math.nan
    min_value = min(everything) if everything and finite else math.nan
    return CellRecord(
        collective=str(payload.get("collective", "")),
        algorithm=str(payload.get("algorithm", "")),
        comm_size=int(payload.get("num_ranks", 0) or 0),
        msg_bytes=float(payload.get("msg_bytes", 0.0) or 0.0),
        pattern=str(payload.get("pattern", "")),
        machine=str(payload.get("machine", "")),
        harness=harness,
        content_hash=content_hash or _tolerant_hash(payload),
        time=time,
        min_total=min_total,
        min_value=min_value,
        finite=finite,
    )


def record_from_result(result: "BenchResult", *, harness: str = "") -> CellRecord:
    """Build a record from an in-memory result (hash matches store ingest)."""
    return record_from_payload(result.to_dict(), harness=harness)


def records_from_sweep(sweep: "SweepResult", *, harness: str = ""
                       ) -> list[CellRecord]:
    return [record_from_result(cell, harness=harness)
            for cell in sweep.cells.values()]


# -- machine lower bounds ------------------------------------------------- #

_bandwidth_cache: dict[str, float | None] = {}


def _machine_max_bandwidth(machine: str) -> float | None:
    """Fastest link bandwidth (bytes/s) of a machine preset, else ``None``."""
    if machine not in _bandwidth_cache:
        bandwidth: float | None = None
        if machine:
            from repro.sim.platform import get_machine

            try:
                spec = get_machine(machine)
            except ConfigurationError:
                pass
            else:
                rates = [float(v) for k, v in spec.network.items()
                         if k.endswith("bandwidth") and v]
                bandwidth = max(rates) if rates else None
        _bandwidth_cache[machine] = bandwidth
    return _bandwidth_cache[machine]


def floor_seconds(record: CellRecord) -> float | None:
    """Zero-latency bandwidth floor for one cell; ``None`` when unbounded.

    ``None`` means the guideline cannot bound this cell: unknown machine,
    single-rank communicator, or a collective that moves no payload.
    """
    if record.comm_size < 2:
        return None
    factor = FLOOR_BYTE_FACTORS.get(record.collective, 1.0)
    payload = factor * record.msg_bytes
    if payload <= 0:
        return None
    bandwidth = _machine_max_bandwidth(record.machine)
    if bandwidth is None:
        return None
    return payload / bandwidth


# -- guideline evaluation ------------------------------------------------- #

def _check_sanity(guideline: SanityGuideline,
                  records: Sequence[CellRecord]) -> list[LintFinding]:
    findings = []
    for r in records:
        if not r.finite:
            findings.append(_finding(guideline.name, "error", r,
                                     margin=math.nan, measured=math.nan,
                                     bound=0.0,
                                     detail="cell carries NaN/Infinity "
                                     "timing values"))
        elif r.min_value < 0:
            findings.append(_finding(guideline.name, "error", r,
                                     margin=abs(r.min_value),
                                     measured=r.min_value, bound=0.0,
                                     detail="cell carries a negative delay"))
    return findings


def _check_floor(guideline: FloorGuideline,
                 records: Sequence[CellRecord]) -> list[LintFinding]:
    findings = []
    for r in records:
        if not r.finite:
            continue
        bound = floor_seconds(r)
        if bound is None:
            continue
        if r.min_total < bound * (1.0 - guideline.tolerance):
            margin = (bound - r.min_total) / bound
            findings.append(_finding(
                guideline.name, "error", r, margin=margin,
                measured=r.min_total, bound=bound,
                detail=f"faster than the zero-latency bandwidth bound of "
                f"machine {r.machine!r} — physically impossible",
            ))
    return findings


def _check_composition(guideline: CompositionGuideline,
                       records: Sequence[CellRecord]) -> list[LintFinding]:
    groups: dict[tuple, list[CellRecord]] = {}
    for r in records:
        if not r.finite:
            continue
        groups.setdefault(
            (r.comm_size, r.msg_bytes, r.pattern, r.harness), []).append(r)
    findings = []
    for group in groups.values():
        best_parts: list[CellRecord] = []
        for part in guideline.parts:
            candidates = [r for r in group if r.collective == part]
            if not candidates:
                break
            best_parts.append(min(candidates, key=lambda r: r.time))
        else:
            bound = math.fsum(p.time for p in best_parts)
            if bound <= 0:
                continue
            witnesses = tuple(p.content_hash for p in best_parts)
            for r in group:
                if r.collective != guideline.composite:
                    continue
                if r.time <= bound * (1.0 + guideline.tolerance):
                    continue
                margin = r.time / bound - 1.0
                severity = ("error" if margin > guideline.error_margin
                            else "warning")
                parts = " + ".join(guideline.parts)
                findings.append(_finding(
                    guideline.name, severity, r, margin=margin,
                    measured=r.time, bound=bound, witnesses=witnesses,
                    detail=f"slower than the best {parts} mock-up at the "
                    "same coordinate",
                ))
    return findings


def _check_monotony(guideline: MonotonyGuideline,
                    records: Sequence[CellRecord]) -> list[LintFinding]:
    if guideline.axis not in ("msg_bytes", "comm_size"):
        raise ConfigurationError(
            f"monotony guideline {guideline.name!r} has unknown axis "
            f"{guideline.axis!r}"
        )
    by_msg = guideline.axis == "msg_bytes"
    groups: dict[tuple, list[CellRecord]] = {}
    for r in records:
        if not r.finite:
            continue
        key = ((r.collective, r.algorithm, r.pattern, r.comm_size, r.harness)
               if by_msg else
               (r.collective, r.algorithm, r.pattern, r.msg_bytes, r.harness))
        groups.setdefault(key, []).append(r)
    findings = []
    for group in groups.values():
        group.sort(key=lambda r: r.msg_bytes if by_msg else r.comm_size)
        for small, large in zip(group, group[1:]):
            coord = (lambda r: r.msg_bytes) if by_msg else (lambda r: r.comm_size)
            if coord(small) == coord(large) or small.time <= 0:
                continue
            if large.time >= small.time * (1.0 - guideline.tolerance):
                continue
            margin = (small.time - large.time) / small.time
            severity = "error" if margin > guideline.error_margin else "warning"
            axis = "message size" if by_msg else "communicator size"
            findings.append(_finding(
                guideline.name, severity, large, margin=margin,
                measured=large.time, bound=small.time,
                witnesses=(small.content_hash,),
                detail=f"implausibly fast: beats the same algorithm at a "
                f"smaller {axis} ({coord(small):g} -> {coord(large):g})",
            ))
    return findings


def _finding(name: str, severity: str, record: CellRecord, *, margin: float,
             measured: float, bound: float, detail: str = "",
             witnesses: tuple[str, ...] = ()) -> LintFinding:
    return LintFinding(
        guideline=name, severity=severity,
        collective=record.collective, algorithm=record.algorithm,
        comm_size=record.comm_size, msg_bytes=record.msg_bytes,
        pattern=record.pattern, content_hash=record.content_hash,
        margin=margin, measured=measured, bound=bound, detail=detail,
        witnesses=witnesses,
    )


_CHECKERS = (
    (SanityGuideline, _check_sanity),
    (FloorGuideline, _check_floor),
    (CompositionGuideline, _check_composition),
    (MonotonyGuideline, _check_monotony),
)


def lint_records(records: Iterable[CellRecord],
                 guidelines: Sequence = DEFAULT_GUIDELINES) -> LintReport:
    """Evaluate ``guidelines`` over cell records; returns the full report."""
    records = list(records)
    findings: list[LintFinding] = []
    names = []
    for guideline in guidelines:
        for kind, checker in _CHECKERS:
            if isinstance(guideline, kind):
                findings.extend(checker(guideline, records))
                break
        else:
            raise ConfigurationError(
                f"unknown guideline type {type(guideline).__name__}"
            )
        names.append(guideline.name)
    return LintReport(findings=findings, cells_checked=len(records),
                      guidelines=tuple(names))


def lint_sweeps(sweeps: Iterable["SweepResult"], *, harness: str = "",
                guidelines: Sequence = DEFAULT_GUIDELINES) -> LintReport:
    """Lint in-memory sweeps (e.g. a campaign's, before any store exists)."""
    records: list[CellRecord] = []
    for sweep in sweeps:
        records.extend(records_from_sweep(sweep, harness=harness))
    return lint_records(records, guidelines)


def lint_store(store: "TuningStore | str", *,
               guidelines: Sequence = DEFAULT_GUIDELINES) -> LintReport:
    """Lint every benchmark cell of a tuning store (or a path to one)."""
    from repro.store import open_store

    store, owned = open_store(store)
    try:
        records = [
            record_from_payload(payload, content_hash=digest, harness=params)
            for digest, payload, params in store.iter_cell_rows()
        ]
    finally:
        if owned:
            store.close()
    return lint_records(records, guidelines)


__all__ = [
    "CellRecord",
    "record_from_payload",
    "record_from_result",
    "records_from_sweep",
    "floor_seconds",
    "lint_records",
    "lint_sweeps",
    "lint_store",
]
