"""Fabric link statistics: bounded busy-interval recording per port.

The simulator's cost model is a set of FIFO *ports* — one injection (tx)
and one extraction (rx) port per rank, plus one shared pair per node when
shared-NIC modelling is on — and every message claims port time with the
recurrence ``start = max(ready, port_free); port_free = start + tx_time``.
That recurrence *is* the fabric: a port whose claims queue up is a hot
link, and ``start - ready`` is exactly the time a message waited on
contention rather than on its own transmission.

:class:`LinkStatsRecorder` captures those claims.  Mirroring
:class:`~repro.obs.spans.SpanRecorder`, it is a bounded ring (overflow
drops the oldest records and counts them in :attr:`dropped`) and the
disabled-mode cost in the engine is a single ``None`` check per message.
Records are plain tuples, not objects: the exact engine appends one per
port claim on its hottest path, and tuple construction is the cheapest
thing CPython can allocate.

Record layout (see :data:`FIELDS`)::

    (port, cls, direction, start, end, busy, nbytes, messages, wait, activity)

* ``port`` — ``>= 0``: the rank owning a private NIC port; ``< 0``: a
  shared node port, encoded ``-(node + 1)`` so the two index spaces can
  never collide (see :func:`port_name`).
* ``cls`` — link class, indexing :data:`CLASS_NAMES`: 1 intra-node,
  2 inter-node same group, 3 cross-group.  Self-messages (class 0) claim
  no port time and are never recorded.
* ``direction`` — :data:`TX` (injection) or :data:`RX` (extraction).
* ``start``/``end`` — the busy interval in virtual seconds.
* ``busy`` — port-busy seconds inside the interval (``end - start`` for a
  single message; the summed occupancy for a flow-batch aggregate, whose
  envelope spans the whole phase).
* ``nbytes``/``messages`` — traffic volume the record covers.
* ``wait`` — contention seconds: how long the traffic sat ready but
  blocked behind earlier claims of the same port.
* ``activity`` — the ``"{collective}/{algorithm}"`` label active when the
  claim happened (``None`` for raw point-to-point traffic), the key for
  per-collective contention attribution in :mod:`repro.obs.analysis`.

Both engines feed the same recorder: the exact engine records one tuple
per port claim, and the flow engine (:mod:`repro.sim.flow`) writes one
synthetic aggregate per ``(port, class, direction)`` per batch, so exact
and hybrid runs of the same case paint the same per-link byte totals.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

#: Default ring capacity (records).  A record is one 10-tuple (~200 bytes
#: with its boxed floats), bounding the recorder at ~40 MB worst case.
DEFAULT_LINK_CAPACITY = 200_000

#: Link-class names, indexed by the engine's class codes.
CLASS_NAMES = ("self", "intra", "inter", "group")

#: Direction codes and their names.
TX, RX = 0, 1
DIRECTION_NAMES = ("tx", "rx")

#: Field names of one record tuple, in order.
FIELDS = ("port", "cls", "direction", "start", "end", "busy", "nbytes",
          "messages", "wait", "activity")


def port_name(port: int) -> str:
    """Human-readable name for an encoded port index.

    Rank-private ports are their rank (``rank3``); shared node NICs are
    encoded negative (``-(node + 1)``) and render as ``node2``.
    """
    return f"rank{port}" if port >= 0 else f"node{-port - 1}"


def link_name(port: int, cls: int, direction: int) -> str:
    """Canonical ``port/class/direction`` label for one directed link."""
    return f"{port_name(port)} {CLASS_NAMES[cls]} {DIRECTION_NAMES[direction]}"


class LinkStatsRecorder:
    """Bounded in-memory store of per-port busy intervals for one session."""

    __slots__ = ("capacity", "records", "dropped")

    def __init__(self, capacity: int = DEFAULT_LINK_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.records: deque[tuple] = deque(maxlen=capacity)
        #: Records evicted from the ring by newer ones.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.records)

    def record(self, port: int, cls: int, direction: int, start: float,
               end: float, nbytes: float, wait: float,
               activity: str | None) -> None:
        """Record one message's port claim (busy = end - start)."""
        if len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append((port, cls, direction, start, end, end - start,
                             nbytes, 1, wait, activity))

    def record_batch(self, port: int, cls: int, direction: int, start: float,
                     end: float, busy: float, nbytes: float, messages: int,
                     wait: float, activity: str | None) -> None:
        """Record one aggregate interval covering ``messages`` claims.

        The flow engine's write-back path: ``[start, end]`` is the batch
        envelope, ``busy`` the summed port occupancy inside it.
        """
        if len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append((port, cls, direction, start, end, busy,
                             nbytes, messages, wait, activity))

    def to_dicts(self) -> list[dict]:
        """All records as plain dicts (export / analysis form)."""
        return [dict(zip(FIELDS, rec)) for rec in self.records]

    def publish_gauges(self, registry) -> int:
        """Set per-link totals as labeled gauges on ``registry``.

        One ``link.busy_seconds`` / ``link.bytes_total`` /
        ``link.wait_seconds`` / ``link.messages_total`` gauge per distinct
        ``(port, class, direction)``, labeled for the Prometheus exposition
        path (:func:`repro.obs.expose.render_prometheus`).  Returns the
        number of distinct links published.
        """
        totals: dict[tuple[int, int, int], list[float]] = {}
        for port, cls, direction, _s, _e, busy, nbytes, messages, wait, _a \
                in self.records:
            agg = totals.get((port, cls, direction))
            if agg is None:
                totals[(port, cls, direction)] = [busy, nbytes, messages, wait]
            else:
                agg[0] += busy
                agg[1] += nbytes
                agg[2] += messages
                agg[3] += wait
        for (port, cls, direction), (busy, nbytes, messages, wait) \
                in sorted(totals.items()):
            labels = {"port": port_name(port), "link_class": CLASS_NAMES[cls],
                      "direction": DIRECTION_NAMES[direction]}
            registry.gauge("link.busy_seconds", labels).set(busy)
            registry.gauge("link.bytes_total", labels).set(nbytes)
            registry.gauge("link.messages_total", labels).set(messages)
            registry.gauge("link.wait_seconds", labels).set(wait)
        return len(totals)


__all__ = [
    "DEFAULT_LINK_CAPACITY",
    "CLASS_NAMES",
    "DIRECTION_NAMES",
    "TX",
    "RX",
    "FIELDS",
    "port_name",
    "link_name",
    "LinkStatsRecorder",
]
