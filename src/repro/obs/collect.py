"""Cross-process telemetry: capture a cell's observability state, ship it,
merge it deterministically into the parent session.

With ``--jobs N`` every benchmark cell simulates inside a
``ProcessPoolExecutor`` worker whose interpreter has its own (initially
null) observability context — so before this module existed, every per-rank
arrival span, engine counter, and metric produced in a worker was silently
dropped, and cache-hit cells emitted no telemetry at all.  The fix is a
value object:

* :class:`CellTelemetry` — one cell's complete observability output (spans,
  metrics snapshot, engine-stats aggregate, ring accounting) as plain
  picklable/JSON-serializable data.  Workers run each cell under a fresh
  :func:`repro.obs.session` and return :func:`capture_telemetry` alongside
  the ``BenchResult``; the :class:`~repro.bench.executor.ResultCache`
  persists the payload so cache hits *replay* their stored telemetry (with
  provenance ``"cache_replay"``).
* :func:`merge_telemetry` — folds one payload into the parent session:
  metrics add instrument-wise, engine stats merge into the run aggregate,
  and virtual-time spans are re-recorded under a container span on the
  ``"cells"`` track, **rebased** along the parent's virtual cursor (each
  cell restarts simulated time at zero; tiling them end to end keeps every
  cell readable on one timeline).

Determinism: the executor merges payloads in spec order, cell indices and
the virtual cursor advance identically whether a cell simulated inline, in
a worker, or replayed from cache — so a serial run, a ``--jobs N`` run, and
a warm cache run produce merged traces with identical virtual spans (the
provenance tag is the only difference on replays), and identical
:mod:`repro.obs.analysis` results.

Wall-clock spans captured inside a cell (``bench.cell``, ``sim.run``) stay
in the payload but are *not* merged: worker wall clocks share no epoch with
the parent, and wall timings legitimately differ between serial and
parallel runs — merging them would break trace parity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import TraceFormatError
from repro.obs.spans import VIRTUAL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.context import ObsContext

#: Track carrying one container span per merged cell.
CELLS_TRACK = "cells"

#: Provenance tags: freshly simulated (inline or worker — deliberately the
#: same tag, so serial and parallel traces stay identical) vs. replayed from
#: the on-disk result cache.
SIMULATED = "simulated"
CACHE_REPLAY = "cache_replay"


@dataclass
class CellTelemetry:
    """One cell's observability output as plain, process-portable data."""

    run_id: str
    provenance: str = SIMULATED
    #: ``Span.to_dict()`` records, ring order (both clock domains).
    spans: list[dict] = field(default_factory=list)
    #: ``MetricsRegistry.snapshot()`` — merges instrument-wise.
    metrics: dict[str, dict] = field(default_factory=dict)
    #: ``EngineStats.to_dict()`` aggregate of the cell's engine runs.
    engine: dict | None = None
    #: Spans the cell's ring buffer evicted before capture.
    dropped: int = 0

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "provenance": self.provenance,
            "spans": self.spans,
            "metrics": self.metrics,
            "engine": self.engine,
            "dropped": self.dropped,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellTelemetry":
        try:
            return cls(
                run_id=data["run_id"],
                provenance=data["provenance"],
                spans=list(data["spans"]),
                metrics=dict(data["metrics"]),
                engine=data["engine"],
                dropped=int(data["dropped"]),
            )
        except (KeyError, TypeError) as exc:
            raise TraceFormatError(f"CellTelemetry dict missing {exc}") from None

    def tagged(self, provenance: str) -> "CellTelemetry":
        """A copy of this payload with a different provenance tag."""
        return CellTelemetry(
            run_id=self.run_id, provenance=provenance, spans=self.spans,
            metrics=self.metrics, engine=self.engine, dropped=self.dropped,
        )


def capture_telemetry(ctx: "ObsContext",
                      provenance: str = SIMULATED) -> CellTelemetry:
    """Snapshot ``ctx`` (an *enabled* context) into a portable payload."""
    spans = ctx.spans
    return CellTelemetry(
        run_id=ctx.run_id,
        provenance=provenance,
        spans=[s.to_dict() for s in spans] if spans is not None else [],
        metrics=ctx.metrics.snapshot(),
        engine=ctx.engine_stats.to_dict() if ctx.engine_stats is not None else None,
        dropped=spans.dropped if spans is not None else 0,
    )


def merge_telemetry(ctx: "ObsContext", telemetry: CellTelemetry,
                    cell: int | None = None, name: str = "cell",
                    args: dict[str, Any] | None = None) -> int | None:
    """Fold one cell payload into the parent session ``ctx``.

    Metrics and engine stats always merge.  Virtual spans re-record under a
    container span (track :data:`CELLS_TRACK`, named ``name``) whose
    interval covers the cell's rebased extent; parent links are remapped,
    top-level spans parent to the container, and every merged span's args
    gain the ``cell`` index.  Advances ``ctx.merge_cursor`` by the cell's
    virtual extent.  Returns the container span id (``None`` when span
    recording is off).
    """
    ctx.metrics.merge_snapshot(telemetry.metrics)
    if telemetry.engine is not None:
        from repro.sim.engine import EngineStats  # deferred: no obs->engine cycle

        ctx.absorb_engine_stats(EngineStats.from_dict(telemetry.engine))
    recorder = ctx.spans
    if not ctx.record_spans or recorder is None:
        return None
    # A worker ring that overflowed is a truncated payload; surface it in
    # the parent's accounting so exporters warn about it.
    recorder.dropped += telemetry.dropped
    virtual = [s for s in telemetry.spans if s.get("domain") == VIRTUAL]
    offset = ctx.merge_cursor
    extent = max((s["end"] for s in virtual), default=0.0)
    cargs: dict[str, Any] = dict(args or {})
    if cell is not None:
        cargs["cell"] = cell
    cargs["provenance"] = telemetry.provenance
    cargs["cell_run_id"] = telemetry.run_id
    container = recorder.record(name, CELLS_TRACK, offset, offset + extent,
                                domain=VIRTUAL, args=cargs)
    id_map: dict[int, int] = {}
    for span in virtual:
        sargs = dict(span.get("args") or ())
        if cell is not None:
            sargs["cell"] = cell
        parent = span.get("parent_id")
        new_id = recorder.record(
            span["name"], span["track"],
            span["start"] + offset, span["end"] + offset,
            domain=VIRTUAL,
            parent=id_map.get(parent, container),
            args=sargs or None,
        )
        id_map[span["span_id"]] = new_id
    ctx.merge_cursor = offset + extent
    return container


__all__ = [
    "CELLS_TRACK",
    "SIMULATED",
    "CACHE_REPLAY",
    "CellTelemetry",
    "capture_telemetry",
    "merge_telemetry",
]
