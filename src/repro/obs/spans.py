"""Span recording: bounded, dual-clock, with explicit parent links.

A *span* is one named interval on one *track*.  Two clock domains coexist in
a single recorder:

* ``"virtual"`` — simulated seconds.  One track per simulated rank
  (:func:`rank_track`), so per-rank timing structure — arrival/exit skew
  inside a collective, the paper's Fig. 1 — is directly visible when the
  trace is opened in Perfetto or rendered as an ASCII timeline.
* ``"wall"`` — host seconds (``perf_counter`` relative to the recorder's
  creation), for harness stages: benchmark cells, executor batches,
  campaign phases.

Spans are recorded *complete* (both endpoints known) — the natural fit for
a discrete-event simulator, where an interval's timestamps are read off
simulated clocks after the fact.  Parent links are explicit ``span_id``
references: virtual spans pass their parent directly; wall spans recorded
through the :meth:`SpanRecorder.wall_span` context manager nest
automatically via a stack.

The buffer is a bounded ring (default :data:`DEFAULT_CAPACITY` spans): a
runaway instrumented sweep can never exhaust memory.  Overflow drops the
*oldest* spans and counts them in :attr:`SpanRecorder.dropped` — exports
surface that count so a truncated trace is never mistaken for a complete
one.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator

VIRTUAL = "virtual"
WALL = "wall"

#: Default ring-buffer capacity (spans).  At ~100 bytes per span this bounds
#: the recorder at ~20 MB even under a fully instrumented campaign.
DEFAULT_CAPACITY = 200_000


def rank_track(rank: int) -> str:
    """Canonical track name for a simulated rank."""
    return f"rank {rank}"


def msg_track(rank: int) -> str:
    """Canonical track name for messages *received by* a simulated rank.

    Deliberately not a ``rank ...`` name: message spans overlap freely (any
    number can be in flight toward one rank), so they live beside — not on —
    the rank's span track, and track-per-rank assertions stay unambiguous.
    """
    return f"msgs {rank}"


class Span:
    """One completed interval on one track."""

    __slots__ = ("span_id", "parent_id", "name", "track", "domain",
                 "start", "end", "args")

    def __init__(self, span_id: int, parent_id: int | None, name: str,
                 track: str, domain: str, start: float, end: float,
                 args: dict[str, Any] | None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.track = track
        self.domain = domain
        self.start = start
        self.end = end
        self.args = args

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        d = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "track": self.track,
            "domain": self.domain,
            "start": self.start,
            "end": self.end,
        }
        if self.args:
            d["args"] = self.args
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span #{self.span_id} {self.name!r} {self.track} "
                f"[{self.start:.9f}, {self.end:.9f}] {self.domain}>")


class SpanRecorder:
    """Bounded in-memory store of completed spans for one session."""

    __slots__ = ("capacity", "spans", "dropped", "_next_id", "_tracks",
                 "_wall_stack", "wall_epoch")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.spans: deque[Span] = deque(maxlen=capacity)
        #: Spans evicted from the ring by newer ones.
        self.dropped = 0
        self._next_id = 0
        # track name -> first-seen index (stable track ordering for exports).
        self._tracks: dict[str, int] = {}
        # Open wall_span() ids, innermost last (automatic wall nesting).
        self._wall_stack: list[int] = []
        #: Wall timestamps are perf_counter() minus this epoch, so wall
        #: tracks start near zero in exported traces.
        self.wall_epoch = perf_counter()

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def _register_track(self, track: str) -> None:
        if track not in self._tracks:
            self._tracks[track] = len(self._tracks)

    @property
    def tracks(self) -> list[str]:
        """Track names in first-seen order."""
        return sorted(self._tracks, key=self._tracks.get)

    def record(self, name: str, track: str, start: float, end: float,
               domain: str = VIRTUAL, parent: int | None = None,
               args: dict[str, Any] | None = None) -> int:
        """Store one completed span; returns its id (usable as a parent)."""
        self._next_id += 1
        sid = self._next_id
        self._register_track(track)
        if len(self.spans) == self.capacity:
            self.dropped += 1
        self.spans.append(Span(sid, parent, name, track, domain, start, end, args))
        return sid

    @contextmanager
    def wall_span(self, name: str, track: str = "harness",
                  args: dict[str, Any] | None = None) -> Iterator[int]:
        """Record a wall-clock span around a ``with`` block.

        Nested ``wall_span`` blocks parent automatically.  Yields the span's
        id so virtual spans created inside can reference it explicitly.
        """
        self._next_id += 1
        sid = self._next_id
        parent = self._wall_stack[-1] if self._wall_stack else None
        self._wall_stack.append(sid)
        start = perf_counter() - self.wall_epoch
        try:
            yield sid
        finally:
            end = perf_counter() - self.wall_epoch
            self._wall_stack.pop()
            self._register_track(track)
            if len(self.spans) == self.capacity:
                self.dropped += 1
            self.spans.append(Span(sid, parent, name, track, WALL, start, end, args))

    def by_track(self, domain: str | None = None) -> dict[str, list[Span]]:
        """Spans grouped by track (optionally one clock domain only),
        each list sorted by start time."""
        out: dict[str, list[Span]] = {}
        for span in self.spans:
            if domain is not None and span.domain != domain:
                continue
            out.setdefault(span.track, []).append(span)
        for spans in out.values():
            spans.sort(key=lambda s: (s.start, s.span_id))
        return out


__all__ = [
    "VIRTUAL",
    "WALL",
    "DEFAULT_CAPACITY",
    "rank_track",
    "msg_track",
    "Span",
    "SpanRecorder",
]
