"""The run-scoped observability context and its disabled-mode null object.

One :class:`ObsContext` scopes everything observability owns — a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.spans.SpanRecorder`, an engine-stats aggregate, a
deterministic run ID — to one *run* (a CLI invocation, a profile cell, a
test).  The active context travels through a :mod:`contextvars` variable:

* :func:`session` installs a fresh enabled context for a ``with`` block,
* :func:`current` returns the active context — or :data:`NULL_CONTEXT`,
  the shared disabled singleton, when no session is open.

Because the scope is a context variable (not a module global), concurrent
or nested runs each see their own aggregates; because the disabled path is
a null object whose methods are no-ops over shared singletons, instrumented
code needs no ``if obs is not None`` guards and pays near-zero cost when
observability is off.

Determinism guarantee: contexts only *read* simulated clocks and host
wall clocks.  Opening a session never changes simulated results — the
parity tests pin traced and untraced runs bit-for-bit.

Engine-stats aggregation
------------------------
``Engine.run`` reports its :class:`~repro.sim.engine.EngineStats` through
:func:`absorb_engine_stats` after every run.  The active session merges
them into its own run-scoped aggregate (``ctx.engine_stats``).  The legacy
process-wide accumulator of ``repro.sim.engine.enable_stats_aggregation``
lives here too (:func:`enable_process_engine_aggregation`) so existing
callers keep working — but new code should prefer a session, which cannot
leak across concurrent runs.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from typing import Any, Iterator

from repro.obs.linkstats import DEFAULT_LINK_CAPACITY, LinkStatsRecorder
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetricsRegistry
from repro.obs.spans import DEFAULT_CAPACITY, SpanRecorder, rank_track
from repro.obs.runid import make_run_id

#: Shared no-op context manager returned by disabled wall_span calls.
_NULL_CM = nullcontext(None)


class ObsContext:
    """Container for one run's observability state (enabled mode)."""

    __slots__ = ("run_id", "meta", "enabled", "record_spans",
                 "record_messages", "record_links", "metrics", "spans",
                 "links", "engine_stats", "merge_cursor")

    def __init__(self, run_id: str, meta: dict[str, Any],
                 record_spans: bool = True,
                 record_messages: bool = False,
                 record_links: bool = False,
                 span_capacity: int = DEFAULT_CAPACITY,
                 link_capacity: int = DEFAULT_LINK_CAPACITY) -> None:
        self.run_id = run_id
        self.meta = meta
        self.enabled = True
        self.record_spans = record_spans
        #: When True (and spans are on), the engine records one span per
        #: delivered message (sender post to receiver completion) — the raw
        #: material for comm-volume matrices and critical-path extraction
        #: in :mod:`repro.obs.analysis`.  Off by default: per-message spans
        #: are O(messages), which a large sweep would drown in.
        self.record_messages = record_messages
        #: When True, both engines record per-port busy intervals into
        #: ``links`` (fabric utilization and contention; see
        #: :mod:`repro.obs.linkstats`).  Off by default for the same
        #: O(messages) reason as ``record_messages``.
        self.record_links = record_links
        self.metrics: MetricsRegistry = MetricsRegistry()
        self.spans = SpanRecorder(capacity=span_capacity)
        #: Fabric link recorder, or None when link recording is off — the
        #: engine captures this attribute directly, so the disabled-mode
        #: hot-path cost is one None check per message.
        self.links = (LinkStatsRecorder(capacity=link_capacity)
                      if record_links else None)
        #: Run-scoped EngineStats aggregate (lazily typed off the first
        #: absorbed stats object, so this module never imports the engine).
        self.engine_stats: Any = None
        #: Virtual-time offset for the next merged cell payload — owned by
        #: :mod:`repro.obs.collect`, which tiles per-cell traces (each cell
        #: restarts virtual time at zero) end to end along this cursor.
        self.merge_cursor: float = 0.0

    # -- spans ---------------------------------------------------------- #

    def record_vspan(self, name: str, track: str, start: float, end: float,
                     parent: int | None = None,
                     args: dict[str, Any] | None = None) -> int | None:
        """Record a completed virtual-time span (no-op if spans are off)."""
        if not self.record_spans:
            return None
        return self.spans.record(name, track, start, end, parent=parent,
                                 args=args)

    def record_rank_span(self, name: str, rank: int, start: float, end: float,
                         parent: int | None = None,
                         args: dict[str, Any] | None = None) -> int | None:
        """Record a virtual-time span on the canonical per-rank track."""
        if not self.record_spans:
            return None
        return self.spans.record(name, rank_track(rank), start, end,
                                 parent=parent, args=args)

    def wall_span(self, name: str, track: str = "harness",
                  args: dict[str, Any] | None = None):
        """Context manager recording a wall-clock span (nulled if spans off)."""
        if not self.record_spans:
            return _NULL_CM
        return self.spans.wall_span(name, track, args=args)

    # -- engine stats --------------------------------------------------- #

    def absorb_engine_stats(self, stats: Any) -> None:
        """Merge one completed engine run's stats into this run's aggregate."""
        agg = self.engine_stats
        if agg is None:
            self.engine_stats = agg = type(stats)()
        agg.merge(stats)


class NullObsContext:
    """Disabled-mode stand-in: same surface, every method a cheap no-op."""

    __slots__ = ()

    run_id = ""
    meta: dict[str, Any] = {}
    enabled = False
    record_spans = False
    record_messages = False
    record_links = False
    metrics: NullMetricsRegistry = NULL_METRICS
    spans = None
    links = None
    engine_stats = None
    merge_cursor = 0.0

    def record_vspan(self, name: str, track: str, start: float, end: float,
                     parent: int | None = None,
                     args: dict[str, Any] | None = None) -> None:
        return None

    def record_rank_span(self, name: str, rank: int, start: float, end: float,
                         parent: int | None = None,
                         args: dict[str, Any] | None = None) -> None:
        return None

    def wall_span(self, name: str, track: str = "harness",
                  args: dict[str, Any] | None = None):
        return _NULL_CM

    def absorb_engine_stats(self, stats: Any) -> None:
        return None


NULL_CONTEXT = NullObsContext()

_current: ContextVar[ObsContext | NullObsContext] = ContextVar(
    "repro_obs_context", default=NULL_CONTEXT
)


def current() -> ObsContext | NullObsContext:
    """The active observability context (:data:`NULL_CONTEXT` when none)."""
    return _current.get()


@contextmanager
def session(run_id: str | None = None, meta: dict[str, Any] | None = None,
            record_spans: bool = True,
            record_messages: bool = False,
            record_links: bool = False,
            span_capacity: int = DEFAULT_CAPACITY,
            link_capacity: int = DEFAULT_LINK_CAPACITY) -> Iterator[ObsContext]:
    """Open a run-scoped observability session for a ``with`` block.

    ``run_id`` defaults to the deterministic ID of ``meta`` (see
    :mod:`repro.obs.runid`), so re-running the same configuration stamps
    its artifacts identically.  Sessions nest: the inner session shadows
    the outer for its ``with`` block, then the outer resumes.
    """
    meta = dict(meta or {})
    if run_id is None:
        run_id = make_run_id(meta, prefix="run")
    ctx = ObsContext(run_id, meta, record_spans=record_spans,
                     record_messages=record_messages,
                     record_links=record_links,
                     span_capacity=span_capacity,
                     link_capacity=link_capacity)
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


# --------------------------------------------------------------------------- #
# Engine-stats reporting (run-scoped + legacy process-wide accumulator)
# --------------------------------------------------------------------------- #

_process_engine_aggregate: Any = None


def absorb_engine_stats(stats: Any) -> None:
    """Called by ``Engine.run`` after every run with that run's stats.

    Merges into the active session's run-scoped aggregate (if a session is
    open) and into the legacy process-wide accumulator (if one is enabled) —
    the two are independent consumers of the same report.
    """
    ctx = _current.get()
    if ctx.enabled:
        ctx.absorb_engine_stats(stats)
    agg = _process_engine_aggregate
    if agg is not None:
        agg.merge(stats)


def enable_process_engine_aggregation(accumulator: Any) -> Any:
    """Install ``accumulator`` as the process-wide engine-stats target.

    Back-compat shim for ``repro.sim.engine.enable_stats_aggregation``;
    prefer :func:`session`, whose aggregate is run-scoped.
    """
    global _process_engine_aggregate
    _process_engine_aggregate = accumulator
    return accumulator


def disable_process_engine_aggregation() -> None:
    """Drop the process-wide engine-stats accumulator."""
    global _process_engine_aggregate
    _process_engine_aggregate = None


__all__ = [
    "ObsContext",
    "NullObsContext",
    "NULL_CONTEXT",
    "current",
    "session",
    "absorb_engine_stats",
    "enable_process_engine_aggregation",
    "disable_process_engine_aggregation",
]
