"""Exporters: Chrome/Perfetto ``trace_event`` JSON and a JSONL event stream.

Both exporters serialize one :class:`~repro.obs.context.ObsContext` and
stamp its deterministic run ID, so artifacts from the same run correlate
and re-runs of the same configuration produce comparable files.

Perfetto / chrome://tracing
---------------------------
:func:`export_perfetto` writes the ``trace_event`` JSON object format
(loadable at https://ui.perfetto.dev or ``chrome://tracing``).  The two
clock domains become two *processes*:

* pid 1 — "virtual time": one thread (track) per simulated rank, so the
  per-rank arrival/exit structure of a collective reads directly off the
  timeline.
* pid 2 — "wall clock": harness stages (benchmark cells, executor batches,
  campaign phases).

Spans are complete events (``"ph": "X"``, microsecond ``ts``/``dur``);
explicit ``span_id``/``parent_id`` links ride in ``args``.  Thread-name
and sort-index metadata events order rank tracks numerically.

JSONL stream
------------
:func:`export_jsonl` writes a self-describing line stream: a header object,
one object per span, one per fabric-link record (``record_links=True``
sessions), one per metric, the engine-stats aggregate, and a trailer with
ring-buffer accounting (recorded vs. dropped spans and link records) so a
truncated trace is detectable.  :func:`read_jsonl` loads it back.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import TraceFormatError
from repro.obs.spans import VIRTUAL, WALL, Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.context import ObsContext

_JSONL_MAGIC = "repro-obs"
_JSONL_VERSION = 1

#: Perfetto process ids per clock domain.
_PID = {VIRTUAL: 1, WALL: 2}
_PROCESS_NAMES = {
    VIRTUAL: "virtual time (simulated ranks)",
    WALL: "wall clock (harness)",
}

_NUM_RE = re.compile(r"(\d+)")


def _natural_key(track: str) -> tuple:
    """Sort key ordering ``rank 2`` before ``rank 10``."""
    return tuple(int(part) if part.isdigit() else part
                 for part in _NUM_RE.split(track))


def _track_ids(spans: list[Span]) -> dict[tuple[str, str], int]:
    """Assign a stable tid per (domain, track), naturally ordered per domain."""
    by_domain: dict[str, set[str]] = {}
    for span in spans:
        by_domain.setdefault(span.domain, set()).add(span.track)
    tids: dict[tuple[str, str], int] = {}
    for domain, tracks in by_domain.items():
        for tid, track in enumerate(sorted(tracks, key=_natural_key)):
            tids[(domain, track)] = tid
    return tids


def trace_events(ctx: "ObsContext") -> list[dict]:
    """The ``traceEvents`` list for ``ctx`` (metadata + complete events)."""
    spans = list(ctx.spans) if ctx.spans is not None else []
    tids = _track_ids(spans)
    events: list[dict] = []
    seen_domains = {domain for domain, _track in tids}
    for domain in (VIRTUAL, WALL):
        if domain in seen_domains:
            events.append({
                "ph": "M", "name": "process_name", "pid": _PID[domain], "tid": 0,
                "args": {"name": _PROCESS_NAMES[domain]},
            })
    for (domain, track), tid in sorted(tids.items(), key=lambda kv: kv[1]):
        pid = _PID[domain]
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": track},
        })
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": pid, "tid": tid,
            "args": {"sort_index": tid},
        })
    for span in spans:
        args: dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.args:
            args.update(span.args)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.domain,
            "pid": _PID[span.domain],
            "tid": tids[(span.domain, span.track)],
            "ts": span.start * 1e6,       # trace_event timestamps are in us
            "dur": span.duration * 1e6,
            "args": args,
        })
    return events


def export_perfetto(path: str | Path, ctx: "ObsContext") -> Path:
    """Write ``ctx`` as Perfetto-loadable ``trace_event`` JSON."""
    path = Path(path)
    dropped = ctx.spans.dropped if ctx.spans is not None else 0
    links = getattr(ctx, "links", None)
    other: dict[str, Any] = {
        "run_id": ctx.run_id,
        "dropped_spans": dropped,
        **{str(k): v for k, v in ctx.meta.items()},
    }
    if links is not None:
        # Perfetto has no native port-utilization track; the raw link
        # records ride along in otherData so analyses loaded from the
        # Perfetto file keep the fabric view.
        other["links"] = links.to_dicts()
        other["dropped_links"] = links.dropped
    payload = {
        "traceEvents": trace_events(ctx),
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    path.write_text(json.dumps(payload))
    return path


def metrics_payload(ctx: "ObsContext") -> dict:
    """The metrics snapshot of ``ctx`` as one JSON-serializable object.

    Absorbs all three legacy silos: the metrics registry (executor/cache
    counters, per-collective call counts, histograms), the run-scoped
    engine-stats aggregate, and span-buffer accounting.
    """
    engine = ctx.engine_stats
    spans = ctx.spans
    links = getattr(ctx, "links", None)
    return {
        "run_id": ctx.run_id,
        "meta": {str(k): v for k, v in ctx.meta.items()},
        "metrics": ctx.metrics.snapshot(),
        "engine": engine.to_dict() if engine is not None else None,
        "spans": {
            "recorded": len(spans) if spans is not None else 0,
            "dropped": spans.dropped if spans is not None else 0,
        },
        "links": {
            "recorded": len(links) if links is not None else 0,
            "dropped": links.dropped if links is not None else 0,
        },
    }


def export_metrics(path: str | Path, ctx: "ObsContext") -> Path:
    """Write :func:`metrics_payload` as indented JSON."""
    path = Path(path)
    path.write_text(json.dumps(metrics_payload(ctx), indent=2))
    return path


def export_jsonl(path: str | Path, ctx: "ObsContext") -> Path:
    """Write ``ctx`` as a self-describing JSONL event stream."""
    path = Path(path)
    spans = ctx.spans
    links = getattr(ctx, "links", None)
    with open(path, "w") as fh:
        fh.write(json.dumps({
            "magic": _JSONL_MAGIC,
            "version": _JSONL_VERSION,
            "run_id": ctx.run_id,
            "meta": {str(k): v for k, v in ctx.meta.items()},
        }) + "\n")
        if spans is not None:
            for span in spans:
                fh.write(json.dumps({"type": "span", **span.to_dict()}) + "\n")
        if links is not None:
            for rec in links.to_dicts():
                fh.write(json.dumps({"type": "link", **rec}) + "\n")
        for name, snap in ctx.metrics.snapshot().items():
            fh.write(json.dumps({"type": "metric", "name": name, **snap}) + "\n")
        if ctx.engine_stats is not None:
            fh.write(json.dumps({"type": "engine",
                                 **ctx.engine_stats.to_dict()}) + "\n")
        fh.write(json.dumps({
            "type": "end",
            "spans": len(spans) if spans is not None else 0,
            "dropped": spans.dropped if spans is not None else 0,
            "links": len(links) if links is not None else 0,
            "dropped_links": links.dropped if links is not None else 0,
        }) + "\n")
    return path


def read_jsonl(path: str | Path) -> dict:
    """Load a JSONL stream back into plain dicts.

    Returns ``{"header", "spans", "links", "metrics", "engine", "end"}`` —
    the spans and fabric-link records as lists of dicts, the metrics keyed
    by name.  Raises :class:`~repro.errors.TraceFormatError` on malformed
    input.
    """
    path = Path(path)
    lines = path.read_text().splitlines()
    if not lines:
        raise TraceFormatError(f"{path}: empty obs stream")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: bad header: {exc}") from None
    if header.get("magic") != _JSONL_MAGIC:
        raise TraceFormatError(f"{path}: not a repro-obs stream")
    if header.get("version") != _JSONL_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported version {header.get('version')}"
        )
    out: dict[str, Any] = {"header": header, "spans": [], "links": [],
                           "metrics": {}, "engine": None, "end": None}
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
            kind = obj.pop("type")
        except (json.JSONDecodeError, KeyError) as exc:
            raise TraceFormatError(f"{path}:{lineno}: bad event: {exc}") from None
        if kind == "span":
            out["spans"].append(obj)
        elif kind == "link":
            out["links"].append(obj)
        elif kind == "metric":
            out["metrics"][obj.pop("name")] = obj
        elif kind == "engine":
            out["engine"] = obj
        elif kind == "end":
            out["end"] = obj
        else:
            raise TraceFormatError(f"{path}:{lineno}: unknown event type {kind!r}")
    if out["end"] is None:
        raise TraceFormatError(f"{path}: truncated stream (no end record)")
    return out


def load_perfetto(path: str | Path) -> dict:
    """Parse an exported Perfetto JSON file (validation helper)."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: not valid JSON: {exc}") from None
    if "traceEvents" not in payload:
        raise TraceFormatError(f"{path}: no traceEvents key")
    return payload


def dropped_span_warning(ctx: "ObsContext") -> str | None:
    """A loud one-line warning when a session ring buffer overflowed.

    Covers both the span ring and the fabric-link ring.  Returns ``None``
    when nothing was dropped.  Exporter callers (the CLI, the HTML report)
    surface this so a truncated trace is never mistaken for a complete
    one — every analysis derived from it may be missing the *oldest*
    records.
    """
    parts: list[str] = []
    spans = ctx.spans
    if spans is not None and spans.dropped:
        parts.append(f"{spans.dropped} span(s) dropped "
                     f"(capacity {spans.capacity})")
    links = getattr(ctx, "links", None)
    if links is not None and links.dropped:
        parts.append(f"{links.dropped} link record(s) dropped "
                     f"(capacity {links.capacity})")
    if not parts:
        return None
    return (
        f"WARNING: trace buffer overflowed: {'; '.join(parts)}; the trace "
        f"and everything derived from it are incomplete — raise the "
        f"capacity or narrow the run"
    )


def rank_tracks(trace: dict) -> list[str]:
    """Names of the per-rank virtual-time tracks in a loaded Perfetto trace."""
    return sorted(
        (ev["args"]["name"] for ev in trace["traceEvents"]
         if ev.get("ph") == "M" and ev.get("name") == "thread_name"
         and ev.get("pid") == _PID[VIRTUAL]
         and str(ev["args"].get("name", "")).startswith("rank ")),
        key=_natural_key,
    )


__all__ = [
    "trace_events",
    "export_perfetto",
    "export_metrics",
    "metrics_payload",
    "export_jsonl",
    "read_jsonl",
    "load_perfetto",
    "dropped_span_warning",
    "rank_tracks",
]
