"""Live metric exposition: Prometheus text format, windows, and scraping.

The run-scoped exporters in :mod:`repro.obs.export` write one snapshot at
the *end* of a run; this module is the continuous counterpart for
long-lived processes (the selection server, the load generator):

* :func:`render_prometheus` renders any
  :class:`~repro.obs.metrics.MetricsRegistry` (or a plain snapshot dict)
  in Prometheus text exposition format — counters, gauges, and the fixed
  log2-bucket histograms as cumulative ``_bucket{le="..."}`` series, with
  instrument labels carried through and escaped.
* :func:`parse_prometheus` parses that format back into families and
  samples, so tests (and clients) can validate the exposition round-trip.
* :class:`MetricsWindow` turns two successive snapshots of the same
  registry into interval deltas and per-second rates — the "what happened
  in the last N seconds" view that raw monotonic counters cannot answer.
* :class:`WindowedSnapshotter` runs a window on a daemon-thread interval
  and hands each payload to a callback (the JSON-log heartbeat under
  ``repro-mpi serve --json-logs``).
* :class:`MetricsHTTPServer` serves ``GET /metrics`` (and ``/healthz``)
  over plain HTTP from a registry provider — the ``--metrics-port`` scrape
  endpoint.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    escape_label_value,
    parse_metric_key,
)

#: Content type Prometheus scrapers expect from a text-format endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r'\A(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)\Z'
)


def sanitize_metric_name(name: str) -> str:
    """A dotted repro metric name as a legal Prometheus metric name."""
    name = _INVALID_NAME_CHARS.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _format_value(value: float) -> str:
    """A sample value formatted the way Prometheus expects."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _label_body(labels: dict[str, str], extra: tuple[str, str] | None = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    return "{" + ",".join(f'{k}="{escape_label_value(str(v))}"'
                          for k, v in items) + "}"


def render_prometheus(source: MetricsRegistry | dict, *,
                      prefix: str = "repro_") -> str:
    """Render a registry (or its :meth:`snapshot` dict) as Prometheus text.

    Counters and gauges become single samples; histograms become the
    canonical cumulative form — ``<name>_bucket{le="2^(e+1)"}`` per
    occupied log2 bucket plus ``le="+Inf"``, ``<name>_sum`` and
    ``<name>_count``.  Observations ``<= 0`` (the ``zeros`` bookkeeping)
    are below every finite bound, so they count into every cumulative
    bucket.  Instruments that share a base name but differ in labels fold
    into one ``# TYPE``-announced family.
    """
    snapshot = source.snapshot() if not isinstance(source, dict) else source
    families: dict[str, tuple[str, list[str]]] = {}
    for key in sorted(snapshot):
        snap = snapshot[key]
        base, labels = parse_metric_key(key)
        name = prefix + sanitize_metric_name(base)
        kind = snap["kind"]
        family = families.setdefault(name, (kind, []))
        if family[0] != kind:  # pragma: no cover - registry forbids it
            raise ValueError(f"metric family {name!r} mixes kinds "
                             f"{family[0]!r} and {kind!r}")
        lines = family[1]
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{_label_body(labels)} "
                         f"{_format_value(snap['value'])}")
            continue
        # Histogram: cumulative buckets over the fixed log2 bounds.
        cum = snap["zeros"]
        for bucket_key in sorted(snap["buckets"],
                                 key=lambda k: int(k[2:])):
            exp = int(bucket_key[2:])  # "2^-20" -> -20
            cum += snap["buckets"][bucket_key]
            le = _format_value(2.0 ** (exp + 1))
            lines.append(f"{name}_bucket{_label_body(labels, ('le', le))} {cum}")
        lines.append(f"{name}_bucket{_label_body(labels, ('le', '+Inf'))} "
                     f"{snap['count']}")
        lines.append(f"{name}_sum{_label_body(labels)} "
                     f"{_format_value(snap['sum'])}")
        lines.append(f"{name}_count{_label_body(labels)} {snap['count']}")
    out: list[str] = []
    for name, (kind, lines) in families.items():
        out.append(f"# TYPE {name} {'histogram' if kind == 'histogram' else kind}")
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


def parse_prometheus(text: str) -> dict[str, dict[str, Any]]:
    """Parse Prometheus text exposition back into families.

    Returns ``{family_name: {"type": str, "samples": [(sample_name,
    labels_dict, value), ...]}}``.  Samples attach to the family whose
    ``# TYPE`` line precedes them (histogram ``_bucket``/``_sum``/
    ``_count`` suffixes attach to their base family).  Malformed lines
    raise ``ValueError`` — this is the round-trip validator for
    :func:`render_prometheus`.
    """
    families: dict[str, dict[str, Any]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                families[parts[2]] = {"type": parts[3], "samples": []}
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = m.group("name")
        # Reuse the metric-key parser for the label body (same grammar).
        labels_body = m.group("labels")
        if labels_body:
            _base, labels = parse_metric_key(f"x{{{labels_body}}}")
        else:
            labels = {}
        value_text = m.group("value")
        value = {"+Inf": float("inf"), "-Inf": float("-inf")}.get(
            value_text, None)
        if value is None:
            value = float(value_text)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[: -len(suffix)] if name.endswith(suffix) else None
            if stripped is not None and stripped in families \
                    and families[stripped]["type"] == "histogram":
                family = stripped
                break
        if family not in families:
            raise ValueError(f"line {lineno}: sample {name!r} has no "
                             f"preceding # TYPE line")
        families[family]["samples"].append((name, labels, value))
    return families


class MetricsWindow:
    """Interval deltas and rates between successive registry snapshots.

    Each :meth:`tick` diffs the current snapshot against the previous one:
    counters become ``{"delta", "rate"}`` (per-second over the interval),
    gauges pass through their current value, histograms report the
    interval's ``count``/``sum`` deltas plus interval mean and cumulative
    p50/p99.  The first tick establishes the baseline and reports an empty
    window.
    """

    def __init__(self, source: MetricsRegistry | Callable[[], dict]) -> None:
        self._snapshot = (source.snapshot if isinstance(source, MetricsRegistry)
                          else source)
        self._last: dict | None = None
        self._last_at: float = 0.0

    def tick(self, now: float | None = None) -> dict:
        """Advance the window; returns the interval payload."""
        if now is None:
            now = time.monotonic()
        snapshot = self._snapshot()
        previous, self._last = self._last, snapshot
        elapsed = now - self._last_at if previous is not None else 0.0
        self._last_at = now
        window: dict[str, Any] = {"interval_seconds": elapsed,
                                  "counters": {}, "gauges": {},
                                  "histograms": {}}
        if previous is None:
            return window
        for key, snap in snapshot.items():
            kind = snap["kind"]
            before = previous.get(key)
            if kind == "counter":
                delta = snap["value"] - (before["value"] if before else 0)
                window["counters"][key] = {
                    "delta": delta,
                    "rate": delta / elapsed if elapsed > 0 else 0.0,
                }
            elif kind == "gauge":
                window["gauges"][key] = {"value": snap["value"],
                                         "peak": snap["peak"]}
            else:
                count = snap["count"] - (before["count"] if before else 0)
                total = snap["sum"] - (before["sum"] if before else 0.0)
                hist = Histogram(key)
                hist.merge_snapshot(snap)
                window["histograms"][key] = {
                    "count": count,
                    "sum": total,
                    "mean": total / count if count else 0.0,
                    "p50": hist.quantile(0.5),
                    "p99": hist.quantile(0.99),
                }
        return window


class WindowedSnapshotter:
    """Run a :class:`MetricsWindow` periodically on a daemon thread.

    ``on_window`` receives each non-empty interval payload.  Exceptions
    from the callback stop the loop (a broken pipe on a closed log stream
    must not spin forever); :meth:`stop` ends it cleanly.
    """

    def __init__(self, source: MetricsRegistry | Callable[[], dict],
                 interval: float,
                 on_window: Callable[[dict], None]) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self._window = MetricsWindow(source)
        self.interval = float(interval)
        self._on_window = on_window
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "WindowedSnapshotter":
        self._window.tick()  # establish the baseline before the first sleep
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-metrics-window",
                                        daemon=True)
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._on_window(self._window.tick())
            except Exception:  # noqa: BLE001 - see class docstring
                return

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "WindowedSnapshotter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class _ScrapeHandler(BaseHTTPRequestHandler):
    server_version = "repro-metrics"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] == "/metrics":
            body = render_prometheus(self.server.registry_provider()).encode()
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        elif self.path == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        else:
            body = json.dumps({"error": "not found",
                               "paths": ["/metrics", "/healthz"]}).encode()
            self.send_response(404)
            self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # scrapes must not spam stderr
        pass


class _ScrapeServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    registry_provider: Callable[[], MetricsRegistry]


class MetricsHTTPServer:
    """Plain-HTTP scrape endpoint for any metrics registry.

    ``registry`` may be a :class:`MetricsRegistry` or a zero-argument
    callable returning one (so the provider can swap registries under a
    reload).  ``port=0`` binds an ephemeral port — read it back from
    :attr:`address`.
    """

    def __init__(self, registry: MetricsRegistry | Callable[[], MetricsRegistry],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        provider = registry if callable(registry) else (lambda: registry)
        self._http = _ScrapeServer((host, port), _ScrapeHandler)
        self._http.registry_provider = provider
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._http.server_address[:2]
        return host, port

    def start(self) -> "MetricsHTTPServer":
        self._thread = threading.Thread(target=self._http.serve_forever,
                                        name="repro-metrics-http",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "sanitize_metric_name",
    "render_prometheus",
    "parse_prometheus",
    "MetricsWindow",
    "WindowedSnapshotter",
    "MetricsHTTPServer",
]
